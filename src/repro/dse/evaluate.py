"""Candidate evaluation: run the flow + simulator per partition."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.otsu.app import build_otsu_custom, buildable_hw_sets
from repro.flow.orchestrator import FlowConfig, run_flow
from repro.sim.runtime import simulate_application
from repro.util.errors import ReproError


@dataclass(frozen=True)
class DsePoint:
    """One evaluated partition."""

    hw: frozenset[str]
    lut: int
    ff: int
    bram18: int
    dsp: int
    cycles: int
    correct: bool

    def label(self) -> str:
        return "+".join(sorted(self.hw)) if self.hw else "all-sw"


def evaluate_hw_set(
    hw: frozenset[str] | set[str],
    *,
    width: int = 32,
    height: int = 32,
    config: FlowConfig | None = None,
) -> DsePoint:
    """Build, synthesize and simulate one candidate partition."""
    hw = frozenset(hw)
    app = build_otsu_custom(hw, width=width, height=height)
    if hw:
        flow = run_flow(
            app.dsl_graph(),
            app.c_sources,
            extra_directives=app.extra_directives,
            config=config or FlowConfig(check_tcl=False),
        )
        system = flow.system
        usage = flow.bitstream.utilization
    else:
        system = None
        from repro.hls.resources import ResourceUsage

        usage = ResourceUsage()
    report = simulate_application(
        app.htg, app.partition, app.behaviors, {}, system=system
    )
    correct = bool(
        np.array_equal(report.of("binImage"), np.asarray(app.golden["binary"]))
    )
    return DsePoint(
        hw=hw,
        lut=usage.lut,
        ff=usage.ff,
        bram18=usage.bram18,
        dsp=usage.dsp,
        cycles=report.cycles,
        correct=correct,
    )


def explore(
    *,
    width: int = 32,
    height: int = 32,
    candidates: list[frozenset[str]] | None = None,
) -> list[DsePoint]:
    """Evaluate every buildable partition (or the given *candidates*)."""
    candidates = candidates if candidates is not None else buildable_hw_sets()
    points = [evaluate_hw_set(hw, width=width, height=height) for hw in candidates]
    wrong = [p.label() for p in points if not p.correct]
    if wrong:
        raise ReproError(f"candidates produced wrong output: {wrong}")
    return points
