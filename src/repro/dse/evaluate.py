"""Candidate evaluation: run the flow + simulator per candidate.

Two evaluation surfaces live here:

* the PR 0 partition-only helpers (:class:`DsePoint`,
  :func:`evaluate_hw_set`, :func:`explore`) kept for back-compat; and
* the campaign evaluator (:func:`evaluate_candidate`) over full
  :class:`~repro.dse.space.Candidate` points — partition × PIPELINE
  subset × DMA policy × HP-port bandwidth.

Every flow config a DSE evaluation uses comes from one factory,
:func:`dse_flow_config`, which pins the cache routing **explicitly**:
the whole-core build cache is off (a whole-core hit would bypass the
per-function memo entirely and hide regressions the campaign is meant
to measure), ``fn_cache_dir`` routes every worker at the one shared
persistent :class:`~repro.hls.fncache.FunctionCache` store, and
``jobs=1`` keeps per-candidate synthesis serial (the campaign
parallelizes across candidates, not inside them).  Constructing ad-hoc
``FlowConfig()`` instances here was the PR 10 bug: the env-default
``cache_dir``/``jobs`` fields meant parallel workers could each spawn a
private cold store.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.otsu.app import build_otsu_custom, buildable_hw_sets
from repro.dse.space import Candidate
from repro.flow.orchestrator import FlowConfig, run_flow
from repro.sim.runtime import simulate_application
from repro.soc.integrator import IntegrationConfig
from repro.util.errors import ReproError


def dse_flow_config(
    *,
    fn_cache_dir: str | None = None,
    one_dma_per_stream: bool = False,
    check_tcl: bool = False,
) -> FlowConfig:
    """The one flow config every DSE evaluation routes through.

    ``jobs`` and ``cache_dir`` are pinned (not env-defaulted): candidate
    evaluations must be identical no matter which worker process — or
    CI environment — runs them.
    """
    return FlowConfig(
        check_tcl=check_tcl,
        jobs=1,
        cache_dir=None,
        fn_cache_dir=str(fn_cache_dir) if fn_cache_dir is not None else None,
        integration=IntegrationConfig(one_dma_per_stream=one_dma_per_stream),
    )


@dataclass(frozen=True)
class DsePoint:
    """One evaluated partition."""

    hw: frozenset[str]
    lut: int
    ff: int
    bram18: int
    dsp: int
    cycles: int
    correct: bool

    def objectives(self) -> tuple[int, int, int, int, int]:
        return (self.lut, self.ff, self.bram18, self.dsp, self.cycles)

    def label(self) -> str:
        return "+".join(sorted(self.hw)) if self.hw else "all-sw"


@dataclass(frozen=True)
class EvalPoint:
    """One evaluated search-space candidate."""

    candidate: Candidate
    lut: int
    ff: int
    bram18: int
    dsp: int
    cycles: int
    correct: bool
    dma_cells: int
    fn_cache_hits: int
    fn_cache_misses: int

    @property
    def cid(self) -> str:
        return self.candidate.cid

    def objectives(self) -> tuple[int, int, int, int, int]:
        return (self.lut, self.ff, self.bram18, self.dsp, self.cycles)

    def label(self) -> str:
        return self.candidate.label()

    def record(self) -> dict:
        """Journaled form.  Deliberately **excludes** fn-cache counters:
        per-point hit/miss splits depend on evaluation order under
        parallelism, and the journal feeds the campaign digest."""
        return {
            "cid": self.cid,
            "candidate": self.candidate.as_dict(),
            "lut": self.lut,
            "ff": self.ff,
            "bram18": self.bram18,
            "dsp": self.dsp,
            "cycles": self.cycles,
            "correct": self.correct,
            "dma_cells": self.dma_cells,
        }

    @classmethod
    def from_record(cls, rec: dict) -> "EvalPoint":
        return cls(
            candidate=Candidate.from_dict(rec["candidate"]),
            lut=rec["lut"],
            ff=rec["ff"],
            bram18=rec["bram18"],
            dsp=rec["dsp"],
            cycles=rec["cycles"],
            correct=rec["correct"],
            dma_cells=rec["dma_cells"],
            fn_cache_hits=0,
            fn_cache_misses=0,
        )


def evaluate_candidate(
    candidate: Candidate,
    *,
    width: int = 16,
    height: int = 16,
    fn_cache_dir: str | None = None,
    check_tcl: bool = False,
) -> EvalPoint:
    """Build, synthesize, integrate and simulate one candidate."""
    hw = frozenset(candidate.get("hw", ()))
    pipelined = frozenset(candidate.get("pipelined", ()))
    dma = candidate.get("dma", "paired")
    hp_words = int(candidate.get("hp_words", 2))
    app = build_otsu_custom(hw, width=width, height=height)

    dma_cells = 0
    if hw:
        directives = {
            actor: [
                d
                for d in dirs
                if d.kind != "pipeline" or actor in pipelined
            ]
            for actor, dirs in app.extra_directives.items()
        }
        flow = run_flow(
            app.dsl_graph(),
            app.c_sources,
            extra_directives=directives,
            config=dse_flow_config(
                fn_cache_dir=fn_cache_dir,
                one_dma_per_stream=(dma == "per-stream"),
                check_tcl=check_tcl,
            ),
        )
        system = flow.system
        usage = flow.bitstream.utilization
        dma_cells = sum(
            1 for c in system.design.cells.values() if "axi_dma" in c.vlnv
        )
        fn_hits = flow.timing.fn_cache_hits
        fn_misses = flow.timing.fn_cache_misses
    else:
        system = None
        from repro.hls.resources import ResourceUsage

        usage = ResourceUsage()
        fn_hits = fn_misses = 0
    report = simulate_application(
        app.htg,
        app.partition,
        app.behaviors,
        {},
        system=system,
        hp_words_per_cycle=hp_words,
    )
    correct = bool(
        np.array_equal(report.of("binImage"), np.asarray(app.golden["binary"]))
    )
    return EvalPoint(
        candidate=candidate,
        lut=usage.lut,
        ff=usage.ff,
        bram18=usage.bram18,
        dsp=usage.dsp,
        cycles=report.cycles,
        correct=correct,
        dma_cells=dma_cells,
        fn_cache_hits=fn_hits,
        fn_cache_misses=fn_misses,
    )


def evaluate_hw_set(
    hw: frozenset[str] | set[str],
    *,
    width: int = 32,
    height: int = 32,
    config: FlowConfig | None = None,
) -> DsePoint:
    """Build, synthesize and simulate one candidate partition."""
    hw = frozenset(hw)
    app = build_otsu_custom(hw, width=width, height=height)
    if hw:
        flow = run_flow(
            app.dsl_graph(),
            app.c_sources,
            extra_directives=app.extra_directives,
            config=config or dse_flow_config(),
        )
        system = flow.system
        usage = flow.bitstream.utilization
    else:
        system = None
        from repro.hls.resources import ResourceUsage

        usage = ResourceUsage()
    report = simulate_application(
        app.htg, app.partition, app.behaviors, {}, system=system
    )
    correct = bool(
        np.array_equal(report.of("binImage"), np.asarray(app.golden["binary"]))
    )
    return DsePoint(
        hw=hw,
        lut=usage.lut,
        ff=usage.ff,
        bram18=usage.bram18,
        dsp=usage.dsp,
        cycles=report.cycles,
        correct=correct,
    )


def explore(
    *,
    width: int = 32,
    height: int = 32,
    candidates: list[frozenset[str]] | None = None,
) -> list[DsePoint]:
    """Evaluate every buildable partition (or the given *candidates*)."""
    candidates = candidates if candidates is not None else buildable_hw_sets()
    points = [evaluate_hw_set(hw, width=width, height=height) for hw in candidates]
    wrong = [p.label() for p in points if not p.correct]
    if wrong:
        raise ReproError(f"candidates produced wrong output: {wrong}")
    return points
