"""Composable search-space description for design-space exploration.

A :class:`SearchSpace` is a cartesian product of named :class:`Axis`
values filtered by named constraints — the COSMOS-style coordinate
space the campaign runner sweeps: *what* runs in hardware (the
partition), *how* each core is synthesized (HLS directive configs),
and how the memory system is provisioned (DMA policy, HP-port
bandwidth).  Candidates are plain JSON-able value maps with a stable
content id (:attr:`Candidate.cid`), so a campaign journal written by
one process can be resumed — or verified — by any other.

The Otsu case study gets two factory presets:

* :func:`otsu_space` — the full coupled space: every buildable
  partition × every PIPELINE subset over the actors that partition
  instantiates × DMA pairing policy × HP-port words/cycle;
* :func:`otsu_directives_space` — the directives-only slice (partition
  pinned to the Table-I Arch4 set), the fn-cache hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Iterator

from repro.flow.journal import stable_digest
from repro.util.errors import ReproError

#: Table-I function -> Listing-4 actor whose main loop can PIPELINE.
PIPELINEABLE_ACTOR_OF = {
    "grayScale": "grayScale",
    "histogram": "computeHistogram",
    "binarization": "segment",
}

#: DMA provisioning policies: the paper's paired dual-channel DMA vs
#: the SDSoC-like one-DMA-per-boundary-stream baseline.
DMA_POLICIES = ("paired", "per-stream")


def _canon_value(value: object) -> object:
    """JSON-canonical form of one (frozen) axis value: tuples -> lists."""
    if isinstance(value, tuple):
        return [_canon_value(v) for v in value]
    return value


def _freeze_value(value: object) -> object:
    """Hashable in-memory form of one axis value (lists become tuples)."""
    if isinstance(value, (tuple, list)):
        return tuple(_freeze_value(v) for v in value)
    if isinstance(value, frozenset):
        return tuple(sorted(value))
    return value


@dataclass(frozen=True)
class Candidate:
    """One point of a search space: a frozen axis-name -> value map."""

    values: tuple[tuple[str, object], ...]

    @classmethod
    def make(cls, mapping: dict[str, object]) -> "Candidate":
        return cls(
            tuple(sorted((k, _freeze_value(v)) for k, v in mapping.items()))
        )

    @classmethod
    def from_dict(cls, mapping: dict[str, object]) -> "Candidate":
        """Rebuild a candidate from its JSON form (journal resume)."""
        return cls.make(mapping)

    def get(self, axis: str, default: object = None) -> object:
        for k, v in self.values:
            if k == axis:
                return v
        return default

    def as_dict(self) -> dict[str, object]:
        """JSON-canonical dict — the journaled form; also the cid input."""
        return {k: _canon_value(v) for k, v in self.values}

    @property
    def cid(self) -> str:
        """Stable content id of this candidate (order-independent)."""
        return stable_digest(self.as_dict())[:16]

    def label(self) -> str:
        """Human-readable one-liner for tables and logs."""
        parts = []
        for k, v in self.values:
            if isinstance(v, tuple):
                parts.append(f"{k}={'+'.join(str(x) for x in v) or 'none'}")
            else:
                parts.append(f"{k}={v}")
        return " ".join(parts)


@dataclass(frozen=True)
class Axis:
    """One named dimension of the space with its finite value set."""

    name: str
    values: tuple

    def __post_init__(self):
        if not self.values:
            raise ReproError(f"axis {self.name!r} has no values")
        frozen = tuple(_freeze_value(v) for v in self.values)
        if len(set(frozen)) != len(frozen):
            raise ReproError(f"axis {self.name!r} has duplicate values")
        object.__setattr__(self, "values", frozen)


@dataclass(frozen=True)
class Constraint:
    """A named predicate over a candidate-value dict.

    The name (not the function) participates in the space description —
    and therefore in the campaign identity digest — so two processes
    agreeing on the description agree on the candidate list.
    """

    name: str
    predicate: Callable[[dict[str, object]], bool]

    def __call__(self, values: dict[str, object]) -> bool:
        return bool(self.predicate(values))


@dataclass(frozen=True)
class SearchSpace:
    """Axes × constraints; enumerates candidates deterministically."""

    name: str
    axes: tuple[Axis, ...]
    constraints: tuple[Constraint, ...] = field(default_factory=tuple)

    def __post_init__(self):
        names = [a.name for a in self.axes]
        if len(set(names)) != len(names):
            raise ReproError(f"space {self.name!r} has duplicate axis names")

    def axis(self, name: str) -> Axis:
        for a in self.axes:
            if a.name == name:
                return a
        raise ReproError(f"space {self.name!r} has no axis {name!r}")

    def __iter__(self) -> Iterator[Candidate]:
        """Candidates in axis-declaration × value-declaration order."""
        names = [a.name for a in self.axes]
        for combo in product(*(a.values for a in self.axes)):
            values = dict(zip(names, combo))
            if all(c(values) for c in self.constraints):
                yield Candidate.make(values)

    def candidates(self) -> list[Candidate]:
        return list(self)

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def describe(self) -> dict:
        """JSON description — part of the campaign identity digest."""
        return {
            "name": self.name,
            "axes": {a.name: _canon_value(a.values) for a in self.axes},
            "constraints": [c.name for c in self.constraints],
        }

    def digest(self) -> str:
        """Digest over the description *and* the enumerated candidates."""
        return stable_digest(
            {
                "space": self.describe(),
                "cids": [c.cid for c in self],
            }
        )


def _subsets(items: tuple[str, ...]) -> tuple[tuple[str, ...], ...]:
    """All subsets of *items*, each sorted, smallest first."""
    out: list[tuple[str, ...]] = []
    for mask in range(1 << len(items)):
        out.append(tuple(sorted(items[i] for i in range(len(items)) if mask >> i & 1)))
    return tuple(sorted(set(out), key=lambda s: (len(s), s)))


def actors_of(hw: tuple[str, ...] | frozenset[str]) -> tuple[str, ...]:
    """Pipelineable actor names instantiated by hardware set *hw*."""
    return tuple(
        sorted(
            PIPELINEABLE_ACTOR_OF[f] for f in hw if f in PIPELINEABLE_ACTOR_OF
        )
    )


def otsu_space(
    *,
    hw_sets: "list[frozenset[str]] | None" = None,
    pipeline_mode: str = "subsets",
    dma_policies: tuple[str, ...] = DMA_POLICIES,
    hp_words: tuple[int, ...] = (2,),
    name: str = "otsu-full",
) -> SearchSpace:
    """The coupled Otsu search space.

    *hw_sets* defaults to every buildable partition (including the
    all-software solution).  *pipeline_mode* selects the directive axis:
    ``"subsets"`` sweeps every PIPELINE subset over the instantiated
    actors, ``"extremes"`` only none-vs-all, ``"all"`` pins every
    pipelineable actor on.  Coupling constraints keep the product
    honest: a PIPELINE set must address actors the partition actually
    instantiates, and the all-software candidate is canonicalized to one
    DMA/HP configuration (those axes do not exist without hardware).
    """
    from repro.apps.otsu.app import buildable_hw_sets

    if hw_sets is None:
        hw_sets = buildable_hw_sets()
    hw_values = tuple(
        sorted((tuple(sorted(hw)) for hw in hw_sets), key=lambda h: (len(h), h))
    )
    all_actors = tuple(sorted(PIPELINEABLE_ACTOR_OF.values()))
    if pipeline_mode == "subsets":
        pipe_values = _subsets(all_actors)
    elif pipeline_mode == "extremes":
        pipe_values = ((), all_actors)
    elif pipeline_mode == "all":
        pipe_values = (all_actors,)
    else:
        raise ReproError(f"unknown pipeline_mode {pipeline_mode!r}")

    def _pipelined_present(values: dict[str, object]) -> bool:
        present = set(actors_of(values["hw"]))
        return set(values["pipelined"]) <= present

    def _allsw_canonical(values: dict[str, object]) -> bool:
        if values["hw"]:
            return True
        return (
            values["dma"] == dma_policies[0]
            and values["hp_words"] == hp_words[0]
            and values["pipelined"] == ()
        )

    return SearchSpace(
        name=name,
        axes=(
            Axis("hw", hw_values),
            Axis("pipelined", pipe_values),
            Axis("dma", tuple(dma_policies)),
            Axis("hp_words", tuple(hp_words)),
        ),
        constraints=(
            Constraint("pipelined-subset-of-instantiated", _pipelined_present),
            Constraint("all-sw-canonical", _allsw_canonical),
        ),
    )


def otsu_directives_space(
    *,
    hw: frozenset[str] | None = None,
    name: str = "otsu-directives",
) -> SearchSpace:
    """Directives-only slice: partition pinned (default Table-I Arch4).

    Every candidate shares every C source byte-for-byte and differs only
    in its PIPELINE directive subset — the per-function frontend memo's
    hot loop.
    """
    from repro.apps.otsu.app import ARCHITECTURES

    hw = frozenset(ARCHITECTURES[4]) if hw is None else frozenset(hw)
    return otsu_space(
        hw_sets=[hw],
        pipeline_mode="subsets",
        dma_policies=("paired",),
        hp_words=(2,),
        name=name,
    )


def sdsoc_baseline_candidate(
    space_hp_words: int = 2,
) -> Candidate:
    """The SDSoC-policy reference point: Table-I Arch4 functions in
    hardware, every actor pipelined, one DMA per boundary stream."""
    from repro.apps.otsu.app import ARCHITECTURES

    hw = tuple(sorted(ARCHITECTURES[4]))
    return Candidate.make(
        {
            "hw": hw,
            "pipelined": actors_of(hw),
            "dma": "per-stream",
            "hp_words": space_hp_words,
        }
    )


__all__ = [
    "Axis",
    "Candidate",
    "Constraint",
    "DMA_POLICIES",
    "PIPELINEABLE_ACTOR_OF",
    "SearchSpace",
    "actors_of",
    "otsu_directives_space",
    "otsu_space",
    "sdsoc_baseline_candidate",
]
