"""Greedy partitioning heuristic.

A simple hill-climber over the buildable hardware sets: starting from
all-software, repeatedly move the function whose acceleration buys the
most cycles per LUT, while the result stays buildable and keeps
improving.  Benchmarked against the exhaustive Pareto front (the
exhaustive space is tiny for the case study, which is exactly why it
makes a good correctness reference).
"""

from __future__ import annotations

from typing import Callable

from repro.apps.otsu.app import buildable_hw_sets
from repro.dse.evaluate import DsePoint, evaluate_hw_set


def greedy_partition(
    *,
    width: int = 32,
    height: int = 32,
    lut_budget: int | None = None,
    evaluator: Callable[[frozenset[str]], DsePoint] | None = None,
    fn_cache_dir: str | None = None,
) -> list[DsePoint]:
    """Greedy trajectory from all-software; returns the visited points.

    The last element is the heuristic's chosen solution.  *evaluator*
    can replace the full flow+simulation (for tests); *lut_budget* caps
    the area; *fn_cache_dir* shares one per-function memo store across
    the trajectory's flow runs.
    """
    if evaluator is None:
        from repro.dse.evaluate import dse_flow_config

        def evaluator(hw: frozenset[str]) -> DsePoint:  # noqa: F811
            return evaluate_hw_set(
                hw,
                width=width,
                height=height,
                config=dse_flow_config(fn_cache_dir=fn_cache_dir),
            )

    buildable = set(buildable_hw_sets())
    current = evaluator(frozenset())
    trajectory = [current]
    remaining = {"grayScale", "histogram", "otsuMethod", "binarization"}

    while remaining:
        best: DsePoint | None = None
        best_gain = 0.0
        for func in sorted(remaining):
            candidate_set = frozenset(current.hw | {func})
            if candidate_set not in buildable:
                continue
            point = evaluator(candidate_set)
            if lut_budget is not None and point.lut > lut_budget:
                continue
            delta_cycles = current.cycles - point.cycles
            delta_lut = max(1, point.lut - current.lut)
            gain = delta_cycles / delta_lut
            if delta_cycles > 0 and gain > best_gain:
                best, best_gain = point, gain
        if best is None:
            break
        current = best
        trajectory.append(current)
        remaining -= current.hw
    return trajectory
