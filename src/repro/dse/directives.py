"""Directive-level design-space exploration.

Partitioning decides *what* goes to hardware; directives decide *how*
each core is synthesized.  This module sweeps the PIPELINE directive
over the Otsu Arch4 actors (the float threshold search is excluded —
its recurrence defeats pipelining) and evaluates each configuration
through the full flow + simulator, exposing the latency/area trade the
DSL passes down to HLS per core.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.apps.otsu import build_otsu_app
from repro.dse.evaluate import dse_flow_config
from repro.sim.runtime import simulate_application
from repro.flow.orchestrator import run_flow
from repro.util.errors import ReproError

#: Actors whose main loop accepts a PIPELINE directive.
PIPELINEABLE = ("grayScale", "computeHistogram", "segment")


@dataclass(frozen=True)
class DirectivePoint:
    """One directive configuration of Arch4."""

    pipelined: frozenset[str]
    lut: int
    ff: int
    dsp: int
    cycles: int
    correct: bool

    def label(self) -> str:
        return "+".join(sorted(self.pipelined)) if self.pipelined else "none"


def evaluate_directive_config(
    pipelined: frozenset[str] | set[str],
    *,
    width: int = 32,
    height: int = 32,
    fn_cache_dir: str | None = None,
) -> DirectivePoint:
    """Build Arch4 with PIPELINE only on *pipelined* actors; simulate.

    *fn_cache_dir* routes the per-function memo at a shared persistent
    store; the flow config comes from :func:`dse_flow_config`, never an
    ad-hoc ``FlowConfig()`` whose env-defaulted cache fields could hand
    each caller a private cold store.
    """
    pipelined = frozenset(pipelined)
    unknown = pipelined - set(PIPELINEABLE)
    if unknown:
        raise ReproError(f"not pipelineable: {sorted(unknown)}")
    app = build_otsu_app(4, width=width, height=height)
    directives = {}
    for actor, dirs in app.extra_directives.items():
        kept = [
            d
            for d in dirs
            if d.kind != "pipeline" or actor in pipelined
        ]
        directives[actor] = kept
    flow = run_flow(
        app.dsl_graph(),
        app.c_sources,
        extra_directives=directives,
        config=dse_flow_config(fn_cache_dir=fn_cache_dir),
    )
    report = simulate_application(
        app.htg, app.partition, app.behaviors, {}, system=flow.system
    )
    usage = flow.bitstream.utilization
    correct = bool(
        np.array_equal(report.of("binImage"), np.asarray(app.golden["binary"]))
    )
    return DirectivePoint(
        pipelined=pipelined,
        lut=usage.lut,
        ff=usage.ff,
        dsp=usage.dsp,
        cycles=report.cycles,
        correct=correct,
    )


def explore_directives(
    *,
    width: int = 32,
    height: int = 32,
    fn_cache_dir: str | None = None,
) -> list[DirectivePoint]:
    """Evaluate every PIPELINE subset over the pipelineable actors."""
    points = []
    for r in range(len(PIPELINEABLE) + 1):
        for combo in combinations(PIPELINEABLE, r):
            points.append(
                evaluate_directive_config(
                    frozenset(combo),
                    width=width,
                    height=height,
                    fn_cache_dir=fn_cache_dir,
                )
            )
    wrong = [p.label() for p in points if not p.correct]
    if wrong:
        raise ReproError(f"directive configs produced wrong output: {wrong}")
    return points
