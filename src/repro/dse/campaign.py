"""Parallel, journaled, resumable DSE campaigns.

A campaign evaluates every candidate of a :class:`SearchSpace` through
the real flow + simulator and streams the results into a Pareto
frontier.  Three properties are engineered in, and `repro dsecheck`
gates on all of them:

**Determinism.**  The campaign *identity* digests the space description
(axes, constraints, candidate cids), the image geometry, the objective
vector, and the engine version — everything that decides *what* gets
evaluated, and nothing that only decides *how fast* (worker count,
store location).  The campaign *digest* adds the evaluation records
sorted by candidate id, with order- and machine-dependent fields
(wall-clock, per-point fn-cache splits) excluded.  Two runs of the same
campaign — serial, parallel, or resumed — produce byte-identical
frontier reports and equal digests.

**Parallelism.**  Candidates fan out over a process pool (fork start
method: workers inherit the warmed interpreter).  Every worker routes
HLS through the one shared persistent per-function store at
``fn_cache_dir`` via :func:`~repro.dse.evaluate.dse_flow_config`, so a
candidate that re-synthesizes a function another candidate already
compiled hits the frontend/result memos instead of spawning a private
cold store.

**Resumability.**  An append-only JSONL journal records the campaign
header plus one record per evaluated point.  A killed campaign resumed
against the same journal re-derives the identity, skips every cid
already journaled (tolerating a torn final line), evaluates the rest,
and lands on the same digest as an uninterrupted run.
"""

from __future__ import annotations

import json
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.dse.evaluate import EvalPoint, evaluate_candidate
from repro.dse.pareto import OBJECTIVES, ParetoFront, dominates
from repro.dse.space import Candidate, SearchSpace, sdsoc_baseline_candidate
from repro.flow.journal import stable_digest
from repro.util.errors import ReproError

#: Bumped whenever the evaluation semantics change — part of the
#: campaign identity, so stale journals refuse to resume.
ENGINE_VERSION = 1


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign: a space plus execution knobs.

    Only ``space``, ``width`` and ``height`` shape the results; the
    rest (worker count, store/journal locations, stop_after) shape the
    execution and are deliberately excluded from the identity digest.
    """

    space: SearchSpace
    width: int = 16
    height: int = 16
    jobs: int = 1
    fn_cache_dir: str | None = None
    journal_path: str | None = None
    resume: bool = False
    #: Evaluate at most this many *new* candidates, then stop with
    #: ``completed=False`` — the kill-mid-campaign simulation hook.
    stop_after: int | None = None
    check_tcl: bool = False

    def identity(self) -> str:
        return stable_digest(
            {
                "engine": ENGINE_VERSION,
                "space": self.space.describe(),
                "cids": sorted(c.cid for c in self.space),
                "width": self.width,
                "height": self.height,
                "objectives": list(OBJECTIVES),
            }
        )


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    identity: str
    points: list[EvalPoint]  # every evaluated point, sorted by cid
    front: list[EvalPoint]
    digest: str
    evaluated: int  # newly evaluated this run
    resumed: int  # loaded back from the journal
    completed: bool
    fn_cache_hits: int
    fn_cache_misses: int
    pruned: int
    evicted: int

    @property
    def fn_cache_hit_rate(self) -> float:
        total = self.fn_cache_hits + self.fn_cache_misses
        return self.fn_cache_hits / total if total else 0.0

    def frontier_report(self, *, baseline: EvalPoint | None = None) -> dict:
        """Deterministic report dict (no wall-clock, no cache splits)."""
        report = {
            "identity": self.identity,
            "digest": self.digest,
            "objectives": list(OBJECTIVES),
            "points_evaluated": len(self.points),
            "frontier": [p.record() for p in self.front],
            "pruned": len(self.points) - len(self.front),
        }
        if baseline is not None:
            report["baseline"] = baseline.record()
            report["baseline_dominated"] = frontier_dominates(
                self.front, baseline
            )
        return report

    def frontier_json(self, *, baseline: EvalPoint | None = None) -> str:
        """Byte-stable JSON rendering of :meth:`frontier_report`."""
        return (
            json.dumps(
                self.frontier_report(baseline=baseline),
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )


def frontier_dominates(front: list[EvalPoint], point: EvalPoint) -> bool:
    """True if some frontier point strictly dominates *point*."""
    return any(dominates(p, point) for p in front)


def sdsoc_baseline_point(
    *,
    width: int = 16,
    height: int = 16,
    fn_cache_dir: str | None = None,
) -> EvalPoint:
    """Evaluate the SDSoC one-DMA-per-stream reference candidate."""
    return evaluate_candidate(
        sdsoc_baseline_candidate(),
        width=width,
        height=height,
        fn_cache_dir=fn_cache_dir,
    )


def campaign_digest(identity: str, points: list[EvalPoint]) -> str:
    """Digest over identity + cid-sorted evaluation records."""
    return stable_digest(
        {
            "identity": identity,
            "points": [p.record() for p in sorted(points, key=lambda p: p.cid)],
        }
    )


# -- journal ---------------------------------------------------------------


def _read_journal(path: Path, identity: str) -> list[EvalPoint]:
    """Load journaled points, tolerating a torn final line."""
    points: list[EvalPoint] = []
    header_seen = False
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            # Torn tail from a mid-write kill: everything before it is
            # intact (appends are line-buffered), so just stop here.
            break
        kind = rec.get("kind")
        if kind == "campaign":
            if rec.get("identity") != identity:
                raise ReproError(
                    "journal belongs to a different campaign: "
                    f"{rec.get('identity')!r} != {identity!r}"
                )
            header_seen = True
        elif kind == "point":
            points.append(EvalPoint.from_record(rec))
    if not header_seen:
        raise ReproError(f"journal {path} has no campaign header")
    return points


def _worker_evaluate(payload: tuple) -> EvalPoint:
    """Top-level (picklable) worker: evaluate one candidate."""
    cand_dict, width, height, fn_cache_dir, check_tcl = payload
    return evaluate_candidate(
        Candidate.from_dict(cand_dict),
        width=width,
        height=height,
        fn_cache_dir=fn_cache_dir,
        check_tcl=check_tcl,
    )


def _pool_context():
    """Prefer fork (workers inherit the warmed interpreter state)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_campaign(config: CampaignConfig) -> CampaignResult:
    """Run (or resume) one campaign; returns the full result."""
    identity = config.identity()
    candidates = sorted(config.space, key=lambda c: c.cid)
    journal = Path(config.journal_path) if config.journal_path else None

    done: list[EvalPoint] = []
    if journal is not None and config.resume and journal.exists():
        done = _read_journal(journal, identity)
    resumed = len(done)
    done_cids = {p.cid for p in done}
    pending = [c for c in candidates if c.cid not in done_cids]
    if config.stop_after is not None:
        pending = pending[: config.stop_after]

    journal_fh = None
    if journal is not None:
        journal.parent.mkdir(parents=True, exist_ok=True)
        if config.resume and journal.exists():
            journal_fh = journal.open("a")
        else:
            journal_fh = journal.open("w")
            journal_fh.write(
                json.dumps(
                    {
                        "kind": "campaign",
                        "identity": identity,
                        "engine": ENGINE_VERSION,
                        "space": config.space.describe(),
                        "width": config.width,
                        "height": config.height,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            journal_fh.flush()

    new_points: list[EvalPoint] = []
    try:
        payloads = [
            (
                c.as_dict(),
                config.width,
                config.height,
                config.fn_cache_dir,
                config.check_tcl,
            )
            for c in pending
        ]
        if config.jobs > 1 and len(payloads) > 1:
            with ProcessPoolExecutor(
                max_workers=min(config.jobs, len(payloads)),
                mp_context=_pool_context(),
            ) as pool:
                for point in pool.map(_worker_evaluate, payloads):
                    new_points.append(point)
                    _journal_point(journal_fh, point)
        else:
            for payload in payloads:
                point = _worker_evaluate(payload)
                new_points.append(point)
                _journal_point(journal_fh, point)
    finally:
        if journal_fh is not None:
            journal_fh.close()

    points = done + new_points
    wrong = [p.label() for p in points if not p.correct]
    if wrong:
        raise ReproError(f"candidates produced wrong output: {wrong}")

    front = ParetoFront()
    for p in sorted(points, key=lambda p: p.cid):
        front.add(p)

    points_sorted = sorted(points, key=lambda p: p.cid)
    return CampaignResult(
        identity=identity,
        points=points_sorted,
        front=front.front(),
        digest=campaign_digest(identity, points_sorted),
        evaluated=len(new_points),
        resumed=resumed,
        completed=len(points) == len(candidates),
        fn_cache_hits=sum(p.fn_cache_hits for p in new_points),
        fn_cache_misses=sum(p.fn_cache_misses for p in new_points),
        pruned=front.pruned,
        evicted=front.evicted,
    )


def _journal_point(fh, point: EvalPoint) -> None:
    if fh is None:
        return
    fh.write(json.dumps({"kind": "point", **point.record()}, sort_keys=True) + "\n")
    fh.flush()


__all__ = [
    "ENGINE_VERSION",
    "CampaignConfig",
    "CampaignResult",
    "campaign_digest",
    "frontier_dominates",
    "run_campaign",
    "sdsoc_baseline_point",
]
