"""Pareto-front extraction over (area, latency)."""

from __future__ import annotations

from repro.dse.evaluate import DsePoint


def dominates(a: DsePoint, b: DsePoint) -> bool:
    """True if *a* is at least as good as *b* everywhere and better somewhere.

    Objectives: minimize LUT (area proxy) and minimize cycles (latency).
    """
    no_worse = a.lut <= b.lut and a.cycles <= b.cycles
    better = a.lut < b.lut or a.cycles < b.cycles
    return no_worse and better


def pareto_front(points: list[DsePoint]) -> list[DsePoint]:
    """Non-dominated subset, sorted by ascending LUT."""
    front = [
        p
        for p in points
        if not any(dominates(q, p) for q in points if q is not p)
    ]
    # Deduplicate identical objective vectors (keep the first).
    seen: set[tuple[int, int]] = set()
    unique = []
    for p in sorted(front, key=lambda p: (p.lut, p.cycles)):
        key = (p.lut, p.cycles)
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique
