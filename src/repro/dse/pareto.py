"""Multi-objective Pareto-front extraction and streaming pruning.

Objectives are minimized, area-first: ``(lut, ff, bram18, dsp,
cycles)``.  Any point object works as long as it exposes those
attributes or an ``objectives()`` method; ties on the whole vector are
broken by a stable identity (``cid`` / ``label()``), which is what makes
both the batch extractor and the streaming accumulator
**permutation-invariant** — the frontier is a function of the point
*set*, not of evaluation order.  That property is load-bearing: the
parallel campaign runner completes candidates in nondeterministic order
and still has to produce a byte-identical frontier.

Two entry points:

* :func:`pareto_front` — batch extraction (back-compatible with the
  PR 0 two-objective helper);
* :class:`ParetoFront` — streaming accumulator with dominated-point
  pruning: dominated incoming points never enter the frontier, and a
  new dominator evicts every kept point it beats.  Emits ``dse.point``
  / ``dse.prune`` events and counters when observability is on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.obs.events import BUS
from repro.obs.metrics import REGISTRY

#: Objective names in vector order (all minimized).
OBJECTIVES = ("lut", "ff", "bram18", "dsp", "cycles")


def point_objectives(point) -> tuple:
    """The minimized objective vector of *point* (area-first)."""
    fn = getattr(point, "objectives", None)
    if callable(fn):
        return tuple(fn())
    return tuple(int(getattr(point, name, 0)) for name in OBJECTIVES)


def point_ident(point) -> str:
    """Stable identity used to break exact objective ties."""
    cid = getattr(point, "cid", None)
    if cid is not None:
        return str(cid)
    label = getattr(point, "label", None)
    if callable(label):
        return str(label())
    return repr(point)


def dominates_vec(a: Sequence, b: Sequence) -> bool:
    """True if vector *a* is no worse everywhere and better somewhere."""
    if len(a) != len(b):
        raise ValueError("objective vectors differ in length")
    no_worse = all(x <= y for x, y in zip(a, b))
    return no_worse and any(x < y for x, y in zip(a, b))


def dominates(a, b) -> bool:
    """True if point *a* dominates point *b* (minimize every objective)."""
    return dominates_vec(point_objectives(a), point_objectives(b))


def pareto_front(points: Iterable) -> list:
    """Non-dominated subset, sorted by ascending objective vector.

    Exact-duplicate objective vectors collapse to the representative
    with the smallest identity, so the result does not depend on input
    order.
    """
    pts = list(points)
    vecs = [point_objectives(p) for p in pts]
    front: dict[tuple, object] = {}
    for p, v in zip(pts, vecs):
        if any(dominates_vec(w, v) for w in vecs):
            continue
        kept = front.get(v)
        if kept is None or point_ident(p) < point_ident(kept):
            front[v] = p
    return [front[v] for v in sorted(front)]


class ParetoFront:
    """Streaming frontier accumulator with dominated-point pruning.

    ``add`` keeps the invariant that the retained set is mutually
    non-dominated with unique objective vectors.  The final
    :meth:`front` is identical to batch :func:`pareto_front` over the
    same points in any arrival order.
    """

    def __init__(self) -> None:
        self._kept: dict[tuple, object] = {}
        self.seen = 0
        self.pruned = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._kept)

    def add(self, point) -> bool:
        """Offer one point; returns True if it joins the frontier."""
        self.seen += 1
        vec = point_objectives(point)
        twin = self._kept.get(vec)
        if twin is not None:
            # Exact tie: the smaller identity is the canonical survivor.
            if point_ident(point) < point_ident(twin):
                self._kept[vec] = point
                self._note_prune(twin, by=point, reason="tie")
                self._note_point(point)
                return True
            self._note_prune(point, by=twin, reason="tie")
            return False
        for kvec, kept in self._kept.items():
            if dominates_vec(kvec, vec):
                self.pruned += 1
                self._note_prune(point, by=kept, reason="dominated")
                return False
        beaten = [kvec for kvec in self._kept if dominates_vec(vec, kvec)]
        for kvec in beaten:
            evicted = self._kept.pop(kvec)
            self.evicted += 1
            self._note_prune(evicted, by=point, reason="evicted")
        self._kept[vec] = point
        self._note_point(point)
        return True

    def extend(self, points: Iterable) -> None:
        for p in points:
            self.add(p)

    def front(self) -> list:
        """Retained points, sorted by ascending objective vector."""
        return [self._kept[v] for v in sorted(self._kept)]

    # -- observability -----------------------------------------------------
    @staticmethod
    def _note_point(point) -> None:
        if BUS.enabled:
            BUS.emit(
                "dse.point",
                point_ident(point),
                objectives=point_objectives(point),
            )
            REGISTRY.counter(
                "dse.frontier_admissions_total",
                "points admitted to the streaming Pareto frontier",
            ).inc()

    @staticmethod
    def _note_prune(point, *, by, reason: str) -> None:
        if BUS.enabled:
            BUS.emit(
                "dse.prune",
                point_ident(point),
                by=point_ident(by),
                reason=reason,
            )
            REGISTRY.counter(
                "dse.pruned_total",
                "points pruned as dominated/tied/evicted",
            ).inc()


__all__ = [
    "OBJECTIVES",
    "ParetoFront",
    "dominates",
    "dominates_vec",
    "pareto_front",
    "point_ident",
    "point_objectives",
]
