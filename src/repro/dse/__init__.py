"""Design-space exploration — the paper's declared future work.

Section II-C: "the hardware/software partitioning is provided as input
and can be manually obtained by the user or with the help of DSE tools
... we left the integration with DSE tools as a future work."  This
package closes that loop for the Otsu case study: enumerate the
buildable partitions (:mod:`space`), evaluate each through the real flow
and simulator (:mod:`evaluate`), extract the area/performance Pareto
front (:mod:`pareto`), and compare against a greedy heuristic
(:mod:`heuristics`).
"""

from repro.dse.directives import (
    DirectivePoint,
    evaluate_directive_config,
    explore_directives,
)
from repro.dse.evaluate import DsePoint, evaluate_hw_set, explore
from repro.dse.heuristics import greedy_partition
from repro.dse.pareto import pareto_front

__all__ = [
    "DirectivePoint",
    "DsePoint",
    "evaluate_directive_config",
    "evaluate_hw_set",
    "explore",
    "explore_directives",
    "greedy_partition",
    "pareto_front",
]
