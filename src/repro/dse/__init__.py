"""Design-space exploration — the paper's declared future work.

Section II-C: "the hardware/software partitioning is provided as input
and can be manually obtained by the user or with the help of DSE tools
... we left the integration with DSE tools as a future work."  This
package closes that loop for the Otsu case study, COSMOS-style:
describe a composable search space (:mod:`space` — partitions × HLS
PIPELINE subsets × DMA policies × HP-port bandwidth), evaluate each
candidate through the real flow and simulator (:mod:`evaluate`) with
every worker sharing one persistent per-function HLS memo store, prune
dominated points to a latency-vs-LUT/FF/BRAM/DSP Pareto frontier
(:mod:`pareto`), and run the whole thing as a parallel, journaled,
resumable, deterministically-digested campaign (:mod:`campaign`).
The greedy heuristic (:mod:`heuristics`) stays as a cross-check on the
exhaustive frontier.
"""

from repro.dse.campaign import (
    CampaignConfig,
    CampaignResult,
    frontier_dominates,
    run_campaign,
    sdsoc_baseline_point,
)
from repro.dse.directives import (
    DirectivePoint,
    evaluate_directive_config,
    explore_directives,
)
from repro.dse.evaluate import (
    DsePoint,
    EvalPoint,
    dse_flow_config,
    evaluate_candidate,
    evaluate_hw_set,
    explore,
)
from repro.dse.heuristics import greedy_partition
from repro.dse.pareto import ParetoFront, dominates, pareto_front
from repro.dse.space import (
    Candidate,
    SearchSpace,
    otsu_directives_space,
    otsu_space,
    sdsoc_baseline_candidate,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "Candidate",
    "DirectivePoint",
    "DsePoint",
    "EvalPoint",
    "ParetoFront",
    "SearchSpace",
    "dominates",
    "dse_flow_config",
    "evaluate_candidate",
    "evaluate_directive_config",
    "evaluate_hw_set",
    "explore",
    "explore_directives",
    "frontier_dominates",
    "greedy_partition",
    "otsu_directives_space",
    "otsu_space",
    "pareto_front",
    "run_campaign",
    "sdsoc_baseline_candidate",
    "sdsoc_baseline_point",
]
