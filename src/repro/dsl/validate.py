"""Semantic validation of a parsed/built task-graph description.

Rules (each violation raises :class:`DslValidationError`):

* node names are unique; port names are unique within a node;
* ``connect`` references an existing node that declares at least one
  AXI-Lite (``i``) port, and each node is connected at most once;
* every ``link`` endpoint references an existing node and an
  AXI-Stream (``is``) port;
* a stream port is used by exactly one link, and only in one direction
  (a port used as a link source is an output, as a destination an
  input — AXI-Stream is point-to-point);
* every declared stream port is linked (dangling streams would leave an
  unconnected interface in the block design);
* every node with only ``i`` ports is reachable from the bus via a
  ``connect`` edge;
* stream links form no cycle, and every weakly-connected stream
  component touches ``'soc`` at least once (otherwise no data could ever
  enter or leave the pipeline);
* no self-links.
"""

from __future__ import annotations

from repro.dsl.ast import LinkEdge, PortKind, TgGraph
from repro.util.errors import DslValidationError


def _check_endpoint(graph: TgGraph, edge: LinkEdge, end: object, role: str) -> None:
    if not isinstance(end, tuple):
        return  # 'soc — always fine
    node_name, port_name = end
    if not graph.has_node(node_name):
        raise DslValidationError(f"link {role} references unknown node {node_name!r}")
    node = graph.node(node_name)
    if not node.has_port(port_name):
        raise DslValidationError(
            f"link {role} references unknown port {port_name!r} of node {node_name!r}"
        )
    if node.port(port_name).kind is not PortKind.STREAM:
        raise DslValidationError(
            f"link {role} uses AXI-Lite port {node_name}.{port_name}; "
            "links require 'is' (AXI-Stream) ports"
        )


def validate_graph(graph: TgGraph) -> None:
    """Validate *graph*; raises :class:`DslValidationError` on violation."""
    # --- nodes --------------------------------------------------------------
    seen_nodes: set[str] = set()
    for node in graph.nodes:
        if node.name in seen_nodes:
            raise DslValidationError(f"duplicate node name {node.name!r}")
        seen_nodes.add(node.name)
        seen_ports: set[str] = set()
        for p in node.ports:
            if p.name in seen_ports:
                raise DslValidationError(
                    f"node {node.name!r}: duplicate port name {p.name!r}"
                )
            seen_ports.add(p.name)

    # --- connect edges --------------------------------------------------------
    connected: set[str] = set()
    for edge in graph.connects():
        if not graph.has_node(edge.node):
            raise DslValidationError(f"connect references unknown node {edge.node!r}")
        if not graph.node(edge.node).lite_ports():
            raise DslValidationError(
                f"connect on node {edge.node!r} which has no AXI-Lite port"
            )
        if edge.node in connected:
            raise DslValidationError(f"node {edge.node!r} connected to the bus twice")
        connected.add(edge.node)

    # --- link edges -------------------------------------------------------------
    used_src: set[tuple[str, str]] = set()
    used_dst: set[tuple[str, str]] = set()
    for edge in graph.links():
        _check_endpoint(graph, edge, edge.src, "source")
        _check_endpoint(graph, edge, edge.dst, "destination")
        if edge.from_soc() and edge.to_soc():
            raise DslValidationError("link from 'soc to 'soc is meaningless")
        if (
            isinstance(edge.src, tuple)
            and isinstance(edge.dst, tuple)
            and edge.src[0] == edge.dst[0]
        ):
            raise DslValidationError(f"self-link on node {edge.src[0]!r}")
        if isinstance(edge.src, tuple):
            if edge.src in used_src:
                raise DslValidationError(
                    f"stream output {edge.src[0]}.{edge.src[1]} linked twice"
                )
            used_src.add(edge.src)
        if isinstance(edge.dst, tuple):
            if edge.dst in used_dst:
                raise DslValidationError(
                    f"stream input {edge.dst[0]}.{edge.dst[1]} linked twice"
                )
            used_dst.add(edge.dst)

    both = used_src & used_dst
    if both:
        n, p = sorted(both)[0]
        raise DslValidationError(
            f"stream port {n}.{p} is used both as a source and a destination"
        )

    # --- coverage -------------------------------------------------------------
    for node in graph.nodes:
        for p in node.stream_ports():
            key = (node.name, p.name)
            if key not in used_src and key not in used_dst:
                raise DslValidationError(
                    f"stream port {node.name}.{p.name} is never linked"
                )
        if node.lite_ports() and not node.stream_ports() and node.name not in connected:
            raise DslValidationError(
                f"node {node.name!r} has only AXI-Lite ports but no connect edge; "
                "the GPP could never reach it"
            )

    # --- stream topology --------------------------------------------------------
    _check_stream_topology(graph)


def _check_stream_topology(graph: TgGraph) -> None:
    """Acyclicity and 'soc-reachability of the stream-link graph."""
    links = graph.links()
    if not links:
        return

    # Node-level stream graph (ignoring 'soc for the cycle check).
    edges: set[tuple[str, str]] = set()
    nodes: set[str] = set()
    touches_soc: set[str] = set()
    for e in links:
        if isinstance(e.src, tuple):
            nodes.add(e.src[0])
        if isinstance(e.dst, tuple):
            nodes.add(e.dst[0])
        if isinstance(e.src, tuple) and isinstance(e.dst, tuple):
            edges.add((e.src[0], e.dst[0]))
        elif isinstance(e.src, tuple):
            touches_soc.add(e.src[0])
        elif isinstance(e.dst, tuple):
            touches_soc.add(e.dst[0])

    # Kahn's algorithm for cycle detection.
    indeg = {n: 0 for n in nodes}
    succ: dict[str, list[str]] = {n: [] for n in nodes}
    for s, d in sorted(edges):
        indeg[d] += 1
        succ[s].append(d)
    ready = [n for n in sorted(nodes) if indeg[n] == 0]
    seen = 0
    while ready:
        n = ready.pop()
        seen += 1
        for d in succ[n]:
            indeg[d] -= 1
            if indeg[d] == 0:
                ready.append(d)
    if seen != len(nodes):
        stuck = sorted(n for n, k in indeg.items() if k > 0)
        raise DslValidationError(f"stream links form a cycle involving {stuck}")

    # Weakly-connected components must touch 'soc.
    parent = {n: n for n in nodes}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for s, d in edges:
        union(s, d)
    roots_with_soc = {find(n) for n in touches_soc}
    for n in sorted(nodes):
        if find(n) not in roots_with_soc:
            raise DslValidationError(
                f"stream pipeline containing {n!r} never touches 'soc; "
                "data could neither enter nor leave it"
            )
