"""JSON-friendly (de)serialization of DSL graphs.

Complements the textual form: tools that want a machine-readable
exchange format (e.g. a DSE driver emitting candidate architectures)
can round-trip through plain dicts instead of DSL text.
"""

from __future__ import annotations

from typing import Any

from repro.dsl.ast import SOC, ConnectEdge, Endpoint, LinkEdge, NodeDecl, PortDecl, PortKind, TgGraph
from repro.util.errors import DslValidationError


def _endpoint_to_obj(end: Endpoint) -> Any:
    if isinstance(end, tuple):
        return [end[0], end[1]]
    return "soc"


def _endpoint_from_obj(obj: Any) -> Endpoint:
    if obj == "soc":
        return SOC
    if isinstance(obj, (list, tuple)) and len(obj) == 2:
        return (str(obj[0]), str(obj[1]))
    raise DslValidationError(f"bad endpoint encoding: {obj!r}")


def graph_to_dict(graph: TgGraph) -> dict[str, Any]:
    """Serialize *graph* to plain dict/list/str values."""
    return {
        "name": graph.name,
        "nodes": [
            {
                "name": n.name,
                "ports": [[p.name, p.kind.value] for p in n.ports],
            }
            for n in graph.nodes
        ],
        "edges": [
            {"connect": e.node}
            if isinstance(e, ConnectEdge)
            else {"link": [_endpoint_to_obj(e.src), _endpoint_to_obj(e.dst)]}
            for e in graph.edges
        ],
    }


def graph_from_dict(data: dict[str, Any]) -> TgGraph:
    """Rebuild a :class:`TgGraph` from :func:`graph_to_dict` output."""
    graph = TgGraph(data.get("name", "anonymous"))
    for nd in data.get("nodes", ()):
        ports = tuple(
            PortDecl(str(pname), PortKind(kind)) for pname, kind in nd["ports"]
        )
        graph.nodes.append(NodeDecl(str(nd["name"]), ports))
    for ed in data.get("edges", ()):
        if "connect" in ed:
            graph.edges.append(ConnectEdge(str(ed["connect"])))
        elif "link" in ed:
            src, dst = ed["link"]
            graph.edges.append(LinkEdge(_endpoint_from_obj(src), _endpoint_from_obj(dst)))
        else:
            raise DslValidationError(f"unknown edge encoding: {ed!r}")
    return graph
