"""AST of the task-graph DSL.

A program describes a graph ``G = {N, E}`` (paper Section III): ``N`` is
the list of hardware cores with their ports, ``E`` the list of
interconnections.  Two port kinds exist, matching the two AXI protocols
the paper targets:

* ``i``  — AXI-Lite memory-mapped port (commands / scalar parameters);
* ``is`` — AXI-Stream port (continuous data stream).

Edges come in two flavours: ``connect`` attaches a core's AXI-Lite
interface to the system bus, ``link ... to ...`` creates a point-to-point
AXI-Stream connection whose endpoints are either ``(node, port)`` pairs
or the special token ``'soc`` denoting the processing system (reached
through a DMA core).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class PortKind(Enum):
    """Interface protocol of a declared port."""

    LITE = "i"
    STREAM = "is"


class _SocToken:
    """Singleton for the ``'soc`` endpoint (the system bus / PS side)."""

    _instance: "_SocToken | None" = None

    def __new__(cls) -> "_SocToken":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "'soc"

    def __deepcopy__(self, memo: dict) -> "_SocToken":
        return self


#: The ``'soc`` endpoint used in ``link`` edges.
SOC = _SocToken()

#: A stream endpoint: either :data:`SOC` or a ``(node, port)`` pair.
Endpoint = _SocToken | tuple[str, str]


@dataclass(frozen=True)
class PortDecl:
    """A named port of a node with its protocol kind."""

    name: str
    kind: PortKind

    def is_stream(self) -> bool:
        return self.kind is PortKind.STREAM

    def is_lite(self) -> bool:
        return self.kind is PortKind.LITE


@dataclass(frozen=True)
class NodeDecl:
    """One hardware core: name plus ordered port declarations."""

    name: str
    ports: tuple[PortDecl, ...] = ()

    def port(self, name: str) -> PortDecl:
        for p in self.ports:
            if p.name == name:
                return p
        raise KeyError(f"node {self.name!r} has no port {name!r}")

    def has_port(self, name: str) -> bool:
        return any(p.name == name for p in self.ports)

    def lite_ports(self) -> tuple[PortDecl, ...]:
        return tuple(p for p in self.ports if p.is_lite())

    def stream_ports(self) -> tuple[PortDecl, ...]:
        return tuple(p for p in self.ports if p.is_stream())


@dataclass(frozen=True)
class ConnectEdge:
    """``tg connect "NODE"`` — attach NODE's AXI-Lite interface to the bus."""

    node: str


@dataclass(frozen=True)
class LinkEdge:
    """``tg link SRC to DST end`` — a point-to-point AXI-Stream channel."""

    src: Endpoint
    dst: Endpoint

    def from_soc(self) -> bool:
        return isinstance(self.src, _SocToken)

    def to_soc(self) -> bool:
        return isinstance(self.dst, _SocToken)


@dataclass
class TgGraph:
    """A complete DSL program: ``object <name> extends App { nodes edges }``."""

    name: str
    nodes: list[NodeDecl] = field(default_factory=list)
    edges: list[ConnectEdge | LinkEdge] = field(default_factory=list)

    # -- queries ----------------------------------------------------------
    def node(self, name: str) -> NodeDecl:
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(f"graph {self.name!r} has no node {name!r}")

    def has_node(self, name: str) -> bool:
        return any(n.name == name for n in self.nodes)

    def connects(self) -> list[ConnectEdge]:
        return [e for e in self.edges if isinstance(e, ConnectEdge)]

    def links(self) -> list[LinkEdge]:
        return [e for e in self.edges if isinstance(e, LinkEdge)]

    def links_of(self, node: str) -> list[LinkEdge]:
        out = []
        for e in self.links():
            for end in (e.src, e.dst):
                if isinstance(end, tuple) and end[0] == node:
                    out.append(e)
                    break
        return out

    def stream_inputs_of(self, node: str) -> list[str]:
        """Port names of *node* that receive data over a link."""
        return [
            e.dst[1] for e in self.links() if isinstance(e.dst, tuple) and e.dst[0] == node
        ]

    def stream_outputs_of(self, node: str) -> list[str]:
        """Port names of *node* that send data over a link."""
        return [
            e.src[1] for e in self.links() if isinstance(e.src, tuple) and e.src[0] == node
        ]
