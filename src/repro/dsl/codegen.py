"""Pretty-printer: emit a :class:`TgGraph` back as textual DSL.

The output follows the formatting of the paper's Listing 4 (one
statement per line, two-space indentation inside each section) and
re-parses to an equal graph — the round-trip property the test suite
checks.  This text is also the "Scala source" side of the
Discussion-section code-size comparison.
"""

from __future__ import annotations

from repro.dsl.ast import ConnectEdge, Endpoint, LinkEdge, PortKind, TgGraph


def _fmt_endpoint(end: Endpoint) -> str:
    if isinstance(end, tuple):
        node, port = end
        return f'("{node}", "{port}")'
    return "'soc"


def emit_dsl(graph: TgGraph, *, wrap_object: bool = True) -> str:
    """Render *graph* as DSL text; parse(emit(g)) == g."""
    lines: list[str] = []
    indent = "  " if wrap_object else ""
    if wrap_object:
        lines.append(f"object {graph.name} extends App {{")

    lines.append(f"{indent}tg nodes;")
    for node in graph.nodes:
        parts = [f'tg node "{node.name}"']
        for p in node.ports:
            kw = "i" if p.kind is PortKind.LITE else "is"
            parts.append(f'{kw} "{p.name}"')
        parts.append("end;")
        lines.append(f"{indent}  " + " ".join(parts))
    lines.append(f"{indent}tg end_nodes;")

    lines.append(f"{indent}tg edges;")
    for edge in graph.edges:
        if isinstance(edge, ConnectEdge):
            lines.append(f'{indent}  tg connect "{edge.node}";')
        elif isinstance(edge, LinkEdge):
            lines.append(
                f"{indent}  tg link {_fmt_endpoint(edge.src)} "
                f"to {_fmt_endpoint(edge.dst)} end;"
            )
    lines.append(f"{indent}tg end_edges;")

    if wrap_object:
        lines.append("}")
    return "\n".join(lines) + "\n"
