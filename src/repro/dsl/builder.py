"""Embedded (host-language) front-end of the task-graph DSL.

This mirrors the Scala embedding: each DSL keyword is an executable
method and "executing" the description drives the tool-flow through
:class:`~repro.dsl.actions.ActionHooks`.  The paper's Listing 4 becomes::

    tg = TaskGraphBuilder("otsu", hooks=flow_hooks)
    tg.nodes()
    tg.node("grayScale").is_("imageIn").is_("imageOutCH").is_("imageOutSEG").end()
    tg.node("computeHistogram").is_("grayScaleImage").is_("histogram").end()
    ...
    tg.end_nodes()
    tg.edges()
    tg.link(SOC).to(("grayScale", "imageIn")).end()
    ...
    tg.end_edges()
    graph = tg.graph()

``is`` is a Python keyword, hence the trailing underscore (``is_``); the
alias ``stream`` is also provided, and ``lite`` aliases ``i``.

The builder enforces the Listing-1 grammar dynamically: calling a keyword
out of sequence raises :class:`DslSyntaxError`, exactly as the textual
parser would reject the equivalent program.
"""

from __future__ import annotations

from enum import Enum

from repro.dsl.actions import ActionHooks
from repro.dsl.ast import SOC, ConnectEdge, Endpoint, LinkEdge, NodeDecl, PortDecl, PortKind, TgGraph
from repro.dsl.validate import validate_graph
from repro.util.errors import DslSyntaxError


class _State(Enum):
    START = "start"
    NODES = "nodes"
    IN_NODE = "in_node"
    BETWEEN = "between"  # after end_nodes, before edges
    EDGES = "edges"
    IN_LINK = "in_link"
    IN_LINK_TO = "in_link_to"
    DONE = "done"


class TaskGraphBuilder:
    """Keyword-at-a-time construction of a :class:`TgGraph`.

    Every method models one DSL keyword and fires the corresponding
    :class:`ActionHooks` callback at the moment it executes, so a flow
    implementation observes the same event order as the textual parser.
    """

    def __init__(self, name: str = "anonymous", hooks: ActionHooks | None = None) -> None:
        self._graph = TgGraph(name)
        self._hooks = hooks or ActionHooks()
        self._state = _State.START
        self._node_name: str | None = None
        self._node_ports: list[PortDecl] = []
        self._link_src: Endpoint | None = None
        self._link_dst: Endpoint | None = None
        self._hooks.on_graph_begin(self._graph)

    # -- state helpers ------------------------------------------------------
    def _require(self, *states: _State) -> None:
        if self._state not in states:
            raise DslSyntaxError(
                f"keyword not allowed here (builder state is {self._state.value!r})"
            )

    # -- nodes section ------------------------------------------------------
    def nodes(self) -> "TaskGraphBuilder":
        """``tg nodes`` — open the node list."""
        self._require(_State.START)
        self._state = _State.NODES
        self._hooks.on_nodes_begin(self._graph)
        return self

    def node(self, name: str) -> "TaskGraphBuilder":
        """``tg node "NAME"`` — open one node declaration."""
        self._require(_State.NODES)
        self._state = _State.IN_NODE
        self._node_name = name
        self._node_ports = []
        self._hooks.on_node_begin(self._graph, name)
        return self

    def i(self, port: str) -> "TaskGraphBuilder":
        """``i "PORT"`` — declare an AXI-Lite port on the open node."""
        self._require(_State.IN_NODE)
        decl = PortDecl(port, PortKind.LITE)
        self._node_ports.append(decl)
        assert self._node_name is not None
        self._hooks.on_interface(self._graph, self._node_name, decl)
        return self

    lite = i

    def is_(self, port: str) -> "TaskGraphBuilder":
        """``is "PORT"`` — declare an AXI-Stream port on the open node."""
        self._require(_State.IN_NODE)
        decl = PortDecl(port, PortKind.STREAM)
        self._node_ports.append(decl)
        assert self._node_name is not None
        self._hooks.on_interface(self._graph, self._node_name, decl)
        return self

    stream = is_

    def end_nodes(self) -> "TaskGraphBuilder":
        """``tg end_nodes`` — close the node list."""
        self._require(_State.NODES)
        if not self._graph.nodes:
            raise DslSyntaxError("node list is empty (grammar requires Node+)")
        self._state = _State.BETWEEN
        self._hooks.on_nodes_end(self._graph)
        return self

    # -- edges section ------------------------------------------------------
    def edges(self) -> "TaskGraphBuilder":
        """``tg edges`` — open the edge list."""
        self._require(_State.BETWEEN)
        self._state = _State.EDGES
        self._hooks.on_edges_begin(self._graph)
        return self

    def connect(self, node: str) -> "TaskGraphBuilder":
        """``tg connect "NODE"`` — attach NODE's AXI-Lite interface to the bus."""
        self._require(_State.EDGES)
        edge = ConnectEdge(node)
        self._graph.edges.append(edge)
        self._hooks.on_connect(self._graph, edge)
        return self

    def link(self, src: Endpoint) -> "TaskGraphBuilder":
        """``tg link SRC`` — open a stream link from *src*."""
        self._require(_State.EDGES)
        self._state = _State.IN_LINK
        self._link_src = src
        self._hooks.on_link_begin(self._graph, src)
        return self

    def to(self, dst: Endpoint) -> "TaskGraphBuilder":
        """``to DST`` — set the destination of the open link."""
        self._require(_State.IN_LINK)
        self._state = _State.IN_LINK_TO
        self._link_dst = dst
        return self

    def end_edges(self) -> "TaskGraphBuilder":
        """``tg end_edges`` — close the edge list and finish the program."""
        self._require(_State.EDGES)
        self._state = _State.DONE
        self._hooks.on_edges_end(self._graph)
        self._hooks.on_graph_end(self._graph)
        return self

    # -- shared ``end`` keyword ----------------------------------------------
    def end(self) -> "TaskGraphBuilder":
        """``end`` — closes whichever construct is open (node or link)."""
        if self._state is _State.IN_NODE:
            assert self._node_name is not None
            if not self._node_ports:
                raise DslSyntaxError(f"node {self._node_name!r} declares no interface")
            node = NodeDecl(self._node_name, tuple(self._node_ports))
            self._graph.nodes.append(node)
            self._node_name = None
            self._node_ports = []
            self._state = _State.NODES
            self._hooks.on_node_end(self._graph, node)
            return self
        if self._state is _State.IN_LINK_TO:
            assert self._link_src is not None and self._link_dst is not None
            edge = LinkEdge(self._link_src, self._link_dst)
            self._graph.edges.append(edge)
            self._link_src = None
            self._link_dst = None
            self._state = _State.EDGES
            self._hooks.on_link_end(self._graph, edge)
            return self
        raise DslSyntaxError("'end' with no open node or link")

    # -- result ---------------------------------------------------------------
    def graph(self, *, validate: bool = True) -> TgGraph:
        """Return the finished graph (after ``end_edges``)."""
        if self._state is not _State.DONE:
            raise DslSyntaxError(
                f"description is incomplete (builder state is {self._state.value!r})"
            )
        if validate:
            validate_graph(self._graph)
        return self._graph
