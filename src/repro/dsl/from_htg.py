"""Lower a partitioned HTG into a task-graph DSL description.

This implements the mapping of paper Section III: software nodes
disappear from the description; a hardware *task* becomes a node whose
function parameters are AXI-Lite ``i`` ports plus a ``connect`` edge;
a hardware *phase* is replaced by its dataflow actors as ``is``-port
nodes, internal channels become ``link`` edges and boundary channels
become links to/from ``'soc`` (reaching shared memory through DMA).
"""

from __future__ import annotations

from repro.dsl.ast import SOC, ConnectEdge, LinkEdge, NodeDecl, PortDecl, PortKind, TgGraph
from repro.dsl.validate import validate_graph
from repro.htg.model import HTG, Phase, Task
from repro.htg.partition import Partition
from repro.util.errors import DslValidationError


def graph_from_htg(htg: HTG, partition: Partition, *, name: str | None = None) -> TgGraph:
    """Build (and validate) the DSL graph for *htg* under *partition*."""
    partition.validate(htg)
    graph = TgGraph(name or htg.name)

    for node_name, node in htg.nodes.items():
        if not partition.is_hw(node_name):
            continue
        if isinstance(node, Task):
            ports = tuple(
                PortDecl(p, PortKind.LITE) for p in (*node.inputs, *node.outputs)
            )
            if not ports:
                raise DslValidationError(
                    f"hardware task {node_name!r} declares no parameters"
                )
            graph.nodes.append(NodeDecl(node.name, ports))
            graph.edges.append(ConnectEdge(node.name))
        elif isinstance(node, Phase):
            _lower_phase(graph, node)
    if graph.nodes:
        validate_graph(graph)
    return graph


def _lower_phase(graph: TgGraph, phase: Phase) -> None:
    for actor in phase.actors:
        if graph.has_node(actor.name):
            raise DslValidationError(
                f"actor name {actor.name!r} collides with another hardware node"
            )
        ports = tuple(
            PortDecl(p, PortKind.STREAM)
            for p in (*actor.stream_inputs, *actor.stream_outputs)
        )
        graph.nodes.append(NodeDecl(actor.name, ports))
    for ch in phase.channels:
        src = SOC if ch.describes_input() else (ch.src_actor, ch.src_port)
        dst = SOC if ch.describes_output() else (ch.dst_actor, ch.dst_port)
        graph.edges.append(LinkEdge(src, dst))


__all__ = ["graph_from_htg"]
