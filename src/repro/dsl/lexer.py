"""Lexer for the textual task-graph DSL (paper Listing 1).

Token kinds:

* ``KEYWORD`` — ``object extends App tg nodes end_nodes edges end_edges
  node end connect link to i is``
* ``IDENT``   — a bare word that is not a keyword (the project name in
  ``object otsu extends App``)
* ``STRING``  — double-quoted node/port names, e.g. ``"MUL"``
* ``SYMBOL``  — quoted Scala symbols; only ``'soc`` is legal
* punctuation — ``{ } ; ( ) ,``

Scala-style line comments (``//``) are skipped so example files can be
annotated.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.util.errors import DslSyntaxError, SourceLocation

KEYWORDS = frozenset(
    {
        "object",
        "extends",
        "App",
        "tg",
        "nodes",
        "end_nodes",
        "edges",
        "end_edges",
        "node",
        "end",
        "connect",
        "link",
        "to",
        "i",
        "is",
    }
)

PUNCT = frozenset("{};(),")


class TokKind(Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    STRING = "string"
    SYMBOL = "symbol"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    value: str
    loc: SourceLocation

    def is_kw(self, word: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.value == word

    def is_punct(self, ch: str) -> bool:
        return self.kind is TokKind.PUNCT and self.value == ch


def tokenize(text: str, filename: str = "<dsl>") -> list[Token]:
    """Tokenize *text*; raises :class:`DslSyntaxError` on illegal input."""
    tokens: list[Token] = []
    i, line, col = 0, 1, 1
    n = len(text)

    def loc() -> SourceLocation:
        return SourceLocation(line, col, filename)

    while i < n:
        c = text[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c.isspace():
            i += 1
            col += 1
            continue
        if text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c in PUNCT:
            tokens.append(Token(TokKind.PUNCT, c, loc()))
            i += 1
            col += 1
            continue
        if c == '"':
            start = loc()
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\n":
                    raise DslSyntaxError("unterminated string literal", start)
                j += 1
            if j >= n:
                raise DslSyntaxError("unterminated string literal", start)
            value = text[i + 1 : j]
            tokens.append(Token(TokKind.STRING, value, start))
            col += j + 1 - i
            i = j + 1
            continue
        if c == "'":
            start = loc()
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            value = text[i + 1 : j]
            if not value:
                raise DslSyntaxError("empty symbol after quote", start)
            tokens.append(Token(TokKind.SYMBOL, value, start))
            col += j - i
            i = j
            continue
        if c.isalpha() or c == "_":
            start = loc()
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = TokKind.KEYWORD if word in KEYWORDS else TokKind.IDENT
            tokens.append(Token(kind, word, start))
            col += j - i
            i = j
            continue
        raise DslSyntaxError(f"illegal character {c!r}", loc())

    tokens.append(Token(TokKind.EOF, "", loc()))
    return tokens
