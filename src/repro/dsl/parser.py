"""Recursive-descent parser for the textual task-graph DSL.

Implements the EBNF of Listing 1::

    DSL        := object <Project> extends App Graph
    Graph      := { Nodes Edges }
    Nodes      := tg nodes ; Node+ tg end_nodes ;
    Edges      := tg edges ; Edge* tg end_edges ;
    Node       := tg node <NodeName> Interface+ end ;
    Interface  := i <PortName> | is <PortName>
    Edge       := AXI-Lite | AXI-Stream
    AXI-Lite   := tg connect <Name> ;
    AXI-Stream := tg link Port to Port end ;
    Port       := 'soc | ( <NodeName> , <PortName> )

Two liberties w.r.t. the listing, both strictly additive: a trailing
``;`` is accepted (and in the paper's own Listing 4 every statement is
``;``-terminated), and the ``object ... extends App { ... }`` wrapper may
be omitted for fragments (the graph is then named ``anonymous``).

Parsing also drives an optional :class:`~repro.dsl.actions.ActionHooks`
instance, firing the same callbacks as the embedded builder, so that
"executing" a textual description coordinates the tool-flow exactly as
the Scala original does.
"""

from __future__ import annotations

from repro.dsl.actions import ActionHooks
from repro.dsl.ast import SOC, ConnectEdge, Endpoint, LinkEdge, NodeDecl, PortDecl, PortKind, TgGraph
from repro.dsl.lexer import TokKind, Token, tokenize
from repro.util.errors import DslSyntaxError


class _Parser:
    def __init__(self, tokens: list[Token], hooks: ActionHooks | None) -> None:
        self.tokens = tokens
        self.pos = 0
        self.hooks = hooks or ActionHooks()

    # -- token plumbing ---------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def expect_kw(self, word: str) -> Token:
        tok = self.peek()
        if not tok.is_kw(word):
            raise DslSyntaxError(f"expected keyword {word!r}, found {tok.value!r}", tok.loc)
        return self.advance()

    def expect_punct(self, ch: str) -> Token:
        tok = self.peek()
        if not tok.is_punct(ch):
            raise DslSyntaxError(f"expected {ch!r}, found {tok.value!r}", tok.loc)
        return self.advance()

    def expect_string(self, what: str) -> str:
        tok = self.peek()
        if tok.kind is not TokKind.STRING:
            raise DslSyntaxError(f"expected quoted {what}, found {tok.value!r}", tok.loc)
        self.advance()
        return tok.value

    def accept_punct(self, ch: str) -> bool:
        if self.peek().is_punct(ch):
            self.advance()
            return True
        return False

    # -- grammar ------------------------------------------------------------
    def parse_program(self) -> TgGraph:
        name = "anonymous"
        wrapped = False
        if self.peek().is_kw("object"):
            self.advance()
            tok = self.peek()
            # Any word (even a DSL keyword other than 'extends') can name
            # the project: the position is unambiguous.
            if tok.kind in (TokKind.IDENT, TokKind.STRING) or (
                tok.kind is TokKind.KEYWORD and tok.value != "extends"
            ):
                name = tok.value
                self.advance()
            else:
                raise DslSyntaxError(
                    f"expected project name after 'object', found {tok.value!r}", tok.loc
                )
            self.expect_kw("extends")
            self.expect_kw("App")
            self.expect_punct("{")
            wrapped = True
        graph = TgGraph(name)
        self.hooks.on_graph_begin(graph)
        self.parse_nodes(graph)
        self.parse_edges(graph)
        if wrapped:
            self.expect_punct("}")
        tok = self.peek()
        if tok.kind is not TokKind.EOF:
            raise DslSyntaxError(f"unexpected trailing input {tok.value!r}", tok.loc)
        self.hooks.on_graph_end(graph)
        return graph

    def parse_nodes(self, graph: TgGraph) -> None:
        self.expect_kw("tg")
        self.expect_kw("nodes")
        self.accept_punct(";")
        self.hooks.on_nodes_begin(graph)
        while True:
            tok = self.peek()
            if not tok.is_kw("tg"):
                raise DslSyntaxError(f"expected 'tg', found {tok.value!r}", tok.loc)
            nxt = self.tokens[self.pos + 1]
            if nxt.is_kw("end_nodes"):
                self.advance()
                self.advance()
                self.accept_punct(";")
                break
            self.parse_node(graph)
        if not graph.nodes:
            raise DslSyntaxError("node list is empty (grammar requires Node+)", tok.loc)
        self.hooks.on_nodes_end(graph)

    def parse_node(self, graph: TgGraph) -> None:
        self.expect_kw("tg")
        tok = self.expect_kw("node")
        name = self.expect_string("node name")
        self.hooks.on_node_begin(graph, name)
        ports: list[PortDecl] = []
        while True:
            tok = self.peek()
            if tok.is_kw("i") or tok.is_kw("is"):
                kind = PortKind.LITE if tok.value == "i" else PortKind.STREAM
                self.advance()
                pname = self.expect_string("port name")
                port = PortDecl(pname, kind)
                ports.append(port)
                self.hooks.on_interface(graph, name, port)
                continue
            break
        self.expect_kw("end")
        self.accept_punct(";")
        if not ports:
            raise DslSyntaxError(f"node {name!r} declares no interface", tok.loc)
        node = NodeDecl(name, tuple(ports))
        graph.nodes.append(node)
        self.hooks.on_node_end(graph, node)

    def parse_edges(self, graph: TgGraph) -> None:
        self.expect_kw("tg")
        self.expect_kw("edges")
        self.accept_punct(";")
        self.hooks.on_edges_begin(graph)
        while True:
            tok = self.peek()
            if not tok.is_kw("tg"):
                raise DslSyntaxError(f"expected 'tg', found {tok.value!r}", tok.loc)
            nxt = self.tokens[self.pos + 1]
            if nxt.is_kw("end_edges"):
                self.advance()
                self.advance()
                self.accept_punct(";")
                break
            if nxt.is_kw("connect"):
                self.parse_connect(graph)
            elif nxt.is_kw("link"):
                self.parse_link(graph)
            else:
                raise DslSyntaxError(
                    f"expected 'connect' or 'link', found {nxt.value!r}", nxt.loc
                )
        self.hooks.on_edges_end(graph)

    def parse_connect(self, graph: TgGraph) -> None:
        self.expect_kw("tg")
        self.expect_kw("connect")
        name = self.expect_string("node name")
        self.accept_punct(";")
        edge = ConnectEdge(name)
        graph.edges.append(edge)
        self.hooks.on_connect(graph, edge)

    def parse_link(self, graph: TgGraph) -> None:
        self.expect_kw("tg")
        self.expect_kw("link")
        src = self.parse_port()
        self.hooks.on_link_begin(graph, src)
        self.expect_kw("to")
        dst = self.parse_port()
        self.expect_kw("end")
        self.accept_punct(";")
        edge = LinkEdge(src, dst)
        graph.edges.append(edge)
        self.hooks.on_link_end(graph, edge)

    def parse_port(self) -> Endpoint:
        tok = self.peek()
        if tok.kind is TokKind.SYMBOL:
            if tok.value != "soc":
                raise DslSyntaxError(f"unknown symbol '{tok.value} (only 'soc exists)", tok.loc)
            self.advance()
            return SOC
        if tok.is_punct("("):
            self.advance()
            node = self.expect_string("node name")
            self.expect_punct(",")
            port = self.expect_string("port name")
            self.expect_punct(")")
            return (node, port)
        raise DslSyntaxError(
            f"expected 'soc or (node, port), found {tok.value!r}", tok.loc
        )


def parse_dsl(
    text: str, *, filename: str = "<dsl>", hooks: ActionHooks | None = None
) -> TgGraph:
    """Parse (and, via *hooks*, "execute") a textual DSL program."""
    return _Parser(tokenize(text, filename), hooks).parse_program()
