"""The task-graph DSL — the paper's primary contribution (Section III).

Two equivalent front-ends are provided:

* a **textual** front-end implementing the EBNF of Listing 1
  (:func:`parse_dsl`), accepting exactly the concrete syntax shown in the
  paper's listings (``tg nodes; tg node "MUL" i "A" ... end; ...``);
* an **embedded** front-end (:class:`TaskGraphBuilder`) where every DSL
  keyword is an executable method, mirroring the Scala implementation in
  which "each one of the keywords defined in the DSL is an executable
  function" (Section IV-B).  Keyword execution fires
  :class:`ActionHooks` callbacks so a tool-flow can coordinate HLS and
  system integration *while the description is being executed*.

Both front-ends produce the same :class:`TgGraph` AST, which
:func:`validate_graph` checks and :func:`emit_dsl` prints back to text
(round-trip).
"""

from repro.dsl.actions import ActionHooks, RecordingHooks
from repro.dsl.ast import (
    SOC,
    ConnectEdge,
    Endpoint,
    LinkEdge,
    NodeDecl,
    PortDecl,
    PortKind,
    TgGraph,
)
from repro.dsl.builder import TaskGraphBuilder
from repro.dsl.codegen import emit_dsl
from repro.dsl.from_htg import graph_from_htg
from repro.dsl.parser import parse_dsl
from repro.dsl.serialize import graph_from_dict, graph_to_dict
from repro.dsl.validate import validate_graph

__all__ = [
    "SOC",
    "ActionHooks",
    "ConnectEdge",
    "Endpoint",
    "LinkEdge",
    "NodeDecl",
    "PortDecl",
    "PortKind",
    "RecordingHooks",
    "TaskGraphBuilder",
    "TgGraph",
    "emit_dsl",
    "graph_from_dict",
    "graph_from_htg",
    "graph_to_dict",
    "parse_dsl",
    "validate_graph",
]
