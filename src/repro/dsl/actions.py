"""Action hooks fired while a DSL description is parsed or built.

The paper's key implementation idea (Section IV-B) is that every DSL
keyword is an *executable function*: ``nodes`` creates a new Vivado
project, ``node`` opens a Vivado HLS project, ``i``/``is`` append
interface directives, ``end`` runs HLS synthesis, ``connect``/``link``
emit integration commands and ``end_edges`` executes the project tcl up
to bitstream generation and then triggers API generation.

:class:`ActionHooks` is the callback surface those keywords fire into.
The default implementation does nothing (pure parsing);
:class:`~repro.flow.orchestrator.FlowHooks` implements the full
tool-flow; :class:`RecordingHooks` records the call sequence for tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.dsl.ast import ConnectEdge, Endpoint, LinkEdge, NodeDecl, PortDecl, TgGraph


class ActionHooks:
    """No-op base class; override the callbacks the flow cares about.

    The callback order for a well-formed program is::

        on_graph_begin
          on_nodes_begin            # step 1: create the Vivado project
            (on_node_begin          # step 2: create a Vivado HLS project
             on_interface*          # step 3: add interface directives
             on_node_end)+          # step 4: run HLS synthesis
          on_nodes_end
          on_edges_begin
            (on_connect             # step 5: attach AXI-Lite to the bus
             | on_link_begin        # step 6: new Link instance
               on_link_end)*        # step 7: connect AXI-Stream endpoints
          on_edges_end              # step 8: run project tcl + API generation
        on_graph_end
    """

    def on_graph_begin(self, graph: "TgGraph") -> None:
        """The program header was seen (``object <name> extends App {``)."""

    def on_nodes_begin(self, graph: "TgGraph") -> None:
        """``tg nodes`` — the tool creates a new Vivado project."""

    def on_node_begin(self, graph: "TgGraph", name: str) -> None:
        """``tg node "NAME"`` — a Vivado HLS project is created for NAME."""

    def on_interface(self, graph: "TgGraph", node: str, port: "PortDecl") -> None:
        """``i "P"`` / ``is "P"`` — an interface directive is appended."""

    def on_node_end(self, graph: "TgGraph", node: "NodeDecl") -> None:
        """``end`` of a node — HLS synthesis of the core is invoked."""

    def on_nodes_end(self, graph: "TgGraph") -> None:
        """``tg end_nodes`` — all accelerators are synthesized."""

    def on_edges_begin(self, graph: "TgGraph") -> None:
        """``tg edges`` — system-integration command stream opens."""

    def on_connect(self, graph: "TgGraph", edge: "ConnectEdge") -> None:
        """``tg connect "NODE"`` — AXI-Lite attachment command is emitted."""

    def on_link_begin(self, graph: "TgGraph", src: "Endpoint") -> None:
        """``tg link SRC`` — a new Link instance is created."""

    def on_link_end(self, graph: "TgGraph", edge: "LinkEdge") -> None:
        """``to DST end`` — the AXI-Stream connection command is emitted."""

    def on_edges_end(self, graph: "TgGraph") -> None:
        """``tg end_edges`` — the project tcl runs up to bitstream, then
        API generation starts."""

    def on_graph_end(self, graph: "TgGraph") -> None:
        """The closing ``}`` of the program was seen."""


class RecordingHooks(ActionHooks):
    """Records every callback as ``(event, detail)`` tuples — test helper."""

    def __init__(self) -> None:
        self.events: list[tuple[str, object]] = []

    def _rec(self, event: str, detail: object = None) -> None:
        self.events.append((event, detail))

    def on_graph_begin(self, graph: "TgGraph") -> None:
        self._rec("graph_begin", graph.name)

    def on_nodes_begin(self, graph: "TgGraph") -> None:
        self._rec("nodes_begin")

    def on_node_begin(self, graph: "TgGraph", name: str) -> None:
        self._rec("node_begin", name)

    def on_interface(self, graph: "TgGraph", node: str, port: "PortDecl") -> None:
        self._rec("interface", (node, port.name, port.kind.value))

    def on_node_end(self, graph: "TgGraph", node: "NodeDecl") -> None:
        self._rec("node_end", node.name)

    def on_nodes_end(self, graph: "TgGraph") -> None:
        self._rec("nodes_end")

    def on_edges_begin(self, graph: "TgGraph") -> None:
        self._rec("edges_begin")

    def on_connect(self, graph: "TgGraph", edge: "ConnectEdge") -> None:
        self._rec("connect", edge.node)

    def on_link_begin(self, graph: "TgGraph", src: "Endpoint") -> None:
        self._rec("link_begin", src)

    def on_link_end(self, graph: "TgGraph", edge: "LinkEdge") -> None:
        self._rec("link_end", (edge.src, edge.dst))

    def on_edges_end(self, graph: "TgGraph") -> None:
        self._rec("edges_end")

    def on_graph_end(self, graph: "TgGraph") -> None:
        self._rec("graph_end", graph.name)

    def names(self) -> list[str]:
        """Just the event names, in order."""
        return [e for e, _ in self.events]
