"""Versioned Vivado tcl backends.

The paper reports porting the tool from Vivado 2014.2 to 2015.3 "in less
than a day" by "upgrading the versions of the cores and updating a few
commands" (Section VI-C).  The backend hierarchy reproduces that
structure: :class:`VivadoBackend` holds the command grammar,
:class:`Vivado2014_2` and :class:`Vivado2015_3` override only the IP
version map and the handful of commands that changed — the diff between
the two subclasses *is* the porting effort.
"""

from __future__ import annotations

from repro.soc.address_map import AddressRange
from repro.soc.blockdesign import Connection
from repro.soc.ip import IpCore, PinKind
from repro.tcl.script import TclScript

#: Pin kinds carried by ``connect_bd_intf_net`` (interface nets); the
#: rest (clock/reset/interrupt) use plain ``connect_bd_net``.
_INTF_KINDS = frozenset(
    {
        PinKind.AXI_LITE_MASTER,
        PinKind.AXI_LITE_SLAVE,
        PinKind.AXI_FULL_MASTER,
        PinKind.AXI_FULL_SLAVE,
        PinKind.AXIS_MASTER,
        PinKind.AXIS_SLAVE,
    }
)


class VivadoBackend:
    """Common tcl grammar; subclasses pin down a Vivado release."""

    version = "base"
    #: IP name -> version suffix used in create_bd_cell vlnv strings.
    ip_versions: dict[str, str] = {}
    #: Whether create_bd_cell calls are wrapped in startgroup/endgroup.
    uses_groups = False
    #: Whether the flow refreshes compile order after wrapper generation.
    update_compile_order = False

    # -- helpers ----------------------------------------------------------
    def vlnv_of(self, core: IpCore) -> str:
        vendor_lib_name, _, _version = core.vlnv.rpartition(":")
        _, _, ip_name = vendor_lib_name.rpartition(":")
        version = self.ip_versions.get(ip_name)
        if version is None:
            return core.vlnv
        return f"{vendor_lib_name}:{version}"

    # -- project-level commands ------------------------------------------------
    def create_project(self, script: TclScript, name: str, part: str) -> None:
        script.add("create_project", name, f"./{name}", "-part", part)

    def add_ip_repo(self, script: TclScript, path: str) -> None:
        script.add(
            "set_property",
            "ip_repo_paths",
            f"{{{path}}}",
            "[current_project]",
        )
        script.add("update_ip_catalog")

    def create_bd(self, script: TclScript, name: str) -> None:
        script.add("create_bd_design", f'"{name}"')

    # -- cell / net commands -------------------------------------------------------
    def instantiate_cell(self, script: TclScript, core: IpCore) -> None:
        if self.uses_groups:
            script.add("startgroup")
        script.add(
            "create_bd_cell", "-type", "ip", "-vlnv", self.vlnv_of(core), core.name
        )
        if core.params:
            entries = " ".join(
                f"CONFIG.{k} {{{v}}}" for k, v in sorted(core.params.items())
            )
            script.add(
                "set_property",
                "-dict",
                f"[list {entries}]",
                f"[get_bd_cells {core.name}]",
            )
        if self.uses_groups:
            script.add("endgroup")

    def connect(self, script: TclScript, conn: Connection, kind: PinKind) -> None:
        if kind in _INTF_KINDS:
            script.add(
                "connect_bd_intf_net",
                f"[get_bd_intf_pins {conn.src_cell}/{conn.src_pin}]",
                f"[get_bd_intf_pins {conn.dst_cell}/{conn.dst_pin}]",
            )
        else:
            script.add(
                "connect_bd_net",
                f"[get_bd_pins {conn.src_cell}/{conn.src_pin}]",
                f"[get_bd_pins {conn.dst_cell}/{conn.dst_pin}]",
            )

    def assign_address(self, script: TclScript, rng: AddressRange) -> None:
        script.add(
            "assign_bd_address",
            "-offset",
            f"0x{rng.base:08X}",
            "-range",
            f"{rng.size // 1024}K",
            f"[get_bd_addr_segs {rng.name}/Reg]",
        )

    # -- implementation flow ----------------------------------------------------------
    def finalize(self, script: TclScript, bd_name: str) -> None:
        script.add("validate_bd_design")
        script.add("save_bd_design")
        script.add(
            "make_wrapper",
            "-files",
            f"[get_files {bd_name}.bd]",
            "-top",
        )
        if self.update_compile_order:
            script.add("update_compile_order", "-fileset", "sources_1")
        script.add("launch_runs", "synth_1", "-jobs", "4")
        script.add("wait_on_run", "synth_1")
        script.add("launch_runs", "impl_1", "-to_step", "write_bitstream", "-jobs", "4")
        script.add("wait_on_run", "impl_1")


class Vivado2014_2(VivadoBackend):
    """The release the tool was first developed against."""

    version = "2014.2"
    ip_versions = {
        "processing_system7": "5.4",
        "axi_dma": "7.1",
        "axi_interconnect": "2.1",
        "proc_sys_reset": "5.0",
        "xlconcat": "2.1",
    }
    uses_groups = True
    update_compile_order = False


class Vivado2015_3(VivadoBackend):
    """The release the paper ported to in under a day (Section VI-C)."""

    version = "2015.3"
    ip_versions = {
        "processing_system7": "5.5",
        "axi_dma": "7.1",
        "axi_interconnect": "2.1",
        "proc_sys_reset": "5.0",
        "xlconcat": "2.1",
    }
    uses_groups = False
    update_compile_order = True
