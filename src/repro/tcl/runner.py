"""A mini tcl interpreter executing generated Vivado scripts.

This closes the loop the real flow closes inside Vivado: the script
produced by :func:`~repro.tcl.generate.generate_system_tcl` is parsed
command by command and replayed against a fresh
:class:`~repro.soc.blockdesign.BlockDesign`; ``validate_bd_design`` runs
the DRC and ``wait_on_run impl_1`` runs the simulated implementation,
yielding a bitstream.  The integration tests assert the rebuilt design's
bitstream digest equals the integrator's — the generated tcl is machine-
checked, not just pretty-printed.

Cells are materialized through an *IP repository*: vlnv (version
ignored) → factory(name, params).  Built-in Xilinx IP is pre-registered;
HLS cores are registered by the flow after ``export_design`` exactly as
Vivado's ``update_ip_catalog`` would pick them up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.soc.blockdesign import BlockDesign
from repro.soc.dma import axi_dma
from repro.soc.interconnect import axi_interconnect, axis_interrupt_concat
from repro.soc.ip import IpCore, proc_sys_reset
from repro.soc.synthesis import Bitstream, run_synthesis
from repro.soc.validate import run_drc
from repro.soc.zynq import ps7_from_params
from repro.util.errors import TclError

Factory = Callable[[str, dict[str, object]], IpCore]


def tcl_words(line: str) -> list[str]:
    """Split a tcl command line into words, respecting [] and {} nesting."""
    words: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in line:
        if ch in "[{":
            depth += 1
            current.append(ch)
        elif ch in "]}":
            depth -= 1
            if depth < 0:
                raise TclError(f"unbalanced brackets in line: {line!r}")
            current.append(ch)
        elif ch.isspace() and depth == 0:
            if current:
                words.append("".join(current))
                current = []
        else:
            current.append(ch)
    if depth != 0:
        raise TclError(f"unbalanced brackets in line: {line!r}")
    if current:
        words.append("".join(current))
    return words


def _strip_braces(word: str) -> str:
    if word.startswith("{") and word.endswith("}"):
        return word[1:-1]
    if word.startswith('"') and word.endswith('"'):
        return word[1:-1]
    return word


def _parse_value(text: str) -> object:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_config_dict(word: str) -> dict[str, object]:
    """Parse ``[list CONFIG.k {v} CONFIG.k2 {v2} ...]``."""
    inner = word
    if inner.startswith("[") and inner.endswith("]"):
        inner = inner[1:-1]
    parts = tcl_words(inner)
    if not parts or parts[0] != "list":
        raise TclError(f"expected [list ...], found {word!r}")
    entries = parts[1:]
    if len(entries) % 2 != 0:
        raise TclError(f"odd CONFIG list: {word!r}")
    params: dict[str, object] = {}
    for key, value in zip(entries[::2], entries[1::2]):
        if not key.startswith("CONFIG."):
            raise TclError(f"expected CONFIG.<name>, found {key!r}")
        params[key[len("CONFIG.") :]] = _parse_value(_strip_braces(value))
    return params


def _pin_ref(word: str, getter: str) -> tuple[str, str]:
    """Parse ``[get_bd_(intf_)pins cell/pin]``."""
    if not (word.startswith(f"[{getter} ") and word.endswith("]")):
        raise TclError(f"expected [{getter} ...], found {word!r}")
    path = word[len(getter) + 2 : -1].strip()
    cell, _, pin = path.partition("/")
    if not pin:
        raise TclError(f"malformed pin path {path!r}")
    return cell, pin


def _default_repo() -> dict[str, Factory]:
    def make_dma(name: str, params: dict[str, object]) -> IpCore:
        return axi_dma(
            name,
            mm2s=bool(int(params.get("c_include_mm2s", 1))),
            s2mm=bool(int(params.get("c_include_s2mm", 1))),
            mm2s_width=int(params.get("c_m_axis_mm2s_tdata_width", 32)),
            s2mm_width=int(params.get("c_s_axis_s2mm_tdata_width", 32)),
        )

    def make_interconnect(name: str, params: dict[str, object]) -> IpCore:
        return axi_interconnect(
            name,
            num_masters_in=int(params["NUM_SI"]),
            num_slaves_out=int(params["NUM_MI"]),
            lite=params.get("PROTOCOL", "AXI4LITE") == "AXI4LITE",
        )

    return {
        "xilinx.com:ip:processing_system7": ps7_from_params,
        "xilinx.com:ip:axi_dma": make_dma,
        "xilinx.com:ip:axi_interconnect": make_interconnect,
        "xilinx.com:ip:proc_sys_reset": lambda name, params: proc_sys_reset(name),
        "xilinx.com:ip:xlconcat": lambda name, params: axis_interrupt_concat(
            name, int(params["NUM_PORTS"])
        ),
    }


@dataclass
class RunnerResult:
    design: BlockDesign
    bitstream: Bitstream | None
    flow_steps: list[str] = field(default_factory=list)


@dataclass
class _PendingCell:
    vlnv: str
    name: str
    params: dict[str, object] = field(default_factory=dict)


class TclRunner:
    """Executes a generated tcl script against the repro.soc model."""

    def __init__(self) -> None:
        self.repo: dict[str, Factory] = _default_repo()

    def register_ip(self, vlnv_prefix: str, factory: Factory) -> None:
        """Add an IP to the catalog (e.g. an exported HLS core)."""
        self.repo[vlnv_prefix] = factory

    # -- execution -----------------------------------------------------------
    def execute(self, text: str) -> RunnerResult:
        design: BlockDesign | None = None
        part = "xc7z020clg484-1"
        pending: dict[str, _PendingCell] = {}
        flow_steps: list[str] = []
        bitstream: Bitstream | None = None
        validated = False

        def materialize() -> None:
            assert design is not None
            for cell in pending.values():
                key = cell.vlnv.rpartition(":")[0]
                factory = self.repo.get(key)
                if factory is None:
                    raise TclError(f"no IP in the catalog matches {cell.vlnv!r}")
                design.add_cell(factory(cell.name, cell.params))
            pending.clear()

        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            words = tcl_words(line)
            cmd, args = words[0], words[1:]

            if cmd == "create_project":
                if "-part" in args:
                    part = args[args.index("-part") + 1]
            elif cmd in (
                "update_ip_catalog",
                "startgroup",
                "endgroup",
                "save_bd_design",
                "open_project",
                "open_solution",
                "set_top",
                "add_files",
                "set_part",
                "create_clock",
                "csynth_design",
                "export_design",
                "exit",
                "update_compile_order",
            ):
                flow_steps.append(cmd)
            elif cmd == "create_bd_design":
                design = BlockDesign(_strip_braces(args[0]), part=part)
            elif cmd == "create_bd_cell":
                if design is None:
                    raise TclError("create_bd_cell before create_bd_design")
                vlnv = args[args.index("-vlnv") + 1]
                name = args[-1]
                pending[name] = _PendingCell(vlnv, name)
            elif cmd == "set_property":
                if args[0] == "-dict":
                    params = _parse_config_dict(args[1])
                    target = args[2]
                    if target.startswith("[get_bd_cells "):
                        cell_name = target[len("[get_bd_cells ") : -1].strip()
                        if cell_name not in pending:
                            raise TclError(
                                f"set_property on unknown/materialized cell {cell_name!r}"
                            )
                        pending[cell_name].params.update(params)
                # other set_property forms (ip_repo_paths) are no-ops
            elif cmd == "connect_bd_intf_net":
                materialize()
                assert design is not None
                a = _pin_ref(args[0], "get_bd_intf_pins")
                b = _pin_ref(args[1], "get_bd_intf_pins")
                self._connect_either(design, a, b)
            elif cmd == "connect_bd_net":
                materialize()
                assert design is not None
                a = _pin_ref(args[0], "get_bd_pins")
                b = _pin_ref(args[1], "get_bd_pins")
                self._connect_either(design, a, b)
            elif cmd == "assign_bd_address":
                materialize()
                assert design is not None
                offset = int(args[args.index("-offset") + 1], 16)
                rng_text = args[args.index("-range") + 1]
                size = int(rng_text.rstrip("KMG")) * {
                    "K": 1024,
                    "M": 1024 * 1024,
                    "G": 1024**3,
                }[rng_text[-1]]
                seg = args[-1]
                cell_name = _pin_ref(seg, "get_bd_addr_segs")[0]
                design.address_map.assign_fixed(cell_name, offset, size)
            elif cmd == "validate_bd_design":
                materialize()
                assert design is not None
                run_drc(design)
                validated = True
                flow_steps.append(cmd)
            elif cmd in ("make_wrapper", "launch_runs"):
                flow_steps.append(" ".join(words))
            elif cmd == "wait_on_run":
                flow_steps.append(" ".join(words))
                if args and args[0] == "impl_1":
                    if design is None or not validated:
                        raise TclError("implementation launched before validation")
                    bitstream = run_synthesis(design)
            elif cmd.startswith("set_directive_"):
                flow_steps.append(cmd)
            else:
                raise TclError(f"unknown tcl command {cmd!r}")

        if design is None:
            raise TclError("script created no block design")
        materialize()
        return RunnerResult(design, bitstream, flow_steps)

    @staticmethod
    def _connect_either(
        design: BlockDesign, a: tuple[str, str], b: tuple[str, str]
    ) -> None:
        """Connect with driver-order detection (Vivado accepts either order)."""
        pin_a = design.cell(a[0]).pin(a[1])
        if pin_a.is_driver():
            design.connect(a[0], a[1], b[0], b[1])
        else:
            design.connect(b[0], b[1], a[0], a[1])
