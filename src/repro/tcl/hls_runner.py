"""Executor for generated Vivado-HLS project scripts.

The system-side tcl is machine-checked by :class:`~repro.tcl.runner.TclRunner`;
this module does the same for the per-core HLS scripts: it interprets
``open_project`` / ``add_files`` / ``set_top`` / ``set_directive_*`` /
``csynth_design`` against a materialized workspace and re-runs the HLS
engine.  The rebuilt core must match the original bit-for-bit (same
Verilog, same resources, same latency) — asserted in the integration
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.hls.interfaces import Directive, directive_from_tcl
from repro.hls.project import SynthesisResult, synthesize_function
from repro.util.errors import TclError


@dataclass
class HlsRunResult:
    project: str
    top: str
    result: SynthesisResult
    directives: list[Directive]


class HlsTclRunner:
    """Executes one HLS project script relative to *root* on disk.

    With *cache* (a :class:`repro.flow.buildcache.BuildCache`) the
    re-run is content-addressed like the flow itself: a script whose
    source + directives digest hits the cache returns the stored
    :class:`SynthesisResult` instead of re-running the HLS engine —
    the replay path of a materialized workspace stays warm too.
    """

    def __init__(
        self, root: str | Path, *, cache=None, backend_version: str = ""
    ) -> None:
        self.root = Path(root)
        self.cache = cache
        self.backend_version = backend_version

    def _synthesize(
        self, sources: list[str], top: str, directives: list[Directive]
    ) -> SynthesisResult:
        if self.cache is None:
            return synthesize_function("\n".join(sources), top, directives)
        from repro.flow.buildcache import cache_key  # lazy: avoid layer cycle
        from repro.hls.interfaces import directives_file

        key = cache_key(
            top, "\n".join(sources), directives_file(directives), self.backend_version
        )
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        result = synthesize_function("\n".join(sources), top, directives)
        self.cache.put(key, result)
        return result

    def execute(self, script_text: str) -> HlsRunResult:
        project: str | None = None
        top: str | None = None
        sources: list[str] = []
        directives: list[Directive] = []
        synthesized: HlsRunResult | None = None

        for raw in script_text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            words = line.split()
            cmd = words[0]
            if cmd == "open_project":
                project = words[1]
            elif cmd == "set_top":
                top = words[1]
            elif cmd == "add_files":
                path = self.root / words[1]
                if not path.exists():
                    raise TclError(f"add_files: {path} does not exist")
                sources.append(path.read_text())
            elif cmd.startswith("set_directive_"):
                directives.append(directive_from_tcl(line))
            elif cmd == "csynth_design":
                if top is None or not sources:
                    raise TclError("csynth_design before set_top/add_files")
                result = self._synthesize(sources, top, directives)
                synthesized = HlsRunResult(
                    project or top, top, result, list(directives)
                )
            elif cmd in (
                "open_solution",
                "set_part",
                "create_clock",
                "export_design",
                "exit",
            ):
                continue
            else:
                raise TclError(f"unknown HLS tcl command {cmd!r}")
        if synthesized is None:
            raise TclError("script never ran csynth_design")
        return synthesized
