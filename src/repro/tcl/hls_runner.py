"""Executor for generated Vivado-HLS project scripts.

The system-side tcl is machine-checked by :class:`~repro.tcl.runner.TclRunner`;
this module does the same for the per-core HLS scripts: it interprets
``open_project`` / ``add_files`` / ``set_top`` / ``set_directive_*`` /
``csynth_design`` against a materialized workspace and re-runs the HLS
engine.  The rebuilt core must match the original bit-for-bit (same
Verilog, same resources, same latency) — asserted in the integration
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.hls.interfaces import Directive, directive_from_tcl
from repro.hls.project import SynthesisResult, synthesize_function
from repro.util.errors import TclError


@dataclass
class HlsRunResult:
    project: str
    top: str
    result: SynthesisResult
    directives: list[Directive]


class HlsTclRunner:
    """Executes one HLS project script relative to *root* on disk."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def execute(self, script_text: str) -> HlsRunResult:
        project: str | None = None
        top: str | None = None
        sources: list[str] = []
        directives: list[Directive] = []
        synthesized: HlsRunResult | None = None

        for raw in script_text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            words = line.split()
            cmd = words[0]
            if cmd == "open_project":
                project = words[1]
            elif cmd == "set_top":
                top = words[1]
            elif cmd == "add_files":
                path = self.root / words[1]
                if not path.exists():
                    raise TclError(f"add_files: {path} does not exist")
                sources.append(path.read_text())
            elif cmd.startswith("set_directive_"):
                directives.append(directive_from_tcl(line))
            elif cmd == "csynth_design":
                if top is None or not sources:
                    raise TclError("csynth_design before set_top/add_files")
                result = synthesize_function("\n".join(sources), top, directives)
                synthesized = HlsRunResult(
                    project or top, top, result, list(directives)
                )
            elif cmd in (
                "open_solution",
                "set_part",
                "create_clock",
                "export_design",
                "exit",
            ):
                continue
            else:
                raise TclError(f"unknown HLS tcl command {cmd!r}")
        if synthesized is None:
            raise TclError("script never ran csynth_design")
        return synthesized
