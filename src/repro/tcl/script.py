"""tcl script model: an ordered command list with code-size metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.text import count_chars, count_lines


@dataclass(frozen=True)
class TclCommand:
    """One tcl command; args are pre-rendered words (may contain ``[...]``)."""

    name: str
    args: tuple[str, ...] = ()

    def render(self) -> str:
        return " ".join((self.name, *self.args)) if self.args else self.name


@dataclass
class TclScript:
    """An ordered list of commands plus optional comment lines."""

    commands: list[TclCommand] = field(default_factory=list)
    header: str = ""

    def add(self, name: str, *args: str) -> "TclScript":
        self.commands.append(TclCommand(name, tuple(args)))
        return self

    def comment(self, text: str) -> "TclScript":
        self.commands.append(TclCommand(f"# {text}"))
        return self

    def render(self) -> str:
        lines = []
        if self.header:
            lines.extend(f"# {ln}" for ln in self.header.splitlines())
        lines.extend(c.render() for c in self.commands)
        return "\n".join(lines) + "\n"

    # -- code-size metrics (Discussion-section comparison) -----------------
    def lines_of_code(self) -> int:
        """Non-blank, non-comment lines."""
        return sum(
            1
            for ln in self.render().splitlines()
            if ln.strip() and not ln.lstrip().startswith("#")
        )

    def characters(self) -> int:
        """Non-whitespace characters of non-comment lines."""
        return sum(
            count_chars(ln)
            for ln in self.render().splitlines()
            if ln.strip() and not ln.lstrip().startswith("#")
        )

    def total_lines(self) -> int:
        return count_lines(self.render())
