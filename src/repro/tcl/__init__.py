"""tcl generation and interpretation.

The paper's tool ultimately *is* a tcl generator: the Scala program
emits the scripts Vivado HLS and Vivado Design Suite execute.  This
package provides

* :class:`TclScript` — a command-list model with code-size metrics (the
  Discussion-section comparison is LoC/characters of this text vs the DSL);
* versioned backends (:class:`Vivado2014_2`, :class:`Vivado2015_3`)
  reproducing the paper's claim that porting across Vivado versions only
  touches the backend (core versions + a few command changes);
* :func:`generate_system_tcl` — block-design script for an integrated
  system; :func:`generate_hls_tcl` — the per-core Vivado HLS script;
* :class:`TclRunner` — a mini tcl interpreter that executes a generated
  script against the :mod:`repro.soc` model, validating the scripts
  end-to-end (the rebuilt design's bitstream digest must equal the
  integrator's).
"""

from repro.tcl.backends import Vivado2014_2, Vivado2015_3, VivadoBackend
from repro.tcl.generate import generate_hls_tcl, generate_system_tcl
from repro.tcl.hls_runner import HlsTclRunner
from repro.tcl.runner import TclRunner
from repro.tcl.script import TclCommand, TclScript

__all__ = [
    "HlsTclRunner",
    "TclCommand",
    "TclRunner",
    "TclScript",
    "Vivado2014_2",
    "Vivado2015_3",
    "VivadoBackend",
    "generate_hls_tcl",
    "generate_system_tcl",
]
