"""repro — a pure-Python reproduction of "Scala-based Domain-Specific
Language for Creating Accelerator-based SoCs" (Durelli et al., IPPS 2016).

The package rebuilds the paper's entire stack with no EDA tools or
hardware: the task-graph DSL (textual + embedded), a from-scratch HLS
engine, the Zynq block-design integrator with versioned tcl backends and
a tcl interpreter, the generated software layer (APIs, device tree, boot
files), a discrete-event SoC simulator, the Otsu case study with the
four Table-I architectures, and a DSE extension.

Quick start::

    from repro import run_flow, build_otsu_app, simulate_application

    app = build_otsu_app(4)                       # Table I, Arch4
    flow = run_flow(app.dsl_graph(), app.c_sources,
                    extra_directives=app.extra_directives)
    report = simulate_application(app.htg, app.partition,
                                  app.behaviors, {}, system=flow.system)

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured numbers.
"""

from repro.apps import build_otsu_app, synthetic_scene
from repro.dsl import SOC, TaskGraphBuilder, emit_dsl, graph_from_htg, parse_dsl
from repro.flow import FlowConfig, materialize, run_flow, sdsoc_flow
from repro.hls import HlsProject, synthesize_function
from repro.htg import HTG, Actor, Partition, Phase, StreamChannel, Task
from repro.sim import simulate_application
from repro.sim.runtime import Behavior
from repro.soc import integrate, run_synthesis
from repro.tcl import TclRunner, generate_system_tcl

__version__ = "1.0.0"

__all__ = [
    "Actor",
    "Behavior",
    "FlowConfig",
    "HTG",
    "HlsProject",
    "Partition",
    "Phase",
    "SOC",
    "StreamChannel",
    "Task",
    "TaskGraphBuilder",
    "TclRunner",
    "__version__",
    "build_otsu_app",
    "emit_dsl",
    "generate_system_tcl",
    "graph_from_htg",
    "integrate",
    "materialize",
    "parse_dsl",
    "run_flow",
    "run_synthesis",
    "sdsoc_flow",
    "simulate_application",
    "synthesize_function",
    "synthetic_scene",
]
