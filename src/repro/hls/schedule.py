"""Operation scheduling: ASAP with operator chaining + resource-constrained
list scheduling, per basic block.

Timing model
------------
Each opcode is either *combinational* (latency 0 cycles, a propagation
delay in ns that chains within a clock period) or *sequential* (a
registered unit with a pipeline latency in cycles).  The default clock
is 10 ns (100 MHz — the Zynq PL clock the paper's systems use).

Sequential units belong to a *resource class* with a per-function
instance limit (e.g. one integer divider); a unit is busy for
``unit_ii`` cycles per operation (1 for pipelined units, = latency for
the iterative divider and square root).

Dependences
-----------
Data edges come from operand production; storage hazards order
``vread``/``vwrite`` on the same variable slot and ``load``/``store`` on
the same array (RAW, WAR, WAW; loads may reorder with loads).  The block
terminator is scheduled after every other op.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hls.ir import Block, Function, Op
from repro.util.errors import ScheduleError

CLOCK_NS = 10.0
#: Register setup margin: a sequential unit can consume a combinational
#: result produced in the same cycle if it lands this early (ns).
SETUP_NS = 1.0


@dataclass(frozen=True)
class OpTiming:
    """Latency model of one opcode."""

    latency: int  # cycles; 0 = combinational
    delay_ns: float = 0.0  # propagation delay when combinational
    resource: str | None = None  # resource class for limited units
    unit_ii: int = 1  # cycles the unit stays busy per op


#: Default per-opcode timing.  Float ops are looked up with an ``f``
#: prefix (``fadd``, ``fmul``, ...) by :func:`timing_of`.
TIMINGS: dict[str, OpTiming] = {
    "const": OpTiming(0, 0.0),
    "vread": OpTiming(0, 0.0),
    "vwrite": OpTiming(0, 0.0),
    "and": OpTiming(0, 0.7),
    "or": OpTiming(0, 0.7),
    "xor": OpTiming(0, 0.7),
    "not": OpTiming(0, 0.5),
    "lnot": OpTiming(0, 0.5),
    "shl": OpTiming(0, 1.0),
    "shr": OpTiming(0, 1.0),
    "cmp": OpTiming(0, 1.8),
    "select": OpTiming(0, 1.2),
    "neg": OpTiming(0, 1.6),
    "add": OpTiming(0, 2.4),
    "sub": OpTiming(0, 2.4),
    "mul": OpTiming(3, resource="mul"),
    # Multiplications with a small constant operand fit one DSP48 slice;
    # tagged by repro.hls.passes.tag_const_muls before scheduling.
    "mul_small": OpTiming(3, resource="mul_small"),
    "div": OpTiming(34, resource="div", unit_ii=34),
    "mod": OpTiming(34, resource="div", unit_ii=34),
    "fadd": OpTiming(4, resource="fadd"),
    "fsub": OpTiming(4, resource="fadd"),
    "fmul": OpTiming(4, resource="fmul"),
    "fdiv": OpTiming(14, resource="fdiv", unit_ii=14),
    "sqrt": OpTiming(16, resource="fsqrt", unit_ii=16),
    "cast_if": OpTiming(3, resource="cast_if"),  # int <-> float converters
    "cast_ii": OpTiming(0, 0.3),  # width-only casts are wiring
    "load": OpTiming(2, resource="mem"),
    "store": OpTiming(1, resource="mem"),
    "br": OpTiming(0, 0.5),
    "jmp": OpTiming(0, 0.0),
    "ret": OpTiming(0, 0.0),
}

#: Default number of instances per limited resource class.
DEFAULT_LIMITS: dict[str, int] = {
    "mul": 2,
    "mul_small": 2,
    "div": 1,
    "fadd": 2,
    "fmul": 2,
    "fdiv": 1,
    "fsqrt": 1,
    "cast_if": 2,
}
#: BRAM ports per array (true dual port).
ARRAY_PORTS = 2


def timing_of(op: Op) -> OpTiming:
    """Timing entry for *op*, resolving float/cast variants."""
    opcode = op.opcode
    if opcode == "cast":
        src = op.operands[0].type
        dst = op.attrs["to"]
        key = "cast_if" if (src.is_float != dst.is_float) else "cast_ii"
        return TIMINGS[key]
    if opcode in ("add", "sub", "mul", "div") and op.result is not None and op.result.type.is_float:
        return TIMINGS["f" + opcode]
    if opcode == "mul" and op.attrs.get("const_operand"):
        return TIMINGS["mul_small"]
    try:
        return TIMINGS[opcode]
    except KeyError:  # pragma: no cover - defensive
        raise ScheduleError(f"no timing model for opcode {opcode!r}") from None


@dataclass
class ScheduledOp:
    op: Op
    start_cycle: int
    finish_ns: float  # absolute time the result is available

    @property
    def finish_cycle(self) -> int:
        """Last cycle this op (or its result latch) occupies."""
        return max(self.start_cycle, int(math.ceil(self.finish_ns / CLOCK_NS)) - 1)


@dataclass
class BlockSchedule:
    block: Block
    ops: dict[int, ScheduledOp] = field(default_factory=dict)  # keyed by id(op)
    length: int = 1  # cycles (states) the block occupies

    def of(self, op: Op) -> ScheduledOp:
        return self.ops[id(op)]


@dataclass
class FunctionSchedule:
    fn: Function
    blocks: dict[str, BlockSchedule] = field(default_factory=dict)
    #: Per resource class: maximum simultaneously-busy units in any block.
    fu_peak: dict[str, int] = field(default_factory=dict)

    def block(self, name: str) -> BlockSchedule:
        return self.blocks[name]


def _dependences(block: Block) -> dict[int, list[Op]]:
    """Predecessor map: id(op) -> ops that must complete first."""
    producers: dict[int, Op] = {}
    last_var_write: dict[str, Op] = {}
    var_reads_since_write: dict[str, list[Op]] = {}
    last_array_store: dict[str, Op] = {}
    array_loads_since_store: dict[str, list[Op]] = {}
    preds: dict[int, list[Op]] = {}
    non_terminators: list[Op] = []

    for op in block.ops:
        p: list[Op] = []
        for v in op.operands:
            producer = producers.get(v.vid)
            if producer is not None:
                p.append(producer)
        if op.opcode == "vread":
            var = op.attrs["var"]
            w = last_var_write.get(var)
            if w is not None:
                p.append(w)  # RAW
            var_reads_since_write.setdefault(var, []).append(op)
        elif op.opcode == "vwrite":
            var = op.attrs["var"]
            w = last_var_write.get(var)
            if w is not None:
                p.append(w)  # WAW
            p.extend(var_reads_since_write.get(var, ()))  # WAR
            last_var_write[var] = op
            var_reads_since_write[var] = []
        elif op.opcode == "load":
            arr = op.attrs["array"]
            s = last_array_store.get(arr)
            if s is not None:
                p.append(s)  # RAW
            array_loads_since_store.setdefault(arr, []).append(op)
        elif op.opcode == "store":
            arr = op.attrs["array"]
            s = last_array_store.get(arr)
            if s is not None:
                p.append(s)  # WAW
            p.extend(array_loads_since_store.get(arr, ()))  # WAR
            last_array_store[arr] = op
            array_loads_since_store[arr] = []
        if op.is_terminator():
            p.extend(non_terminators)  # control: terminator goes last
        else:
            non_terminators.append(op)
        preds[id(op)] = p
        if op.result is not None:
            producers[op.result.vid] = op
    return preds


def schedule_block(
    block: Block,
    limits: dict[str, int],
) -> BlockSchedule:
    """Resource-constrained list scheduling of one block.

    Ops are visited in program order (already a topological order of the
    dependence graph); each is placed at the earliest cycle where its
    operands are ready and a unit of its resource class is free.
    """
    preds = _dependences(block)
    sched = BlockSchedule(block)
    # busy[resource][cycle] = units in use; arrays get one class per array.
    busy: dict[str, dict[int, int]] = {}

    def resource_key(op: Op, timing: OpTiming) -> str | None:
        if timing.resource == "mem":
            return f"mem:{op.attrs['array']}"
        return timing.resource

    def limit_of(key: str) -> int:
        if key.startswith("mem:"):
            return limits.get(key, ARRAY_PORTS)
        return limits.get(key, DEFAULT_LIMITS.get(key, 1 << 30))

    for op in block.ops:
        timing = timing_of(op)
        ready_ns = 0.0
        for pred in preds[id(op)]:
            ready_ns = max(ready_ns, sched.of(pred).finish_ns)

        if timing.latency == 0:
            # Combinational: chain within the cycle if the delay fits.
            finish = ready_ns + timing.delay_ns
            cycle_start = math.floor(ready_ns / CLOCK_NS) * CLOCK_NS
            if finish - cycle_start > CLOCK_NS:
                # Start fresh at the next cycle boundary.
                start_cycle = int(ready_ns // CLOCK_NS) + 1
                finish = start_cycle * CLOCK_NS + timing.delay_ns
            else:
                start_cycle = int(ready_ns // CLOCK_NS)
            sched.ops[id(op)] = ScheduledOp(op, start_cycle, finish)
            continue

        # Sequential: the unit samples its operands at the end of its
        # start cycle, so the operands must land SETUP_NS before that
        # edge: earliest start c satisfies (c+1)*CLOCK - SETUP >= ready.
        earliest = max(0, int(math.ceil((ready_ns + SETUP_NS) / CLOCK_NS)) - 1)
        key = resource_key(op, timing)
        start_cycle = earliest
        if key is not None:
            cap = limit_of(key)
            usage = busy.setdefault(key, {})
            if timing.unit_ii == 1:
                # Fast path for fully-pipelined units (the common case):
                # probe single cycles without a generator per candidate.
                while usage.get(start_cycle, 0) >= cap:
                    start_cycle += 1
                usage[start_cycle] = usage.get(start_cycle, 0) + 1
            else:
                while any(
                    usage.get(c, 0) >= cap
                    for c in range(start_cycle, start_cycle + timing.unit_ii)
                ):
                    start_cycle += 1
                for c in range(start_cycle, start_cycle + timing.unit_ii):
                    usage[c] = usage.get(c, 0) + 1
        finish = (start_cycle + timing.latency) * CLOCK_NS
        sched.ops[id(op)] = ScheduledOp(op, start_cycle, finish)

    length = 1
    for sop in sched.ops.values():
        length = max(length, sop.finish_cycle + 1)
    sched.length = length
    return sched


def schedule_function(
    fn: Function, *, limits: dict[str, int] | None = None
) -> FunctionSchedule:
    """Schedule every block of *fn*; returns the full schedule."""
    limits = dict(limits or {})
    result = FunctionSchedule(fn)
    for block in fn.blocks:
        bs = schedule_block(block, limits)
        result.blocks[block.name] = bs
        # Track peak concurrent units per class for binding.
        peak: dict[str, dict[int, int]] = {}
        for sop in bs.ops.values():
            timing = timing_of(sop.op)
            if timing.resource is None or timing.resource == "mem":
                continue
            cls = timing.resource
            per_cycle = peak.setdefault(cls, {})
            for c in range(sop.start_cycle, sop.start_cycle + timing.unit_ii):
                per_cycle[c] = per_cycle.get(c, 0) + 1
        for cls, per_cycle in peak.items():
            m = max(per_cycle.values())
            if m > result.fu_peak.get(cls, 0):
                result.fu_peak[cls] = m
    return result
