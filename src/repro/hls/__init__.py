"""From-scratch High-Level Synthesis engine (the Vivado HLS substitute).

Pipeline: C source → :mod:`clex`/:mod:`cparse` → AST → :mod:`sema` →
typed AST → :mod:`lower` → three-address IR with a CFG → :mod:`passes`
(const-fold, copy-prop, strength-reduce, DCE) → :mod:`loops` (trip
counts, unrolling, pipeline II) → :mod:`schedule` (ASAP/ALAP/list) →
:mod:`bind` (FU + left-edge register binding) → :mod:`fsm` →
:mod:`rtl` (Verilog) with :mod:`interfaces` (AXI-Lite register file /
AXI-Stream) per the directive file, plus :mod:`resources` and
:mod:`latency` estimation.  :mod:`interp` executes the IR directly — the
"C simulation" used by tests and by the SoC simulator to compute
accelerator behaviour.

The public entry point mirrors the Vivado HLS project model the paper
scripts over: :class:`HlsProject` (add sources, set the top function,
add directives, ``csynth()``) producing a :class:`SynthesisResult`.
"""

from repro.hls.interfaces import Directive, InterfaceMode, interface, pipeline, unroll
from repro.hls.project import (
    HlsProject,
    SynthesisResult,
    estimate_sw_cycles,
    synthesize_function,
)
from repro.hls.report import SynthesisReport
from repro.hls.resources import ResourceUsage

__all__ = [
    "Directive",
    "HlsProject",
    "InterfaceMode",
    "ResourceUsage",
    "SynthesisReport",
    "SynthesisResult",
    "estimate_sw_cycles",
    "interface",
    "pipeline",
    "synthesize_function",
    "unroll",
]
