"""IR optimization passes.

All passes are local (per basic block) and conservative; they run to a
fixpoint through :func:`run_default_pipeline`:

* ``forward_slots`` — within a block, a ``vread`` following a ``vwrite``
  of the same variable forwards the written value; duplicate ``vread``\\ s
  merge; a ``vwrite`` made dead by a later ``vwrite`` in the same block
  (with no intervening read) is dropped.
* ``constant_fold`` — pure ops with all-constant operands are evaluated
  with the interpreter's own arithmetic (:func:`~repro.hls.interp.eval_pure`).
* ``strength_reduce`` — multiplications/divisions/modulo by powers of two
  become shifts/masks (signedness-aware); algebraic identities
  (``x*1``, ``x+0``, ``x&0`` ...) simplify.  This is what keeps DSP
  counts honest in the resource model.
* ``cse`` — local common-subexpression elimination (commutative-aware).
* ``dead_slot_stores`` — writes to variables never read anywhere go away.
* ``dce`` — pure ops whose results are never used are removed.

Passes rewrite operand references through a replacement map instead of
inserting copy ops, so the IR never grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls.interp import eval_pure
from repro.hls.ir import Block, Function, Op, Value
from repro.hls.types import ScalarType
from repro.util.errors import HlsError


def _apply_replacements(fn: Function, repl: dict[int, Value]) -> None:
    """Rewrite all operand references through *repl* in one pass.

    The map is flattened first (each chain walked once, results shared
    across entries), then applied with plain dict lookups; an op's
    operand tuple is rebuilt only when one of its operands actually
    changed, so untouched ops cost one membership test per operand
    instead of a new tuple per op per pass invocation.
    """
    if not repl:
        return
    resolved: dict[int, Value] = {}
    for vid in repl:
        if vid in resolved:
            continue
        chain = [vid]
        v = repl[vid]
        while v.vid in repl and v.vid not in resolved:
            if v.vid in chain:  # pragma: no cover - defensive
                raise HlsError("replacement cycle")
            chain.append(v.vid)
            v = repl[v.vid]
        v = resolved.get(v.vid, v)
        for c in chain:
            resolved[c] = v
    for block in fn.blocks:
        for op in block.ops:
            operands = op.operands
            for v in operands:
                if v.vid in resolved:
                    op.operands = tuple(resolved.get(o.vid, o) for o in operands)
                    break


def _const_map(fn: Function) -> dict[int, int | float]:
    """vid -> value for every ``const`` op (one scan, shared by passes)."""
    return {
        op.result.vid: op.attrs["value"]
        for block in fn.blocks
        for op in block.ops
        if op.opcode == "const"
    }


def forward_slots(fn: Function) -> bool:
    """Local load/store forwarding on variable slots; returns True if changed."""
    changed = False
    repl: dict[int, Value] = {}
    for block in fn.blocks:
        last_write: dict[str, Value] = {}
        last_read: dict[str, Value] = {}
        pending_write: dict[str, Op] = {}
        dead: set[int] = set()
        for op in block.ops:
            if op.opcode == "vwrite":
                var = op.attrs["var"]
                if var in pending_write:
                    # Previous write is overwritten with no read in between.
                    dead.add(id(pending_write[var]))
                    changed = True
                pending_write[var] = op
                last_write[var] = op.operands[0]
                last_read.pop(var, None)
            elif op.opcode == "vread":
                var = op.attrs["var"]
                if var in last_write:
                    src = last_write[var]
                    if src.type == op.result.type:
                        repl[op.result.vid] = src
                        dead.add(id(op))
                        changed = True
                    pending_write.pop(var, None)
                elif var in last_read:
                    repl[op.result.vid] = last_read[var]
                    dead.add(id(op))
                    changed = True
                else:
                    last_read[var] = op.result
                    pending_write.pop(var, None)
        if dead:
            block.ops = [op for op in block.ops if id(op) not in dead]
    _apply_replacements(fn, repl)
    return changed


def constant_fold(fn: Function) -> bool:
    """Fold pure ops with all-constant operands; returns True if changed."""
    changed = False
    const_vals = _const_map(fn)
    for block in fn.blocks:
        for op in block.ops:
            if (
                op.opcode in ("const",)
                or not op.is_pure()
                or op.result is None
                or not op.operands
            ):
                continue
            if all(v.vid in const_vals for v in op.operands):
                args = tuple(const_vals[v.vid] for v in op.operands)
                try:
                    value = eval_pure(op.opcode, op.attrs, args, op.result.type)
                except HlsError:
                    continue  # e.g. constant division by zero: leave for runtime
                op.opcode = "const"
                op.operands = ()
                op.attrs = {"value": value}
                const_vals[op.result.vid] = value
                changed = True
    return changed


def _const_value(op: Op) -> int | float | None:
    return op.attrs["value"] if op.opcode == "const" else None


def _is_pow2(v: int) -> bool:
    return v > 0 and (v & (v - 1)) == 0


def strength_reduce(fn: Function) -> bool:
    """Shift/mask rewrites and algebraic identities; returns True if changed."""
    changed = False
    const_ops = _const_map(fn)
    repl: dict[int, Value] = {}

    def make_const(block: Block, idx: int, value: int, t: ScalarType) -> Value:
        v = fn.new_value(t)
        block.ops.insert(idx, Op("const", v, (), {"value": value}))
        const_ops[v.vid] = value
        return v

    for block in fn.blocks:
        i = 0
        while i < len(block.ops):
            op = block.ops[i]
            i += 1
            if op.result is None or op.result.type.is_float:
                continue
            t = op.result.type
            if op.opcode == "mul":
                for self_idx, const_idx in ((0, 1), (1, 0)):
                    cv = const_ops.get(op.operands[const_idx].vid)
                    if isinstance(cv, int):
                        if cv == 1:
                            repl[op.result.vid] = op.operands[self_idx]
                            op.opcode = "const"
                            op.operands = ()
                            op.attrs = {"value": 0}
                            changed = True
                            break
                        if cv == 0:
                            op.opcode = "const"
                            op.operands = ()
                            op.attrs = {"value": 0}
                            const_ops[op.result.vid] = 0
                            changed = True
                            break
                        if _is_pow2(cv):
                            shift = make_const(block, i - 1, cv.bit_length() - 1, t)
                            i += 1
                            op.opcode = "shl"
                            op.operands = (op.operands[self_idx], shift)
                            changed = True
                            break
            elif op.opcode == "div" and not t.signed:
                cv = const_ops.get(op.operands[1].vid)
                if isinstance(cv, int) and _is_pow2(cv) and cv > 1:
                    shift = make_const(block, i - 1, cv.bit_length() - 1, t)
                    i += 1
                    op.opcode = "shr"
                    op.operands = (op.operands[0], shift)
                    changed = True
            elif op.opcode == "mod" and not t.signed:
                cv = const_ops.get(op.operands[1].vid)
                if isinstance(cv, int) and _is_pow2(cv):
                    mask = make_const(block, i - 1, cv - 1, t)
                    i += 1
                    op.opcode = "and"
                    op.operands = (op.operands[0], mask)
                    changed = True
            elif op.opcode in ("add", "sub"):
                cv = const_ops.get(op.operands[1].vid)
                if cv == 0:
                    repl[op.result.vid] = op.operands[0]
                    op.opcode = "const"
                    op.operands = ()
                    op.attrs = {"value": 0}
                    changed = True
                elif op.opcode == "add" and const_ops.get(op.operands[0].vid) == 0:
                    repl[op.result.vid] = op.operands[1]
                    op.opcode = "const"
                    op.operands = ()
                    op.attrs = {"value": 0}
                    changed = True
    _apply_replacements(fn, repl)
    return changed


def cse(fn: Function) -> bool:
    """Local common-subexpression elimination.

    Within a block, two pure ops with the same opcode, operands and
    attributes compute the same value; later occurrences are replaced by
    the first.  Commutative ops match under operand swap.  Duplicate
    ``load``\\ s of the same (array, index) merge too, invalidated by any
    intervening store to that array — which, besides saving a port, is
    what makes ``in[i] + in[i]`` legal on an AXI-Stream input.  Returns
    True if anything was eliminated.
    """
    commutative = {"add", "mul", "and", "or", "xor"}
    changed = False
    repl: dict[int, Value] = {}
    for block in fn.blocks:
        seen: dict[tuple, Value] = {}
        seen_loads: dict[tuple[str, int], Value] = {}
        keep: list[Op] = []
        for op in block.ops:
            if op.opcode == "load":
                key2 = (op.attrs["array"], op.operands[0].vid)
                prior_load = seen_loads.get(key2)
                if prior_load is not None and prior_load.type == op.result.type:
                    repl[op.result.vid] = prior_load
                    changed = True
                    continue
                seen_loads[key2] = op.result
                keep.append(op)
                continue
            if op.opcode == "store":
                arr = op.attrs["array"]
                seen_loads = {
                    k: v for k, v in seen_loads.items() if k[0] != arr
                }
                keep.append(op)
                continue
            if not op.is_pure() or op.result is None or op.opcode == "const":
                keep.append(op)
                continue
            operands = tuple(v.vid for v in op.operands)
            if op.opcode in commutative and len(operands) == 2:
                operands = tuple(sorted(operands))
            if op.opcode == "cmp":
                key = (op.opcode, op.attrs["pred"], operands)
            elif op.opcode == "cast":
                key = (op.opcode, op.attrs["to"].name, operands)
            else:
                key = (op.opcode, operands)
            prior = seen.get(key)
            if prior is not None and prior.type == op.result.type:
                repl[op.result.vid] = prior
                changed = True
                continue
            seen[key] = op.result
            keep.append(op)
        block.ops = keep
    _apply_replacements(fn, repl)
    return changed


def dce(fn: Function) -> bool:
    """Remove pure ops with unused results; returns True if changed."""
    changed = False
    while True:
        used: set[int] = set()
        for block in fn.blocks:
            for op in block.ops:
                for v in op.operands:
                    used.add(v.vid)
        removed = False
        for block in fn.blocks:
            keep: list[Op] = []
            for op in block.ops:
                if (
                    op.is_pure()
                    and op.result is not None
                    and op.result.vid not in used
                ):
                    removed = True
                    changed = True
                    continue
                keep.append(op)
            block.ops = keep
        if not removed:
            return changed


def dead_slot_stores(fn: Function) -> bool:
    """Remove ``vwrite`` ops to variables never read anywhere.

    Variable slots are invisible outside the function (results leave via
    ``ret`` or array stores), so a write to a never-read slot is dead.
    Returns True if anything was removed.
    """
    read_vars = {
        op.attrs["var"]
        for block in fn.blocks
        for op in block.ops
        if op.opcode == "vread"
    }
    changed = False
    for block in fn.blocks:
        keep = []
        for op in block.ops:
            if op.opcode == "vwrite" and op.attrs["var"] not in read_vars:
                changed = True
                continue
            keep.append(op)
        block.ops = keep
    return changed


def tag_const_muls(fn: Function, *, small_bits: int = 18) -> int:
    """Tag integer multiplications with a small constant operand.

    A DSP48E1 multiplies 25×18 bits; a multiplication by a constant that
    fits 18 bits occupies a single slice, while a general 32×32 product
    needs three.  The scheduler and the resource model treat tagged ops
    as the cheaper ``mul_small`` class.  Returns the number of tagged ops.
    """
    const_vals = _const_map(fn)
    limit = 1 << (small_bits - 1)
    tagged = 0
    for block in fn.blocks:
        for op in block.ops:
            if op.opcode != "mul" or op.result is None or op.result.type.is_float:
                continue
            for v in op.operands:
                cv = const_vals.get(v.vid)
                if isinstance(cv, int) and -limit <= cv < limit:
                    op.attrs["const_operand"] = True
                    tagged += 1
                    break
    return tagged


#: The standard pass order; repeated until nothing changes.
DEFAULT_PASSES = (
    forward_slots,
    constant_fold,
    strength_reduce,
    cse,
    dead_slot_stores,
    dce,
)


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one :func:`run_default_pipeline` invocation.

    ``converged`` is True when an iteration completed with no pass
    reporting a change — a genuine fixpoint.  False means the iteration
    bound cut the pipeline off while passes were still rewriting: the IR
    is valid (it is verified either way) but not fully optimized, which
    the caller should surface rather than silently accept.
    """

    fn: Function
    converged: bool
    iterations: int


def run_default_pipeline(fn: Function, *, max_iters: int = 10) -> PipelineResult:
    """Run the default pass pipeline to a fixpoint (bounded).

    Non-convergence within *max_iters* is **reported**, not swallowed:
    the returned :class:`PipelineResult` carries the flag and, when
    observability is enabled, an ``hls.pipeline`` event records the
    function and iteration bound.
    """
    converged = False
    iterations = 0
    for _ in range(max_iters):
        iterations += 1
        changed = False
        for pass_fn in DEFAULT_PASSES:
            changed |= pass_fn(fn)
        if not changed:
            converged = True
            break
    fn.verify()
    if not converged:
        from repro.obs.events import BUS as _BUS

        if _BUS.enabled:
            from repro.obs.metrics import REGISTRY as _METRICS

            _BUS.emit(
                "hls.pipeline",
                "nonconvergence",
                fn=fn.name,
                max_iters=max_iters,
            )
            _METRICS.counter(
                "hls.pipeline_nonconverged_total",
                "pass pipelines stopped by the iteration bound, not a fixpoint",
            ).inc()
    return PipelineResult(fn, converged, iterations)
