"""Recursive-descent parser for the synthesizable C subset.

Grammar (informal)::

    unit      := (global_const | funcdef)*
    global    := 'const' type IDENT '=' expr ';'
    funcdef   := type IDENT '(' params? ')' block
    params    := param (',' param)*
    param     := type IDENT array_suffix?
    block     := '{' stmt* '}'
    stmt      := decl | if | while | do-while | for | return | break
               | continue | block | simple ';'
    decl      := 'const'? type IDENT (array_suffix | '=' expr)? ';'
    simple    := assignment | expr
    assignment:= lvalue ('='|'+='|...) expr | lvalue '++' | '++' lvalue ...

    expr      := ternary;  standard C precedence for binary operators.

Pointer parameters (``int *a``) are accepted and treated as unsized
arrays, matching how Vivado HLS maps them onto bus/stream interfaces.
"""

from __future__ import annotations

from repro.hls import cast as A
from repro.hls.clex import CTokKind, CToken, clex
from repro.hls.types import SPELLINGS, ArrayType, CType, INT32, ScalarType
from repro.util.errors import CSyntaxError

# Binary operator precedence (higher binds tighter).
_PRECEDENCE: dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_COMPOUND = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
             "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>"}

#: Intrinsic functions the frontend knows.
INTRINSICS = frozenset({"min", "max", "abs", "sqrtf", "fabsf"})


class _CParser:
    def __init__(self, tokens: list[CToken]) -> None:
        self.toks = tokens
        self.pos = 0
        self._switch_counter = 0

    # -- plumbing --------------------------------------------------------
    def peek(self, k: int = 0) -> CToken:
        return self.toks[min(self.pos + k, len(self.toks) - 1)]

    def advance(self) -> CToken:
        tok = self.toks[self.pos]
        if tok.kind is not CTokKind.EOF:
            self.pos += 1
        return tok

    def expect_op(self, op: str) -> CToken:
        tok = self.peek()
        if not tok.is_op(op):
            raise CSyntaxError(f"expected {op!r}, found {tok.value!r}", tok.loc)
        return self.advance()

    def expect_ident(self) -> CToken:
        tok = self.peek()
        if tok.kind is not CTokKind.IDENT:
            raise CSyntaxError(f"expected identifier, found {tok.value!r}", tok.loc)
        return self.advance()

    def at_type(self, k: int = 0) -> bool:
        tok = self.peek(k)
        return tok.kind is CTokKind.KEYWORD and tok.value in SPELLINGS

    def parse_scalar_type(self) -> ScalarType:
        tok = self.peek()
        if not self.at_type():
            raise CSyntaxError(f"expected a type, found {tok.value!r}", tok.loc)
        self.advance()
        return SPELLINGS[tok.value]

    # -- top level --------------------------------------------------------
    def parse_unit(self) -> A.TranslationUnit:
        start = self.peek().loc
        consts: list[A.GlobalConst] = []
        funcs: list[A.FuncDef] = []
        while self.peek().kind is not CTokKind.EOF:
            if self.peek().is_kw("const"):
                consts.append(self.parse_global_const())
            else:
                funcs.append(self.parse_funcdef())
        return A.TranslationUnit(start, consts, funcs)

    def parse_global_const(self) -> A.GlobalConst:
        loc = self.advance().loc  # const
        ctype = self.parse_scalar_type()
        name = self.expect_ident().value
        self.expect_op("=")
        value = self.parse_expr()
        self.expect_op(";")
        return A.GlobalConst(loc, name, ctype, value)

    def parse_funcdef(self) -> A.FuncDef:
        loc = self.peek().loc
        ret = self.parse_scalar_type()
        name = self.expect_ident().value
        self.expect_op("(")
        params: list[A.Param] = []
        if not self.peek().is_op(")"):
            params.append(self.parse_param())
            while self.peek().is_op(","):
                self.advance()
                params.append(self.parse_param())
        self.expect_op(")")
        body = self.parse_block()
        return A.FuncDef(loc, name, ret, params, body)

    def parse_param(self) -> A.Param:
        loc = self.peek().loc
        elem = self.parse_scalar_type()
        is_pointer = False
        if self.peek().is_op("*"):
            self.advance()
            is_pointer = True
        name = self.expect_ident().value
        ctype: CType = elem
        if self.peek().is_op("["):
            self.advance()
            size: int | None = None
            if not self.peek().is_op("]"):
                size = self._const_int_token()
            self.expect_op("]")
            dims = [size]
            while self.peek().is_op("["):
                self.advance()
                dims.append(self._const_int_token())
                self.expect_op("]")
            if len(dims) == 1:
                ctype = ArrayType(elem, size)
            else:
                if any(d is None for d in dims):
                    raise CSyntaxError(
                        "multi-dimensional parameters need every dimension sized",
                        loc,
                    )
                total = 1
                for d in dims:
                    total *= d  # type: ignore[operator]
                ctype = ArrayType(elem, total, tuple(dims))  # type: ignore[arg-type]
        elif is_pointer:
            ctype = ArrayType(elem, None)
        return A.Param(loc, name, ctype)

    def _const_int_token(self) -> int:
        tok = self.peek()
        if tok.kind is not CTokKind.INT:
            raise CSyntaxError(
                f"expected integer literal, found {tok.value!r}", tok.loc
            )
        self.advance()
        return int(tok.value, 0)

    # -- statements ------------------------------------------------------------
    def parse_block(self) -> A.Block:
        loc = self.expect_op("{").loc
        stmts: list[A.Stmt] = []
        while not self.peek().is_op("}"):
            if self.peek().kind is CTokKind.EOF:
                raise CSyntaxError("unexpected end of file inside block", self.peek().loc)
            stmts.append(self.parse_stmt())
        self.expect_op("}")
        return A.Block(loc, stmts)

    def _as_block(self, stmt: A.Stmt) -> A.Block:
        if isinstance(stmt, A.Block):
            return stmt
        return A.Block(stmt.loc, [stmt])

    def parse_stmt(self) -> A.Stmt:
        tok = self.peek()
        if tok.is_op("{"):
            return self.parse_block()
        if tok.is_kw("if"):
            return self.parse_if()
        if tok.is_kw("while"):
            return self.parse_while()
        if tok.is_kw("do"):
            return self.parse_do_while()
        if tok.is_kw("for"):
            return self.parse_for()
        if tok.is_kw("switch"):
            return self.parse_switch()
        # Vivado-style loop label: `NAME: for (...)` / `NAME: while (...)`.
        if (
            tok.kind is CTokKind.IDENT
            and self.peek(1).is_op(":")
            and (self.peek(2).is_kw("for") or self.peek(2).is_kw("while"))
        ):
            label = self.advance().value
            self.advance()  # ':'
            loop = self.parse_for() if self.peek().is_kw("for") else self.parse_while()
            loop.label = label  # type: ignore[union-attr]
            return loop
        if tok.is_kw("return"):
            self.advance()
            value = None if self.peek().is_op(";") else self.parse_expr()
            self.expect_op(";")
            return A.Return(tok.loc, value)
        if tok.is_kw("break"):
            self.advance()
            self.expect_op(";")
            return A.Break(tok.loc)
        if tok.is_kw("continue"):
            self.advance()
            self.expect_op(";")
            return A.Continue(tok.loc)
        if tok.is_kw("const") or self.at_type():
            stmt = self.parse_decl()
            self.expect_op(";")
            return stmt
        stmt = self.parse_simple()
        self.expect_op(";")
        return stmt

    def parse_decl(self) -> A.Decl:
        loc = self.peek().loc
        const = False
        if self.peek().is_kw("const"):
            const = True
            self.advance()
        elem = self.parse_scalar_type()
        name = self.expect_ident().value
        ctype: CType = elem
        init: A.Expr | None = None
        init_list: list[A.Expr] | None = None
        if self.peek().is_op("["):
            dims: list[int] = []
            while self.peek().is_op("["):
                self.advance()
                dims.append(self._const_int_token())
                self.expect_op("]")
            total = 1
            for d in dims:
                total *= d
            ctype = ArrayType(elem, total, tuple(dims) if len(dims) > 1 else None)
            if self.peek().is_op("="):
                self.advance()
                self.expect_op("{")
                init_list = []
                if not self.peek().is_op("}"):
                    init_list.append(self.parse_expr())
                    while self.peek().is_op(","):
                        self.advance()
                        if self.peek().is_op("}"):
                            break  # trailing comma
                        init_list.append(self.parse_expr())
                self.expect_op("}")
        elif self.peek().is_op("="):
            self.advance()
            init = self.parse_expr()
        return A.Decl(loc, name, ctype, init, const, init_list)

    def parse_if(self) -> A.If:
        loc = self.advance().loc
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        then = self._as_block(self.parse_stmt())
        other = None
        if self.peek().is_kw("else"):
            self.advance()
            other = self._as_block(self.parse_stmt())
        return A.If(loc, cond, then, other)

    def parse_while(self) -> A.While:
        loc = self.advance().loc
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        body = self._as_block(self.parse_stmt())
        return A.While(loc, cond, body)

    def parse_do_while(self) -> A.DoWhile:
        loc = self.advance().loc
        body = self._as_block(self.parse_stmt())
        if not self.peek().is_kw("while"):
            raise CSyntaxError("expected 'while' after do-body", self.peek().loc)
        self.advance()
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        self.expect_op(";")
        return A.DoWhile(loc, body, cond)

    def parse_for(self) -> A.For:
        loc = self.advance().loc
        self.expect_op("(")
        init: A.Stmt | None = None
        if not self.peek().is_op(";"):
            init = self.parse_decl() if (self.at_type() or self.peek().is_kw("const")) else self.parse_simple()
        self.expect_op(";")
        cond: A.Expr | None = None
        if not self.peek().is_op(";"):
            cond = self.parse_expr()
        self.expect_op(";")
        step: A.Stmt | None = None
        if not self.peek().is_op(")"):
            step = self.parse_simple()
        self.expect_op(")")
        body = self._as_block(self.parse_stmt())
        return A.For(loc, init, cond, step, body)

    def parse_switch(self) -> A.Stmt:
        """``switch`` desugars to an if/else-if chain on a temporary.

        Fallthrough is not supported: every non-empty case must end with
        ``break`` (checked here), matching what most HLS coding guides
        require anyway.
        """
        loc = self.advance().loc
        self.expect_op("(")
        scrutinee = self.parse_expr()
        self.expect_op(")")
        self.expect_op("{")

        arms: list[tuple[list[A.Expr] | None, A.Block]] = []
        while not self.peek().is_op("}"):
            labels: list[A.Expr] | None = []
            is_default = False
            # One or more stacked labels select the same body.
            while True:
                if self.peek().is_kw("case"):
                    self.advance()
                    labels.append(self.parse_expr())  # type: ignore[union-attr]
                    self.expect_op(":")
                elif self.peek().is_kw("default"):
                    self.advance()
                    self.expect_op(":")
                    is_default = True
                else:
                    break
            if not labels and not is_default:
                raise CSyntaxError(
                    f"expected 'case' or 'default', found {self.peek().value!r}",
                    self.peek().loc,
                )
            body_stmts: list[A.Stmt] = []
            saw_break = False
            while not (
                self.peek().is_op("}")
                or self.peek().is_kw("case")
                or self.peek().is_kw("default")
            ):
                stmt = self.parse_stmt()
                if isinstance(stmt, A.Break):
                    saw_break = True
                    break
                body_stmts.append(stmt)
            if body_stmts and not saw_break and not self._ends_in_return(body_stmts):
                raise CSyntaxError(
                    "switch cases must end in 'break' or 'return' "
                    "(fallthrough is not supported)",
                    self.peek().loc,
                )
            arms.append((None if is_default else labels, A.Block(loc, body_stmts)))
        self.expect_op("}")

        # Desugar: evaluate the scrutinee once into a temporary, then
        # build the if/else-if chain back to front.
        tmp = f"__switch{self._switch_counter}"
        self._switch_counter += 1
        decl = A.Decl(loc, tmp, INT32, scrutinee)
        chain: A.Block | None = None
        default_body = next((b for ls, b in arms if ls is None), None)
        if default_body is not None:
            chain = default_body
        for labels, body in reversed(arms):
            if labels is None:
                continue
            cond: A.Expr | None = None
            for lab in labels:
                eq = A.Binary(loc, "==", A.Name(loc, tmp), lab)
                cond = eq if cond is None else A.Binary(loc, "||", cond, eq)
            assert cond is not None
            chain = A.Block(loc, [A.If(loc, cond, body, chain)])
        return A.Block(loc, [decl, chain] if chain is not None else [decl])

    @staticmethod
    def _ends_in_return(stmts: list[A.Stmt]) -> bool:
        return bool(stmts) and isinstance(stmts[-1], A.Return)

    def parse_simple(self) -> A.Stmt:
        """Assignment, inc/dec, or a bare expression."""
        loc = self.peek().loc
        # Prefix ++/--.
        if self.peek().is_op("++") or self.peek().is_op("--"):
            op = self.advance().value
            target = self.parse_lvalue()
            one = A.IntLit(loc, 1)
            return A.Assign(loc, target, A.Binary(loc, op[0], self._lval_expr(target), one))
        expr = self.parse_expr()
        tok = self.peek()
        if tok.is_op("=") or tok.value in _COMPOUND:
            target = self._require_lvalue(expr)
            self.advance()
            value = self.parse_expr()
            if tok.value in _COMPOUND:
                value = A.Binary(tok.loc, _COMPOUND[tok.value], self._lval_expr(target), value)
            return A.Assign(loc, target, value)
        if tok.is_op("++") or tok.is_op("--"):
            target = self._require_lvalue(expr)
            self.advance()
            one = A.IntLit(loc, 1)
            return A.Assign(
                loc, target, A.Binary(loc, tok.value[0], self._lval_expr(target), one)
            )
        return A.ExprStmt(loc, expr)

    def parse_lvalue(self) -> A.Name | A.Index:
        expr = self.parse_unary()
        return self._require_lvalue(expr)

    def _require_lvalue(self, expr: A.Expr) -> A.Name | A.Index:
        if isinstance(expr, (A.Name, A.Index)):
            return expr
        raise CSyntaxError("expression is not assignable", expr.loc)

    @staticmethod
    def _lval_expr(target: A.Name | A.Index) -> A.Expr:
        """A fresh read-expression for the lvalue (for desugaring)."""
        import copy

        return copy.deepcopy(target)

    # -- expressions -----------------------------------------------------------
    def parse_expr(self) -> A.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> A.Expr:
        cond = self.parse_binary(1)
        if self.peek().is_op("?"):
            loc = self.advance().loc
            then = self.parse_expr()
            self.expect_op(":")
            other = self.parse_ternary()
            return A.Ternary(loc, cond, then, other)
        return cond

    def parse_binary(self, min_prec: int) -> A.Expr:
        left = self.parse_unary()
        while True:
            tok = self.peek()
            prec = _PRECEDENCE.get(tok.value) if tok.kind is CTokKind.OP else None
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self.parse_binary(prec + 1)
            left = A.Binary(tok.loc, tok.value, left, right)

    def parse_unary(self) -> A.Expr:
        tok = self.peek()
        if tok.is_op("-") or tok.is_op("!") or tok.is_op("~"):
            self.advance()
            return A.Unary(tok.loc, tok.value, self.parse_unary())
        if tok.is_op("+"):
            self.advance()
            return self.parse_unary()
        # Cast: '(' type ')' unary
        if tok.is_op("(") and self.at_type(1):
            self.advance()
            target = self.parse_scalar_type()
            self.expect_op(")")
            return A.Cast(tok.loc, target, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while self.peek().is_op("["):
            loc = self.advance().loc
            index = self.parse_expr()
            self.expect_op("]")
            if not isinstance(expr, (A.Name, A.Index)):
                raise CSyntaxError("only named arrays can be indexed", loc)
            expr = A.Index(loc, expr, index)
        return expr

    def parse_primary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind is CTokKind.INT:
            self.advance()
            return A.IntLit(tok.loc, int(tok.value, 0))
        if tok.kind is CTokKind.FLOAT:
            self.advance()
            return A.FloatLit(tok.loc, float(tok.value))
        if tok.is_kw("true"):
            self.advance()
            return A.BoolLit(tok.loc, True)
        if tok.is_kw("false"):
            self.advance()
            return A.BoolLit(tok.loc, False)
        if tok.kind is CTokKind.IDENT:
            self.advance()
            if self.peek().is_op("("):
                # Intrinsic or user-function call; user calls are
                # flattened by repro.hls.inline before semantic analysis.
                self.advance()
                args: list[A.Expr] = []
                if not self.peek().is_op(")"):
                    args.append(self.parse_expr())
                    while self.peek().is_op(","):
                        self.advance()
                        args.append(self.parse_expr())
                self.expect_op(")")
                return A.Call(tok.loc, tok.value, args)
            return A.Name(tok.loc, tok.value)
        if tok.is_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        raise CSyntaxError(f"unexpected token {tok.value!r}", tok.loc)


def parse_c(
    text: str,
    filename: str = "<c>",
    *,
    tokens: list[CToken] | None = None,
) -> A.TranslationUnit:
    """Parse a C translation unit; raises :class:`CSyntaxError`.

    *tokens* lets a caller that already lexed *text* (the per-function
    compilation cache fingerprints the token stream before deciding
    whether to parse at all) hand the list over instead of lexing twice.
    """
    return _CParser(tokens if tokens is not None else clex(text, filename)).parse_unit()
