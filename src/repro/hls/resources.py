"""FPGA resource estimation (LUT / FF / RAMB18 / DSP48).

The model is calibrated against the xc7z020 (Zedboard) numbers reported
in the paper's Table II; EXPERIMENTS.md records measured-vs-paper for
every architecture.  Cost structure:

* **functional units** — fixed per-instance costs (an fdiv is ~800 LUT,
  an int32 multiplier 3 DSP, a constant multiplier 1 DSP, ...);
* **combinational logic** — per-opcode costs scaled by bit width,
  charged at the *peak concurrent use in any cycle* (the datapath shares
  operators across states through multiplexers);
* **registers** — one FF per bound register bit, plus input muxes;
* **memories** — local arrays above 1 Kbit map to RAMB18 blocks
  (``ceil(bits / 18 Kbit)``), smaller ones to distributed LUT-RAM;
* **interface adapters** — AXI-Lite register file, AXI-Stream ports,
  AXI master.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls.bind import Binding
from repro.hls.interfaces import InterfaceSpec
from repro.hls.ir import Function
from repro.hls.schedule import FunctionSchedule, timing_of

BRAM18_BITS = 18 * 1024
#: Arrays at or below this size map to distributed LUT-RAM (Vivado keeps
#: small memories out of block RAM; 4 Kbit matches its behaviour on the
#: case study's 256x16-bit buffers).
LUTRAM_THRESHOLD_BITS = 4096


@dataclass(frozen=True)
class ResourceUsage:
    """LUT/FF/RAMB18/DSP quadruple with arithmetic helpers."""

    lut: int = 0
    ff: int = 0
    bram18: int = 0
    dsp: int = 0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            self.lut + other.lut,
            self.ff + other.ff,
            self.bram18 + other.bram18,
            self.dsp + other.dsp,
        )

    def scaled(self, k: int) -> "ResourceUsage":
        return ResourceUsage(self.lut * k, self.ff * k, self.bram18 * k, self.dsp * k)

    def as_row(self) -> tuple[int, int, int, int]:
        return (self.lut, self.ff, self.bram18, self.dsp)


#: Per-instance cost of sequential functional units, by resource class.
FU_COSTS: dict[str, ResourceUsage] = {
    "mul": ResourceUsage(lut=45, ff=90, dsp=3),
    "mul_small": ResourceUsage(lut=25, ff=45, dsp=1),
    "div": ResourceUsage(lut=1080, ff=1240),
    "fadd": ResourceUsage(lut=390, ff=510),
    "fmul": ResourceUsage(lut=135, ff=210, dsp=2),
    "fdiv": ResourceUsage(lut=790, ff=950),
    "fsqrt": ResourceUsage(lut=460, ff=610),
    "cast_if": ResourceUsage(lut=125, ff=175),
}

#: Per-instance LUT cost of combinational operators, by opcode, for a
#: 32-bit datapath (scaled by width/32 at estimation time).
COMB_LUT: dict[str, int] = {
    "add": 32,
    "sub": 32,
    "neg": 32,
    "cmp": 18,
    "select": 16,
    "shl": 28,
    "shr": 28,
    "and": 11,
    "or": 11,
    "xor": 11,
    "not": 6,
    "lnot": 2,
    "cast_ii": 0,
}

#: Interface adapter costs.
AXILITE_BASE = ResourceUsage(lut=240, ff=310)
AXILITE_PER_REG = ResourceUsage(lut=28, ff=34)
AXIS_PER_PORT = ResourceUsage(lut=55, ff=85)
M_AXI_ADAPTER = ResourceUsage(lut=880, ff=1090)

#: Controller overhead per FSM state / per state bit.
FSM_LUT_PER_STATE = 2
FSM_BASE = ResourceUsage(lut=60, ff=40)


def _comb_peaks(fn: Function, schedule: FunctionSchedule) -> dict[str, float]:
    """Peak concurrent combinational logic per opcode, width-weighted.

    Each op contributes ``width/32`` of a full-width operator (an 8-bit
    comparator is a quarter of a 32-bit one); the peak is taken over
    cycles, since operators are time-multiplexed across states.
    """
    peaks: dict[str, float] = {}
    for block in fn.blocks:
        bs = schedule.block(block.name)
        per_cycle: dict[tuple[str, int], float] = {}
        for op in block.ops:
            timing = timing_of(op)
            if timing.latency != 0 or timing.resource is not None:
                continue
            key = op.opcode
            if key == "cast":
                key = "cast_ii"
            if key not in COMB_LUT:
                continue
            if op.opcode == "cmp" and op.operands:
                width = max(1, op.operands[0].type.bits)
            elif op.result is not None:
                width = max(1, op.result.type.bits)
            else:
                width = 32
            cyc = bs.of(op).start_cycle
            per_cycle[(key, cyc)] = per_cycle.get((key, cyc), 0.0) + width / 32.0
        for (key, _), n in per_cycle.items():
            peaks[key] = max(peaks.get(key, 0.0), n)
    return peaks


def estimate_core(
    fn: Function,
    schedule: FunctionSchedule,
    binding: Binding,
    iface: InterfaceSpec,
    num_states: int,
    *,
    partitioned: set[str] | frozenset[str] = frozenset(),
) -> ResourceUsage:
    """Estimate post-synthesis resources of one accelerator core.

    Arrays in *partitioned* are completely partitioned (array_partition
    directive): they cost registers + addressing muxes instead of BRAM.
    """
    total = ResourceUsage()

    # Functional units.
    for cls, count in binding.fu_counts.items():
        cost = FU_COSTS.get(cls)
        if cost is not None:
            total = total + cost.scaled(count)

    # Combinational datapath (width-weighted operator shares).
    comb_lut = 0.0
    for key, peak in _comb_peaks(fn, schedule).items():
        comb_lut += COMB_LUT[key] * peak
    total = total + ResourceUsage(lut=int(round(comb_lut)))

    # Registers: 1 FF/bit, plus an input mux (~0.5 LUT/bit) on shared regs.
    reg_bits = binding.total_register_bits()
    shared_bits = sum(w * n for w, n in binding.registers.items())
    total = total + ResourceUsage(lut=shared_bits // 2, ff=reg_bits)

    # Local memories.
    for name, atype in fn.arrays.items():
        assert atype.size is not None
        bits = atype.size * atype.element.bits
        if name in partitioned:
            # Dissolved into registers + per-element access muxes.
            total = total + ResourceUsage(lut=bits // 2 + atype.size, ff=bits)
        elif bits <= LUTRAM_THRESHOLD_BITS:
            total = total + ResourceUsage(lut=-(-bits // 64) * 4)
        else:
            total = total + ResourceUsage(bram18=-(-bits // BRAM18_BITS))

    # Controller.
    state_bits = max(1, (max(1, num_states - 1)).bit_length())
    total = total + FSM_BASE + ResourceUsage(
        lut=FSM_LUT_PER_STATE * num_states, ff=state_bits
    )

    # Interface adapters.
    if iface.has_lite():
        total = total + AXILITE_BASE + AXILITE_PER_REG.scaled(len(iface.registers))
    total = total + AXIS_PER_PORT.scaled(len(iface.streams))
    if iface.m_axi_ports:
        total = total + M_AXI_ADAPTER
    return total
