"""Interface directives and AXI wrapper resolution.

Mirrors the Vivado HLS directive mechanism the paper drives from the DSL
keywords: an ``i`` port in the DSL becomes ``set_directive_interface
-mode s_axilite``, an ``is`` port becomes ``-mode axis``; the tool writes
these into the per-core *directives* file (Section IV-B step 3).

Resolution rules
----------------
* scalar parameters and the return value ride the AXI-Lite register file
  (Vivado-HLS-compatible layout: ``0x00 CTRL``, ``0x04 GIE``, ``0x08
  IER``, ``0x0C ISR``, arguments from ``0x10`` in 8-byte strides);
* an array parameter with an ``axis`` directive becomes an AXI-Stream
  port whose direction is inferred from the IR (read-only → slave /
  input, write-only → master / output; both → rejected);
* an array parameter without an ``axis`` directive on an AXI-Lite core
  is accessed in shared DRAM through an AXI master (``m_axi``) adapter,
  with its base address exposed as an extra AXI-Lite register — the
  "data exchange through shared memory" of paper Section II-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.hls.ir import Function
from repro.hls.types import ArrayType
from repro.util.errors import CSemanticError, HlsError


class InterfaceMode(Enum):
    S_AXILITE = "s_axilite"
    AXIS = "axis"
    M_AXI = "m_axi"


@dataclass(frozen=True)
class Directive:
    """One line of the directives file.

    kind is ``interface`` (options: ``mode``), ``pipeline`` (options:
    ``ii`` optionally) or ``unroll`` (options: ``factor``); ``target`` is
    a port name for interface directives and a loop label (the induction
    variable name) for loop directives.
    """

    kind: str
    function: str
    target: str
    options: tuple[tuple[str, str], ...] = ()

    def option(self, name: str, default: str | None = None) -> str | None:
        for k, v in self.options:
            if k == name:
                return v
        return default

    def to_tcl(self) -> str:
        if self.kind == "interface":
            mode = self.option("mode", "s_axilite")
            return (
                f"set_directive_interface -mode {mode} "
                f'"{self.function}" {self.target}'
            )
        if self.kind == "pipeline":
            ii = self.option("ii")
            flag = f" -II {ii}" if ii else ""
            return f'set_directive_pipeline{flag} "{self.function}/{self.target}"'
        if self.kind == "unroll":
            factor = self.option("factor", "2")
            return (
                f"set_directive_unroll -factor {factor} "
                f'"{self.function}/{self.target}"'
            )
        if self.kind == "allocation":
            limit = self.option("limit", "1")
            return (
                f"set_directive_allocation -limit {limit} -type operation "
                f'"{self.function}" {self.target}'
            )
        if self.kind == "array_partition":
            kind = self.option("kind", "complete")
            factor = self.option("factor", "2")
            extra = "" if kind == "complete" else f" -factor {factor}"
            return (
                f"set_directive_array_partition -type {kind}{extra} "
                f'"{self.function}" {self.target}'
            )
        raise HlsError(f"unknown directive kind {self.kind!r}")


def interface(function: str, port: str, mode: InterfaceMode) -> Directive:
    """Convenience constructor for an interface directive."""
    return Directive("interface", function, port, (("mode", mode.value),))


def pipeline(function: str, loop_label: str, ii: int | None = None) -> Directive:
    opts = (("ii", str(ii)),) if ii is not None else ()
    return Directive("pipeline", function, loop_label, opts)


def unroll(function: str, loop_label: str, factor: int) -> Directive:
    return Directive("unroll", function, loop_label, (("factor", str(factor)),))


def allocation(function: str, resource: str, limit: int) -> Directive:
    """Cap the instances of a resource class (e.g. ``mul_small``) — the
    ``set_directive_allocation`` analogue."""
    return Directive("allocation", function, resource, (("limit", str(limit)),))


def array_partition(
    function: str, array: str, *, kind: str = "complete", factor: int = 2
) -> Directive:
    """Split a local array across memories — ``set_directive_array_partition``.

    ``complete`` dissolves the array into registers (every element
    addressable every cycle, no BRAM); ``cyclic``/``block`` with a
    *factor* multiply the available ports by that factor.
    """
    if kind not in ("complete", "cyclic", "block"):
        raise HlsError(f"unknown array_partition kind {kind!r}")
    opts = (("kind", kind), ("factor", str(factor)))
    return Directive("array_partition", function, array, opts)


def partition_specs(
    fn_name: str, directives: list[Directive]
) -> dict[str, tuple[str, int]]:
    """array name -> (kind, factor) from array_partition directives."""
    specs: dict[str, tuple[str, int]] = {}
    for d in directives:
        if d.kind == "array_partition" and d.function == fn_name:
            specs[d.target] = (
                d.option("kind", "complete") or "complete",
                int(d.option("factor", "2") or 2),
            )
    return specs


def allocation_limits(fn_name: str, directives: list[Directive]) -> dict[str, int]:
    """Collect allocation directives for *fn_name* into a limits dict."""
    limits: dict[str, int] = {}
    for d in directives:
        if d.kind == "allocation" and d.function == fn_name:
            limits[d.target] = int(d.option("limit", "1"))
    return limits


@dataclass(frozen=True)
class RegEntry:
    """One register of the AXI-Lite map."""

    name: str
    offset: int
    width: int
    direction: str  # "in", "out" (return), or "ctrl"


@dataclass(frozen=True)
class StreamPort:
    name: str
    width: int  # TDATA bits (rounded up to a byte multiple)
    direction: str  # "in" (slave) or "out" (master)


@dataclass
class InterfaceSpec:
    """Resolved interface of one synthesized core."""

    function: str
    modes: dict[str, InterfaceMode] = field(default_factory=dict)
    registers: list[RegEntry] = field(default_factory=list)
    streams: list[StreamPort] = field(default_factory=list)
    #: Array params routed through the AXI master (name -> element bits).
    m_axi_ports: dict[str, int] = field(default_factory=dict)

    def has_lite(self) -> bool:
        return bool(self.registers)

    def register(self, name: str) -> RegEntry:
        for r in self.registers:
            if r.name == name:
                return r
        raise HlsError(f"{self.function}: no AXI-Lite register {name!r}")

    def stream(self, name: str) -> StreamPort:
        for s in self.streams:
            if s.name == name:
                return s
        raise HlsError(f"{self.function}: no stream port {name!r}")


def _array_access_direction(fn: Function, name: str) -> str:
    """'in', 'out', or 'inout' depending on load/store usage of *name*."""
    reads = writes = False
    for block in fn.blocks:
        for op in block.ops:
            if op.opcode == "load" and op.attrs["array"] == name:
                reads = True
            elif op.opcode == "store" and op.attrs["array"] == name:
                writes = True
    if reads and writes:
        return "inout"
    return "out" if writes else "in"


def _stream_width(bits: int) -> int:
    """Round a data width up to the AXI-Stream byte granularity."""
    return max(8, ((bits + 7) // 8) * 8)


def resolve_interfaces(fn: Function, directives: list[Directive]) -> InterfaceSpec:
    """Resolve *directives* against *fn*; raises on inconsistent specs."""
    spec = InterfaceSpec(fn.name)
    wanted: dict[str, InterfaceMode] = {}
    for d in directives:
        if d.kind != "interface" or d.function != fn.name:
            continue
        mode = InterfaceMode(d.option("mode", "s_axilite"))
        if d.target in wanted and wanted[d.target] is not mode:
            raise HlsError(
                f"{fn.name}: conflicting interface modes for port {d.target!r}"
            )
        wanted[d.target] = mode

    param_names = {name for name, _ in fn.params}
    for target in wanted:
        if target not in param_names and target != "return":
            raise HlsError(f"{fn.name}: interface directive for unknown port {target!r}")

    offset = 0x10
    spec.registers.append(RegEntry("CTRL", 0x00, 32, "ctrl"))
    spec.registers.append(RegEntry("GIE", 0x04, 32, "ctrl"))
    spec.registers.append(RegEntry("IER", 0x08, 32, "ctrl"))
    spec.registers.append(RegEntry("ISR", 0x0C, 32, "ctrl"))

    for name, ctype in fn.params:
        mode = wanted.get(name)
        if isinstance(ctype, ArrayType):
            if mode is InterfaceMode.AXIS:
                direction = _array_access_direction(fn, name)
                if direction == "inout":
                    raise CSemanticError(
                        f"{fn.name}: stream port {name!r} is both read and "
                        "written; streams are unidirectional"
                    )
                spec.modes[name] = InterfaceMode.AXIS
                spec.streams.append(
                    StreamPort(name, _stream_width(ctype.element.bits), direction)
                )
            elif mode in (None, InterfaceMode.M_AXI):
                spec.modes[name] = InterfaceMode.M_AXI
                spec.m_axi_ports[name] = ctype.element.bits
                # Base-address register for the master port.
                spec.registers.append(RegEntry(name, offset, 32, "in"))
                offset += 8
            else:
                raise HlsError(
                    f"{fn.name}: array port {name!r} cannot use mode {mode.value}"
                )
        else:
            if mode is InterfaceMode.AXIS:
                raise HlsError(
                    f"{fn.name}: scalar port {name!r} cannot be a stream"
                )
            spec.modes[name] = InterfaceMode.S_AXILITE
            spec.registers.append(RegEntry(name, offset, max(32, ctype.bits), "in"))
            offset += 8
    if fn.ret.bits > 0:
        mode = wanted.get("return")
        if mode is InterfaceMode.AXIS:
            raise HlsError(f"{fn.name}: return value cannot be a stream")
        spec.modes["return"] = InterfaceMode.S_AXILITE
        spec.registers.append(RegEntry("return", offset, max(32, fn.ret.bits), "out"))
    return spec


def loop_directives(fn: Function, directives: list[Directive]) -> None:
    """Apply pipeline/unroll directives onto ``fn.loops`` in place.

    Loops are addressed by explicit source label (``L1: for (...)``)
    when present, else by induction-variable name or header block name;
    unknown labels raise.  An explicit label matches exactly one loop;
    an ivar name matches every loop using that variable.
    """
    for d in directives:
        if d.function != fn.name or d.kind not in ("pipeline", "unroll"):
            continue
        matches = [lp for lp in fn.loops if lp.label == d.target]
        if not matches:
            matches = [
                lp for lp in fn.loops if lp.ivar == d.target or lp.header == d.target
            ]
        if not matches:
            raise HlsError(
                f"{fn.name}: no loop labelled {d.target!r} for {d.kind} directive"
            )
        for lp in matches:
            if d.kind == "pipeline":
                lp.pipeline = True
            else:
                factor = int(d.option("factor", "2"))
                if factor < 1:
                    raise HlsError(f"{fn.name}: unroll factor must be >= 1")
                lp.unroll = factor


def directive_from_tcl(line: str) -> Directive:
    """Parse one ``set_directive_*`` tcl line back into a Directive.

    Inverse of :meth:`Directive.to_tcl`; the HLS tcl runner uses it to
    re-execute generated scripts.
    """
    words = line.split()
    if not words or not words[0].startswith("set_directive_"):
        raise HlsError(f"not a directive line: {line!r}")
    kind_word = words[0][len("set_directive_") :]

    def unquote(w: str) -> str:
        return w.strip('"')

    if kind_word == "interface":
        # set_directive_interface -mode MODE "FN" PORT
        mode = words[words.index("-mode") + 1]
        fn = unquote(words[-2])
        port = words[-1]
        return interface(fn, port, InterfaceMode(mode))
    if kind_word == "pipeline":
        # set_directive_pipeline [-II n] "FN/LOOP"
        ii = None
        if "-II" in words:
            ii = int(words[words.index("-II") + 1])
        fn, _, loop = unquote(words[-1]).partition("/")
        return pipeline(fn, loop, ii)
    if kind_word == "unroll":
        factor = int(words[words.index("-factor") + 1])
        fn, _, loop = unquote(words[-1]).partition("/")
        return unroll(fn, loop, factor)
    if kind_word == "allocation":
        limit = int(words[words.index("-limit") + 1])
        fn = unquote(words[-2])
        resource = words[-1]
        return allocation(fn, resource, limit)
    if kind_word == "array_partition":
        kind = words[words.index("-type") + 1]
        factor = 2
        if "-factor" in words:
            factor = int(words[words.index("-factor") + 1])
        fn = unquote(words[-2])
        arr = words[-1]
        return array_partition(fn, arr, kind=kind, factor=factor)
    raise HlsError(f"unknown directive line: {line!r}")


def directives_file(directives: list[Directive]) -> str:
    """Render the per-core ``directives.tcl`` artifact."""
    lines = ["# Auto-generated directives file"]
    lines.extend(d.to_tcl() for d in directives)
    return "\n".join(lines) + "\n"
