"""Latency estimation: cycle counts from the schedule + loop structure.

The CFG produced by the structured lowering lets us collapse every loop
into a super-node whose cost is ``iterations × per-iteration cost`` (or
the software-pipelined form ``depth + (iterations-1) × II`` when the
loop carries a PIPELINE directive).  The function latency is then the
longest path through the collapsed DAG — a worst-case figure, exactly
what Vivado HLS reports as ``max`` latency.  ``break`` paths (edges
jumping straight to a loop exit) only shorten execution and are ignored
for the worst case.

Loops whose trip count is not a compile-time constant are charged
``default_trip`` iterations and the result is flagged inexact.

The initiation interval combines the resource-constrained bound
(ops per limited unit class, memory ports per array) with a recurrence
bound derived from loop-carried variable slots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hls.ir import Function, LoopInfo
from repro.hls.schedule import (
    ARRAY_PORTS,
    DEFAULT_LIMITS,
    FunctionSchedule,
    timing_of,
)


@dataclass(frozen=True)
class LatencyReport:
    """Worst-case latency of one function."""

    cycles: int
    exact: bool  # False if any loop trip count was assumed
    #: Per-loop detail: header -> (iterations, per-iteration cycles, II or None)
    loops: dict[str, tuple[int, int, int | None]]


def initiation_interval(
    fn: Function,
    schedule: FunctionSchedule,
    loop: LoopInfo,
    *,
    limits: dict[str, int] | None = None,
) -> int:
    """II = max(resource MII, recurrence MII) for *loop*."""
    limits = {**DEFAULT_LIMITS, **(limits or {})}
    # --- resource MII ----------------------------------------------------
    class_ops: dict[str, int] = {}
    array_ops: dict[str, int] = {}
    for bname in loop.blocks:
        block = fn.block(bname)
        for op in block.ops:
            timing = timing_of(op)
            if timing.resource == "mem":
                arr = op.attrs["array"]
                array_ops[arr] = array_ops.get(arr, 0) + 1
            elif timing.resource is not None:
                # An iterative (non-pipelined) unit blocks for unit_ii cycles.
                class_ops[timing.resource] = (
                    class_ops.get(timing.resource, 0) + timing.unit_ii
                )
    res_mii = 1
    for cls, weight in class_ops.items():
        cap = limits.get(cls, 1 << 30)
        res_mii = max(res_mii, math.ceil(weight / cap))
    for arr, n in array_ops.items():
        ports = limits.get(f"mem:{arr}", ARRAY_PORTS)
        res_mii = max(res_mii, math.ceil(n / ports))

    # --- recurrence MII ----------------------------------------------------
    rec_mii = 1
    for bname in loop.blocks:
        block = fn.block(bname)
        bs = schedule.block(bname)
        first_read: dict[str, int] = {}
        last_write: dict[str, int] = {}
        for op in block.ops:
            if op.opcode == "vread":
                var = op.attrs["var"]
                first_read.setdefault(var, bs.of(op).start_cycle)
            elif op.opcode == "vwrite":
                last_write[op.attrs["var"]] = bs.of(op).finish_cycle
        for var, wcycle in last_write.items():
            if var in first_read:
                rec_mii = max(rec_mii, wcycle - first_read[var] + 1)
    return max(res_mii, rec_mii)


def _direct_children(fn: Function) -> dict[int, list[LoopInfo]]:
    """Direct-nesting map: index in ``fn.loops`` -> directly nested loops."""
    children: dict[int, list[LoopInfo]] = {i: [] for i in range(len(fn.loops))}
    parent_of: dict[int, int | None] = {}
    for i, inner in enumerate(fn.loops):
        parent: int | None = None
        for j, outer in enumerate(fn.loops):
            if i == j:
                continue
            if inner.header in outer.blocks and set(inner.blocks) < set(outer.blocks):
                if parent is None or set(outer.blocks) < set(fn.loops[parent].blocks):
                    parent = j
        parent_of[i] = parent
    for i, parent in parent_of.items():
        if parent is not None:
            children[parent].append(fn.loops[i])
    return children


def function_latency(
    fn: Function,
    schedule: FunctionSchedule,
    *,
    default_trip: int = 256,
    limits: dict[str, int] | None = None,
) -> LatencyReport:
    """Worst-case latency of *fn*; see module docstring for the model."""
    exact = True
    loop_detail: dict[str, tuple[int, int, int | None]] = {}
    children = _direct_children(fn)
    loop_index = {id(lp): i for i, lp in enumerate(fn.loops)}
    block_names = {b.name for b in fn.blocks}

    def block_cost(name: str) -> int:
        return schedule.block(name).length

    def region_longest(
        entry: str,
        region: set[str],
        child_by_header: dict[str, LoopInfo],
        *,
        back_target: str | None,
        exit_target: str | None,
    ) -> int:
        """Longest path from *entry* over *region* with child loops collapsed.

        Edges to *back_target* (the enclosing loop's header) and
        *exit_target* (its break destination) are dropped.
        """
        memo: dict[str, int] = {}

        def go(bname: str) -> int:
            if bname in memo:
                return memo[bname]
            memo[bname] = 0  # guard; region graph is acyclic after drops
            if bname in child_by_header:
                child = child_by_header[bname]
                cost = loop_cost(child)
                nxt = child.exit
                if nxt in region or nxt in child_by_header:
                    cost += go(nxt)
                memo[bname] = cost
                return cost
            total = block_cost(bname)
            best = 0
            for succ in fn.block(bname).successors():
                if succ == back_target or succ == exit_target:
                    continue
                if succ in region or succ in child_by_header:
                    best = max(best, go(succ))
            memo[bname] = total + best
            return memo[bname]

        return go(entry)

    def loop_cost(loop: LoopInfo) -> int:
        nonlocal exact
        trips = loop.trip_count
        if trips is None:
            trips = default_trip
            exact = False
        if loop.unroll > 1:
            trips = math.ceil(trips / loop.unroll)

        kids = children[loop_index[id(loop)]]
        child_by_header = {c.header: c for c in kids}
        nested: set[str] = set()
        for c in kids:
            nested.update(c.blocks)
        region = (set(loop.blocks) - nested) & block_names

        iter_cost = region_longest(
            loop.header,
            region,
            child_by_header,
            back_target=loop.header,
            exit_target=loop.exit,
        )

        ii: int | None = None
        if loop.pipeline and trips > 0:
            ii = initiation_interval(fn, schedule, loop, limits=limits)
            total = iter_cost + max(0, trips - 1) * ii
        else:
            if loop.unroll > 1:
                # Unrolled bodies serialize on shared resources; charge the
                # replicated work at the resource-bound rate.
                rate = initiation_interval(fn, schedule, loop, limits=limits)
                iter_cost = iter_cost + (loop.unroll - 1) * rate
            total = trips * iter_cost
        loop_detail[loop.header] = (trips, iter_cost, ii)
        return total

    top = [
        lp
        for i, lp in enumerate(fn.loops)
        if not any(lp in kids for kids in children.values())
    ]
    top_by_header = {lp.header: lp for lp in top}
    top_blocks: set[str] = set()
    for lp in top:
        top_blocks.update(lp.blocks)
    region = block_names - top_blocks

    total = region_longest(
        fn.entry.name, region, top_by_header, back_target=None, exit_target=None
    )
    return LatencyReport(cycles=total, exact=exact, loops=loop_detail)
