"""Type system of the synthesizable C subset.

Scalar types carry a bit width and signedness (used by the resource
model: a 8-bit adder costs fewer LUTs than a 32-bit one).  Arrays are
element type + optional compile-time size; unsized arrays are only legal
as function parameters (their extent comes from the caller).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import CSemanticError


@dataclass(frozen=True, eq=False)
class ScalarType:
    """An integer or floating-point scalar.

    Instances are immutable **interned** singletons; identity comparisons
    (``t is INT32``) are used throughout, so ``deepcopy`` preserves
    identity and unpickling resolves back to the interned instance
    (``__reduce__`` goes through :func:`intern_scalar`) — a type that
    round-trips through the on-disk compilation caches still satisfies
    ``t is INT32``.  Equality takes the identity fast path first, which
    is what the front-end hot loops (``coerce``, CSE keys) hit.
    """

    name: str
    bits: int
    signed: bool
    is_float: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.name, self.bits, self.signed, self.is_float))
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, ScalarType):
            return NotImplemented
        return (
            self.name == other.name
            and self.bits == other.bits
            and self.signed == other.signed
            and self.is_float == other.is_float
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return self.name

    def __deepcopy__(self, memo: dict) -> "ScalarType":
        return self

    def __reduce__(self):
        return (intern_scalar, (self.name, self.bits, self.signed, self.is_float))


#: Intern table: one live instance per distinct scalar type.
_INTERNED: dict[tuple[str, int, bool, bool], ScalarType] = {}


def intern_scalar(
    name: str, bits: int, signed: bool, is_float: bool = False
) -> ScalarType:
    """The canonical :class:`ScalarType` for this shape (create-on-miss)."""
    key = (name, bits, signed, is_float)
    t = _INTERNED.get(key)
    if t is None:
        t = ScalarType(name, bits, signed, is_float)
        _INTERNED[key] = t
    return t


#: The scalar types the frontend accepts, keyed by source spelling.
VOID = intern_scalar("void", 0, False)
BOOL = intern_scalar("bool", 1, False)
UINT8 = intern_scalar("uint8", 8, False)
INT16 = intern_scalar("int16", 16, True)
UINT16 = intern_scalar("uint16", 16, False)
INT32 = intern_scalar("int", 32, True)
UINT32 = intern_scalar("uint", 32, False)
FLOAT = intern_scalar("float", 32, True, is_float=True)

#: Source spellings → types ("unsigned char" is normalized by the lexer).
SPELLINGS: dict[str, ScalarType] = {
    "void": VOID,
    "bool": BOOL,
    "uint8": UINT8,
    "unsigned_char": UINT8,
    "char": UINT8,  # chars are pixels here; treat as unsigned bytes
    "short": INT16,
    "int16": INT16,
    "uint16": UINT16,
    "unsigned_short": UINT16,
    "int": INT32,
    "uint": UINT32,
    "unsigned_int": UINT32,
    "unsigned": UINT32,
    "float": FLOAT,
}


@dataclass(frozen=True)
class ArrayType:
    """An array of scalars, stored flat.

    ``size`` is the total element count (None for unsized parameters).
    Multi-dimensional declarations (``int a[4][8]``) keep their shape in
    ``dims``; indexing flattens row-major at lowering time, exactly as
    the hardware memory is laid out.
    """

    element: ScalarType
    size: int | None = None
    dims: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.dims is not None:
            prod = 1
            for d in self.dims:
                prod *= d
            if self.size is not None and prod != self.size:
                raise CSemanticError(
                    f"array dims {self.dims} disagree with size {self.size}"
                )

    @property
    def rank(self) -> int:
        return len(self.dims) if self.dims is not None else 1

    def __str__(self) -> str:
        if self.dims is not None and len(self.dims) > 1:
            return f"{self.element}" + "".join(f"[{d}]" for d in self.dims)
        return f"{self.element}[{self.size if self.size is not None else ''}]"

    def __deepcopy__(self, memo: dict) -> "ArrayType":
        return self  # immutable


CType = ScalarType | ArrayType


def is_integer(t: CType) -> bool:
    return isinstance(t, ScalarType) and not t.is_float and t.bits > 0


def is_float(t: CType) -> bool:
    return isinstance(t, ScalarType) and t.is_float


def is_arith(t: CType) -> bool:
    return is_integer(t) or is_float(t)


def is_array(t: CType) -> bool:
    return isinstance(t, ArrayType)


def usual_arith(a: ScalarType, b: ScalarType) -> ScalarType:
    """Simplified C usual-arithmetic-conversions.

    Any float operand makes the result float; otherwise both sides are
    promoted to a 32-bit integer, signed unless either side is an
    unsigned 32-bit type.
    """
    if not (is_arith(a) and is_arith(b)):
        raise CSemanticError(f"cannot combine types {a} and {b}")
    if a.is_float or b.is_float:
        return FLOAT
    if (a is UINT32) or (b is UINT32):
        return UINT32
    return INT32


def promote(t: ScalarType) -> ScalarType:
    """Integer promotion: every integer narrower than 32 bits becomes int."""
    if t.is_float:
        return FLOAT
    if t.bits < 32:
        return INT32
    return t


def wrap_int(value: int, t: ScalarType) -> int:
    """Wrap *value* to the representable range of integer type *t*."""
    if t.is_float or t.bits <= 0:
        raise CSemanticError(f"wrap_int on non-integer type {t}")
    mask = (1 << t.bits) - 1
    value &= mask
    if t.signed and value >= (1 << (t.bits - 1)):
        value -= 1 << t.bits
    return value
