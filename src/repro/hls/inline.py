"""User-function inlining (the ``set_directive_inline`` behaviour).

Real HLS flows flatten the call tree before scheduling; this pass does
the same at AST level, so kernels can be written with helper functions::

    int clamp8(int v) { if (v < 0) return 0; if (v > 255) return 255; return v; }
    void f(int a[64], int out[64]) {
        for (int i = 0; i < 64; i++) out[i] = clamp8(a[i] * 3);
    }

Rules (violations raise :class:`CSemanticError`):

* no recursion (direct or mutual);
* early returns are supported through the classic rewrite — a ``done``
  flag plus a return-value slot, guards on the statements following a
  possibly-returning statement, and cascading ``break`` out of loops;
* scalar arguments are copied into fresh locals; array arguments must be
  plain array names and are aliased;
* calls may appear in initializers, assignments, ``if`` conditions,
  expression statements and ``return`` values — but not in loop
  conditions or steps (they re-evaluate; hoisting would change
  semantics).

The pass runs before semantic analysis; after it, only intrinsic calls
remain and :mod:`repro.hls.sema` proceeds unchanged.
"""

from __future__ import annotations

import copy

from repro.hls import cast as A
from repro.hls.cparse import INTRINSICS
from repro.hls.types import INT32, VOID, ArrayType
from repro.util.errors import CSemanticError


def _collect_calls(expr: A.Expr, defs: dict[str, A.FuncDef], out: list[A.Call]) -> None:
    """Post-order collection of user calls (innermost first)."""
    if isinstance(expr, A.Call):
        for arg in expr.args:
            _collect_calls(arg, defs, out)
        if expr.func in defs:
            out.append(expr)
    elif isinstance(expr, A.Unary):
        _collect_calls(expr.operand, defs, out)
    elif isinstance(expr, A.Binary):
        _collect_calls(expr.left, defs, out)
        _collect_calls(expr.right, defs, out)
    elif isinstance(expr, A.Ternary):
        _collect_calls(expr.cond, defs, out)
        _collect_calls(expr.then, defs, out)
        _collect_calls(expr.other, defs, out)
    elif isinstance(expr, A.Cast):
        _collect_calls(expr.operand, defs, out)
    elif isinstance(expr, A.Index):
        _collect_calls(expr.base, defs, out)
        _collect_calls(expr.index, defs, out)


def _has_user_call(expr: A.Expr | None, defs: dict[str, A.FuncDef]) -> bool:
    if expr is None:
        return False
    found: list[A.Call] = []
    _collect_calls(expr, defs, found)
    return bool(found)


def _rename_expr(expr: A.Expr, mapping: dict[str, str]) -> None:
    if isinstance(expr, A.Name):
        if expr.ident in mapping:
            expr.ident = mapping[expr.ident]
    elif isinstance(expr, A.Index):
        _rename_expr(expr.base, mapping)
        _rename_expr(expr.index, mapping)
    elif isinstance(expr, A.Unary):
        _rename_expr(expr.operand, mapping)
    elif isinstance(expr, A.Binary):
        _rename_expr(expr.left, mapping)
        _rename_expr(expr.right, mapping)
    elif isinstance(expr, A.Ternary):
        _rename_expr(expr.cond, mapping)
        _rename_expr(expr.then, mapping)
        _rename_expr(expr.other, mapping)
    elif isinstance(expr, A.Cast):
        _rename_expr(expr.operand, mapping)
    elif isinstance(expr, A.Call):
        for arg in expr.args:
            _rename_expr(arg, mapping)


def _rename_stmt(stmt: A.Stmt, mapping: dict[str, str]) -> None:
    if isinstance(stmt, A.Decl):
        if stmt.name in mapping:
            stmt.name = mapping[stmt.name]
        if stmt.init is not None:
            _rename_expr(stmt.init, mapping)
        if stmt.init_list is not None:
            for e in stmt.init_list:
                _rename_expr(e, mapping)
    elif isinstance(stmt, A.Assign):
        _rename_expr(stmt.target, mapping)
        _rename_expr(stmt.value, mapping)
    elif isinstance(stmt, A.ExprStmt):
        _rename_expr(stmt.expr, mapping)
    elif isinstance(stmt, A.If):
        _rename_expr(stmt.cond, mapping)
        _rename_block(stmt.then, mapping)
        if stmt.other is not None:
            _rename_block(stmt.other, mapping)
    elif isinstance(stmt, A.While):
        _rename_expr(stmt.cond, mapping)
        _rename_block(stmt.body, mapping)
    elif isinstance(stmt, A.DoWhile):
        _rename_block(stmt.body, mapping)
        _rename_expr(stmt.cond, mapping)
    elif isinstance(stmt, A.For):
        if stmt.init is not None:
            _rename_stmt(stmt.init, mapping)
        if stmt.cond is not None:
            _rename_expr(stmt.cond, mapping)
        if stmt.step is not None:
            _rename_stmt(stmt.step, mapping)
        _rename_block(stmt.body, mapping)
    elif isinstance(stmt, A.Return):
        if stmt.value is not None:
            _rename_expr(stmt.value, mapping)
    elif isinstance(stmt, A.Block):
        _rename_block(stmt, mapping)


def _rename_block(block: A.Block, mapping: dict[str, str]) -> None:
    for stmt in block.stmts:
        _rename_stmt(stmt, mapping)


def _local_names(block: A.Block, out: set[str]) -> None:
    for stmt in block.stmts:
        if isinstance(stmt, A.Decl):
            out.add(stmt.name)
        elif isinstance(stmt, A.If):
            _local_names(stmt.then, out)
            if stmt.other is not None:
                _local_names(stmt.other, out)
        elif isinstance(stmt, (A.While, A.DoWhile)):
            _local_names(stmt.body, out)
        elif isinstance(stmt, A.For):
            if isinstance(stmt.init, A.Decl):
                out.add(stmt.init.name)
            _local_names(stmt.body, out)
        elif isinstance(stmt, A.Block):
            _local_names(stmt, out)


def _contains_return(stmt: A.Stmt) -> bool:
    if isinstance(stmt, A.Return):
        return True
    for sub in _stmt_blocks(stmt):
        if any(_contains_return(s) for s in sub.stmts):
            return True
    return False


def _transform_returns(
    block: A.Block, ret_name: str | None, done_name: str, *, in_loop: bool
) -> None:
    """Rewrite every ``return`` in *block* into ret/done assignments.

    Statements following a possibly-returning statement are wrapped in
    ``if (done == 0) { ... }``; returns inside loops additionally
    ``break``, and the break cascades outward through enclosing loops.
    """
    loc = block.loc

    def done_is_set() -> A.Expr:
        return A.Binary(loc, "!=", A.Name(loc, done_name), A.IntLit(loc, 0))

    def done_clear() -> A.Expr:
        return A.Binary(loc, "==", A.Name(loc, done_name), A.IntLit(loc, 0))

    out: list[A.Stmt] = []
    stmts = list(block.stmts)
    for i, stmt in enumerate(stmts):
        if isinstance(stmt, A.Return):
            if stmt.value is not None:
                assert ret_name is not None
                out.append(A.Assign(stmt.loc, A.Name(stmt.loc, ret_name), stmt.value))
            out.append(
                A.Assign(stmt.loc, A.Name(stmt.loc, done_name), A.IntLit(stmt.loc, 1))
            )
            if in_loop:
                out.append(A.Break(stmt.loc))
            block.stmts = out
            return  # anything after an unconditional return is unreachable
        if not _contains_return(stmt):
            out.append(stmt)
            continue
        # A statement that may (conditionally) return.
        if isinstance(stmt, A.If):
            _transform_returns(stmt.then, ret_name, done_name, in_loop=in_loop)
            if stmt.other is not None:
                _transform_returns(stmt.other, ret_name, done_name, in_loop=in_loop)
            out.append(stmt)
        elif isinstance(stmt, (A.While, A.DoWhile, A.For)):
            _transform_returns(stmt.body, ret_name, done_name, in_loop=True)
            out.append(stmt)
            if in_loop:
                out.append(
                    A.If(stmt.loc, done_is_set(), A.Block(stmt.loc, [A.Break(stmt.loc)]), None)
                )
        elif isinstance(stmt, A.Block):
            _transform_returns(stmt, ret_name, done_name, in_loop=in_loop)
            out.append(stmt)
        else:  # pragma: no cover - no other compound statements exist
            out.append(stmt)
        rest = stmts[i + 1 :]
        if rest:
            rest_block = A.Block(loc, rest)
            _transform_returns(rest_block, ret_name, done_name, in_loop=in_loop)
            out.append(A.If(loc, done_clear(), rest_block, None))
        block.stmts = out
        return
    block.stmts = out


class _Inliner:
    def __init__(self, defs: dict[str, A.FuncDef]) -> None:
        self.defs = defs
        self.counter = 0

    def expand_call(self, call: A.Call) -> tuple[list[A.Stmt], A.Expr | None]:
        """Hoisted statements + the replacement expression for *call*."""
        callee = copy.deepcopy(self.defs[call.func])
        self.counter += 1
        prefix = f"__inl{self.counter}_{call.func}_"
        if len(call.args) != len(callee.params):
            raise CSemanticError(
                f"{call.func!r} expects {len(callee.params)} arguments, "
                f"got {len(call.args)}",
                call.loc,
            )

        mapping: dict[str, str] = {}
        hoisted: list[A.Stmt] = []
        for param, arg in zip(callee.params, call.args):
            if isinstance(param.ctype, ArrayType):
                if not isinstance(arg, A.Name):
                    raise CSemanticError(
                        f"array argument to {call.func!r} must be an array name",
                        arg.loc,
                    )
                mapping[param.name] = arg.ident  # alias
            else:
                fresh = prefix + param.name
                mapping[param.name] = fresh
                hoisted.append(A.Decl(call.loc, fresh, param.ctype, arg))
        locals_: set[str] = set()
        _local_names(callee.body, locals_)
        for name in locals_:
            mapping.setdefault(name, prefix + name)

        body_block = A.Block(callee.body.loc, list(callee.body.stmts))
        _rename_block(body_block, mapping)

        done_name = prefix + "done"
        is_void = callee.ret is VOID
        ret_name = None if is_void else prefix + "ret"
        # ret/done live in the caller's scope: the replacement expression
        # reads ret after the inlined block.
        if ret_name is not None:
            zero: A.Expr = (
                A.FloatLit(call.loc, 0.0)
                if callee.ret.is_float
                else A.IntLit(call.loc, 0)
            )
            hoisted.append(A.Decl(call.loc, ret_name, callee.ret, zero))
        hoisted.append(A.Decl(call.loc, done_name, INT32, A.IntLit(call.loc, 0)))
        _transform_returns(body_block, ret_name, done_name, in_loop=False)
        hoisted.append(body_block)
        if ret_name is not None:
            return hoisted, A.Name(call.loc, ret_name)
        return hoisted, None

    def _replace_call(self, expr: A.Expr, call: A.Call, new: A.Expr) -> A.Expr:
        """Return *expr* with *call* (by identity) replaced by *new*."""
        if expr is call:
            return new
        if isinstance(expr, A.Unary):
            expr.operand = self._replace_call(expr.operand, call, new)
        elif isinstance(expr, A.Binary):
            expr.left = self._replace_call(expr.left, call, new)
            expr.right = self._replace_call(expr.right, call, new)
        elif isinstance(expr, A.Ternary):
            expr.cond = self._replace_call(expr.cond, call, new)
            expr.then = self._replace_call(expr.then, call, new)
            expr.other = self._replace_call(expr.other, call, new)
        elif isinstance(expr, A.Cast):
            expr.operand = self._replace_call(expr.operand, call, new)
        elif isinstance(expr, A.Index):
            expr.base = self._replace_call(expr.base, call, new)  # type: ignore[assignment]
            expr.index = self._replace_call(expr.index, call, new)
        elif isinstance(expr, A.Call):
            expr.args = [self._replace_call(a, call, new) for a in expr.args]
        return expr

    def _expand_in_expr(
        self, expr: A.Expr | None, hoisted: list[A.Stmt]
    ) -> A.Expr | None:
        """Expand every user call inside *expr*; returns the new expr."""
        if expr is None:
            return None
        while True:
            calls: list[A.Call] = []
            _collect_calls(expr, self.defs, calls)
            if not calls:
                return expr
            call = calls[0]  # innermost first
            stmts, replacement = self.expand_call(call)
            hoisted.extend(stmts)
            if replacement is None:
                raise CSemanticError(
                    f"void function {call.func!r} used as a value", call.loc
                )
            expr = self._replace_call(expr, call, replacement)

    def process_block(self, block: A.Block) -> None:
        new_stmts: list[A.Stmt] = []
        for stmt in block.stmts:
            hoisted: list[A.Stmt] = []
            if isinstance(stmt, A.Decl):
                stmt.init = self._expand_in_expr(stmt.init, hoisted)
            elif isinstance(stmt, A.Assign):
                if isinstance(stmt.target, A.Index):
                    stmt.target.index = self._expand_in_expr(
                        stmt.target.index, hoisted
                    )
                stmt.value = self._expand_in_expr(stmt.value, hoisted)
            elif isinstance(stmt, A.ExprStmt):
                if isinstance(stmt.expr, A.Call) and stmt.expr.func in self.defs:
                    # Bare call statement: the call's value (if any) is
                    # discarded, so void callees are fine here.
                    stmt.expr.args = [
                        self._expand_in_expr(a, hoisted) for a in stmt.expr.args
                    ]
                    stmts, _ = self.expand_call(stmt.expr)
                    hoisted.extend(stmts)
                    new_stmts.extend(hoisted)
                    continue  # the call statement itself disappears
                stmt.expr = self._expand_in_expr(stmt.expr, hoisted)
            elif isinstance(stmt, A.If):
                stmt.cond = self._expand_in_expr(stmt.cond, hoisted)
                self.process_block(stmt.then)
                if stmt.other is not None:
                    self.process_block(stmt.other)
            elif isinstance(stmt, (A.While, A.DoWhile)):
                if _has_user_call(stmt.cond, self.defs):
                    raise CSemanticError(
                        "function calls in loop conditions cannot be inlined",
                        stmt.loc,
                    )
                self.process_block(stmt.body)
            elif isinstance(stmt, A.For):
                for part in (stmt.cond,):
                    if _has_user_call(part, self.defs):
                        raise CSemanticError(
                            "function calls in loop conditions cannot be inlined",
                            stmt.loc,
                        )
                if isinstance(stmt.step, (A.Assign, A.ExprStmt)):
                    value = stmt.step.value if isinstance(stmt.step, A.Assign) else stmt.step.expr
                    if _has_user_call(value, self.defs):
                        raise CSemanticError(
                            "function calls in loop steps cannot be inlined",
                            stmt.loc,
                        )
                if isinstance(stmt.init, A.Decl):
                    stmt.init.init = self._expand_in_expr(stmt.init.init, hoisted)
                elif isinstance(stmt.init, A.Assign):
                    stmt.init.value = self._expand_in_expr(stmt.init.value, hoisted)
                self.process_block(stmt.body)
            elif isinstance(stmt, A.Return):
                stmt.value = self._expand_in_expr(stmt.value, hoisted)
            elif isinstance(stmt, A.Block):
                self.process_block(stmt)
            new_stmts.extend(hoisted)
            new_stmts.append(stmt)
        block.stmts = new_stmts


def _call_graph(unit: A.TranslationUnit) -> dict[str, set[str]]:
    graph: dict[str, set[str]] = {}

    def scan_expr(expr: A.Expr, callees: set[str]) -> None:
        if isinstance(expr, A.Call) and expr.func not in INTRINSICS:
            callees.add(expr.func)
        for child in _expr_children(expr):
            scan_expr(child, callees)

    def scan_block(block: A.Block, callees: set[str]) -> None:
        for stmt in block.stmts:
            for expr in _stmt_exprs(stmt):
                scan_expr(expr, callees)
            for sub in _stmt_blocks(stmt):
                scan_block(sub, callees)

    for func in unit.funcs:
        callees: set[str] = set()
        scan_block(func.body, callees)
        graph[func.name] = callees
    return graph


def _expr_children(expr: A.Expr) -> list[A.Expr]:
    if isinstance(expr, A.Unary):
        return [expr.operand]
    if isinstance(expr, A.Binary):
        return [expr.left, expr.right]
    if isinstance(expr, A.Ternary):
        return [expr.cond, expr.then, expr.other]
    if isinstance(expr, A.Cast):
        return [expr.operand]
    if isinstance(expr, A.Index):
        return [expr.base, expr.index]
    if isinstance(expr, A.Call):
        return list(expr.args)
    return []


def _stmt_exprs(stmt: A.Stmt) -> list[A.Expr]:
    if isinstance(stmt, A.Decl):
        return [stmt.init] if stmt.init is not None else []
    if isinstance(stmt, A.Assign):
        out: list[A.Expr] = [stmt.value]
        if isinstance(stmt.target, A.Index):
            out.append(stmt.target.index)
        return out
    if isinstance(stmt, A.ExprStmt):
        return [stmt.expr]
    if isinstance(stmt, A.If):
        return [stmt.cond]
    if isinstance(stmt, (A.While, A.DoWhile)):
        return [stmt.cond]
    if isinstance(stmt, A.For):
        out = []
        if stmt.cond is not None:
            out.append(stmt.cond)
        for part in (stmt.init, stmt.step):
            if part is not None:
                out.extend(_stmt_exprs(part))
        return out
    if isinstance(stmt, A.Return):
        return [stmt.value] if stmt.value is not None else []
    return []


def _stmt_blocks(stmt: A.Stmt) -> list[A.Block]:
    if isinstance(stmt, A.If):
        return [stmt.then] + ([stmt.other] if stmt.other is not None else [])
    if isinstance(stmt, (A.While, A.DoWhile, A.For)):
        return [stmt.body]
    if isinstance(stmt, A.Block):
        return [stmt]
    return []


def inline_functions(unit: A.TranslationUnit) -> A.TranslationUnit:
    """Inline every user-function call in *unit*, in place.

    Functions are processed callees-first so nested helpers flatten in
    one pass; recursion (any call-graph cycle) is rejected.
    """
    defs = {f.name: f for f in unit.funcs}
    graph = _call_graph(unit)

    for caller, callees in graph.items():
        for callee in callees:
            if callee not in defs:
                raise CSemanticError(
                    f"{caller!r} calls unknown function {callee!r}"
                )

    # Topological order of the call graph (callees first); cycle -> recursion.
    order: list[str] = []
    state: dict[str, int] = {}

    def visit(name: str, stack: tuple[str, ...]) -> None:
        if state.get(name) == 2:
            return
        if state.get(name) == 1:
            cycle = " -> ".join((*stack[stack.index(name):], name))
            raise CSemanticError(f"recursion is not synthesizable: {cycle}")
        state[name] = 1
        for callee in sorted(graph[name]):
            visit(callee, (*stack, name))
        state[name] = 2
        order.append(name)

    for name in defs:
        visit(name, ())

    inliner = _Inliner(defs)
    for name in order:
        inliner.process_block(defs[name].body)
    return unit
