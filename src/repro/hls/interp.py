"""IR interpreter — the engine behind "C simulation" (csim).

Executes a lowered :class:`~repro.hls.ir.Function` with concrete
arguments, mutating array arguments in place and returning the function
result.  Float arithmetic goes through ``numpy.float32`` so results
match what a single-precision FPGA datapath computes; integer arithmetic
wraps to the declared bit width.

The interpreter is used three ways:

* unit tests compare compiled kernels against NumPy references,
* the SoC simulator calls it to produce accelerator output data,
* the DSE cost model uses its op-count statistics as a software-cycles
  proxy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hls.ir import Function, Op
from repro.hls.types import ArrayType, ScalarType, wrap_int
from repro.util.errors import HlsError

#: numpy dtypes for array storage, keyed by scalar type name.
_DTYPES = {
    "uint8": np.uint8,
    "int16": np.int16,
    "uint16": np.uint16,
    "int": np.int32,
    "uint": np.uint32,
    "float": np.float32,
    "bool": np.uint8,
}


def dtype_for(t: ScalarType) -> type:
    """numpy dtype used to store values of scalar type *t*."""
    try:
        return _DTYPES[t.name]
    except KeyError:
        raise HlsError(f"no storage dtype for type {t}") from None


@dataclass
class ExecStats:
    """Dynamic op counts (and array access order) from one execution."""

    steps: int = 0
    by_opcode: dict[str, int] = field(default_factory=dict)
    #: array name -> indices in access order, split by kind.
    reads: dict[str, list[int]] = field(default_factory=dict)
    writes: dict[str, list[int]] = field(default_factory=dict)

    def count(self, opcode: str) -> None:
        self.steps += 1
        self.by_opcode[opcode] = self.by_opcode.get(opcode, 0) + 1

    def record_access(self, kind: str, array: str, index: int) -> None:
        target = self.reads if kind == "load" else self.writes
        target.setdefault(array, []).append(index)


class Interpreter:
    """Executes one function; construct once, call :meth:`run` per call."""

    def __init__(self, fn: Function, *, max_steps: int = 50_000_000) -> None:
        self.fn = fn
        self.max_steps = max_steps
        self._blocks = {b.name: b for b in fn.blocks}

    def run(
        self, *args: object, collect_stats: bool = False, track_access: bool = False
    ):
        """Execute with positional *args* matching the C signature.

        Scalars are passed by value; arrays as numpy arrays (or anything
        convertible) and are mutated in place.  Returns the function's
        return value (None for void), or ``(value, ExecStats)`` when
        *collect_stats* is true.  *track_access* additionally records
        every array access index (used by the stream-discipline check).
        """
        if len(args) != len(self.fn.params):
            raise HlsError(
                f"{self.fn.name} expects {len(self.fn.params)} arguments, got {len(args)}"
            )
        slots: dict[str, int | float] = {}
        arrays: dict[str, np.ndarray] = {}
        for (name, ctype), arg in zip(self.fn.params, args):
            if isinstance(ctype, ArrayType):
                arr = np.asarray(arg)
                if arr.ndim != 1:
                    arr = arr.reshape(-1)
                if ctype.size is not None and len(arr) < ctype.size:
                    raise HlsError(
                        f"argument {name!r} has {len(arr)} elements, "
                        f"needs {ctype.size}"
                    )
                arrays[name] = arr
            else:
                slots[name] = self._coerce_scalar(arg, ctype)
        for name, atype in self.fn.arrays.items():
            assert atype.size is not None
            arr = np.zeros(atype.size, dtype=dtype_for(atype.element))
            init = self.fn.array_init.get(name)
            if init:
                arr[: len(init)] = init
            arrays[name] = arr
        for name, stype in self.fn.slots.items():
            slots.setdefault(name, 0.0 if stype.is_float else 0)

        stats = ExecStats()
        result = self._exec(slots, arrays, stats, track_access)
        if collect_stats or track_access:
            return result, stats
        return result

    # -- core loop ---------------------------------------------------------
    def _exec(self, slots, arrays, stats: ExecStats, track_access: bool = False):
        values: dict[int, int | float] = {}
        block = self.fn.entry
        steps = 0
        while True:
            jumped = False
            for op in block.ops:
                steps += 1
                if steps > self.max_steps:
                    raise HlsError(
                        f"{self.fn.name}: exceeded {self.max_steps} steps "
                        "(runaway loop?)"
                    )
                stats.count(op.opcode)
                opcode = op.opcode
                if opcode == "jmp":
                    block = self._blocks[op.attrs["target"]]
                    jumped = True
                    break
                if opcode == "br":
                    taken = values[op.operands[0].vid] != 0
                    block = self._blocks[op.attrs["then" if taken else "els"]]
                    jumped = True
                    break
                if opcode == "ret":
                    if op.operands:
                        return values[op.operands[0].vid]
                    return None
                self._eval(op, values, slots, arrays, stats if track_access else None)
            if not jumped:  # pragma: no cover - verify() forbids this
                raise HlsError(f"block {block.name!r} fell through")

    def _eval(self, op: Op, values, slots, arrays, stats: ExecStats | None = None) -> None:
        opcode = op.opcode
        if opcode == "const":
            values[op.result.vid] = op.attrs["value"]
            return
        if opcode == "vread":
            values[op.result.vid] = slots[op.attrs["var"]]
            return
        if opcode == "vwrite":
            slots[op.attrs["var"]] = values[op.operands[0].vid]
            return
        if opcode == "load":
            arr = arrays[op.attrs["array"]]
            idx = values[op.operands[0].vid]
            self._check_bounds(op.attrs["array"], idx, len(arr))
            if stats is not None:
                stats.record_access("load", op.attrs["array"], int(idx))
            raw = arr[idx]
            values[op.result.vid] = (
                float(np.float32(raw)) if op.result.type.is_float else int(raw)
            )
            return
        if opcode == "store":
            arr = arrays[op.attrs["array"]]
            idx = values[op.operands[0].vid]
            self._check_bounds(op.attrs["array"], idx, len(arr))
            if stats is not None:
                stats.record_access("store", op.attrs["array"], int(idx))
            arr[idx] = values[op.operands[1].vid]
            return
        # Pure scalar ops share one evaluator with the constant folder.
        args = tuple(values[v.vid] for v in op.operands)
        values[op.result.vid] = eval_pure(opcode, op.attrs, args, op.result.type)

    # -- helpers --------------------------------------------------------------
    def _check_bounds(self, array: str, idx: int, size: int) -> None:
        if not (0 <= idx < size):
            raise HlsError(
                f"{self.fn.name}: index {idx} out of bounds for array "
                f"{array!r} of size {size}"
            )

    @staticmethod
    def _coerce_scalar(value: object, t: ScalarType) -> int | float:
        if t.is_float:
            return float(np.float32(value))
        return wrap_int(int(value), t)


def eval_pure(
    opcode: str,
    attrs: dict,
    args: tuple,
    result_type: ScalarType,
) -> int | float:
    """Evaluate a side-effect-free scalar op on concrete values.

    Shared between the interpreter and the constant-folding pass so both
    agree bit-for-bit on arithmetic semantics.
    """
    t = result_type
    if opcode == "cast":
        to = attrs["to"]
        if to.is_float:
            return float(np.float32(args[0]))
        return wrap_int(int(args[0]), to)
    if opcode == "cmp":
        a, b = args
        pred = attrs["pred"]
        return int(
            {
                "lt": a < b,
                "le": a <= b,
                "gt": a > b,
                "ge": a >= b,
                "eq": a == b,
                "ne": a != b,
            }[pred]
        )
    if opcode == "select":
        return args[1] if args[0] else args[2]
    if opcode == "neg":
        return _wrap_to(-args[0], t)
    if opcode == "not":
        return _wrap_to(~int(args[0]), t)
    if opcode == "lnot":
        return int(not args[0])
    if opcode == "sqrt":
        if args[0] < 0:
            raise HlsError(f"sqrt of negative value {args[0]}")
        return float(np.sqrt(np.float32(args[0])))

    a, b = args
    if t.is_float:
        fa, fb = np.float32(a), np.float32(b)
        if opcode == "add":
            out = fa + fb
        elif opcode == "sub":
            out = fa - fb
        elif opcode == "mul":
            out = fa * fb
        elif opcode == "div":
            if fb == 0:
                raise HlsError("float division by zero")
            out = fa / fb
        else:
            raise HlsError(f"float op {opcode!r} unsupported")
        return float(np.float32(out))
    ia, ib = int(a), int(b)
    if opcode == "add":
        out = ia + ib
    elif opcode == "sub":
        out = ia - ib
    elif opcode == "mul":
        out = ia * ib
    elif opcode == "div":
        if ib == 0:
            raise HlsError("integer division by zero")
        out = int(ia / ib)  # C semantics: truncate toward zero
    elif opcode == "mod":
        if ib == 0:
            raise HlsError("modulo by zero")
        out = ia - int(ia / ib) * ib
    elif opcode == "shl":
        out = ia << (ib & 31)
    elif opcode == "shr":
        out = ia >> (ib & 31) if t.signed else (ia & 0xFFFFFFFF) >> (ib & 31)
    elif opcode == "and":
        out = ia & ib
    elif opcode == "or":
        out = ia | ib
    elif opcode == "xor":
        out = ia ^ ib
    else:
        raise HlsError(f"unknown opcode {opcode!r}")
    return wrap_int(out, t)


def _wrap_to(value: int | float, t: ScalarType) -> int | float:
    if t.is_float:
        return float(np.float32(value))
    return wrap_int(int(value), t)


def run_function(fn: Function, *args: object):
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(fn).run(*args)
