"""Verilog emission for synthesized cores.

Produces one self-contained module per core: clock/reset, the
``ap_ctrl_hs`` handshake, the resolved AXI-Lite / AXI-Stream / AXI-master
ports, a binary-encoded FSM implementing the schedule, registered
updates for sequential results and variable slots, and combinational
assigns for chained logic.  Iterative units (divider, square root,
floating point) are instantiated as ``repro_*`` library cells, emitted
once per file by :func:`library_cells`.

The RTL is an inspectable artifact of the flow (what Vivado HLS's
``syn/verilog`` output is to the paper); behavioural correctness is
owned by the IR interpreter, and tests check structural properties of
this text (ports, state count, instance counts).
"""

from __future__ import annotations

from repro.hls.bind import Binding
from repro.hls.fsm import Fsm
from repro.hls.interfaces import InterfaceSpec
from repro.hls.ir import Function, Op
from repro.hls.schedule import FunctionSchedule, timing_of

_LIBRARY_CELLS = {
    "div": "repro_sdiv32",
    "fadd": "repro_fadd",
    "fmul": "repro_fmul",
    "fdiv": "repro_fdiv",
    "fsqrt": "repro_fsqrt",
    "cast_if": "repro_cvt_if",
    "mul": "repro_mul32",
    "mul_small": "repro_mulk",
}


def _ports(iface: InterfaceSpec) -> list[str]:
    ports = [
        "input  wire        ap_clk",
        "input  wire        ap_rst_n",
    ]
    if iface.has_lite():
        ports += [
            "input  wire [11:0] s_axi_ctrl_awaddr",
            "input  wire        s_axi_ctrl_awvalid",
            "output wire        s_axi_ctrl_awready",
            "input  wire [31:0] s_axi_ctrl_wdata",
            "input  wire        s_axi_ctrl_wvalid",
            "output wire        s_axi_ctrl_wready",
            "output wire [1:0]  s_axi_ctrl_bresp",
            "output wire        s_axi_ctrl_bvalid",
            "input  wire        s_axi_ctrl_bready",
            "input  wire [11:0] s_axi_ctrl_araddr",
            "input  wire        s_axi_ctrl_arvalid",
            "output wire        s_axi_ctrl_arready",
            "output wire [31:0] s_axi_ctrl_rdata",
            "output wire [1:0]  s_axi_ctrl_rresp",
            "output wire        s_axi_ctrl_rvalid",
            "input  wire        s_axi_ctrl_rready",
        ]
    else:
        ports += [
            "input  wire        ap_start",
            "output reg         ap_done",
            "output wire        ap_idle",
        ]
    for s in iface.streams:
        hi = s.width - 1
        if s.direction == "in":
            ports += [
                f"input  wire [{hi}:0] {s.name}_tdata",
                f"input  wire        {s.name}_tvalid",
                f"output wire        {s.name}_tready",
                f"input  wire        {s.name}_tlast",
            ]
        else:
            ports += [
                f"output wire [{hi}:0] {s.name}_tdata",
                f"output wire        {s.name}_tvalid",
                f"input  wire        {s.name}_tready",
                f"output wire        {s.name}_tlast",
            ]
    for name in iface.m_axi_ports:
        ports += [
            f"output wire [31:0] m_axi_{name}_araddr",
            f"output wire        m_axi_{name}_arvalid",
            f"input  wire        m_axi_{name}_arready",
            f"input  wire [31:0] m_axi_{name}_rdata",
            f"input  wire        m_axi_{name}_rvalid",
            f"output wire        m_axi_{name}_rready",
            f"output wire [31:0] m_axi_{name}_awaddr",
            f"output wire        m_axi_{name}_awvalid",
            f"input  wire        m_axi_{name}_awready",
            f"output wire [31:0] m_axi_{name}_wdata",
            f"output wire        m_axi_{name}_wvalid",
            f"input  wire        m_axi_{name}_wready",
        ]
    return ports


def _expr_of(op: Op) -> str:
    """Combinational Verilog expression for a chained op."""
    def v(val) -> str:
        return f"v{val.vid}"

    oc = op.opcode
    if oc == "const":
        return str(op.attrs["value"]) if not isinstance(op.attrs["value"], float) else (
            f"/* f32 */ 32'h{_f32_bits(op.attrs['value']):08x}"
        )
    if oc == "vread":
        return f"slot_{op.attrs['var']}"
    if oc == "cmp":
        sym = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!="}[
            op.attrs["pred"]
        ]
        return f"($signed({v(op.operands[0])}) {sym} $signed({v(op.operands[1])}))"
    if oc == "select":
        return f"({v(op.operands[0])} ? {v(op.operands[1])} : {v(op.operands[2])})"
    if oc in ("add", "sub", "and", "or", "xor", "shl", "shr"):
        sym = {
            "add": "+",
            "sub": "-",
            "and": "&",
            "or": "|",
            "xor": "^",
            "shl": "<<",
            "shr": ">>>",
        }[oc]
        return f"({v(op.operands[0])} {sym} {v(op.operands[1])})"
    if oc == "neg":
        return f"(-{v(op.operands[0])})"
    if oc == "not":
        return f"(~{v(op.operands[0])})"
    if oc == "lnot":
        return f"(!{v(op.operands[0])})"
    if oc == "cast":
        return v(op.operands[0])
    return "/* unit output */"


def _f32_bits(value: float) -> int:
    import struct

    return struct.unpack("<I", struct.pack("<f", value))[0]


def emit_core(
    fn: Function,
    schedule: FunctionSchedule,
    binding: Binding,
    fsm: Fsm,
    iface: InterfaceSpec,
) -> str:
    """Emit the Verilog for one core (module name = function name)."""
    lines: list[str] = []
    lines.append("`timescale 1ns / 1ps")
    lines.append(f"// Generated by repro-hls from C function {fn.name!r}")
    lines.append(f"module {fn.name} (")
    ports = _ports(iface)
    lines.extend(
        f"    {p}," if i < len(ports) - 1 else f"    {p}" for i, p in enumerate(ports)
    )
    lines.append(");")
    lines.append("")

    # State encoding.
    bits = fsm.state_bits()
    lines.append(f"  // FSM: {fsm.num_states} states, binary encoded")
    for i, st in enumerate(fsm.states):
        lines.append(f"  localparam [{bits - 1}:0] {st.name} = {i};")
    lines.append(f"  reg [{bits - 1}:0] state;")
    lines.append("")

    # Variable slots.
    for name, stype in fn.slots.items():
        width = max(1, stype.bits)
        lines.append(f"  reg [{width - 1}:0] slot_{name};")
    # Local memories.
    for name, atype in fn.arrays.items():
        w = atype.element.bits
        lines.append(
            f"  reg [{w - 1}:0] mem_{name} [0:{(atype.size or 1) - 1}];  // "
            f"{'BRAM' if (atype.size or 0) * w > 1024 else 'LUTRAM'}"
        )
    lines.append("")

    # Functional-unit instances.
    for cls, count in sorted(binding.fu_counts.items()):
        cell = _LIBRARY_CELLS.get(cls)
        if cell is None:
            continue
        for k in range(count):
            lines.append(
                f"  {cell} u_{cls}_{k} (.clk(ap_clk), .a(), .b(), .q());"
            )
    lines.append("")

    # Datapath wires for combinational values.
    for block in fn.blocks:
        bs = schedule.block(block.name)
        for op in block.ops:
            if op.result is None or op.is_terminator():
                continue
            timing = timing_of(op)
            width = max(1, op.result.type.bits)
            if timing.latency == 0:
                lines.append(
                    f"  wire [{width - 1}:0] v{op.result.vid} = "
                    f"{_expr_of(op)};  // {block.name} c{bs.of(op).start_cycle}"
                )
            else:
                lines.append(
                    f"  reg  [{width - 1}:0] v{op.result.vid};"
                    f"  // {timing.resource} result, {block.name} "
                    f"c{bs.of(op).start_cycle}+{timing.latency}"
                )
    lines.append("")

    # Controller.
    lines.append("  always @(posedge ap_clk) begin")
    lines.append("    if (!ap_rst_n) begin")
    lines.append(f"      state <= {fsm.states[0].name};")
    lines.append("    end else begin")
    lines.append("      case (state)")
    for st in fsm.states:
        succs = [t for t in fsm.transitions if t.src == st.name]
        lines.append(f"        {st.name}: begin")
        for t in succs:
            if t.condition is None:
                lines.append(f"          state <= {t.dst};")
            else:
                cond = t.condition.replace("!", "~")
                lines.append(f"          if ({cond}) state <= {t.dst};")
        lines.append("        end")
    lines.append("        default: state <= S_IDLE;")
    lines.append("      endcase")
    lines.append("    end")
    lines.append("  end")
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def library_cells() -> str:
    """Stub definitions of the iterative/pipelined unit library."""
    out = ["`timescale 1ns / 1ps", "// repro-hls functional unit library"]
    for cls, cell in sorted(_LIBRARY_CELLS.items()):
        out.append(f"module {cell} (input wire clk, input wire [31:0] a,")
        out.append("                input wire [31:0] b, output reg [31:0] q);")
        out.append(f"  // behavioural model of the {cls} unit")
        out.append("endmodule")
        out.append("")
    return "\n".join(out)
