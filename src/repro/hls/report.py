"""Synthesis report rendering (the ``csynth.rpt`` analogue)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls.latency import LatencyReport
from repro.hls.resources import ResourceUsage
from repro.util.text import format_table


@dataclass(frozen=True)
class SynthesisReport:
    """Human-readable summary of one core's synthesis run."""

    core: str
    clock_ns: float
    states: int
    latency: LatencyReport
    resources: ResourceUsage
    registers: int
    fu_counts: dict[str, int]

    def render(self) -> str:
        lines = [
            f"== Synthesis report: {self.core} ==",
            f"Target clock: {self.clock_ns:.1f} ns",
            f"FSM states:   {self.states}",
            (
                f"Latency:      {self.latency.cycles} cycles "
                f"({'exact' if self.latency.exact else 'worst-case estimate'})"
            ),
        ]
        if self.latency.loops:
            rows = [
                (header, trips, iter_cost, ii if ii is not None else "-")
                for header, (trips, iter_cost, ii) in self.latency.loops.items()
            ]
            lines.append(
                format_table(
                    ["loop", "trips", "iter cycles", "II"], rows, title="Loops:"
                )
            )
        if self.fu_counts:
            rows = sorted(self.fu_counts.items())
            lines.append(format_table(["unit", "count"], rows, title="Functional units:"))
        r = self.resources
        lines.append(
            format_table(
                ["LUT", "FF", "RAMB18", "DSP"],
                [[r.lut, r.ff, r.bram18, r.dsp]],
                title="Utilization estimate:",
            )
        )
        lines.append(f"Data registers bound: {self.registers} bits")
        return "\n".join(lines) + "\n"
