"""Resource binding: functional-unit allocation and left-edge register
binding.

Functional units
----------------
Blocks execute at different times, so units are shared across blocks for
free: the allocation per resource class is the *maximum* concurrent use
in any single block (which the scheduler already capped at the class
limit).

Registers
---------
A value needs a register iff it crosses a cycle boundary: produced by a
sequential unit, or produced combinationally in an earlier cycle than
one of its uses.  Lifetimes ``[def_cycle, last_use_cycle]`` within each
block feed the classic left-edge algorithm (per bit-width class) to
share registers.  Every variable slot additionally owns one dedicated
register, since slots live across blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.ir import Function
from repro.hls.schedule import FunctionSchedule, timing_of


@dataclass
class Binding:
    """Result of FU + register binding for one function."""

    #: Resource class -> number of unit instances.
    fu_counts: dict[str, int] = field(default_factory=dict)
    #: Width -> number of shared data registers (from left-edge).
    registers: dict[int, int] = field(default_factory=dict)
    #: Width -> number of dedicated slot registers.
    slot_registers: dict[int, int] = field(default_factory=dict)

    def total_register_bits(self) -> int:
        bits = sum(w * n for w, n in self.registers.items())
        bits += sum(w * n for w, n in self.slot_registers.items())
        return bits


def left_edge(intervals: list[tuple[int, int]]) -> int:
    """Minimum number of registers for the given ``[start, end]`` lifetimes.

    Classic left-edge: sort by start; greedily pack each interval into the
    first register whose last interval ended before this one starts.
    Returns the register count (equals the maximum overlap depth).
    """
    tracks: list[int] = []  # end cycle of the last interval per register
    for start, end in sorted(intervals):
        for i, track_end in enumerate(tracks):
            if track_end < start:
                tracks[i] = end
                break
        else:
            tracks.append(end)
    return len(tracks)


def bind_function(fn: Function, schedule: FunctionSchedule) -> Binding:
    """Allocate functional units and registers for *fn* under *schedule*."""
    binding = Binding(fu_counts=dict(schedule.fu_peak))

    # --- register lifetimes, per block and width --------------------------------
    by_width: dict[int, list[tuple[int, int]]] = {}
    for block in fn.blocks:
        bs = schedule.block(block.name)
        # Producer + consumers of every value in this block.
        last_use: dict[int, int] = {}
        producer: dict[int, tuple[int, int]] = {}  # vid -> (def_cycle, width)
        for op in block.ops:
            sop = bs.of(op)
            for v in op.operands:
                if v.vid in producer:
                    last_use[v.vid] = max(last_use.get(v.vid, 0), sop.start_cycle)
            if op.result is not None:
                timing = timing_of(op)
                if timing.latency > 0:
                    def_cycle = sop.start_cycle + timing.latency - 1
                else:
                    def_cycle = sop.finish_cycle
                producer[op.result.vid] = (def_cycle, max(1, op.result.type.bits))
        for vid, (def_cycle, width) in producer.items():
            use = last_use.get(vid)
            if use is None or use <= def_cycle:
                continue  # consumed combinationally in the same cycle
            by_width.setdefault(width, []).append((def_cycle, use))

    for width, intervals in by_width.items():
        binding.registers[width] = left_edge(intervals)

    # --- dedicated slot registers -------------------------------------------------
    for stype in fn.slots.values():
        width = max(1, stype.bits)
        binding.slot_registers[width] = binding.slot_registers.get(width, 0) + 1
    return binding
