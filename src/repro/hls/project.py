"""The Vivado-HLS-like project front door.

:class:`HlsProject` mirrors the tcl workflow the paper's tool generates
(Section IV-B steps 2-4): create a project, add sources, set the top
function, append interface/loop directives, then ``csynth()``.  It also
renders the two tcl artifacts the real flow would feed Vivado HLS — the
project script and the directives file.

:func:`synthesize_function` is the one-call variant used throughout the
tests and the flow orchestrator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.hls import fncache
from repro.hls.bind import Binding, bind_function
from repro.hls.clex import clex, token_fingerprint
from repro.hls.cparse import parse_c
from repro.hls.inline import inline_functions
from repro.hls.fsm import Fsm, build_fsm
from repro.hls.ir import ir_digest
from repro.hls.interfaces import (
    Directive,
    InterfaceMode,
    InterfaceSpec,
    allocation_limits,
    directives_file,
    interface,
    loop_directives,
    partition_specs,
    resolve_interfaces,
)
from repro.hls.interp import ExecStats, Interpreter
from repro.hls.ir import Function
from repro.hls.latency import LatencyReport, function_latency
from repro.hls.lower import lower_function
from repro.hls.passes import run_default_pipeline, tag_const_muls
from repro.hls.report import SynthesisReport
from repro.hls.resources import ResourceUsage, estimate_core
from repro.hls.rtl import emit_core
from repro.hls.schedule import CLOCK_NS, FunctionSchedule, schedule_function
from repro.hls.sema import analyze
from repro.util.errors import HlsError


@dataclass
class SynthesisResult:
    """Everything produced by one ``csynth`` run of one core."""

    top: str
    function: Function
    schedule: FunctionSchedule
    binding: Binding
    fsm: Fsm
    iface: InterfaceSpec
    resources: ResourceUsage
    latency: LatencyReport
    verilog: str
    directives: list[Directive]
    report: SynthesisReport
    #: True when the pass pipeline reached a genuine fixpoint.
    pipeline_converged: bool = True
    #: Per-function memo lookups that served this synthesis (0-2: the
    #: front-end stage and the full-result stage) and the complement.
    fn_cache_hits: int = 0
    fn_cache_misses: int = 0

    def interpreter(self) -> Interpreter:
        """Executable model of the core (used by csim and the simulator)."""
        return Interpreter(self.function)

    def run(self, *args):
        """Execute the core's behaviour on concrete arguments."""
        return self.interpreter().run(*args)


#: Sentinel: "use the process-default cache" (pass ``None`` to disable).
_ACTIVE_CACHE = object()

#: Token fingerprints of recently seen sources — the DSE hot loop calls
#: ``synthesize_function`` with the same text over and over, and lexing
#: just to recompute a known fingerprint would dominate a memo hit.
_FP_MEMO: "OrderedDict[str, str]" = __import__("collections").OrderedDict()
_FP_MEMO_CAP = 128


def _source_fingerprint(source: str) -> str:
    fp = _FP_MEMO.get(source)
    if fp is None:
        fp = token_fingerprint(clex(source))
        _FP_MEMO[source] = fp
        while len(_FP_MEMO) > _FP_MEMO_CAP:
            _FP_MEMO.popitem(last=False)
    else:
        _FP_MEMO.move_to_end(source)
    return fp


def synthesize_function(
    source: str,
    top: str,
    directives: list[Directive] | tuple[Directive, ...] = (),
    *,
    limits: dict[str, int] | None = None,
    default_trip: int = 256,
    optimize: bool = True,
    cache: "fncache.FunctionCache | None" = _ACTIVE_CACHE,  # type: ignore[assignment]
) -> SynthesisResult:
    """Full HLS pipeline for one C function; see module docstring.

    The pipeline is memoized at two levels through *cache* (default: the
    process-wide :func:`repro.hls.fncache.active_cache`): the front end
    (token fingerprint → lowered+optimized IR) and the full result
    (IR digest + directives slice → :class:`SynthesisResult`).  Both
    serve exactly what an uncached run would compute — every stage is
    deterministic in the cached key — so artifacts stay byte-identical.
    """
    if cache is _ACTIVE_CACHE:
        cache = fncache.active_cache()
    dir_list = list(directives)
    hits = misses = 0

    entry = None
    r_key = None
    if cache is not None:
        fe_key = fncache.frontend_key(_source_fingerprint(source), top, optimize)
        entry = cache.get(fe_key, stage="frontend", fn_name=top)
        if entry is not None:
            hits += 1
        else:
            misses += 1
    fn = None
    converged = True
    if entry is None:
        unit = parse_c(source)
        inline_functions(unit)
        sema = analyze(unit)
        fn = lower_function(sema, top)
        if optimize:
            pipe = run_default_pipeline(fn)
            converged = pipe.converged
        if cache is not None:
            # The entry pickles the IR while it is still pristine — the
            # middle-end below mutates ``fn`` in place.
            entry = fncache.FrontendEntry.from_function(fn, converged, ir_digest(fn))
            cache.put(fe_key, entry, stage="frontend", fn_name=top)

    if cache is not None:
        slice_tcl = directives_file([d for d in dir_list if d.function == top])
        r_key = fncache.result_key(entry.ir_digest, slice_tcl, limits, default_trip)
        cached = cache.get(r_key, stage="result", fn_name=top)
        if cached is not None:
            hits += 1
            return replace(
                cached,
                directives=dir_list,
                fn_cache_hits=hits,
                fn_cache_misses=misses,
            )
        misses += 1
        if fn is None:
            fn = entry.materialize()
        converged = entry.converged
    loop_directives(fn, dir_list)
    tag_const_muls(fn)
    limits = {**allocation_limits(top, dir_list), **(limits or {})}
    partitions = partition_specs(top, dir_list)
    for array, (kind, factor) in partitions.items():
        if array not in fn.arrays and array not in fn.array_params:
            raise HlsError(f"{top}: array_partition on unknown array {array!r}")
        if kind == "complete":
            size = fn.arrays.get(array, fn.array_params.get(array)).size or 1024
            limits.setdefault(f"mem:{array}", 2 * size)
        else:
            limits.setdefault(f"mem:{array}", 2 * factor)
    schedule = schedule_function(fn, limits=limits)
    binding = bind_function(fn, schedule)
    fsm = build_fsm(fn, schedule)
    iface = resolve_interfaces(fn, dir_list)
    latency = function_latency(fn, schedule, default_trip=default_trip, limits=limits)
    resources = estimate_core(
        fn,
        schedule,
        binding,
        iface,
        fsm.num_states,
        partitioned={a for a, (k, _) in partitions.items() if k == "complete"},
    )
    verilog = emit_core(fn, schedule, binding, fsm, iface)
    report = SynthesisReport(
        core=top,
        clock_ns=CLOCK_NS,
        states=fsm.num_states,
        latency=latency,
        resources=resources,
        registers=binding.total_register_bits(),
        fu_counts=dict(binding.fu_counts),
    )
    result = SynthesisResult(
        top=top,
        function=fn,
        schedule=schedule,
        binding=binding,
        fsm=fsm,
        iface=iface,
        resources=resources,
        latency=latency,
        verilog=verilog,
        directives=dir_list,
        report=report,
        pipeline_converged=converged,
        fn_cache_hits=hits,
        fn_cache_misses=misses,
    )
    if cache is not None and r_key is not None:
        cache.put(r_key, result, stage="result", fn_name=top)
    return result


@dataclass
class HlsProject:
    """A Vivado-HLS-style project: sources + top + directives.

    The method names follow the tcl commands the paper's tool emits:
    ``add_files``, ``set_top``, ``csynth_design`` (as :meth:`csynth`).
    """

    name: str
    sources: list[str] = field(default_factory=list)
    top: str | None = None
    directives: list[Directive] = field(default_factory=list)
    clock_ns: float = CLOCK_NS
    part: str = "xc7z020clg484-1"  # the Zedboard device
    _result: SynthesisResult | None = None

    # -- tcl-like API ------------------------------------------------------
    def add_files(self, source: str) -> "HlsProject":
        self.sources.append(source)
        return self

    def set_top(self, top: str) -> "HlsProject":
        self.top = top
        return self

    def add_directive(self, directive: Directive) -> "HlsProject":
        self.directives.append(directive)
        return self

    def stream_port(self, port: str) -> "HlsProject":
        """Declare *port* as AXI-Stream (the DSL's ``is`` keyword)."""
        if self.top is None:
            raise HlsError("set_top before declaring interfaces")
        return self.add_directive(interface(self.top, port, InterfaceMode.AXIS))

    def lite_port(self, port: str) -> "HlsProject":
        """Declare *port* as AXI-Lite (the DSL's ``i`` keyword)."""
        if self.top is None:
            raise HlsError("set_top before declaring interfaces")
        return self.add_directive(interface(self.top, port, InterfaceMode.S_AXILITE))

    # -- synthesis -----------------------------------------------------------
    def csynth(
        self,
        *,
        limits: dict[str, int] | None = None,
        default_trip: int = 256,
    ) -> SynthesisResult:
        if self.top is None:
            raise HlsError(f"project {self.name!r}: no top function set")
        if not self.sources:
            raise HlsError(f"project {self.name!r}: no sources added")
        self._result = synthesize_function(
            "\n".join(self.sources),
            self.top,
            self.directives,
            limits=limits,
            default_trip=default_trip,
        )
        return self._result

    @property
    def result(self) -> SynthesisResult:
        if self._result is None:
            raise HlsError(f"project {self.name!r}: csynth has not run")
        return self._result

    def csim(self, *args):
        """C-simulation: execute the synthesized behaviour on *args*."""
        return self.result.run(*args)

    def content_key(self, backend_version: str = "") -> str:
        """Content digest of this project's build inputs.

        Everything ``csynth`` depends on — source text, top name,
        directives in application order — plus the tcl backend version;
        the key of the flow's content-addressed build cache.
        """
        from repro.flow.buildcache import cache_key  # lazy: avoid layer cycle

        if self.top is None:
            raise HlsError(f"project {self.name!r}: no top function set")
        return cache_key(
            self.top, "\n".join(self.sources), self.directives_tcl(), backend_version
        )

    # -- artifacts ---------------------------------------------------------------
    def script_tcl(self) -> str:
        """The Vivado HLS project script the paper's tool generates."""
        lines = [
            f"open_project {self.name}",
            f"set_top {self.top}",
            f"add_files {self.name}/{self.top}.c",
            "open_solution solution1",
            f"set_part {{{self.part}}}",
            f"create_clock -period {self.clock_ns:g} -name default",
            f"source {self.name}/directives.tcl",
            "csynth_design",
            "export_design -format ip_catalog",
            "exit",
        ]
        return "\n".join(lines) + "\n"

    def directives_tcl(self) -> str:
        return directives_file(self.directives)


def verify_stream_discipline(result: SynthesisResult, *args) -> None:
    """Check every AXI-Stream port is accessed strictly sequentially.

    Runs the core's behaviour on *args* with access tracking and raises
    :class:`HlsError` if a stream input is not read exactly
    ``0, 1, ..., n-1`` (or an output not written in that order) — the
    discipline a real axis interface physically enforces.  Local arrays
    and ``m_axi`` ports may be accessed randomly.
    """
    _, stats = result.interpreter().run(*args, track_access=True)
    for stream in result.iface.streams:
        atype = result.function.array_params[stream.name]
        expected = list(range(atype.size or 0))
        if stream.direction == "in":
            accesses = stats.reads.get(stream.name, [])
            kind = "read"
            if stats.writes.get(stream.name):
                raise HlsError(
                    f"{result.top}: stream input {stream.name!r} is written"
                )
        else:
            accesses = stats.writes.get(stream.name, [])
            kind = "written"
            if stats.reads.get(stream.name):
                raise HlsError(
                    f"{result.top}: stream output {stream.name!r} is read back"
                )
        if accesses != expected:
            preview = accesses[:8]
            raise HlsError(
                f"{result.top}: stream port {stream.name!r} must be {kind} "
                f"sequentially 0..{len(expected) - 1}; observed order starts "
                f"{preview}"
            )


#: Approximate ARM Cortex-A9 cycles per executed IR op, by class.  Loads
#: hit the L1 most of the time; integer division and every float op go
#: through multi-cycle units (the A9 FPU is not single-cycle).
_SW_OP_CYCLES = {
    "div": 12.0,
    "mod": 12.0,
    "mul": 2.0,
    "load": 3.0,
    "store": 2.0,
    "sqrt": 16.0,
    "br": 2.0,  # branch misprediction amortized
}
_SW_DEFAULT_OP_CYCLES = 1.0
_SW_FLOAT_EXTRA = 3.0  # fadd/fmul/fdiv executed on the VFP


def estimate_sw_cycles(result: SynthesisResult, *args, scale: float = 1.0) -> int:
    """Software-execution cost proxy: per-opcode-weighted dynamic count.

    Runs the core's behaviour on *args* and converts the executed IR ops
    into an estimated ARM Cortex-A9 cycle count using a per-class CPI
    table (divisions, float ops and memory accesses cost more than ALU
    ops).  Used by the DSE cost model when no measured ``sw_cycles`` is
    available.
    """
    _, stats = result.interpreter().run(*args, collect_stats=True)
    assert isinstance(stats, ExecStats)
    total = 0.0
    has_float = any(cls.startswith("f") for cls in result.binding.fu_counts)
    for opcode, n in stats.by_opcode.items():
        cost = _SW_OP_CYCLES.get(opcode, _SW_DEFAULT_OP_CYCLES)
        if has_float and opcode in ("add", "sub", "mul", "div"):
            cost += _SW_FLOAT_EXTRA
        total += n * cost
    return int(total * scale)


__all__ = [
    "HlsProject",
    "SynthesisResult",
    "estimate_sw_cycles",
    "synthesize_function",
    "verify_stream_discipline",
]
