"""FSMD (finite-state machine with datapath) construction.

Each basic block contributes ``schedule.length`` sequential states; the
block terminator selects the successor block's first state.  An extra
``IDLE`` state implements the ap_ctrl handshake (start/done) the AXI-Lite
wrapper drives, mirroring Vivado HLS's ``ap_ctrl_hs`` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.ir import Function
from repro.hls.schedule import FunctionSchedule

IDLE = "S_IDLE"


@dataclass(frozen=True)
class State:
    name: str
    block: str | None  # None for IDLE
    cycle: int  # position within the block


@dataclass(frozen=True)
class Transition:
    src: str
    dst: str
    #: None for unconditional; otherwise ("value-of-branch", taken?) label.
    condition: str | None = None


@dataclass
class Fsm:
    states: list[State] = field(default_factory=list)
    transitions: list[Transition] = field(default_factory=list)

    @property
    def num_states(self) -> int:
        return len(self.states)

    def state_bits(self) -> int:
        """Bits of a one-hot-free binary state register."""
        n = max(1, self.num_states - 1)
        return n.bit_length()

    def successors(self, state: str) -> list[str]:
        return [t.dst for t in self.transitions if t.src == state]


def build_fsm(fn: Function, schedule: FunctionSchedule) -> Fsm:
    """Construct the controller FSM for *fn* under *schedule*."""
    fsm = Fsm()
    fsm.states.append(State(IDLE, None, 0))
    first_state: dict[str, str] = {}
    for block in fn.blocks:
        bs = schedule.block(block.name)
        for cycle in range(bs.length):
            name = f"S_{block.name}_{cycle}"
            fsm.states.append(State(name, block.name, cycle))
            if cycle == 0:
                first_state[block.name] = name

    # IDLE -> entry on ap_start.
    fsm.transitions.append(
        Transition(IDLE, first_state[fn.entry.name], condition="ap_start")
    )
    for block in fn.blocks:
        bs = schedule.block(block.name)
        # Sequential states within the block.
        for cycle in range(bs.length - 1):
            fsm.transitions.append(
                Transition(f"S_{block.name}_{cycle}", f"S_{block.name}_{cycle + 1}")
            )
        last = f"S_{block.name}_{bs.length - 1}"
        term = block.terminator()
        if term.opcode == "jmp":
            fsm.transitions.append(Transition(last, first_state[term.attrs["target"]]))
        elif term.opcode == "br":
            fsm.transitions.append(
                Transition(last, first_state[term.attrs["then"]], condition="br_taken")
            )
            fsm.transitions.append(
                Transition(last, first_state[term.attrs["els"]], condition="!br_taken")
            )
        else:  # ret
            fsm.transitions.append(Transition(last, IDLE, condition="ap_done"))
    return fsm
