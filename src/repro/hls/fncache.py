"""Per-function HLS compilation cache — the sub-core memo layer.

The flow's :class:`~repro.flow.buildcache.BuildCache` memoizes **whole
cores**: its key covers the full source text, the rendered directives
and the backend version, so touching any of them recompiles the core
from the lexer up.  This module adds the layer *underneath*: two memo
tables inside ``synthesize_function`` itself, keyed on content the
whole-core key normalizes away.

* **Front-end memo** — keyed on the token fingerprint of the source
  (:func:`~repro.hls.clex.token_fingerprint`; comments and whitespace
  do not participate), the top name and the optimize flag.  A hit skips
  parse → sema → lower → ``run_default_pipeline`` and hands back a deep
  copy of the lowered+optimized IR, ready for a fresh directive slice —
  the DSE hot loop, where only directives change between calls.
* **Result memo** — keyed on the canonical IR digest
  (:func:`~repro.hls.ir.ir_digest`), this function's directive slice,
  the explicit limits and the default trip count, plus the engine
  version.  A hit makes scheduling, binding, FSM construction, latency
  analysis and RTL emission a single lookup.

Both keys are process-stable (no ``id()``, no ``PYTHONHASHSEED``
dependence) and both payloads are exactly what the uncached pipeline
would have produced — the compilation pipeline is deterministic in its
inputs, so serving a memoized result preserves byte-identity of every
artifact (the differential suite in ``tests/test_fncache.py`` and
``benchmarks/bench_hls.py`` prove it end to end).

Persistence reuses the hardened :class:`BuildCache` machinery —
integrity headers, quarantine-on-corruption, cross-process locking,
scrub — rooted at ``<flow cache dir>/fn``.  Without a directory the
cache is a bounded in-process memo.  ``REPRO_HLS_FN_CACHE=0`` disables
the layer entirely (the differential legs build with it off).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass

from repro.hls.ir import Function
from repro.obs.events import BUS as _BUS
from repro.obs.metrics import REGISTRY as _METRICS

#: Version of the per-function memo layout; combined with the engine
#: version in every key, so bumping either strands stale entries.
FN_CACHE_VERSION = "1"


def _engine_version() -> str:
    # Lazy: repro.flow imports repro.hls, so a top-level import here
    # would be circular.  After the first call it is a sys.modules hit.
    from repro.flow.buildcache import ENGINE_VERSION

    return ENGINE_VERSION


def _digest_fields(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        data = part.encode()
        h.update(len(data).to_bytes(8, "little"))
        h.update(data)
    return h.hexdigest()


def frontend_key(token_fp: str, top: str, optimize: bool) -> str:
    """Key of the front-end memo (token stream → optimized IR)."""
    return _digest_fields(
        "fn-frontend", FN_CACHE_VERSION, _engine_version(), top, token_fp,
        "opt" if optimize else "raw",
    )


def result_key(
    ir_dig: str,
    directives_slice: str,
    limits: dict[str, int] | None,
    default_trip: int,
) -> str:
    """Key of the result memo — ``(IR digest, directives slice, engine)``.

    *directives_slice* is the rendered tcl of the directives addressing
    this function only (the middle-end never reads any other), *limits*
    the caller-supplied overrides, canonically sorted.
    """
    canon_limits = ",".join(f"{k}={v}" for k, v in sorted((limits or {}).items()))
    return _digest_fields(
        "fn-result", FN_CACHE_VERSION, _engine_version(), ir_dig,
        directives_slice, canon_limits, str(default_trip),
    )


@dataclass
class FrontendEntry:
    """Cached front-end outcome: pristine optimized IR + its identity.

    The IR is held pickled: ``pickle.loads`` is several times faster
    than ``copy.deepcopy`` on Function graphs (measured ~7x on the
    Table-I kernels), and the entry round-trips to disk unchanged.
    Scalar types re-intern on load (``ScalarType.__reduce__``), so
    identity-based fast paths keep working on materialized copies.
    """

    blob: bytes
    converged: bool
    ir_digest: str

    @classmethod
    def from_function(cls, fn: Function, converged: bool, ir_dig: str) -> "FrontendEntry":
        return cls(pickle.dumps(fn, pickle.HIGHEST_PROTOCOL), converged, ir_dig)

    def materialize(self) -> Function:
        """A private copy of the IR, safe for the mutating middle-end
        (``loop_directives`` and ``tag_const_muls`` write into it)."""
        return pickle.loads(self.blob)


@dataclass
class FnCacheStats:
    """Lookup counters for one :class:`FunctionCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


class FunctionCache:
    """Two-level-keyed memo of per-function compilation stages.

    In-process entries live in a bounded LRU (``memory_entries``); with
    *cache_dir* set, entries additionally persist through a
    :class:`~repro.flow.buildcache.BuildCache` (same integrity header,
    quarantine and locking discipline as the whole-core cache) and
    cumulative hit/miss counters persist in ``<dir>/stats.json`` so
    ``repro cachecheck`` can report a hit rate across processes.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        *,
        max_entries: int | None = 4096,
        memory_entries: int = 256,
    ) -> None:
        self.cache_dir = cache_dir
        self.memory_entries = memory_entries
        self.stats = FnCacheStats()
        #: Portion of ``stats`` already folded into the on-disk counters.
        self._flushed: dict[str, int] = {"hits": 0, "misses": 0, "stores": 0}
        self._memory: OrderedDict[str, object] = OrderedDict()
        # The parallel HLS pool shares one instance across its worker
        # threads; the cross-process FileLock in BuildCache is depth-
        # reentrant (not thread-exclusive), so intra-process exclusion
        # needs its own lock.
        self._lock = threading.Lock()
        self._store = None
        if cache_dir is not None:
            from repro.flow.buildcache import BuildCache  # lazy: layer cycle

            self._store = BuildCache(cache_dir, max_entries=max_entries)

    # -- lookup ------------------------------------------------------------
    def get(self, key: str, *, stage: str, fn_name: str) -> object | None:
        with self._lock:
            value = self._memory.get(key)
            in_memory = value is not None
            if in_memory:
                self._memory.move_to_end(key)
            elif self._store is not None:
                value = self._store.get(key)
                if value is not None:
                    self._remember(key, value)
            if value is not None:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
            if not in_memory and self._store is not None:
                self._flush_stats_soon()
        self._observe("hit" if value is not None else "miss", key, stage, fn_name)
        return value

    def put(self, key: str, value: object, *, stage: str, fn_name: str) -> None:
        with self._lock:
            self._remember(key, value)
            self.stats.stores += 1
            if self._store is not None:
                self._store.put(key, value)
                self._flush_stats_soon()
        self._observe("store", key, stage, fn_name)

    def _remember(self, key: str, value: object) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _observe(self, what: str, key: str, stage: str, fn_name: str) -> None:
        if not _BUS.enabled:
            return
        _BUS.emit(f"hls.fn_cache.{what}", key[:16], stage=stage, fn=fn_name)
        if what == "hit":
            _METRICS.counter(
                "hls.fn_cache_hits_total",
                "per-function memo lookups served from the cache",
            ).inc()
        elif what == "miss":
            _METRICS.counter(
                "hls.fn_cache_misses_total",
                "per-function memo lookups that found nothing",
            ).inc()

    # -- persistent stats --------------------------------------------------
    def _stats_path(self):
        assert self._store is not None and self._store.dir is not None
        return self._store.dir / "stats.json"

    def _flush_stats_soon(self) -> None:
        """Fold this instance's counters into the on-disk cumulative ones.

        Called on every disk-level event — rare enough (once per key per
        process on the read side, once per cold compile on the write
        side) that a small atomic JSON rewrite is in the noise.
        """
        if self._store is None:
            return
        path = self._stats_path()
        with self._store._locked():
            disk = self._load_disk_stats()
            disk["hits"] += self.stats.hits - self._flushed.get("hits", 0)
            disk["misses"] += self.stats.misses - self._flushed.get("misses", 0)
            disk["stores"] += self.stats.stores - self._flushed.get("stores", 0)
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_text(json.dumps(disk, sort_keys=True))
            os.replace(tmp, path)
        self._flushed = self.stats.as_dict()

    def _load_disk_stats(self) -> dict[str, int]:
        base = {"hits": 0, "misses": 0, "stores": 0}
        try:
            raw = json.loads(self._stats_path().read_text())
        except (OSError, ValueError):
            return base
        for k in base:
            v = raw.get(k)
            if isinstance(v, int) and v >= 0:
                base[k] = v
        return base

    # -- maintenance -------------------------------------------------------
    def scrub(self):
        """Integrity-check every persistent entry (quarantining corrupt
        ones via the shared BuildCache machinery) and reset the
        persistent counters — hit rates read "since last scrub"."""
        assert self._store is not None, "scrub needs a disk-backed cache"
        with self._lock:
            report = self._store.scrub()
            path = self._stats_path()
            with self._store._locked():
                tmp = path.with_name(path.name + ".tmp")
                tmp.write_text(json.dumps({"hits": 0, "misses": 0, "stores": 0}))
                os.replace(tmp, path)
            self._flushed = self.stats.as_dict()
            return report

    def report(self) -> dict:
        """The ``fn_cache`` section of ``repro cachecheck --json``."""
        entries = 0
        size = 0
        hit_rate = None
        disk: dict[str, int] = {}
        if self._store is not None:
            files = self._store._entry_files()
            entries = len(files)
            for p in files:
                try:
                    size += p.stat().st_size
                except OSError:
                    pass
            disk = self._load_disk_stats()
            looked = disk["hits"] + disk["misses"]
            hit_rate = round(disk["hits"] / looked, 4) if looked else None
        else:
            entries = len(self._memory)
        return {
            "entries": entries,
            "bytes": size,
            "since_scrub": disk or self.stats.as_dict(),
            "hit_rate": hit_rate,
        }

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            if self._store is not None:
                self._store.clear()


#: The process-default in-memory cache, always available: a second
#: compilation of an unchanged function in the same process is a memo
#: hit even without any flow cache directory configured.
_DEFAULT = FunctionCache()
_BY_DIR: dict[str, FunctionCache] = {}
_ACTIVE: FunctionCache = _DEFAULT


def active_cache() -> FunctionCache | None:
    """The cache ``synthesize_function`` consults, or ``None`` when the
    layer is disabled via ``REPRO_HLS_FN_CACHE=0``."""
    if os.environ.get("REPRO_HLS_FN_CACHE", "") == "0":
        return None
    return _ACTIVE


def use_cache_dir(cache_dir: str | os.PathLike | None) -> FunctionCache:
    """Route the process-default cache to a persistent directory.

    The flow orchestrator routes ``<cache_dir>/fn`` here when a build
    cache is configured, so per-function entries persist next to (and
    under) the whole-core objects.  ``None`` reverts to the in-memory
    default.  Instances are kept per directory: two flows alternating
    directories each keep their own store.
    """
    global _ACTIVE
    if cache_dir is None:
        _ACTIVE = _DEFAULT
    else:
        key = str(cache_dir)
        cache = _BY_DIR.get(key)
        if cache is None:
            cache = FunctionCache(cache_dir)
            _BY_DIR[key] = cache
        _ACTIVE = cache
    return _ACTIVE


@contextmanager
def routed(cache_dir: str | os.PathLike | None):
    """Scope :func:`use_cache_dir` to a ``with`` block.

    The flow wraps each run in this so a flow pointed at a temporary
    cache directory does not leave the process-default routed at a
    directory that is about to disappear (the test suite runs hundreds
    of flows against ``tmp_path`` caches in one process).
    """
    global _ACTIVE
    prev = _ACTIVE
    try:
        yield use_cache_dir(cache_dir) if cache_dir is not None else _ACTIVE
    finally:
        _ACTIVE = prev


__all__ = [
    "FN_CACHE_VERSION",
    "FnCacheStats",
    "FrontendEntry",
    "FunctionCache",
    "active_cache",
    "frontend_key",
    "result_key",
    "routed",
    "use_cache_dir",
]
