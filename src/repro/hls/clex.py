"""Lexer for the synthesizable C subset.

Produces a flat token list.  Multi-word type spellings (``unsigned
char``, ``unsigned short``, ``unsigned int``) are fused into a single
type token so the parser sees one spelling.  ``//`` and ``/* */``
comments are skipped; ``#`` preprocessor lines are rejected with a
pointer to use ``const int`` globals instead.

The scanner is a single precompiled alternation (:data:`_TOKEN_RE`)
walked with slice-based matching rather than the previous
character-at-a-time loop: one regex step per token instead of several
Python-level branches and string copies per *character*.  Lexing sits
on the front-end hot path — it runs even on fully-cached compilations,
because the per-function cache keys on the token stream
(:func:`token_fingerprint`) so that comment and whitespace edits never
invalidate post-lex stages.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from enum import Enum

from repro.util.errors import CSyntaxError, SourceLocation

KEYWORDS = frozenset(
    {
        "void",
        "bool",
        "char",
        "short",
        "int",
        "unsigned",
        "float",
        "uint8",
        "int16",
        "uint16",
        "uint",
        "const",
        "if",
        "else",
        "for",
        "while",
        "do",
        "switch",
        "case",
        "default",
        "return",
        "break",
        "continue",
        "true",
        "false",
    }
)

# Order matters: longest operators first.
OPERATORS = [
    "<<=",
    ">>=",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ",",
    ";",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]

_TYPE_WORDS = {"char", "short", "int"}


class CTokKind(Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class CToken:
    kind: CTokKind
    value: str
    loc: SourceLocation

    def is_kw(self, word: str) -> bool:
        return self.kind is CTokKind.KEYWORD and self.value == word

    def is_op(self, op: str) -> bool:
        return self.kind is CTokKind.OP and self.value == op


#: One alternation, tried left to right — the token table, compiled once.
#: Ordering encodes the same precedence the old per-character loop had:
#: comments before the ``/`` operator, hex before decimal, operators
#: longest-first (``OPERATORS`` is already sorted that way).
_TOKEN_RE = re.compile(
    "|".join(
        (
            r"(?P<comment>//[^\n]*|/\*.*?\*/)",
            r"(?P<badcomment>/\*)",  # `/*` with no closing `*/` anywhere
            r"(?P<hex>0[xX][0-9a-fA-F]*)",
            # digits [. digits*] [exponent] | . digits+ [exponent],
            # optionally suffixed f/F; the exponent needs at least one
            # digit or it is left for the identifier that follows.
            r"(?P<num>(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][+-]?\d+)?[fF]?)",
            r"(?P<word>[^\W\d]\w*)",
            "(?P<op>" + "|".join(re.escape(op) for op in OPERATORS) + ")",
            r"(?P<ws>\s+)",
            r"(?P<bad>.)",
        )
    ),
    re.DOTALL,
)

_FLOAT_MARKS = frozenset(".eEfF")


def clex(text: str, filename: str = "<c>") -> list[CToken]:
    """Tokenize C source *text*; raises :class:`CSyntaxError` on bad input."""
    tokens: list[CToken] = []
    append = tokens.append
    line = 1
    line_start = 0  # offset of the first character of the current line
    pos = 0
    for m in _TOKEN_RE.finditer(text):
        start = m.start()
        kind = m.lastgroup
        word = m.group()
        if kind == "ws" or kind == "comment":
            nl = word.count("\n")
            if nl:
                line += nl
                line_start = start + word.rfind("\n") + 1
            pos = m.end()
            continue
        loc = SourceLocation(line, start - line_start + 1, filename)
        if kind == "word":
            append(
                CToken(
                    CTokKind.KEYWORD if word in KEYWORDS else CTokKind.IDENT,
                    word,
                    loc,
                )
            )
        elif kind == "op":
            append(CToken(CTokKind.OP, word, loc))
        elif kind == "num":
            if any(c in _FLOAT_MARKS for c in word):
                if word[-1] in "fF":
                    word = word[:-1]
                append(CToken(CTokKind.FLOAT, word, loc))
            else:
                append(CToken(CTokKind.INT, word, loc))
        elif kind == "hex":
            append(CToken(CTokKind.INT, word, loc))
        elif kind == "badcomment":
            raise CSyntaxError("unterminated block comment", loc)
        else:  # bad
            if word == "#":
                raise CSyntaxError(
                    "preprocessor directives are not supported; "
                    "use 'const int NAME = ...;' globals instead",
                    loc,
                )
            raise CSyntaxError(f"illegal character {word!r}", loc)
        pos = m.end()
    append(
        CToken(CTokKind.EOF, "", SourceLocation(line, pos - line_start + 1, filename))
    )
    return _fuse_unsigned(tokens)


def token_fingerprint(tokens: list[CToken]) -> str:
    """SHA-256 over the token stream, ignoring source locations.

    Two sources share a fingerprint iff they lex to the same (kind,
    value) sequence — so editing comments, whitespace or line breaks
    never changes it, while any single-character semantic edit does.
    The per-function compilation cache keys its front-end stage on this.
    """
    h = hashlib.sha256()
    for tok in tokens:
        h.update(tok.kind.value.encode())
        h.update(b"\x00")
        h.update(tok.value.encode())
        h.update(b"\x01")
    return h.hexdigest()


def _fuse_unsigned(tokens: list[CToken]) -> list[CToken]:
    """Fuse ``unsigned char|short|int`` into one keyword token."""
    out: list[CToken] = []
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok.is_kw("unsigned") and i + 1 < len(tokens) and tokens[i + 1].value in _TYPE_WORDS:
            fused = f"unsigned_{tokens[i + 1].value}"
            out.append(CToken(CTokKind.KEYWORD, fused, tok.loc))
            i += 2
            continue
        out.append(tok)
        i += 1
    return out
