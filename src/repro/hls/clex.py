"""Lexer for the synthesizable C subset.

Produces a flat token list.  Multi-word type spellings (``unsigned
char``, ``unsigned short``, ``unsigned int``) are fused into a single
type token so the parser sees one spelling.  ``//`` and ``/* */``
comments are skipped; ``#`` preprocessor lines are rejected with a
pointer to use ``const int`` globals instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.util.errors import CSyntaxError, SourceLocation

KEYWORDS = frozenset(
    {
        "void",
        "bool",
        "char",
        "short",
        "int",
        "unsigned",
        "float",
        "uint8",
        "int16",
        "uint16",
        "uint",
        "const",
        "if",
        "else",
        "for",
        "while",
        "do",
        "switch",
        "case",
        "default",
        "return",
        "break",
        "continue",
        "true",
        "false",
    }
)

# Order matters: longest operators first.
OPERATORS = [
    "<<=",
    ">>=",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ",",
    ";",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]

_TYPE_WORDS = {"char", "short", "int"}


class CTokKind(Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class CToken:
    kind: CTokKind
    value: str
    loc: SourceLocation

    def is_kw(self, word: str) -> bool:
        return self.kind is CTokKind.KEYWORD and self.value == word

    def is_op(self, op: str) -> bool:
        return self.kind is CTokKind.OP and self.value == op


def clex(text: str, filename: str = "<c>") -> list[CToken]:
    """Tokenize C source *text*; raises :class:`CSyntaxError` on bad input."""
    tokens: list[CToken] = []
    i, line, col = 0, 1, 1
    n = len(text)

    def loc() -> SourceLocation:
        return SourceLocation(line, col, filename)

    def bump(k: int) -> None:
        nonlocal i, col
        i += k
        col += k

    while i < n:
        c = text[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c.isspace():
            bump(1)
            continue
        if text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise CSyntaxError("unterminated block comment", loc())
            skipped = text[i : end + 2]
            nl = skipped.count("\n")
            if nl:
                line += nl
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if c == "#":
            raise CSyntaxError(
                "preprocessor directives are not supported; "
                "use 'const int NAME = ...;' globals instead",
                loc(),
            )
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            start_loc = loc()
            j = i
            is_float = False
            if text.startswith("0x", i) or text.startswith("0X", i):
                j = i + 2
                while j < n and (text[j].isdigit() or text[j].lower() in "abcdef"):
                    j += 1
                word = text[i:j]
                tokens.append(CToken(CTokKind.INT, word, start_loc))
                bump(j - i)
                continue
            while j < n and text[j].isdigit():
                j += 1
            if j < n and text[j] == ".":
                is_float = True
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and text[j].isdigit():
                        j += 1
            if j < n and text[j] in "fF":
                is_float = True
                j += 1
                word = text[i : j - 1]
            else:
                word = text[i:j]
            kind = CTokKind.FLOAT if is_float else CTokKind.INT
            tokens.append(CToken(kind, word, start_loc))
            bump(j - i)
            continue
        if c.isalpha() or c == "_":
            start_loc = loc()
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = CTokKind.KEYWORD if word in KEYWORDS else CTokKind.IDENT
            tokens.append(CToken(kind, word, start_loc))
            bump(j - i)
            continue
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(CToken(CTokKind.OP, op, loc()))
                bump(len(op))
                break
        else:
            raise CSyntaxError(f"illegal character {c!r}", loc())

    tokens.append(CToken(CTokKind.EOF, "", loc()))
    return _fuse_unsigned(tokens)


def _fuse_unsigned(tokens: list[CToken]) -> list[CToken]:
    """Fuse ``unsigned char|short|int`` into one keyword token."""
    out: list[CToken] = []
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok.is_kw("unsigned") and i + 1 < len(tokens) and tokens[i + 1].value in _TYPE_WORDS:
            fused = f"unsigned_{tokens[i + 1].value}"
            out.append(CToken(CTokKind.KEYWORD, fused, tok.loc))
            i += 2
            continue
        out.append(tok)
        i += 1
    return out
