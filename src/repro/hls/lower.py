"""AST → IR lowering.

Implements structured control flow (if/while/do-while/for with
break/continue), implicit C conversions (inserting ``cast`` ops), and
intrinsic expansion (``min``/``max``/``abs``/``fabsf`` become
compare+select; ``sqrtf`` becomes the ``sqrt`` op).

``&&``/``||`` and ``?:`` are speculated into flat dataflow (and/or/
``select``) when every guarded operand is *speculatable* — pure and
trap-free — which is what HLS datapaths do anyway.  When a guarded side
could fault (division/modulo by a variable, ``sqrtf``, an array access
whose index the guard protects), the C short-circuit semantics is
honoured with real control flow through a temporary slot, so idioms
like ``b != 0 && a / b > 2`` and ``i < n ? a[i] : 0`` behave exactly as
in C.

Affine ``for`` loops (``for (i = C0; i </<= C1; i += C2)`` with
compile-time bounds) get their trip count recorded in
:class:`~repro.hls.ir.LoopInfo` for the latency model and the
unroll/pipeline directives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls import cast as A
from repro.hls.ir import Block, Function, LoopInfo, Op, Value
from repro.hls.sema import SemaResult
from repro.hls.types import (
    BOOL,
    FLOAT,
    INT32,
    VOID,
    ArrayType,
    ScalarType,
    promote,
    usual_arith,
    wrap_int,
)
from repro.util.errors import CSemanticError

_CMP_PRED = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne"}
_BIN_OPCODE = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "<<": "shl",
    ">>": "shr",
    "&": "and",
    "|": "or",
    "^": "xor",
}


@dataclass
class _LoopCtx:
    latch: str  # continue target
    exit: str  # break target


def _is_speculatable(expr: A.Expr) -> bool:
    """True if *expr* can be evaluated unconditionally (pure, trap-free)."""
    if isinstance(expr, (A.IntLit, A.FloatLit, A.BoolLit, A.Name)):
        return True
    if isinstance(expr, A.Index):
        return False  # the guard may be a bounds check
    if isinstance(expr, A.Unary):
        return _is_speculatable(expr.operand)
    if isinstance(expr, A.Binary):
        if expr.op in ("/", "%") and not isinstance(expr.right, (A.IntLit, A.FloatLit)):
            return False  # variable divisor: the guard may exclude zero
        if expr.op in ("/", "%") and isinstance(expr.right, (A.IntLit, A.FloatLit)):
            if expr.right.value == 0:
                return False
        return _is_speculatable(expr.left) and _is_speculatable(expr.right)
    if isinstance(expr, A.Ternary):
        return (
            _is_speculatable(expr.cond)
            and _is_speculatable(expr.then)
            and _is_speculatable(expr.other)
        )
    if isinstance(expr, A.Cast):
        return _is_speculatable(expr.operand)
    if isinstance(expr, A.Call):
        if expr.func == "sqrtf":
            return False  # negative-argument trap
        return all(_is_speculatable(a) for a in expr.args)
    return False


class _Lowerer:
    def __init__(self, sema: SemaResult, func: A.FuncDef) -> None:
        self.sema = sema
        self.finfo = sema.info(func.name)
        self.ast = func
        self.fn = Function(func.name, func.ret, [(p.name, p.ctype) for p in func.params])
        self._block_counter = 0
        self._slot_counter = 0
        self.current: Block | None = None
        self.loop_stack: list[_LoopCtx] = []

        for p in func.params:
            if isinstance(p.ctype, ArrayType):
                self.fn.array_params[p.name] = p.ctype
            else:
                self.fn.slots[p.name] = p.ctype
        for name, ctype in self.finfo.symbols.items():
            if name in self.fn.slots or name in self.fn.array_params:
                continue
            if isinstance(ctype, ArrayType):
                self.fn.arrays[name] = ctype
            else:
                self.fn.slots[name] = ctype

    # -- block plumbing --------------------------------------------------
    def new_block(self, stem: str) -> Block:
        name = f"{stem}{self._block_counter}"
        self._block_counter += 1
        b = Block(name)
        self.fn.blocks.append(b)
        return b

    def emit(self, op: Op) -> Value | None:
        assert self.current is not None, "emitting outside a block"
        self.current.ops.append(op)
        return op.result

    def is_open(self) -> bool:
        """True if the current block still needs a terminator."""
        return (
            self.current is not None
            and (not self.current.ops or not self.current.ops[-1].is_terminator())
        )

    def seal_jmp(self, target: str) -> None:
        if self.is_open():
            self.emit(Op("jmp", attrs={"target": target}))

    # -- value helpers -----------------------------------------------------------
    def const(self, value: int | float, type_: ScalarType) -> Value:
        v = self.fn.new_value(type_)
        if type_.is_float:
            value = float(value)
        else:
            value = wrap_int(int(value), type_)
        self.emit(Op("const", v, (), {"value": value}))
        return v

    def coerce(self, val: Value, target: ScalarType) -> Value:
        """Insert a cast if *val* is not already of *target* type."""
        # Types are interned singletons, so the common no-op case is one
        # identity test — no field-by-field dataclass comparison on the
        # hottest lowering path.
        if val.type is target or val.type == target:
            return val
        res = self.fn.new_value(target)
        self.emit(Op("cast", res, (val,), {"to": target}))
        return res

    def _fresh_slot(self, stem: str, type_: ScalarType) -> str:
        """A compiler-introduced scalar slot (short-circuit temporaries)."""
        name = f"__{stem}{self._slot_counter}"
        self._slot_counter += 1
        self.fn.slots[name] = type_
        return name

    def to_bool(self, val: Value) -> Value:
        if val.type is BOOL:
            return val
        zero = self.const(0, val.type)
        res = self.fn.new_value(BOOL)
        self.emit(Op("cmp", res, (val, zero), {"pred": "ne"}))
        return res

    # -- entry ---------------------------------------------------------------
    def run(self) -> Function:
        self.current = self.new_block("entry")
        self.lower_block(self.ast.body)
        if self.is_open():
            assert self.current is not None
            if self.fn.ret is VOID:
                self.emit(Op("ret"))
            elif not self._is_reachable(self.current):
                # A dead join block (e.g. after an exhaustive switch whose
                # arms all return); seal it — pruning removes it next.
                dummy = self.const(0, self.fn.ret)
                self.emit(Op("ret", operands=(dummy,)))
            else:
                raise CSemanticError(
                    f"control reaches end of non-void function {self.fn.name!r}",
                    self.ast.loc,
                )
        self._prune_unreachable()
        self.fn.verify()
        return self.fn

    def _is_reachable(self, block: Block) -> bool:
        """Is *block* reachable from entry through existing terminators?

        Every non-current block is already sealed, so following their
        successors is a complete walk; *block* itself may be open.
        """
        by_name = {b.name: b for b in self.fn.blocks}
        seen: set[str] = set()
        work = [self.fn.blocks[0].name]
        while work:
            name = work.pop()
            if name in seen:
                continue
            seen.add(name)
            if name == block.name:
                return True
            blk = by_name[name]
            if blk.ops and blk.ops[-1].is_terminator():
                work.extend(blk.successors())
        return False

    def _prune_unreachable(self) -> None:
        """Drop blocks not reachable from entry (e.g. code after return)."""
        reachable: set[str] = set()
        work = [self.fn.blocks[0].name]
        by_name = {b.name: b for b in self.fn.blocks}
        while work:
            name = work.pop()
            if name in reachable:
                continue
            reachable.add(name)
            blk = by_name[name]
            if blk.ops and blk.ops[-1].is_terminator():
                work.extend(blk.successors())
        self.fn.blocks = [b for b in self.fn.blocks if b.name in reachable]
        for loop in self.fn.loops:
            loop.blocks = [n for n in loop.blocks if n in reachable]
        self.fn.loops = [lp for lp in self.fn.loops if lp.header in reachable]

    # -- statements ------------------------------------------------------------
    def lower_block(self, block: A.Block) -> None:
        for stmt in block.stmts:
            if not self.is_open():
                return  # dead code after return/break/continue
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, A.Decl):
            self.lower_decl(stmt)
        elif isinstance(stmt, A.Assign):
            self.lower_assign(stmt)
        elif isinstance(stmt, A.ExprStmt):
            self.lower_expr(stmt.expr)  # value dropped; DCE cleans up
        elif isinstance(stmt, A.If):
            self.lower_if(stmt)
        elif isinstance(stmt, A.While):
            self.lower_while(stmt)
        elif isinstance(stmt, A.DoWhile):
            self.lower_do_while(stmt)
        elif isinstance(stmt, A.For):
            self.lower_for(stmt)
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                val = self.lower_expr(stmt.value)
                val = self.coerce(val, self.fn.ret)
                self.emit(Op("ret", operands=(val,)))
            else:
                self.emit(Op("ret"))
        elif isinstance(stmt, A.Break):
            self.emit(Op("jmp", attrs={"target": self.loop_stack[-1].exit}))
        elif isinstance(stmt, A.Continue):
            self.emit(Op("jmp", attrs={"target": self.loop_stack[-1].latch}))
        else:  # pragma: no cover - defensive
            raise CSemanticError(f"cannot lower {type(stmt).__name__}", stmt.loc)

    def lower_decl(self, decl: A.Decl) -> None:
        if isinstance(decl.ctype, ArrayType):
            if decl.init_list is not None:
                from repro.hls.sema import _eval_const_expr

                values = []
                for e in decl.init_list:
                    v = _eval_const_expr(e, self.sema.global_consts)
                    if decl.ctype.element.is_float:
                        values.append(float(v))
                    else:
                        values.append(wrap_int(int(v), decl.ctype.element))
                self.fn.array_init[decl.name] = values
            return  # array storage is declared on the Function
        if decl.init is not None:
            val = self.lower_expr(decl.init)
            val = self.coerce(val, decl.ctype)
            self.emit(Op("vwrite", operands=(val,), attrs={"var": decl.name}))

    def lower_assign(self, stmt: A.Assign) -> None:
        val = self.lower_expr(stmt.value)
        if isinstance(stmt.target, A.Name):
            target_t = self.fn.slots[stmt.target.ident]
            val = self.coerce(val, target_t)
            self.emit(Op("vwrite", operands=(val,), attrs={"var": stmt.target.ident}))
        else:
            array, idx = self._flatten_index(stmt.target)
            elem = self._array_type(array).element
            val = self.coerce(val, elem)
            self.emit(Op("store", operands=(idx, val), attrs={"array": array}))

    def _array_type(self, name: str) -> ArrayType:
        if name in self.fn.arrays:
            return self.fn.arrays[name]
        return self.fn.array_params[name]

    def _flatten_index(self, expr: A.Index) -> tuple[str, Value]:
        """Row-major flattening of a (possibly multi-dim) index chain."""
        chain: list[A.Index] = []
        node: A.Expr = expr
        while isinstance(node, A.Index):
            chain.append(node)
            node = node.base
        assert isinstance(node, A.Name)
        name = node.ident
        atype = self._array_type(name)
        chain.reverse()  # first (outer-dimension) index first
        linear = self.coerce(self.lower_expr(chain[0].index), INT32)
        dims = atype.dims or (atype.size,)
        for k in range(1, len(chain)):
            stride = self.const(dims[k], INT32)
            scaled = self.fn.new_value(INT32)
            self.emit(Op("mul", scaled, (linear, stride)))
            idx_k = self.coerce(self.lower_expr(chain[k].index), INT32)
            summed = self.fn.new_value(INT32)
            self.emit(Op("add", summed, (scaled, idx_k)))
            linear = summed
        return name, linear

    def lower_if(self, stmt: A.If) -> None:
        cond = self.to_bool(self.lower_expr(stmt.cond))
        then_b = self.new_block("then")
        else_b = self.new_block("else") if stmt.other is not None else None
        join = self.new_block("join")
        self.emit(
            Op(
                "br",
                operands=(cond,),
                attrs={"then": then_b.name, "els": (else_b or join).name},
            )
        )
        self.current = then_b
        self.lower_block(stmt.then)
        self.seal_jmp(join.name)
        if else_b is not None:
            self.current = else_b
            assert stmt.other is not None
            self.lower_block(stmt.other)
            self.seal_jmp(join.name)
        self.current = join

    def lower_while(self, stmt: A.While) -> None:
        header = self.new_block("while_head")
        body = self.new_block("while_body")
        exit_b = self.new_block("while_exit")
        self.seal_jmp(header.name)
        # Capture from here: condition lowering may create blocks
        # (short-circuit &&/||) that belong to the loop region.
        first_new = len(self.fn.blocks)

        self.current = header
        cond = self.to_bool(self.lower_expr(stmt.cond))
        self.emit(Op("br", operands=(cond,), attrs={"then": body.name, "els": exit_b.name}))

        loop = LoopInfo(
            header.name,
            [header.name, body.name],
            header.name,
            exit_b.name,
            label=stmt.label,
        )
        self.fn.loops.append(loop)

        self.loop_stack.append(_LoopCtx(latch=header.name, exit=exit_b.name))
        self.current = body
        self.lower_block(stmt.body)
        self.seal_jmp(header.name)
        self.loop_stack.pop()

        loop.blocks.extend(b.name for b in self.fn.blocks[first_new:] if b.name != exit_b.name)
        self.current = exit_b

    def lower_do_while(self, stmt: A.DoWhile) -> None:
        body = self.new_block("do_body")
        latch = self.new_block("do_latch")
        exit_b = self.new_block("do_exit")
        self.seal_jmp(body.name)

        loop = LoopInfo(body.name, [body.name, latch.name], latch.name, exit_b.name)
        self.fn.loops.append(loop)
        first_new = len(self.fn.blocks)

        self.loop_stack.append(_LoopCtx(latch=latch.name, exit=exit_b.name))
        self.current = body
        self.lower_block(stmt.body)
        self.seal_jmp(latch.name)
        self.loop_stack.pop()

        self.current = latch
        cond = self.to_bool(self.lower_expr(stmt.cond))
        self.emit(Op("br", operands=(cond,), attrs={"then": body.name, "els": exit_b.name}))

        loop.blocks.extend(b.name for b in self.fn.blocks[first_new:] if b.name != exit_b.name)
        self.current = exit_b

    def lower_for(self, stmt: A.For) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        header = self.new_block("for_head")
        body = self.new_block("for_body")
        latch = self.new_block("for_latch")
        exit_b = self.new_block("for_exit")
        self.seal_jmp(header.name)
        # Capture from here: condition lowering may create short-circuit
        # blocks that belong to the loop region.
        first_new = len(self.fn.blocks)

        self.current = header
        if stmt.cond is not None:
            cond = self.to_bool(self.lower_expr(stmt.cond))
            self.emit(
                Op("br", operands=(cond,), attrs={"then": body.name, "els": exit_b.name})
            )
        else:
            self.seal_jmp(body.name)

        trip, ivar = self._affine_trip_count(stmt)
        loop = LoopInfo(
            header.name,
            [header.name, body.name, latch.name],
            latch.name,
            exit_b.name,
            trip_count=trip,
            ivar=ivar,
            label=stmt.label,
        )
        self.fn.loops.append(loop)

        self.loop_stack.append(_LoopCtx(latch=latch.name, exit=exit_b.name))
        self.current = body
        self.lower_block(stmt.body)
        self.seal_jmp(latch.name)
        self.loop_stack.pop()

        self.current = latch
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        self.seal_jmp(header.name)

        loop.blocks.extend(b.name for b in self.fn.blocks[first_new:] if b.name != exit_b.name)
        self.current = exit_b

    # -- trip-count pattern matching ------------------------------------------
    def _const_of(self, expr: A.Expr) -> int | None:
        """Compile-time integer value of *expr*, if it has one."""
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.Unary) and expr.op == "-":
            inner = self._const_of(expr.operand)
            return None if inner is None else -inner
        if isinstance(expr, A.Name) and expr.ident in self.sema.global_consts:
            _, value = self.sema.global_consts[expr.ident]
            return int(value) if isinstance(value, int) else None
        return None

    def _affine_trip_count(self, stmt: A.For) -> tuple[int | None, str | None]:
        """Match ``for (i = C0; i </<=/!= C1; i += C2)`` and compute trips."""
        # init: Decl with init, or Assign to a Name.
        if isinstance(stmt.init, A.Decl) and stmt.init.init is not None:
            ivar = stmt.init.name
            start = self._const_of(stmt.init.init)
        elif isinstance(stmt.init, A.Assign) and isinstance(stmt.init.target, A.Name):
            ivar = stmt.init.target.ident
            start = self._const_of(stmt.init.value)
        else:
            return None, None
        if start is None:
            return None, ivar

        # cond: ivar OP bound.
        if not (
            isinstance(stmt.cond, A.Binary)
            and isinstance(stmt.cond.left, A.Name)
            and stmt.cond.left.ident == ivar
            and stmt.cond.op in ("<", "<=", ">", ">=", "!=")
        ):
            return None, ivar
        bound = self._const_of(stmt.cond.right)
        if bound is None:
            return None, ivar

        # step: ivar = ivar +/- C (from ++/--/+=/-=/explicit form).
        if not (
            isinstance(stmt.step, A.Assign)
            and isinstance(stmt.step.target, A.Name)
            and stmt.step.target.ident == ivar
            and isinstance(stmt.step.value, A.Binary)
            and stmt.step.value.op in ("+", "-")
            and isinstance(stmt.step.value.left, A.Name)
            and stmt.step.value.left.ident == ivar
        ):
            return None, ivar
        delta = self._const_of(stmt.step.value.right)
        if delta is None or delta == 0:
            return None, ivar
        if stmt.step.value.op == "-":
            delta = -delta

        op = stmt.cond.op
        if op == "<" and delta > 0:
            trips = max(0, -(-(bound - start) // delta))
        elif op == "<=" and delta > 0:
            trips = max(0, -(-(bound - start + 1) // delta))
        elif op == ">" and delta < 0:
            trips = max(0, -(-(start - bound) // -delta))
        elif op == ">=" and delta < 0:
            trips = max(0, -(-(start - bound + 1) // -delta))
        elif op == "!=" and (bound - start) % delta == 0 and (bound - start) // delta >= 0:
            trips = (bound - start) // delta
        else:
            return None, ivar

        # The body must not write the induction variable (or the count lies).
        if _writes_var(stmt.body, ivar):
            return None, ivar
        return trips, ivar

    # -- expressions -----------------------------------------------------------
    def lower_expr(self, expr: A.Expr) -> Value:
        if isinstance(expr, A.IntLit):
            return self.const(expr.value, INT32)
        if isinstance(expr, A.FloatLit):
            return self.const(expr.value, FLOAT)
        if isinstance(expr, A.BoolLit):
            return self.const(int(expr.value), BOOL)
        if isinstance(expr, A.Name):
            if expr.ident in self.sema.global_consts:
                ctype, value = self.sema.global_consts[expr.ident]
                return self.const(value, ctype)
            res = self.fn.new_value(self.fn.slots[expr.ident])
            self.emit(Op("vread", res, (), {"var": expr.ident}))
            return res
        if isinstance(expr, A.Index):
            array, idx = self._flatten_index(expr)
            elem = self._array_type(array).element
            res = self.fn.new_value(elem)
            self.emit(Op("load", res, (idx,), {"array": array}))
            return res
        if isinstance(expr, A.Unary):
            return self.lower_unary(expr)
        if isinstance(expr, A.Binary):
            return self.lower_binary(expr)
        if isinstance(expr, A.Ternary):
            if _is_speculatable(expr.then) and _is_speculatable(expr.other):
                cond = self.to_bool(self.lower_expr(expr.cond))
                a = self.lower_expr(expr.then)
                b = self.lower_expr(expr.other)
                t = usual_arith(a.type, b.type)
                a, b = self.coerce(a, t), self.coerce(b, t)
                res = self.fn.new_value(t)
                self.emit(Op("select", res, (cond, a, b)))
                return res
            return self._lower_guarded_ternary(expr)
        if isinstance(expr, A.Cast):
            val = self.lower_expr(expr.operand)
            return self.coerce(val, expr.target)
        if isinstance(expr, A.Call):
            return self.lower_call(expr)
        raise CSemanticError(f"cannot lower {type(expr).__name__}", expr.loc)

    def lower_unary(self, expr: A.Unary) -> Value:
        val = self.lower_expr(expr.operand)
        if expr.op == "-":
            t = promote(val.type)
            val = self.coerce(val, t)
            res = self.fn.new_value(t)
            self.emit(Op("neg", res, (val,)))
            return res
        if expr.op == "~":
            t = promote(val.type)
            val = self.coerce(val, t)
            res = self.fn.new_value(t)
            self.emit(Op("not", res, (val,)))
            return res
        if expr.op == "!":
            b = self.to_bool(val)
            res = self.fn.new_value(BOOL)
            self.emit(Op("lnot", res, (b,)))
            return res
        raise CSemanticError(f"unknown unary op {expr.op!r}", expr.loc)

    def _lower_guarded_ternary(self, expr: A.Ternary) -> Value:
        """``?:`` with a potentially trapping side: real control flow."""
        result_t = expr.ctype
        assert isinstance(result_t, ScalarType)
        slot = self._fresh_slot("sel", result_t)
        cond = self.to_bool(self.lower_expr(expr.cond))
        then_b = self.new_block("sel_then")
        else_b = self.new_block("sel_else")
        join = self.new_block("sel_join")
        self.emit(Op("br", operands=(cond,), attrs={"then": then_b.name, "els": else_b.name}))
        self.current = then_b
        val = self.coerce(self.lower_expr(expr.then), result_t)
        self.emit(Op("vwrite", operands=(val,), attrs={"var": slot}))
        self.seal_jmp(join.name)
        self.current = else_b
        val = self.coerce(self.lower_expr(expr.other), result_t)
        self.emit(Op("vwrite", operands=(val,), attrs={"var": slot}))
        self.seal_jmp(join.name)
        self.current = join
        res = self.fn.new_value(result_t)
        self.emit(Op("vread", res, (), {"var": slot}))
        return res

    def _lower_short_circuit(self, expr: A.Binary) -> Value:
        """C short-circuit ``&&``/``||`` via control flow."""
        slot = self._fresh_slot("sc", BOOL)
        lhs = self.to_bool(self.lower_expr(expr.left))
        rhs_b = self.new_block("sc_rhs")
        join = self.new_block("sc_join")
        default = self.const(0 if expr.op == "&&" else 1, BOOL)
        self.emit(Op("vwrite", operands=(default,), attrs={"var": slot}))
        if expr.op == "&&":
            attrs = {"then": rhs_b.name, "els": join.name}
        else:
            attrs = {"then": join.name, "els": rhs_b.name}
        self.emit(Op("br", operands=(lhs,), attrs=attrs))
        self.current = rhs_b
        rhs = self.to_bool(self.lower_expr(expr.right))
        self.emit(Op("vwrite", operands=(rhs,), attrs={"var": slot}))
        self.seal_jmp(join.name)
        self.current = join
        res = self.fn.new_value(BOOL)
        self.emit(Op("vread", res, (), {"var": slot}))
        return res

    def lower_binary(self, expr: A.Binary) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            if not _is_speculatable(expr.right):
                return self._lower_short_circuit(expr)
            lhs = self.to_bool(self.lower_expr(expr.left))
            rhs = self.to_bool(self.lower_expr(expr.right))
            res = self.fn.new_value(BOOL)
            self.emit(Op("and" if op == "&&" else "or", res, (lhs, rhs)))
            return res
        lhs = self.lower_expr(expr.left)
        rhs = self.lower_expr(expr.right)
        if op in _CMP_PRED:
            t = usual_arith(lhs.type, rhs.type)
            lhs, rhs = self.coerce(lhs, t), self.coerce(rhs, t)
            res = self.fn.new_value(BOOL)
            self.emit(Op("cmp", res, (lhs, rhs), {"pred": _CMP_PRED[op]}))
            return res
        if op in ("<<", ">>"):
            t = promote(lhs.type)
            lhs = self.coerce(lhs, t)
            rhs = self.coerce(rhs, INT32)
            res = self.fn.new_value(t)
            self.emit(Op(_BIN_OPCODE[op], res, (lhs, rhs)))
            return res
        t = usual_arith(lhs.type, rhs.type)
        lhs, rhs = self.coerce(lhs, t), self.coerce(rhs, t)
        res = self.fn.new_value(t)
        self.emit(Op(_BIN_OPCODE[op], res, (lhs, rhs)))
        return res

    def lower_call(self, expr: A.Call) -> Value:
        args = [self.lower_expr(a) for a in expr.args]
        name = expr.func
        if name in ("min", "max"):
            t = usual_arith(args[0].type, args[1].type)
            a, b = self.coerce(args[0], t), self.coerce(args[1], t)
            cond = self.fn.new_value(BOOL)
            pred = "lt" if name == "min" else "gt"
            self.emit(Op("cmp", cond, (a, b), {"pred": pred}))
            res = self.fn.new_value(t)
            self.emit(Op("select", res, (cond, a, b)))
            return res
        if name in ("abs", "fabsf"):
            t = FLOAT if (name == "fabsf" or args[0].type.is_float) else promote(args[0].type)
            a = self.coerce(args[0], t)
            zero = self.const(0, t)
            neg = self.fn.new_value(t)
            self.emit(Op("neg", neg, (a,)))
            cond = self.fn.new_value(BOOL)
            self.emit(Op("cmp", cond, (a, zero), {"pred": "lt"}))
            res = self.fn.new_value(t)
            self.emit(Op("select", res, (cond, neg, a)))
            return res
        if name == "sqrtf":
            a = self.coerce(args[0], FLOAT)
            res = self.fn.new_value(FLOAT)
            self.emit(Op("sqrt", res, (a,)))
            return res
        raise CSemanticError(f"unknown intrinsic {name!r}", expr.loc)


def _writes_var(block: A.Block, name: str) -> bool:
    """Does any statement in *block* assign to scalar *name*?"""
    for stmt in block.stmts:
        if isinstance(stmt, A.Assign) and isinstance(stmt.target, A.Name):
            if stmt.target.ident == name:
                return True
        elif isinstance(stmt, A.Decl) and stmt.name == name:
            return True
        elif isinstance(stmt, A.If):
            if _writes_var(stmt.then, name):
                return True
            if stmt.other is not None and _writes_var(stmt.other, name):
                return True
        elif isinstance(stmt, (A.While, A.DoWhile)):
            if _writes_var(stmt.body, name):
                return True
        elif isinstance(stmt, A.For):
            inner: list[A.Stmt] = [s for s in (stmt.init, stmt.step) if s is not None]
            if _writes_var(A.Block(stmt.loc, inner + list(stmt.body.stmts)), name):
                return True
        elif isinstance(stmt, A.Block):
            if _writes_var(stmt, name):
                return True
    return False


def lower_function(sema: SemaResult, name: str) -> Function:
    """Lower function *name* from an analyzed translation unit to IR."""
    return _Lowerer(sema, sema.unit.func(name)).run()
