"""Three-address IR with a control-flow graph.

Design notes
------------
Scalar variables (parameters and locals) live in named *slots* accessed
through ``vread``/``vwrite`` ops rather than SSA phis: this keeps
lowering and interpretation simple while still exposing per-basic-block
dataflow to the scheduler (slot hazards become ordering edges).  Local
arrays are named memories accessed through ``load``/``store``.

Opcodes
-------
===========  =========================================================
``const``    attrs ``value``; materializes a literal
``vread``    attrs ``var``; read a variable slot
``vwrite``   attrs ``var``; operands ``(value,)``
``load``     attrs ``array``; operands ``(index,)``
``store``    attrs ``array``; operands ``(index, value)``
``add sub mul div mod shl shr and or xor``  binary arithmetic
``neg not lnot``                            unary arithmetic
``cmp``      attrs ``pred`` in lt/le/gt/ge/eq/ne
``select``   operands ``(cond, a, b)``
``cast``     attrs ``to``; numeric conversion
``sqrt``     float square root (intrinsic unit)
``br``       operands ``(cond,)``; attrs ``then``/``els`` (block names)
``jmp``      attrs ``target``
``ret``      operands ``()`` or ``(value,)``
===========  =========================================================
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.hls.types import ArrayType, CType, ScalarType
from repro.util.errors import HlsError

TERMINATORS = frozenset({"br", "jmp", "ret"})

#: Opcodes with no side effects (eligible for DCE / const-folding).
PURE_OPS = frozenset(
    {
        "const",
        "add",
        "sub",
        "mul",
        "div",
        "mod",
        "shl",
        "shr",
        "and",
        "or",
        "xor",
        "neg",
        "not",
        "lnot",
        "cmp",
        "select",
        "cast",
        "sqrt",
    }
)

BINARY_OPS = frozenset({"add", "sub", "mul", "div", "mod", "shl", "shr", "and", "or", "xor"})
UNARY_OPS = frozenset({"neg", "not", "lnot"})


@dataclass(eq=False)
class Value:
    """An SSA-ish value produced by exactly one op."""

    vid: int
    type: ScalarType

    def __repr__(self) -> str:
        return f"%{self.vid}:{self.type}"


@dataclass(eq=False)
class Op:
    opcode: str
    result: Value | None = None
    operands: tuple[Value, ...] = ()
    attrs: dict = field(default_factory=dict)

    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS

    def is_pure(self) -> bool:
        return self.opcode in PURE_OPS

    def __repr__(self) -> str:
        res = f"{self.result} = " if self.result is not None else ""
        ops = ", ".join(repr(o) for o in self.operands)
        attrs = f" {self.attrs}" if self.attrs else ""
        return f"{res}{self.opcode}({ops}){attrs}"


@dataclass(eq=False)
class Block:
    name: str
    ops: list[Op] = field(default_factory=list)

    def terminator(self) -> Op:
        if not self.ops or not self.ops[-1].is_terminator():
            raise HlsError(f"block {self.name!r} has no terminator")
        return self.ops[-1]

    def body(self) -> list[Op]:
        """Ops excluding the terminator."""
        if self.ops and self.ops[-1].is_terminator():
            return self.ops[:-1]
        return list(self.ops)

    def successors(self) -> list[str]:
        term = self.terminator()
        if term.opcode == "jmp":
            return [term.attrs["target"]]
        if term.opcode == "br":
            return [term.attrs["then"], term.attrs["els"]]
        return []


@dataclass
class LoopInfo:
    """Structural loop metadata recorded during lowering."""

    header: str
    blocks: list[str]  # header + body blocks + latch
    latch: str
    exit: str
    #: Compile-time trip count, if the loop matched the affine pattern.
    trip_count: int | None = None
    #: Directives (set via the directive file before scheduling).
    pipeline: bool = False
    unroll: int = 1
    #: Source label: name of the induction variable if known.
    ivar: str | None = None
    #: Explicit source label (`L1: for (...)`) if the code names the loop.
    label: str | None = None


@dataclass(eq=False)
class Function:
    name: str
    ret: ScalarType
    params: list[tuple[str, CType]]
    blocks: list[Block] = field(default_factory=list)
    #: Scalar slots: every parameter and local scalar, name -> type.
    slots: dict[str, ScalarType] = field(default_factory=dict)
    #: Local arrays: name -> ArrayType (sized).
    arrays: dict[str, ArrayType] = field(default_factory=dict)
    #: Initial contents for arrays with brace initializers (ROM tables);
    #: unspecified trailing elements are zero.
    array_init: dict[str, list] = field(default_factory=dict)
    #: Array parameters (unsized allowed): subset of params, name -> ArrayType.
    array_params: dict[str, ArrayType] = field(default_factory=dict)
    loops: list[LoopInfo] = field(default_factory=list)
    _next_vid: int = 0

    # -- construction helpers ------------------------------------------------
    def new_value(self, type_: ScalarType) -> Value:
        v = Value(self._next_vid, type_)
        self._next_vid += 1
        return v

    def block(self, name: str) -> Block:
        for b in self.blocks:
            if b.name == name:
                return b
        raise HlsError(f"function {self.name!r} has no block {name!r}")

    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise HlsError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def loop_of_block(self, block_name: str) -> LoopInfo | None:
        """Innermost loop containing *block_name* (loops list is outer-first)."""
        found: LoopInfo | None = None
        for loop in self.loops:
            if block_name in loop.blocks:
                found = loop
        return found

    # -- debugging ---------------------------------------------------------------
    def dump(self) -> str:
        lines = [f"func {self.name}({', '.join(n for n, _ in self.params)}) -> {self.ret}"]
        for b in self.blocks:
            lines.append(f"  {b.name}:")
            for op in b.ops:
                lines.append(f"    {op!r}")
        return "\n".join(lines)

    def verify(self) -> None:
        """Structural invariants: unique block names, terminators present,
        branch targets exist, every operand defined before use (per a
        def-before-use walk in CFG order is overkill; we check defs are
        unique and targets exist)."""
        names = [b.name for b in self.blocks]
        if len(set(names)) != len(names):
            raise HlsError(f"function {self.name!r}: duplicate block names")
        defined: set[int] = set()
        for b in self.blocks:
            if not b.ops or not b.ops[-1].is_terminator():
                raise HlsError(f"block {b.name!r} lacks a terminator")
            for i, op in enumerate(b.ops):
                if op.is_terminator() and i != len(b.ops) - 1:
                    raise HlsError(f"block {b.name!r}: terminator mid-block")
                if op.result is not None:
                    if op.result.vid in defined:
                        raise HlsError(f"value %{op.result.vid} defined twice")
                    defined.add(op.result.vid)
            for target in b.successors():
                if target not in names:
                    raise HlsError(f"branch to unknown block {target!r}")


# -- canonical digest --------------------------------------------------------
#
# The per-function compilation cache (``repro.hls.fncache``) keys on the
# content of the lowered IR, so the serialization below must be a pure
# function of IR *content*: no ``id()``, no ``hash()`` of strings (both
# vary per process under ``PYTHONHASHSEED``), dict entries sorted where
# insertion order is not itself semantic.


def _canon_scalar(v: object) -> str:
    """Canonical spelling of one attribute value."""
    if isinstance(v, ScalarType):
        return f"T{v.name}"
    if isinstance(v, ArrayType):
        return f"A{v.element.name}[{v.size}]{v.dims or ''}"
    if isinstance(v, bool):  # before int: True is an int
        return "b1" if v else "b0"
    if isinstance(v, int):
        return f"i{v}"
    if isinstance(v, float):
        return f"f{v.hex()}"
    if isinstance(v, str):
        return f"s{v}"
    if v is None:
        return "n"
    if isinstance(v, (tuple, list)):
        return "(" + ",".join(_canon_scalar(x) for x in v) + ")"
    raise HlsError(f"unserializable IR attribute value {v!r}")


def canonical_text(fn: Function) -> str:
    """A process-stable, content-complete rendering of *fn*.

    Two Functions produce the same text iff every downstream stage
    (directive application, scheduling, binding, FSM construction, RTL
    emission) would behave identically on them.  Values are identified
    by their ``vid`` (deterministically assigned by the lowerer), blocks
    and ops keep program order, and every unordered mapping is sorted.
    """
    out: list[str] = [f"func {fn.name} -> {fn.ret.name}"]
    out.append(
        "params " + ",".join(f"{n}:{_canon_scalar(t)}" for n, t in fn.params)
    )
    out.append(
        "slots " + ",".join(f"{n}:{t.name}" for n, t in sorted(fn.slots.items()))
    )
    out.append(
        "arrays "
        + ",".join(f"{n}:{_canon_scalar(t)}" for n, t in sorted(fn.arrays.items()))
    )
    out.append(
        "aparams "
        + ",".join(
            f"{n}:{_canon_scalar(t)}" for n, t in sorted(fn.array_params.items())
        )
    )
    for name, init in sorted(fn.array_init.items()):
        out.append(f"init {name} " + ",".join(_canon_scalar(v) for v in init))
    for loop in fn.loops:
        out.append(
            f"loop {loop.header} [{','.join(loop.blocks)}] latch={loop.latch} "
            f"exit={loop.exit} trip={loop.trip_count} pipe={int(loop.pipeline)} "
            f"unroll={loop.unroll} ivar={loop.ivar} label={loop.label}"
        )
    for block in fn.blocks:
        out.append(f"{block.name}:")
        for op in block.ops:
            res = f"%{op.result.vid}:{op.result.type.name}=" if op.result else ""
            operands = ",".join(f"%{v.vid}:{v.type.name}" for v in op.operands)
            attrs = ";".join(
                f"{k}={_canon_scalar(v)}" for k, v in sorted(op.attrs.items())
            )
            out.append(f"  {res}{op.opcode}({operands}){{{attrs}}}")
    return "\n".join(out)


def ir_digest(fn: Function) -> str:
    """SHA-256 of :func:`canonical_text` — the per-function cache key.

    Stable across processes (``PYTHONHASHSEED``-independent), sensitive
    to any semantic change of the IR, insensitive to anything the IR has
    already normalized away (comments, whitespace, source formatting).
    """
    return hashlib.sha256(canonical_text(fn).encode()).hexdigest()
