"""AST of the synthesizable C subset.

Plain dataclasses; every node carries a source location for error
reporting.  Types are attached by :mod:`repro.hls.sema` (the ``ctype``
attribute on expressions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.types import CType, ScalarType
from repro.util.errors import SourceLocation


@dataclass
class Node:
    loc: SourceLocation


# --- expressions -----------------------------------------------------------
@dataclass
class Expr(Node):
    #: Filled in by sema.
    ctype: CType | None = field(default=None, init=False, compare=False)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class Name(Expr):
    ident: str


@dataclass
class Index(Expr):
    """``base[index]`` — base is an array name or a partial index chain
    (multi-dimensional access ``a[i][j]`` parses as nested Index nodes)."""

    base: "Name | Index"
    index: Expr


@dataclass
class Unary(Expr):
    op: str  # - ! ~
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # + - * / % << >> < <= > >= == != & | ^ && ||
    left: Expr
    right: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Cast(Expr):
    target: ScalarType
    operand: Expr


@dataclass
class Call(Expr):
    """Intrinsic call (``min``, ``max``, ``abs``, ``sqrtf``, ...)."""

    func: str
    args: list[Expr]


# --- statements ---------------------------------------------------------------
@dataclass
class Stmt(Node):
    pass


@dataclass
class Decl(Stmt):
    """``int x = e;`` or ``int a[N];`` (optionally const).

    ``init_list`` carries a brace initializer for arrays
    (``int c[3] = {1, 2, 1};``); unspecified trailing elements are zero,
    exactly as in C.
    """

    name: str
    ctype: CType
    init: Expr | None
    const: bool = False
    init_list: list[Expr] | None = None


@dataclass
class Assign(Stmt):
    """``target = value`` where target is a Name or Index.

    Compound assignments are desugared by the parser into plain
    assignments (``x += e`` → ``x = x + e``).
    """

    target: Name | Index
    value: Expr


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: "Block"
    other: "Block | None"


@dataclass
class While(Stmt):
    cond: Expr
    body: "Block"
    label: str | None = None


@dataclass
class DoWhile(Stmt):
    body: "Block"
    cond: Expr


@dataclass
class For(Stmt):
    init: Stmt | None
    cond: Expr | None
    step: Stmt | None
    body: "Block"
    label: str | None = None


@dataclass
class Return(Stmt):
    value: Expr | None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Block(Stmt):
    stmts: list[Stmt]


# --- top level -------------------------------------------------------------
@dataclass
class Param(Node):
    name: str
    ctype: CType


@dataclass
class FuncDef(Node):
    name: str
    ret: ScalarType
    params: list[Param]
    body: Block


@dataclass
class GlobalConst(Node):
    """``const int N = 42;`` at file scope — a compile-time constant."""

    name: str
    ctype: ScalarType
    value: Expr


@dataclass
class TranslationUnit(Node):
    consts: list[GlobalConst]
    funcs: list[FuncDef]

    def func(self, name: str) -> FuncDef:
        for f in self.funcs:
            if f.name == name:
                return f
        raise KeyError(f"no function named {name!r}")
