"""Semantic analysis for the synthesizable C subset.

Performs name resolution, type checking (annotating every expression's
``ctype``), and the synthesizability checks Vivado HLS would enforce:
no recursion (no user calls at all — only intrinsics), compile-time
array sizes, no assignment to ``const``, ``break``/``continue`` only
inside loops.  Global ``const`` declarations are evaluated to values and
usable wherever a constant is expected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls import cast as A
from repro.hls.types import (
    BOOL,
    FLOAT,
    INT32,
    VOID,
    ArrayType,
    CType,
    ScalarType,
    is_arith,
    is_array,
    is_float,
    is_integer,
    promote,
    usual_arith,
    wrap_int,
)
from repro.util.errors import CSemanticError


@dataclass
class FunctionInfo:
    """Per-function results of semantic analysis."""

    func: A.FuncDef
    #: Declared type of every parameter and local, by name.
    symbols: dict[str, CType] = field(default_factory=dict)
    #: Names declared const (locals) — assignment is rejected.
    consts: set[str] = field(default_factory=set)
    #: Parameter names in declaration order.
    param_names: list[str] = field(default_factory=list)


@dataclass
class SemaResult:
    unit: A.TranslationUnit
    #: Global const values: name -> (type, python value).
    global_consts: dict[str, tuple[ScalarType, int | float]] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    def info(self, name: str) -> FunctionInfo:
        try:
            return self.functions[name]
        except KeyError:
            raise CSemanticError(f"no function named {name!r}") from None


class _FuncChecker:
    def __init__(self, unit_consts: dict[str, tuple[ScalarType, int | float]], func: A.FuncDef):
        self.globals = unit_consts
        self.func = func
        self.info = FunctionInfo(func)
        self.scopes: list[dict[str, CType]] = [{}]
        self.loop_depth = 0

    # -- scope helpers ------------------------------------------------------
    def declare(self, name: str, ctype: CType, loc, *, const: bool = False) -> None:
        scope = self.scopes[-1]
        if name in scope:
            raise CSemanticError(f"redeclaration of {name!r}", loc)
        if name in self.globals:
            raise CSemanticError(f"{name!r} shadows a global const", loc)
        scope[name] = ctype
        if name in self.info.symbols and self.info.symbols[name] != ctype:
            # Same name reused in sibling scopes with different types would
            # break the flat symbol table the IR uses; reject it.
            raise CSemanticError(
                f"{name!r} redeclared with a different type in a sibling scope", loc
            )
        self.info.symbols[name] = ctype
        if const:
            self.info.consts.add(name)

    def lookup(self, name: str, loc) -> CType:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            return self.globals[name][0]
        raise CSemanticError(f"use of undeclared identifier {name!r}", loc)

    # -- entry ---------------------------------------------------------------
    def run(self) -> FunctionInfo:
        seen = set()
        for p in self.func.params:
            if p.name in seen:
                raise CSemanticError(f"duplicate parameter {p.name!r}", p.loc)
            seen.add(p.name)
            if isinstance(p.ctype, ArrayType) and p.ctype.size is not None and p.ctype.size <= 0:
                raise CSemanticError(f"parameter array {p.name!r} has non-positive size", p.loc)
            self.declare(p.name, p.ctype, p.loc)
            self.info.param_names.append(p.name)
        self.check_block(self.func.body, new_scope=False)
        return self.info

    # -- statements ------------------------------------------------------------
    def check_block(self, block: A.Block, *, new_scope: bool = True) -> None:
        if new_scope:
            self.scopes.append({})
        for stmt in block.stmts:
            self.check_stmt(stmt)
        if new_scope:
            self.scopes.pop()

    def check_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            self.check_block(stmt)
        elif isinstance(stmt, A.Decl):
            self.check_decl(stmt)
        elif isinstance(stmt, A.Assign):
            self.check_assign(stmt)
        elif isinstance(stmt, A.ExprStmt):
            self.check_expr(stmt.expr)
        elif isinstance(stmt, A.If):
            self.require_arith(self.check_expr(stmt.cond), stmt.cond.loc, "if condition")
            self.check_block(stmt.then)
            if stmt.other is not None:
                self.check_block(stmt.other)
        elif isinstance(stmt, A.While):
            self.require_arith(self.check_expr(stmt.cond), stmt.cond.loc, "while condition")
            self.loop_depth += 1
            self.check_block(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, A.DoWhile):
            self.loop_depth += 1
            self.check_block(stmt.body)
            self.loop_depth -= 1
            self.require_arith(self.check_expr(stmt.cond), stmt.cond.loc, "do-while condition")
        elif isinstance(stmt, A.For):
            self.scopes.append({})
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self.require_arith(self.check_expr(stmt.cond), stmt.cond.loc, "for condition")
            if stmt.step is not None:
                self.check_stmt(stmt.step)
            self.loop_depth += 1
            self.check_block(stmt.body)
            self.loop_depth -= 1
            self.scopes.pop()
        elif isinstance(stmt, A.Return):
            self.check_return(stmt)
        elif isinstance(stmt, (A.Break, A.Continue)):
            if self.loop_depth == 0:
                kw = "break" if isinstance(stmt, A.Break) else "continue"
                raise CSemanticError(f"{kw!r} outside of a loop", stmt.loc)
        else:  # pragma: no cover - defensive
            raise CSemanticError(f"unknown statement {type(stmt).__name__}", stmt.loc)

    def check_decl(self, decl: A.Decl) -> None:
        if isinstance(decl.ctype, ArrayType):
            if decl.ctype.size is None or decl.ctype.size <= 0:
                raise CSemanticError(
                    f"local array {decl.name!r} needs a positive compile-time size",
                    decl.loc,
                )
            if decl.init_list is not None:
                if len(decl.init_list) > decl.ctype.size:
                    raise CSemanticError(
                        f"array {decl.name!r}: {len(decl.init_list)} initializers "
                        f"for {decl.ctype.size} elements",
                        decl.loc,
                    )
                for e in decl.init_list:
                    try:
                        _eval_const_expr(e, self.globals)
                    except CSemanticError:
                        raise CSemanticError(
                            f"array {decl.name!r}: initializer elements must be "
                            "compile-time constants",
                            e.loc,
                        ) from None
                    self.check_expr(e)
        else:
            if decl.ctype is VOID:
                raise CSemanticError(f"variable {decl.name!r} cannot be void", decl.loc)
            if decl.init is not None:
                t = self.check_expr(decl.init)
                self.require_arith(t, decl.init.loc, "initializer")
            elif decl.const:
                raise CSemanticError(f"const {decl.name!r} needs an initializer", decl.loc)
        self.declare(decl.name, decl.ctype, decl.loc, const=decl.const)

    def check_assign(self, stmt: A.Assign) -> None:
        value_t = self.check_expr(stmt.value)
        self.require_arith(value_t, stmt.value.loc, "assigned value")
        if isinstance(stmt.target, A.Name):
            t = self.lookup(stmt.target.ident, stmt.target.loc)
            if stmt.target.ident in self.info.consts or stmt.target.ident in self.globals:
                raise CSemanticError(
                    f"assignment to const {stmt.target.ident!r}", stmt.target.loc
                )
            if is_array(t):
                raise CSemanticError(
                    f"cannot assign to array {stmt.target.ident!r}", stmt.target.loc
                )
            stmt.target.ctype = t
        else:
            self.check_index(stmt.target)

    def check_return(self, stmt: A.Return) -> None:
        if self.func.ret is VOID:
            if stmt.value is not None:
                raise CSemanticError("void function returns a value", stmt.loc)
            return
        if stmt.value is None:
            raise CSemanticError(
                f"non-void function {self.func.name!r} returns nothing", stmt.loc
            )
        t = self.check_expr(stmt.value)
        self.require_arith(t, stmt.value.loc, "return value")

    # -- expressions -----------------------------------------------------------
    def require_arith(self, t: CType, loc, what: str) -> None:
        if not is_arith(t) and t is not BOOL:
            raise CSemanticError(f"{what} must be arithmetic, got {t}", loc)

    def check_expr(self, expr: A.Expr) -> CType:
        t = self._check_expr(expr)
        expr.ctype = t
        return t

    def _check_expr(self, expr: A.Expr) -> CType:
        if isinstance(expr, A.IntLit):
            return INT32
        if isinstance(expr, A.FloatLit):
            return FLOAT
        if isinstance(expr, A.BoolLit):
            return BOOL
        if isinstance(expr, A.Name):
            t = self.lookup(expr.ident, expr.loc)
            return t
        if isinstance(expr, A.Index):
            return self.check_index(expr)
        if isinstance(expr, A.Unary):
            return self.check_unary(expr)
        if isinstance(expr, A.Binary):
            return self.check_binary(expr)
        if isinstance(expr, A.Ternary):
            self.require_arith(self.check_expr(expr.cond), expr.cond.loc, "?: condition")
            a = self.check_expr(expr.then)
            b = self.check_expr(expr.other)
            self.require_arith(a, expr.then.loc, "?: branch")
            self.require_arith(b, expr.other.loc, "?: branch")
            return usual_arith(self._scalar(a), self._scalar(b))
        if isinstance(expr, A.Cast):
            t = self.check_expr(expr.operand)
            self.require_arith(t, expr.operand.loc, "cast operand")
            if expr.target is VOID:
                raise CSemanticError("cannot cast to void", expr.loc)
            return expr.target
        if isinstance(expr, A.Call):
            return self.check_call(expr)
        raise CSemanticError(f"unknown expression {type(expr).__name__}", expr.loc)

    @staticmethod
    def _scalar(t: CType) -> ScalarType:
        assert isinstance(t, ScalarType)
        return t

    def check_index(self, expr: A.Index) -> ScalarType:
        """Type-check a (possibly multi-dimensional) index chain."""
        # Unwind to the base array name, outermost index last.
        chain: list[A.Index] = []
        node: A.Expr = expr
        while isinstance(node, A.Index):
            chain.append(node)
            node = node.base
        assert isinstance(node, A.Name)
        base_t = self.lookup(node.ident, node.loc)
        if not is_array(base_t):
            raise CSemanticError(f"{node.ident!r} is not an array", node.loc)
        assert isinstance(base_t, ArrayType)
        node.ctype = base_t
        rank = base_t.rank
        if len(chain) != rank:
            raise CSemanticError(
                f"array {node.ident!r} has rank {rank}; "
                f"{len(chain)} indices supplied",
                expr.loc,
            )
        for link in chain:
            idx_t = self.check_expr(link.index)
            if not is_integer(idx_t) and idx_t is not BOOL:
                raise CSemanticError("array index must be an integer", link.index.loc)
            link.ctype = base_t.element  # partial chains are never values
        return base_t.element

    def check_unary(self, expr: A.Unary) -> ScalarType:
        t = self.check_expr(expr.operand)
        self.require_arith(t, expr.operand.loc, f"operand of {expr.op!r}")
        st = self._scalar(t)
        if expr.op == "-":
            return promote(st)
        if expr.op == "!":
            return BOOL
        if expr.op == "~":
            if st.is_float:
                raise CSemanticError("~ requires an integer operand", expr.loc)
            return promote(st)
        raise CSemanticError(f"unknown unary operator {expr.op!r}", expr.loc)

    def check_binary(self, expr: A.Binary) -> ScalarType:
        lt = self.check_expr(expr.left)
        rt = self.check_expr(expr.right)
        self.require_arith(lt, expr.left.loc, f"operand of {expr.op!r}")
        self.require_arith(rt, expr.right.loc, f"operand of {expr.op!r}")
        ls, rs = self._scalar(lt), self._scalar(rt)
        op = expr.op
        if op in ("&&", "||"):
            return BOOL
        if op in ("<", "<=", ">", ">=", "==", "!="):
            return BOOL
        if op in ("<<", ">>"):
            if ls.is_float or rs.is_float:
                raise CSemanticError("shift requires integer operands", expr.loc)
            return promote(ls)
        if op in ("&", "|", "^", "%"):
            if ls.is_float or rs.is_float:
                raise CSemanticError(f"{op!r} requires integer operands", expr.loc)
            return usual_arith(ls, rs)
        if op in ("+", "-", "*", "/"):
            return usual_arith(ls, rs)
        raise CSemanticError(f"unknown binary operator {op!r}", expr.loc)

    def check_call(self, expr: A.Call) -> ScalarType:
        arg_ts = [self._scalar(self.check_expr(a)) for a in expr.args]
        for a, t in zip(expr.args, arg_ts):
            self.require_arith(t, a.loc, f"argument of {expr.func!r}")
        name = expr.func
        if name in ("min", "max"):
            if len(expr.args) != 2:
                raise CSemanticError(f"{name} takes 2 arguments", expr.loc)
            return usual_arith(arg_ts[0], arg_ts[1])
        if name == "abs":
            if len(expr.args) != 1:
                raise CSemanticError("abs takes 1 argument", expr.loc)
            return promote(arg_ts[0])
        if name in ("sqrtf", "fabsf"):
            if len(expr.args) != 1:
                raise CSemanticError(f"{name} takes 1 argument", expr.loc)
            return FLOAT
        raise CSemanticError(f"unknown intrinsic {name!r}", expr.loc)


def _eval_const_expr(
    expr: A.Expr, consts: dict[str, tuple[ScalarType, int | float]]
) -> int | float:
    """Evaluate a global-const initializer at compile time."""
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.FloatLit):
        return expr.value
    if isinstance(expr, A.BoolLit):
        return int(expr.value)
    if isinstance(expr, A.Name):
        if expr.ident in consts:
            return consts[expr.ident][1]
        raise CSemanticError(f"{expr.ident!r} is not a known constant", expr.loc)
    if isinstance(expr, A.Unary):
        v = _eval_const_expr(expr.operand, consts)
        if expr.op == "-":
            return -v
        if expr.op == "~":
            return ~int(v)
        if expr.op == "!":
            return int(not v)
    if isinstance(expr, A.Binary):
        a = _eval_const_expr(expr.left, consts)
        b = _eval_const_expr(expr.right, consts)
        try:
            return {
                "+": lambda: a + b,
                "-": lambda: a - b,
                "*": lambda: a * b,
                "/": lambda: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
                "%": lambda: a % b,
                "<<": lambda: int(a) << int(b),
                ">>": lambda: int(a) >> int(b),
            }[expr.op]()
        except KeyError:
            pass
        except ZeroDivisionError:
            raise CSemanticError("division by zero in constant expression", expr.loc) from None
    raise CSemanticError("initializer is not a constant expression", expr.loc)


def analyze(unit: A.TranslationUnit) -> SemaResult:
    """Run semantic analysis over a translation unit."""
    result = SemaResult(unit)
    for gc in unit.consts:
        if gc.name in result.global_consts:
            raise CSemanticError(f"duplicate global const {gc.name!r}", gc.loc)
        value = _eval_const_expr(gc.value, result.global_consts)
        if not gc.ctype.is_float:
            value = wrap_int(int(value), gc.ctype)
        else:
            value = float(value)
        result.global_consts[gc.name] = (gc.ctype, value)
        gc.value.ctype = gc.ctype

    seen = set()
    for func in unit.funcs:
        if func.name in seen:
            raise CSemanticError(f"duplicate function {func.name!r}", func.loc)
        seen.add(func.name)
        checker = _FuncChecker(result.global_consts, func)
        result.functions[func.name] = checker.run()
    return result
