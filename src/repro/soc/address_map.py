"""AXI address-map allocation for the GP0 control space.

Vivado's address editor assigns each AXI-Lite slave a 64 KiB-aligned
segment of the M_AXI_GP0 window; we follow the conventional Zynq layout:
HLS accelerators from ``0x43C0_0000``, AXI DMA cores from
``0x4040_0000``.  PL masters (DMA) see the DDR through the HP ports at
``0x0000_0000``.

Invariants enforced (and property-tested): segments are power-of-two
sized, aligned to their size, within the GP window, and pairwise
disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import AddressMapError

GP0_BASE = 0x4000_0000
GP0_END = 0x7FFF_FFFF
HLS_BASE = 0x43C0_0000
DMA_BASE = 0x4040_0000
SEGMENT_SIZE = 0x1_0000  # 64 KiB


@dataclass(frozen=True)
class AddressRange:
    """One allocated segment: [base, base+size)."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size - 1

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base <= other.end and other.base <= self.end


@dataclass
class AddressMap:
    """Allocator + lookup table for AXI-Lite slave segments."""

    ranges: list[AddressRange] = field(default_factory=list)
    _next_hls: int = HLS_BASE
    _next_dma: int = DMA_BASE

    def assign(self, name: str, *, kind: str = "hls", size: int = SEGMENT_SIZE) -> AddressRange:
        """Allocate the next free segment of the given *kind* pool."""
        if size <= 0 or (size & (size - 1)) != 0:
            raise AddressMapError(f"segment size {size:#x} is not a power of two")
        if any(r.name == name for r in self.ranges):
            raise AddressMapError(f"segment for {name!r} already assigned")
        if kind == "hls":
            base = self._align(self._next_hls, size)
            self._next_hls = base + size
        elif kind == "dma":
            base = self._align(self._next_dma, size)
            self._next_dma = base + size
            if base + size > HLS_BASE and self._next_hls == HLS_BASE:
                pass  # DMA pool growing into the HLS pool is caught below
        else:
            raise AddressMapError(f"unknown segment kind {kind!r}")
        rng = AddressRange(name, base, size)
        self._check(rng)
        self.ranges.append(rng)
        return rng

    def assign_fixed(self, name: str, base: int, size: int = SEGMENT_SIZE) -> AddressRange:
        """Register a segment at an explicit base (tcl-runner path).

        The same invariants as :meth:`assign` are enforced.
        """
        if size <= 0 or (size & (size - 1)) != 0:
            raise AddressMapError(f"segment size {size:#x} is not a power of two")
        if any(r.name == name for r in self.ranges):
            raise AddressMapError(f"segment for {name!r} already assigned")
        rng = AddressRange(name, base, size)
        self._check(rng)
        self.ranges.append(rng)
        return rng

    @staticmethod
    def _align(addr: int, size: int) -> int:
        return (addr + size - 1) & ~(size - 1)

    def _check(self, rng: AddressRange) -> None:
        if rng.base < GP0_BASE or rng.end > GP0_END:
            raise AddressMapError(
                f"segment {rng.name!r} [{rng.base:#x}, {rng.end:#x}] outside GP0 window"
            )
        if rng.base % rng.size != 0:
            raise AddressMapError(f"segment {rng.name!r} not aligned to its size")
        for other in self.ranges:
            if rng.overlaps(other):
                raise AddressMapError(
                    f"segment {rng.name!r} overlaps {other.name!r}"
                )

    # -- lookups -----------------------------------------------------------
    def of(self, name: str) -> AddressRange:
        for r in self.ranges:
            if r.name == name:
                return r
        raise AddressMapError(f"no segment assigned to {name!r}")

    def resolve(self, addr: int) -> AddressRange:
        for r in self.ranges:
            if r.contains(addr):
                return r
        raise AddressMapError(f"address {addr:#x} maps to no segment")

    def render(self) -> str:
        lines = ["Offset       Range        Segment"]
        for r in sorted(self.ranges, key=lambda r: r.base):
            lines.append(f"{r.base:#010x}  {r.size // 1024:>5} KiB   {r.name}")
        return "\n".join(lines)
