"""Block-design (de)serialization — the ``.bd``-file analogue.

Exports the complete design (cells with pins/resources/params,
connections, address map) to plain JSON-able dicts and rebuilds it
exactly: the round-tripped design produces the same bitstream digest,
which the tests assert.  Unlike the tcl path, no IP factories are
needed — cells are reconstructed field by field.
"""

from __future__ import annotations

from typing import Any

from repro.hls.resources import ResourceUsage
from repro.soc.blockdesign import BlockDesign
from repro.soc.ip import InterfacePin, IpCore, PinKind
from repro.util.errors import SocError


def design_to_dict(bd: BlockDesign) -> dict[str, Any]:
    """Serialize *bd* to plain dict/list/str/int values."""
    return {
        "name": bd.name,
        "part": bd.part,
        "cells": [
            {
                "name": cell.name,
                "vlnv": cell.vlnv,
                "is_hard": cell.is_hard,
                "pins": [
                    [p.name, p.kind.value, p.data_width] for p in cell.pins
                ],
                "resources": list(cell.resources.as_row()),
                "params": dict(cell.params),
            }
            for cell in bd.cells.values()
        ],
        "connections": [list(c.key()) for c in bd.connections],
        "address_map": [
            {"name": r.name, "base": r.base, "size": r.size}
            for r in bd.address_map.ranges
        ],
    }


def design_from_dict(data: dict[str, Any]) -> BlockDesign:
    """Rebuild a :class:`BlockDesign` from :func:`design_to_dict` output."""
    bd = BlockDesign(data["name"], part=data.get("part", "xc7z020clg484-1"))
    for cd in data.get("cells", ()):
        lut, ff, bram, dsp = cd.get("resources", (0, 0, 0, 0))
        bd.add_cell(
            IpCore(
                name=cd["name"],
                vlnv=cd["vlnv"],
                pins=[
                    InterfacePin(str(n), PinKind(k), int(w))
                    for n, k, w in cd.get("pins", ())
                ],
                resources=ResourceUsage(lut, ff, bram, dsp),
                params=dict(cd.get("params", {})),
                is_hard=bool(cd.get("is_hard", False)),
            )
        )
    for key in data.get("connections", ()):
        if len(key) != 4:
            raise SocError(f"bad connection encoding: {key!r}")
        bd.connect(*key)
    for rd in data.get("address_map", ()):
        bd.address_map.assign_fixed(rd["name"], int(rd["base"]), int(rd["size"]))
    return bd
