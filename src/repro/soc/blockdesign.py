"""Block-design graph: cells + typed connections + the address map.

This is the in-memory equivalent of a Vivado ``.bd``: what the
integrator builds directly and what the tcl interpreter
(:mod:`repro.tcl.runner`) rebuilds from the generated script — the two
must match exactly, which an integration test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.resources import ResourceUsage
from repro.soc.address_map import AddressMap
from repro.soc.ip import MATING, IpCore, PinKind
from repro.util.errors import IntegrationError


@dataclass(frozen=True)
class Connection:
    """Directed net: (driver cell, driver pin) -> (sink cell, sink pin)."""

    src_cell: str
    src_pin: str
    dst_cell: str
    dst_pin: str

    def key(self) -> tuple[str, str, str, str]:
        return (self.src_cell, self.src_pin, self.dst_cell, self.dst_pin)


@dataclass
class BlockDesign:
    name: str
    part: str = "xc7z020clg484-1"
    cells: dict[str, IpCore] = field(default_factory=dict)
    connections: list[Connection] = field(default_factory=list)
    address_map: AddressMap = field(default_factory=AddressMap)

    # -- construction --------------------------------------------------------
    def add_cell(self, core: IpCore) -> IpCore:
        if core.name in self.cells:
            raise IntegrationError(f"duplicate cell name {core.name!r}")
        self.cells[core.name] = core
        return core

    def cell(self, name: str) -> IpCore:
        try:
            return self.cells[name]
        except KeyError:
            raise IntegrationError(f"no cell named {name!r}") from None

    def connect(self, src_cell: str, src_pin: str, dst_cell: str, dst_pin: str) -> Connection:
        """Connect a driver pin to a compatible sink pin (type-checked)."""
        src = self.cell(src_cell).pin(src_pin)
        dst = self.cell(dst_cell).pin(dst_pin)
        if not src.is_driver():
            raise IntegrationError(
                f"{src_cell}.{src_pin} ({src.kind.value}) cannot drive a connection"
            )
        expected = MATING[src.kind]
        if dst.kind is not expected:
            raise IntegrationError(
                f"cannot connect {src_cell}.{src_pin} ({src.kind.value}) to "
                f"{dst_cell}.{dst_pin} ({dst.kind.value}); expected {expected.value}"
            )
        if src.kind is PinKind.AXIS_MASTER and src.data_width != dst.data_width:
            raise IntegrationError(
                f"stream width mismatch: {src_cell}.{src_pin} is "
                f"{src.data_width} bits, {dst_cell}.{dst_pin} is {dst.data_width}"
            )
        conn = Connection(src_cell, src_pin, dst_cell, dst_pin)
        if conn.key() in {c.key() for c in self.connections}:
            raise IntegrationError(f"duplicate connection {conn.key()}")
        self.connections.append(conn)
        return conn

    # -- queries ----------------------------------------------------------------
    def drivers_of(self, cell: str, pin: str) -> list[Connection]:
        return [c for c in self.connections if c.dst_cell == cell and c.dst_pin == pin]

    def sinks_of(self, cell: str, pin: str) -> list[Connection]:
        return [c for c in self.connections if c.src_cell == cell and c.src_pin == pin]

    def total_resources(self) -> ResourceUsage:
        total = ResourceUsage()
        for core in self.cells.values():
            if not core.is_hard:
                total = total + core.resources
        return total

    # -- presentation (Fig. 10 analogue) ---------------------------------------
    def to_diagram(self) -> str:
        """Graphviz dot text of the block design (bus connections only)."""
        bus_kinds = {
            PinKind.AXI_LITE_MASTER,
            PinKind.AXI_FULL_MASTER,
            PinKind.AXIS_MASTER,
        }
        lines = [f"digraph {self.name} {{", "  rankdir=LR;"]
        for cell in self.cells.values():
            shape = "box3d" if cell.is_hard else "box"
            lines.append(f'  "{cell.name}" [shape={shape}];')
        for c in self.connections:
            kind = self.cell(c.src_cell).pin(c.src_pin).kind
            if kind not in bus_kinds:
                continue
            style = "dashed" if kind is PinKind.AXI_LITE_MASTER else "solid"
            color = "blue" if kind is PinKind.AXIS_MASTER else "black"
            lines.append(
                f'  "{c.src_cell}" -> "{c.dst_cell}" '
                f'[label="{c.src_pin}", style={style}, color={color}];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"

    def summary(self) -> str:
        r = self.total_resources()
        return (
            f"block design {self.name!r}: {len(self.cells)} cells, "
            f"{len(self.connections)} connections, "
            f"{len(self.address_map.ranges)} address segments, "
            f"LUT={r.lut} FF={r.ff} BRAM18={r.bram18} DSP={r.dsp}"
        )
