"""AXI DMA core model.

The paper's tool "adds a DMA core for managing I/O via AXI-Stream"
(Section IV-A): the DMA bridges shared DDR (through a PS7 HP port) and
the accelerators' AXI-Stream pipelines.  A full core has two channels —
MM2S (memory → stream) and S2MM (stream → memory) — each backed by a
data FIFO, which is where the RAMB18 blocks of the base platform go.

The single-channel policy the paper contrasts with SDSoC (Section VII)
is expressed by instantiating cores with only one direction enabled.
"""

from __future__ import annotations

from repro.hls.resources import ResourceUsage
from repro.soc.ip import InterfacePin, IpCore, PinKind
from repro.util.errors import IntegrationError

#: Calibrated per-direction costs of the AXI DMA (xc7z020 numbers).
_CHANNEL_COST = ResourceUsage(lut=630, ff=880, bram18=2)
_BASE_COST = ResourceUsage(lut=210, ff=260)


def axi_dma(
    name: str,
    *,
    mm2s: bool = True,
    s2mm: bool = True,
    mm2s_width: int = 32,
    s2mm_width: int = 32,
) -> IpCore:
    """Build an AXI DMA cell with the requested channels and stream widths."""
    if not (mm2s or s2mm):
        raise IntegrationError(f"DMA {name!r} must enable at least one channel")
    pins = [
        InterfacePin("s_axi_lite_aclk", PinKind.CLOCK_IN),
        InterfacePin("axi_resetn", PinKind.RESET_IN),
        InterfacePin("S_AXI_LITE", PinKind.AXI_LITE_SLAVE),
    ]
    resources = _BASE_COST
    if mm2s:
        pins.append(InterfacePin("M_AXI_MM2S", PinKind.AXI_FULL_MASTER))
        pins.append(InterfacePin("M_AXIS_MM2S", PinKind.AXIS_MASTER, mm2s_width))
        pins.append(InterfacePin("mm2s_introut", PinKind.INTERRUPT_OUT))
        resources = resources + _CHANNEL_COST
    if s2mm:
        pins.append(InterfacePin("M_AXI_S2MM", PinKind.AXI_FULL_MASTER))
        pins.append(InterfacePin("S_AXIS_S2MM", PinKind.AXIS_SLAVE, s2mm_width))
        pins.append(InterfacePin("s2mm_introut", PinKind.INTERRUPT_OUT))
        resources = resources + _CHANNEL_COST
    return IpCore(
        name=name,
        vlnv="xilinx.com:ip:axi_dma:7.1",
        pins=pins,
        resources=resources,
        params={
            "c_include_mm2s": int(mm2s),
            "c_include_s2mm": int(s2mm),
            "c_m_axis_mm2s_tdata_width": mm2s_width,
            "c_s_axis_s2mm_tdata_width": s2mm_width,
        },
    )
