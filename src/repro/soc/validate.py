"""Design-rule checks on a finished block design.

Checks mirror what Vivado's ``validate_bd_design`` catches:

* every clock/reset sink is driven exactly once;
* every AXI-Stream slave has exactly one driver; every AXI-Stream
  master drives exactly one sink (point-to-point);
* every AXI-Lite/full slave has at most one attached master;
* every AXI-Lite slave reachable from the GP interconnect has an
  address segment, and vice versa;
* no dangling AXI master interfaces.
"""

from __future__ import annotations

from repro.soc.blockdesign import BlockDesign
from repro.soc.ip import PinKind
from repro.util.errors import DrcError


def run_drc(bd: BlockDesign) -> None:
    """Run all checks; raises :class:`DrcError` with the first violation."""
    _check_single_drivers(bd)
    _check_stream_topology(bd)
    _check_master_fanout(bd)
    _check_addressing(bd)


def _check_single_drivers(bd: BlockDesign) -> None:
    for cell in bd.cells.values():
        for pin in cell.pins:
            if pin.kind in (PinKind.CLOCK_IN, PinKind.RESET_IN):
                n = len(bd.drivers_of(cell.name, pin.name))
                if n == 0:
                    raise DrcError(f"{cell.name}.{pin.name}: {pin.kind.value} undriven")
                if n > 1:
                    raise DrcError(
                        f"{cell.name}.{pin.name}: {pin.kind.value} driven {n} times"
                    )


def _check_stream_topology(bd: BlockDesign) -> None:
    for cell in bd.cells.values():
        for pin in cell.pins_of_kind(PinKind.AXIS_SLAVE):
            n = len(bd.drivers_of(cell.name, pin.name))
            if n != 1:
                raise DrcError(
                    f"{cell.name}.{pin.name}: stream input has {n} drivers (needs 1)"
                )
        for pin in cell.pins_of_kind(PinKind.AXIS_MASTER):
            n = len(bd.sinks_of(cell.name, pin.name))
            if n != 1:
                raise DrcError(
                    f"{cell.name}.{pin.name}: stream output feeds {n} sinks (needs 1)"
                )


def _check_master_fanout(bd: BlockDesign) -> None:
    for cell in bd.cells.values():
        for kind in (PinKind.AXI_LITE_MASTER, PinKind.AXI_FULL_MASTER):
            for pin in cell.pins_of_kind(kind):
                n = len(bd.sinks_of(cell.name, pin.name))
                if n > 1:
                    raise DrcError(
                        f"{cell.name}.{pin.name}: AXI master drives {n} slaves"
                    )
                if n == 0:
                    raise DrcError(f"{cell.name}.{pin.name}: dangling AXI master")
        for kind in (PinKind.AXI_LITE_SLAVE, PinKind.AXI_FULL_SLAVE):
            for pin in cell.pins_of_kind(kind):
                n = len(bd.drivers_of(cell.name, pin.name))
                if n > 1:
                    raise DrcError(
                        f"{cell.name}.{pin.name}: AXI slave has {n} masters"
                    )


def _check_addressing(bd: BlockDesign) -> None:
    assigned = {r.name for r in bd.address_map.ranges}
    # Lite slaves attached to an interconnect output must be addressed.
    for cell in bd.cells.values():
        for pin in cell.pins_of_kind(PinKind.AXI_LITE_SLAVE):
            drivers = bd.drivers_of(cell.name, pin.name)
            if not drivers:
                continue
            src = bd.cell(drivers[0].src_cell)
            if src.vlnv.startswith("xilinx.com:ip:axi_interconnect"):
                if cell.name not in assigned:
                    raise DrcError(
                        f"{cell.name}: AXI-Lite slave reachable from the bus "
                        "but has no address segment"
                    )
    for name in assigned:
        if name not in bd.cells:
            raise DrcError(f"address segment {name!r} references no cell")
