"""Zynq-7000 processing-system (PS7) model and configuration.

The PS7 is hard silicon: it costs no PL resources but must be configured
— the paper's tool "adds a Zynq Processing System, configures it and
enables the High Performance I/O ports to transfer data via DMA"
(Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls.resources import ResourceUsage
from repro.soc.ip import InterfacePin, IpCore, PinKind
from repro.util.errors import IntegrationError

MAX_HP_PORTS = 4
MAX_GP_PORTS = 2


@dataclass(frozen=True)
class ZynqConfig:
    """PS7 configuration the integrator applies."""

    gp_masters: int = 1  # M_AXI_GP0.. (control plane)
    hp_slaves: int = 0  # S_AXI_HP0.. (DMA data plane)
    fclk_mhz: float = 100.0
    #: DDR visible to PL masters, bytes (Zedboard: 512 MiB).
    ddr_bytes: int = 512 * 1024 * 1024

    def __post_init__(self) -> None:
        if not (0 <= self.gp_masters <= MAX_GP_PORTS):
            raise IntegrationError(f"PS7 supports at most {MAX_GP_PORTS} GP masters")
        if not (0 <= self.hp_slaves <= MAX_HP_PORTS):
            raise IntegrationError(f"PS7 supports at most {MAX_HP_PORTS} HP slaves")
        if self.fclk_mhz <= 0:
            raise IntegrationError("FCLK frequency must be positive")


def zynq_ps7(config: ZynqConfig, name: str = "processing_system7_0") -> IpCore:
    """Build the PS7 cell for *config*."""
    pins = [
        InterfacePin("FCLK_CLK0", PinKind.CLOCK_OUT),
        InterfacePin("FCLK_RESET0_N", PinKind.RESET_OUT),
        InterfacePin("IRQ_F2P", PinKind.INTERRUPT_IN),
    ]
    for i in range(config.gp_masters):
        pins.append(InterfacePin(f"M_AXI_GP{i}", PinKind.AXI_LITE_MASTER))
        pins.append(InterfacePin(f"M_AXI_GP{i}_ACLK", PinKind.CLOCK_IN))
    for i in range(config.hp_slaves):
        pins.append(InterfacePin(f"S_AXI_HP{i}", PinKind.AXI_FULL_SLAVE, data_width=64))
        pins.append(InterfacePin(f"S_AXI_HP{i}_ACLK", PinKind.CLOCK_IN))
    params: dict[str, object] = {
        "PCW_FPGA0_PERIPHERAL_FREQMHZ": config.fclk_mhz,
        "preset": "ZedBoard",
    }
    for i in range(MAX_GP_PORTS):
        params[f"PCW_USE_M_AXI_GP{i}"] = int(i < config.gp_masters)
    for i in range(MAX_HP_PORTS):
        params[f"PCW_USE_S_AXI_HP{i}"] = int(i < config.hp_slaves)
    return IpCore(
        name=name,
        vlnv="xilinx.com:ip:processing_system7:5.5",
        pins=pins,
        resources=ResourceUsage(),  # hard block
        params=params,
        is_hard=True,
    )


def ps7_from_params(name: str, params: dict[str, object]) -> IpCore:
    """Rebuild a PS7 cell from its tcl CONFIG dictionary (runner hook)."""
    gp = sum(int(params.get(f"PCW_USE_M_AXI_GP{i}", 0)) for i in range(MAX_GP_PORTS))
    hp = sum(int(params.get(f"PCW_USE_S_AXI_HP{i}", 0)) for i in range(MAX_HP_PORTS))
    fclk = float(params.get("PCW_FPGA0_PERIPHERAL_FREQMHZ", 100.0))
    return zynq_ps7(ZynqConfig(gp_masters=gp, hp_slaves=hp, fclk_mhz=fclk), name)
