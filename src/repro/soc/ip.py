"""IP-core model: cells with typed bus-interface pins.

Every block-design cell is an :class:`IpCore` holding named
:class:`InterfacePin` entries.  Pin kinds are paired master/slave so the
block design can check connection legality (an AXI-Stream master only
drives an AXI-Stream slave, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.hls.resources import ResourceUsage
from repro.util.errors import IntegrationError


class PinKind(Enum):
    AXI_LITE_MASTER = "axi_lite_master"
    AXI_LITE_SLAVE = "axi_lite_slave"
    AXI_FULL_MASTER = "axi_full_master"
    AXI_FULL_SLAVE = "axi_full_slave"
    AXIS_MASTER = "axis_master"
    AXIS_SLAVE = "axis_slave"
    CLOCK_OUT = "clock_out"
    CLOCK_IN = "clock_in"
    RESET_OUT = "reset_out"
    RESET_IN = "reset_in"
    INTERRUPT_OUT = "interrupt_out"
    INTERRUPT_IN = "interrupt_in"


#: master kind -> compatible slave kind.
MATING: dict[PinKind, PinKind] = {
    PinKind.AXI_LITE_MASTER: PinKind.AXI_LITE_SLAVE,
    PinKind.AXI_FULL_MASTER: PinKind.AXI_FULL_SLAVE,
    PinKind.AXIS_MASTER: PinKind.AXIS_SLAVE,
    PinKind.CLOCK_OUT: PinKind.CLOCK_IN,
    PinKind.RESET_OUT: PinKind.RESET_IN,
    PinKind.INTERRUPT_OUT: PinKind.INTERRUPT_IN,
}

DRIVER_KINDS = frozenset(MATING)


@dataclass(frozen=True)
class InterfacePin:
    """One bus interface (or clock/reset pin) of an IP core."""

    name: str
    kind: PinKind
    data_width: int = 32

    def is_driver(self) -> bool:
        return self.kind in DRIVER_KINDS


@dataclass
class IpCore:
    """A block-design cell.

    ``vlnv`` follows the Xilinx vendor:library:name:version convention so
    the tcl backends can reference real IP identifiers.  ``is_hard``
    marks silicon blocks (the PS7) that consume no PL resources.
    """

    name: str
    vlnv: str
    pins: list[InterfacePin] = field(default_factory=list)
    resources: ResourceUsage = field(default_factory=ResourceUsage)
    params: dict[str, object] = field(default_factory=dict)
    is_hard: bool = False

    def pin(self, name: str) -> InterfacePin:
        for p in self.pins:
            if p.name == name:
                return p
        raise IntegrationError(f"cell {self.name!r} has no pin {name!r}")

    def has_pin(self, name: str) -> bool:
        return any(p.name == name for p in self.pins)

    def pins_of_kind(self, kind: PinKind) -> list[InterfacePin]:
        return [p for p in self.pins if p.kind is kind]


def proc_sys_reset(name: str = "rst_ps7_0_100M") -> IpCore:
    """Processor system reset block (one per clock domain)."""
    return IpCore(
        name=name,
        vlnv="xilinx.com:ip:proc_sys_reset:5.0",
        pins=[
            InterfacePin("slowest_sync_clk", PinKind.CLOCK_IN),
            InterfacePin("ext_reset_in", PinKind.RESET_IN),
            InterfacePin("peripheral_aresetn", PinKind.RESET_OUT),
        ],
        resources=ResourceUsage(lut=19, ff=33),
    )


def hls_core(name: str, vlnv_name: str, synthesis_result) -> IpCore:
    """Wrap a :class:`~repro.hls.project.SynthesisResult` as a cell.

    Pin set mirrors the resolved interface: an AXI-Lite slave when the
    core has a register file, one AXIS pin per stream, one AXI master
    per ``m_axi`` array port, plus clock/reset/interrupt.
    """
    iface = synthesis_result.iface
    pins = [
        InterfacePin("ap_clk", PinKind.CLOCK_IN),
        InterfacePin("ap_rst_n", PinKind.RESET_IN),
    ]
    if iface.has_lite():
        pins.append(InterfacePin("s_axi_ctrl", PinKind.AXI_LITE_SLAVE))
        pins.append(InterfacePin("interrupt", PinKind.INTERRUPT_OUT))
    for s in iface.streams:
        kind = PinKind.AXIS_SLAVE if s.direction == "in" else PinKind.AXIS_MASTER
        pins.append(InterfacePin(s.name, kind, data_width=s.width))
    for port in iface.m_axi_ports:
        pins.append(InterfacePin(f"m_axi_{port}", PinKind.AXI_FULL_MASTER))
    return IpCore(
        name=name,
        vlnv=f"xilinx.com:hls:{vlnv_name}:1.0",
        pins=pins,
        resources=synthesis_result.resources,
        params={"top": synthesis_result.top},
    )
