"""Simulated logic synthesis, place & route, and bitstream generation.

Aggregates the block design's calibrated per-cell resource estimates,
checks them against the device budget (the Zedboard's xc7z020 by
default), models a routed clock result, and emits a deterministic
:class:`Bitstream` artifact whose "contents" are a digest of the design
— two identical designs produce identical bitstreams, which the tcl
round-trip test exploits.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.hls.resources import ResourceUsage
from repro.soc.blockdesign import BlockDesign
from repro.util.errors import SocError


@dataclass(frozen=True)
class DeviceBudget:
    """Resource capacity of one FPGA part."""

    part: str
    lut: int
    ff: int
    bram18: int
    dsp: int


#: The Zedboard device (Zynq XC7Z020: 53,200 LUT / 106,400 FF /
#: 140 BRAM36 = 280 RAMB18 / 220 DSP48E1).
XC7Z020 = DeviceBudget("xc7z020clg484-1", lut=53_200, ff=106_400, bram18=280, dsp=220)


@dataclass(frozen=True)
class Bitstream:
    """The output artifact of the implementation flow."""

    design: str
    part: str
    utilization: ResourceUsage
    budget: DeviceBudget
    achieved_clock_mhz: float
    digest: str  # sha256 of the design description

    def utilization_percent(self) -> dict[str, float]:
        b = self.budget
        u = self.utilization
        return {
            "LUT": 100.0 * u.lut / b.lut,
            "FF": 100.0 * u.ff / b.ff,
            "RAMB18": 100.0 * u.bram18 / b.bram18,
            "DSP": 100.0 * u.dsp / b.dsp,
        }


def _design_digest(bd: BlockDesign) -> str:
    h = hashlib.sha256()
    for name in sorted(bd.cells):
        cell = bd.cells[name]
        h.update(f"cell {name} {cell.vlnv} {sorted(cell.params.items())!r}\n".encode())
        for pin in cell.pins:
            h.update(f"  pin {pin.name} {pin.kind.value} {pin.data_width}\n".encode())
    for conn in sorted(bd.connections, key=lambda c: c.key()):
        h.update(f"conn {conn.key()}\n".encode())
    for rng in sorted(bd.address_map.ranges, key=lambda r: r.base):
        h.update(f"addr {rng.name} {rng.base:#x} {rng.size:#x}\n".encode())
    return h.hexdigest()


def run_synthesis(
    bd: BlockDesign,
    budget: DeviceBudget = XC7Z020,
    *,
    target_clock_mhz: float = 100.0,
) -> Bitstream:
    """Synthesize/implement *bd*; raises :class:`SocError` if it won't fit."""
    usage = bd.total_resources()
    for field_name in ("lut", "ff", "bram18", "dsp"):
        used = getattr(usage, field_name)
        cap = getattr(budget, field_name)
        if used > cap:
            raise SocError(
                f"design {bd.name!r} does not fit {budget.part}: "
                f"{field_name.upper()} {used} > {cap}"
            )

    # Routed-clock model: congestion degrades timing as LUTs fill up.
    fill = usage.lut / budget.lut
    achieved = target_clock_mhz * (1.0 if fill < 0.7 else max(0.6, 1.0 - (fill - 0.7)))

    return Bitstream(
        design=bd.name,
        part=budget.part,
        utilization=usage,
        budget=budget,
        achieved_clock_mhz=round(achieved, 2),
        digest=_design_digest(bd),
    )
