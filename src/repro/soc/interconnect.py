"""AXI interconnect model.

Two instances appear in a typical generated design (and in the paper's
Fig. 10 diagrams): the GP-side interconnect fanning the PS7's M_AXI_GP0
out to all AXI-Lite control slaves, and the HP-side ("mem") interconnect
funneling the DMA masters into S_AXI_HP0.
"""

from __future__ import annotations

from repro.hls.resources import ResourceUsage
from repro.soc.ip import InterfacePin, IpCore, PinKind
from repro.util.errors import IntegrationError

_BASE = ResourceUsage(lut=240, ff=330)
_PER_SLAVE_PORT = ResourceUsage(lut=120, ff=160)  # one per attached master
_PER_MASTER_PORT = ResourceUsage(lut=150, ff=190)  # one per attached slave


def axi_interconnect(
    name: str,
    *,
    num_masters_in: int,
    num_slaves_out: int,
    lite: bool,
) -> IpCore:
    """An N-in (from masters), M-out (to slaves) AXI interconnect.

    ``lite`` selects the protocol of the attached buses: AXI4-Lite for
    the control plane, full AXI4 for the memory plane.
    """
    if num_masters_in < 1 or num_slaves_out < 1:
        raise IntegrationError(
            f"interconnect {name!r} needs at least one input and one output"
        )
    in_kind = PinKind.AXI_LITE_SLAVE if lite else PinKind.AXI_FULL_SLAVE
    out_kind = PinKind.AXI_LITE_MASTER if lite else PinKind.AXI_FULL_MASTER
    pins = [
        InterfacePin("ACLK", PinKind.CLOCK_IN),
        InterfacePin("ARESETN", PinKind.RESET_IN),
    ]
    for i in range(num_masters_in):
        pins.append(InterfacePin(f"S{i:02d}_AXI", in_kind))
    for i in range(num_slaves_out):
        pins.append(InterfacePin(f"M{i:02d}_AXI", out_kind))
    resources = (
        _BASE
        + _PER_SLAVE_PORT.scaled(num_masters_in)
        + _PER_MASTER_PORT.scaled(num_slaves_out)
    )
    return IpCore(
        name=name,
        vlnv="xilinx.com:ip:axi_interconnect:2.1",
        pins=pins,
        resources=resources,
        params={
            "NUM_SI": num_masters_in,
            "NUM_MI": num_slaves_out,
            "PROTOCOL": "AXI4LITE" if lite else "AXI4",
        },
    )


def axis_interrupt_concat(name: str, width: int) -> IpCore:
    """Concat block gathering interrupt lines into the PS7 IRQ_F2P port."""
    pins = [InterfacePin("dout", PinKind.INTERRUPT_OUT)]
    for i in range(width):
        pins.append(InterfacePin(f"In{i}", PinKind.INTERRUPT_IN))
    return IpCore(
        name=name,
        vlnv="xilinx.com:ip:xlconcat:2.1",
        pins=pins,
        resources=ResourceUsage(lut=0, ff=0),
        params={"NUM_PORTS": width},
    )
