"""The integrator: a validated DSL graph + synthesized cores → block design.

Implements the automated steps of paper Section IV-A:

1. add the Zynq PS7 and configure it (GP0 always; HP0 when the design
   has AXI-Stream traffic);
2. add a processor reset block;
3. add AXI DMA cores for the stream boundary: with the paper's policy
   (the Related-Work advantage over SDSoC) ``'soc`` input *k* and
   ``'soc`` output *k* share one dual-channel DMA; the SDSoC-like
   baseline (``one_dma_per_stream=True``) instantiates one DMA per
   boundary stream;
4. add every accelerator cell, wire AXI-Stream links point-to-point,
   attach AXI-Lite slaves (connected cores + DMA control) behind a GP
   interconnect, funnel DMA masters into S_AXI_HP0 behind a memory
   interconnect;
5. wire clocks, resets and interrupts; assign the address map; run DRC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl.ast import LinkEdge, TgGraph
from repro.dsl.validate import validate_graph
from repro.hls.project import SynthesisResult
from repro.soc.blockdesign import BlockDesign
from repro.soc.dma import axi_dma
from repro.soc.interconnect import axi_interconnect, axis_interrupt_concat
from repro.soc.ip import PinKind, hls_core, proc_sys_reset
from repro.soc.validate import run_drc
from repro.soc.zynq import ZynqConfig, zynq_ps7
from repro.util.errors import IntegrationError


@dataclass(frozen=True)
class IntegrationConfig:
    """Knobs of the integration step."""

    fclk_mhz: float = 100.0
    #: SDSoC-like baseline: one DMA per boundary stream instead of
    #: pairing an input and an output on one dual-channel core.
    one_dma_per_stream: bool = False
    design_name: str | None = None


@dataclass
class DmaBinding:
    """Which boundary links a DMA cell serves."""

    cell: str
    mm2s_link: LinkEdge | None = None  # 'soc -> accelerator
    s2mm_link: LinkEdge | None = None  # accelerator -> 'soc


@dataclass
class IntegratedSystem:
    """The integrator's output: design + the metadata later stages need."""

    design: BlockDesign
    graph: TgGraph
    cores: dict[str, SynthesisResult]
    dmas: list[DmaBinding] = field(default_factory=list)
    cell_of: dict[str, str] = field(default_factory=dict)  # node -> cell name

    def dma_for_input(self, link: LinkEdge) -> DmaBinding:
        for b in self.dmas:
            if b.mm2s_link is link:
                return b
        raise IntegrationError("no DMA bound to that input link")

    def dma_for_output(self, link: LinkEdge) -> DmaBinding:
        for b in self.dmas:
            if b.s2mm_link is link:
                return b
        raise IntegrationError("no DMA bound to that output link")


def _check_cores(graph: TgGraph, cores: dict[str, SynthesisResult]) -> None:
    for node in graph.nodes:
        if node.name not in cores:
            raise IntegrationError(f"no synthesized core supplied for node {node.name!r}")
        core = cores[node.name]
        for p in node.stream_ports():
            try:
                core.iface.stream(p.name)
            except Exception:
                raise IntegrationError(
                    f"node {node.name!r}: DSL stream port {p.name!r} does not "
                    "exist on the synthesized core (check the C signature "
                    "and axis directives)"
                ) from None
        if node.lite_ports() and not core.iface.has_lite():
            raise IntegrationError(
                f"node {node.name!r} declares AXI-Lite ports but the core "
                "has no register file"
            )


def _port_width(cores: dict[str, SynthesisResult], end: tuple[str, str]) -> int:
    return cores[end[0]].iface.stream(end[1]).width


def integrate(
    graph: TgGraph,
    cores: dict[str, SynthesisResult],
    config: IntegrationConfig = IntegrationConfig(),
) -> IntegratedSystem:
    """Build the complete block design for *graph*; see module docstring."""
    validate_graph(graph)
    _check_cores(graph, cores)

    bd = BlockDesign(config.design_name or f"{graph.name}_bd")
    system = IntegratedSystem(bd, graph, dict(cores))

    links = graph.links()
    soc_inputs = [e for e in links if e.from_soc()]
    soc_outputs = [e for e in links if e.to_soc()]
    # The HP data port is needed by DMA traffic (streams) and by the AXI
    # masters of shared-memory task cores (m_axi array parameters).
    has_m_axi = any(cores[n.name].iface.m_axi_ports for n in graph.nodes)
    needs_hp = bool(links) or has_m_axi

    # --- step 1-2: PS7 + reset ------------------------------------------------
    ps_cfg = ZynqConfig(
        gp_masters=1, hp_slaves=1 if needs_hp else 0, fclk_mhz=config.fclk_mhz
    )
    ps = bd.add_cell(zynq_ps7(ps_cfg))
    rst = bd.add_cell(proc_sys_reset())

    # --- step 3: DMA allocation --------------------------------------------------
    dma_bindings: list[DmaBinding] = []
    if config.one_dma_per_stream:
        for i, link in enumerate(soc_inputs):
            w = _port_width(cores, link.dst)  # type: ignore[arg-type]
            cell = bd.add_cell(
                axi_dma(f"axi_dma_{len(dma_bindings)}", mm2s=True, s2mm=False, mm2s_width=w)
            )
            dma_bindings.append(DmaBinding(cell.name, mm2s_link=link))
        for link in soc_outputs:
            w = _port_width(cores, link.src)  # type: ignore[arg-type]
            cell = bd.add_cell(
                axi_dma(f"axi_dma_{len(dma_bindings)}", mm2s=False, s2mm=True, s2mm_width=w)
            )
            dma_bindings.append(DmaBinding(cell.name, s2mm_link=link))
    else:
        n = max(len(soc_inputs), len(soc_outputs))
        for i in range(n):
            in_link = soc_inputs[i] if i < len(soc_inputs) else None
            out_link = soc_outputs[i] if i < len(soc_outputs) else None
            mm2s_w = _port_width(cores, in_link.dst) if in_link else 32  # type: ignore[arg-type]
            s2mm_w = _port_width(cores, out_link.src) if out_link else 32  # type: ignore[arg-type]
            cell = bd.add_cell(
                axi_dma(
                    f"axi_dma_{i}",
                    mm2s=in_link is not None,
                    s2mm=out_link is not None,
                    mm2s_width=mm2s_w,
                    s2mm_width=s2mm_w,
                )
            )
            dma_bindings.append(DmaBinding(cell.name, in_link, out_link))
    system.dmas = dma_bindings

    # --- step 4a: accelerator cells --------------------------------------------
    for node in graph.nodes:
        cell = bd.add_cell(hls_core(f"{node.name}_0", node.name, cores[node.name]))
        system.cell_of[node.name] = cell.name

    # --- step 4b: AXI-Lite control plane -------------------------------------------
    lite_slaves: list[tuple[str, str, str]] = []  # (cell, pin, addr kind)
    for edge in graph.connects():
        lite_slaves.append((system.cell_of[edge.node], "s_axi_ctrl", "hls"))
    for binding in dma_bindings:
        lite_slaves.append((binding.cell, "S_AXI_LITE", "dma"))
    if lite_slaves:
        periph = bd.add_cell(
            axi_interconnect(
                "ps7_0_axi_periph",
                num_masters_in=1,
                num_slaves_out=len(lite_slaves),
                lite=True,
            )
        )
        bd.connect(ps.name, "M_AXI_GP0", periph.name, "S00_AXI")
        for i, (cell, pin, kind) in enumerate(lite_slaves):
            bd.connect(periph.name, f"M{i:02d}_AXI", cell, pin)
            bd.address_map.assign(cell, kind=kind)

    # --- step 4c: AXI-Stream links -----------------------------------------------
    for link in links:
        if link.from_soc():
            binding = system.dma_for_input(link)
            dst_cell = system.cell_of[link.dst[0]]  # type: ignore[index]
            bd.connect(binding.cell, "M_AXIS_MM2S", dst_cell, link.dst[1])  # type: ignore[index]
        elif link.to_soc():
            binding = system.dma_for_output(link)
            src_cell = system.cell_of[link.src[0]]  # type: ignore[index]
            bd.connect(src_cell, link.src[1], binding.cell, "S_AXIS_S2MM")  # type: ignore[index]
        else:
            src_cell = system.cell_of[link.src[0]]  # type: ignore[index]
            dst_cell = system.cell_of[link.dst[0]]  # type: ignore[index]
            bd.connect(src_cell, link.src[1], dst_cell, link.dst[1])  # type: ignore[index]

    # --- step 4d: memory plane ----------------------------------------------------
    masters: list[tuple[str, str]] = []
    for binding in dma_bindings:
        cell = bd.cell(binding.cell)
        if cell.has_pin("M_AXI_MM2S"):
            masters.append((binding.cell, "M_AXI_MM2S"))
        if cell.has_pin("M_AXI_S2MM"):
            masters.append((binding.cell, "M_AXI_S2MM"))
    for node in graph.nodes:
        cell_name = system.cell_of[node.name]
        for pin in bd.cell(cell_name).pins_of_kind(PinKind.AXI_FULL_MASTER):
            masters.append((cell_name, pin.name))
    if masters:
        mem_ic = bd.add_cell(
            axi_interconnect(
                "axi_mem_intercon",
                num_masters_in=len(masters),
                num_slaves_out=1,
                lite=False,
            )
        )
        for i, (cell, pin) in enumerate(masters):
            bd.connect(cell, pin, mem_ic.name, f"S{i:02d}_AXI")
        bd.connect(mem_ic.name, "M00_AXI", ps.name, "S_AXI_HP0")

    # --- step 5a: clocks and resets -------------------------------------------------
    bd.connect(ps.name, "FCLK_RESET0_N", rst.name, "ext_reset_in")
    for cell in list(bd.cells.values()):
        for pin in cell.pins_of_kind(PinKind.CLOCK_IN):
            bd.connect(ps.name, "FCLK_CLK0", cell.name, pin.name)
        if cell.name == rst.name:
            continue
        for pin in cell.pins_of_kind(PinKind.RESET_IN):
            bd.connect(rst.name, "peripheral_aresetn", cell.name, pin.name)

    # --- step 5b: interrupts ------------------------------------------------------
    irq_sources: list[tuple[str, str]] = []
    for cell in bd.cells.values():
        if cell.is_hard or cell.name == rst.name:
            continue
        for pin in cell.pins_of_kind(PinKind.INTERRUPT_OUT):
            irq_sources.append((cell.name, pin.name))
    if irq_sources:
        concat = bd.add_cell(axis_interrupt_concat("xlconcat_0", len(irq_sources)))
        # xlconcat inputs are modelled as INTERRUPT_IN sinks.
        for i, (cell, pin) in enumerate(irq_sources):
            bd.connect(cell, pin, concat.name, f"In{i}")
        bd.connect(concat.name, "dout", ps.name, "IRQ_F2P")

    run_drc(bd)
    return system
