"""System-integration substrate (the Vivado IP-integrator substitute).

Models the block design the paper's tool assembles on the Zynq
(Section IV-A): the PS7 processing system with HP ports, AXI DMA cores,
AXI interconnects, processor reset, and the HLS-generated accelerator
cores; an address-map allocator for the GP0 AXI-Lite space; design-rule
checks; and a simulated synthesis / place-&-route / bitstream step that
aggregates resources against the xc7z020 budget.
"""

from repro.soc.address_map import AddressMap, AddressRange
from repro.soc.blockdesign import BlockDesign, Connection
from repro.soc.integrator import IntegrationConfig, integrate
from repro.soc.ip import InterfacePin, IpCore, PinKind
from repro.soc.serialize import design_from_dict, design_to_dict
from repro.soc.synthesis import Bitstream, DeviceBudget, XC7Z020, run_synthesis
from repro.soc.validate import run_drc
from repro.soc.zynq import ZynqConfig, zynq_ps7

__all__ = [
    "AddressMap",
    "AddressRange",
    "Bitstream",
    "BlockDesign",
    "Connection",
    "DeviceBudget",
    "IntegrationConfig",
    "InterfacePin",
    "IpCore",
    "PinKind",
    "XC7Z020",
    "ZynqConfig",
    "design_from_dict",
    "design_to_dict",
    "integrate",
    "run_drc",
    "run_synthesis",
    "zynq_ps7",
]
