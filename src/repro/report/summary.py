"""Machine-readable paper-vs-measured summary.

`experiment_summary` condenses every regenerated artifact into one
JSON-able dict — the regression fingerprint a CI job can diff against a
committed baseline, and the data EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.report.codesize import compare_code_size
from repro.report.experiments import (
    ArchBuild,
    PAPER_TABLE2,
    regenerate_fig7,
    regenerate_fig9,
    regenerate_table1,
    regenerate_table2,
)
from repro.sim.runtime import simulate_application


def experiment_summary(builds: dict[int, ArchBuild]) -> dict[str, Any]:
    """All headline numbers from one build set, as plain values."""
    t1 = regenerate_table1(builds)
    t2 = regenerate_table2(builds)
    f9 = regenerate_fig9(builds)
    f7 = regenerate_fig7(width=128, height=128)
    cs = compare_code_size(builds[4].flow)

    cycles: dict[str, int] = {}
    bit_exact: dict[str, bool] = {}
    for arch, build in builds.items():
        report = simulate_application(
            build.app.htg,
            build.app.partition,
            build.app.behaviors,
            {},
            system=build.flow.system,
        )
        cycles[f"arch{arch}"] = report.cycles
        bit_exact[f"arch{arch}"] = bool(
            np.array_equal(
                report.of("binImage"), np.asarray(build.app.golden["binary"])
            )
        )

    return {
        "table1": {f"arch{a}": row for a, row in t1.rows.items()},
        "table2": {
            "measured": {f"arch{a}": list(r) for a, r in t2.measured.items()},
            "paper": {f"arch{a}": list(r) for a, r in PAPER_TABLE2.items()},
            "bram_dsp_exact": all(
                t2.measured[a][2:] == PAPER_TABLE2[a][2:] for a in t2.measured
            ),
        },
        "fig7": {"threshold": f7.threshold,
                 "foreground": float((f7.binary > 0).mean())},
        "fig9": {
            "total_minutes": round(f9.total_minutes, 2),
            "paper_minutes": 42.0,
            "per_arch": {f"arch{a}": row for a, row in f9.breakdown.items()},
        },
        "code_size": {
            "line_ratio": round(cs.line_ratio, 2),
            "char_ratio": round(cs.char_ratio, 2),
            "paper_band": {"lines": 4.0, "chars": [4.0, 10.0]},
        },
        "simulation": {"cycles": cycles, "bit_exact": bit_exact},
    }
