"""Experiment drivers: regenerate every table and figure of the paper.

One function per artifact (see DESIGN.md's per-experiment index); each
returns a structured result object with a ``render()`` text form, which
the benchmark harness prints next to the paper's reported numbers.
"""

from repro.report.codesize import CodeSizeComparison, compare_code_size
from repro.report.summary import experiment_summary
from repro.report.experiments import (
    OTSU_ARCHS,
    Fig7Result,
    Fig9Result,
    Fig10Result,
    Table1Result,
    Table2Result,
    build_all_architectures,
    regenerate_fig7,
    regenerate_fig9,
    regenerate_fig10,
    regenerate_table1,
    regenerate_table2,
)

__all__ = [
    "CodeSizeComparison",
    "Fig7Result",
    "Fig9Result",
    "Fig10Result",
    "OTSU_ARCHS",
    "Table1Result",
    "Table2Result",
    "build_all_architectures",
    "compare_code_size",
    "experiment_summary",
    "regenerate_fig7",
    "regenerate_fig9",
    "regenerate_fig10",
    "regenerate_table1",
    "regenerate_table2",
]
