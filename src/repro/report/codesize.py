"""Code-size comparison: DSL source vs generated tcl (Discussion section).

The paper reports that for the case study the generated tcl script has
~4× the lines of the Scala task-graph description and 4-10× the
characters.  We measure the same two ratios on the re-emitted DSL text
and the generated system tcl.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsl.codegen import emit_dsl
from repro.flow.orchestrator import FlowResult
from repro.util.text import count_chars, count_lines


@dataclass(frozen=True)
class CodeSizeComparison:
    dsl_lines: int
    dsl_chars: int
    tcl_lines: int
    tcl_chars: int

    @property
    def line_ratio(self) -> float:
        return self.tcl_lines / self.dsl_lines

    @property
    def char_ratio(self) -> float:
        return self.tcl_chars / self.dsl_chars

    def render(self) -> str:
        return (
            f"DSL:  {self.dsl_lines} LoC, {self.dsl_chars} chars\n"
            f"tcl:  {self.tcl_lines} LoC, {self.tcl_chars} chars\n"
            f"ratio: {self.line_ratio:.1f}x lines, {self.char_ratio:.1f}x chars\n"
            f"paper: ~4x lines, 4-10x chars"
        )


def compare_code_size(result: FlowResult) -> CodeSizeComparison:
    """Measure the Discussion-section ratios for one flow result."""
    dsl_text = emit_dsl(result.graph)
    return CodeSizeComparison(
        dsl_lines=count_lines(dsl_text),
        dsl_chars=count_chars(dsl_text),
        tcl_lines=result.system_tcl.lines_of_code(),
        tcl_chars=result.system_tcl.characters(),
    )
