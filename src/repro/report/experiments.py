"""Regeneration of the paper's tables and figures (Section VI).

``build_all_architectures`` runs the flow for Arch1-4 the way the paper
did — Arch4 first, reusing its synthesized cores for the other three —
and the per-artifact functions derive Table I, Table II, Fig. 7, Fig. 9
and Fig. 10 from those builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.otsu import ARCHITECTURES, OtsuApplication, build_otsu_app
from repro.apps.otsu.csrc import ACTOR_TO_TABLE1
from repro.flow.buildcache import BuildCache
from repro.flow.orchestrator import CoreBuild, FlowConfig, FlowResult, run_flow
from repro.util.text import format_table

#: The four architectures of Table I.
OTSU_ARCHS = (1, 2, 3, 4)

#: Paper-reported Table II rows: arch -> (LUT, FF, RAMB18, DSP).
PAPER_TABLE2 = {
    1: (3809, 4562, 5, 0),
    2: (7834, 9951, 4, 2),
    3: (8190, 10234, 5, 2),
    4: (9312, 11256, 5, 3),
}

#: Paper-reported total generation time for all four solutions.
PAPER_TOTAL_MINUTES = 42.0


@dataclass
class ArchBuild:
    """One architecture: the application plus its flow result."""

    app: OtsuApplication
    flow: FlowResult


def build_all_architectures(
    *,
    width: int = 64,
    height: int = 64,
    config: FlowConfig | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
) -> dict[int, ArchBuild]:
    """Run the flow for Arch1-4, Arch4 first with core reuse (Section VI-B).

    *jobs*/*cache_dir* are conveniences that build a :class:`FlowConfig`
    when *config* is not given; one :class:`BuildCache` instance is
    shared across the four builds so later architectures hit the
    artifacts the earlier ones stored.
    """
    if config is None and (jobs is not None or cache_dir is not None):
        config = FlowConfig(jobs=jobs or 1, cache_dir=cache_dir)
    build_cache = (
        BuildCache(config.cache_dir)
        if config is not None and config.cache_dir is not None
        else None
    )
    builds: dict[int, ArchBuild] = {}
    core_cache: dict[str, CoreBuild] = {}
    for arch in (4, 1, 2, 3):
        app = build_otsu_app(arch, width=width, height=height)
        flow = run_flow(
            app.dsl_graph(),
            app.c_sources,
            extra_directives=app.extra_directives,
            core_cache=core_cache,
            config=config,
            build_cache=build_cache,
        )
        if arch == 4:
            core_cache.update(flow.cores)
        builds[arch] = ArchBuild(app, flow)
    return builds


# --- Table I -------------------------------------------------------------------
@dataclass
class Table1Result:
    rows: dict[int, dict[str, bool]]

    def render(self) -> str:
        funcs = ("grayScale", "histogram", "otsuMethod", "binarization")
        body = [
            [f"Arch{arch}"] + ["x" if self.rows[arch][f] else "" for f in funcs]
            for arch in sorted(self.rows)
        ]
        return format_table(
            ["Solution", *funcs], body, title="Table I — functions in hardware"
        )


def regenerate_table1(builds: dict[int, ArchBuild] | None = None) -> Table1Result:
    """Which functions each generated solution implements in hardware.

    Derived from the built systems themselves (the hardware cores present
    in each block design), not from the requested configuration — so the
    table checks the generator did what Table I says.
    """
    rows: dict[int, dict[str, bool]] = {}
    if builds is None:
        # Structure-only: derive from the applications without running HLS.
        for arch in OTSU_ARCHS:
            hw = ARCHITECTURES[arch]
            rows[arch] = {
                f: f in hw
                for f in ("grayScale", "histogram", "otsuMethod", "binarization")
            }
        return Table1Result(rows)
    for arch, build in builds.items():
        present = {
            ACTOR_TO_TABLE1[node.name]
            for node in build.flow.graph.nodes
            if node.name in ACTOR_TO_TABLE1
        }
        rows[arch] = {
            f: f in present
            for f in ("grayScale", "histogram", "otsuMethod", "binarization")
        }
    return Table1Result(rows)


# --- Table II ------------------------------------------------------------------
@dataclass
class Table2Result:
    measured: dict[int, tuple[int, int, int, int]]
    paper: dict[int, tuple[int, int, int, int]] = field(
        default_factory=lambda: dict(PAPER_TABLE2)
    )

    def render(self) -> str:
        body = []
        for arch in sorted(self.measured):
            m = self.measured[arch]
            p = self.paper[arch]
            body.append(
                [
                    f"Arch{arch}",
                    f"{m[0]} ({p[0]})",
                    f"{m[1]} ({p[1]})",
                    f"{m[2]} ({p[2]})",
                    f"{m[3]} ({p[3]})",
                ]
            )
        return format_table(
            ["Solution", "LUT", "FF", "RAMB18", "DSP"],
            body,
            title="Table II — resources, measured (paper)",
        )

    def monotone_in_hw(self) -> bool:
        """More hardware functions never costs fewer LUT/FF."""
        order = [1, 2, 3, 4]
        luts = [self.measured[a][0] for a in order]
        # Arch1 < Arch2 < Arch3 < Arch4 in the paper's LUT column.
        return all(a < b for a, b in zip(luts, luts[1:]))


def regenerate_table2(builds: dict[int, ArchBuild]) -> Table2Result:
    measured = {
        arch: build.flow.bitstream.utilization.as_row()
        for arch, build in builds.items()
    }
    return Table2Result(measured)


# --- Fig. 7 -------------------------------------------------------------------
@dataclass
class Fig7Result:
    gray: np.ndarray  # (H, W) uint8 input, grayscale
    binary: np.ndarray  # (H, W) uint8 filtered output
    threshold: int

    def render(self) -> str:
        fg = float((self.binary > 0).mean())
        return (
            f"Fig. 7 — Otsu filter: threshold={self.threshold}, "
            f"foreground={fg:.1%} of pixels, "
            f"images {self.gray.shape[1]}x{self.gray.shape[0]}"
        )


def regenerate_fig7(*, width: int = 256, height: int = 256, seed: int = 2016) -> Fig7Result:
    """The original/filtered image pair of Fig. 7 (golden pipeline)."""
    from repro.apps.image import pack_rgb, synthetic_scene
    from repro.apps.otsu.golden import golden_pipeline

    scene = synthetic_scene(width, height, seed=seed)
    out = golden_pipeline(pack_rgb(scene).astype(np.int32))
    gray = np.asarray(out["gray"], dtype=np.uint8).reshape(height, width)
    binary = np.asarray(out["binary"], dtype=np.uint8).reshape(height, width)
    return Fig7Result(gray=gray, binary=binary, threshold=int(out["threshold"]))


# --- Fig. 9 -------------------------------------------------------------------
@dataclass
class Fig9Result:
    #: arch -> phase -> modeled seconds.
    breakdown: dict[int, dict[str, float]]
    #: arch -> per-core build records (name, seconds, source, wave).
    cores: dict[int, list[dict]] = field(default_factory=dict)
    #: arch -> {"hits": n, "misses": n} from the content-addressed cache.
    cache: dict[int, dict[str, int]] = field(default_factory=dict)
    #: arch -> modeled wall-clock seconds (== cpu-time on the serial path).
    wall: dict[int, float] = field(default_factory=dict)
    #: arch -> {"resumed": bool, "steps_skipped": n, "crash_recoveries": n}.
    resume: dict[int, dict] = field(default_factory=dict)

    @property
    def total_minutes(self) -> float:
        return sum(sum(row.values()) for row in self.breakdown.values()) / 60.0

    @property
    def total_wall_minutes(self) -> float:
        """Wall-clock minutes under the executed schedule (cpu if unknown)."""
        if not self.wall:
            return self.total_minutes
        return sum(self.wall.values()) / 60.0

    @property
    def cache_hits(self) -> int:
        return sum(c.get("hits", 0) for c in self.cache.values())

    def render(self) -> str:
        body = []
        for arch in sorted(self.breakdown):
            row = self.breakdown[arch]
            body.append(
                [
                    f"Arch{arch}",
                    f"{row['SCALA']:.1f}",
                    f"{row['HLS']:.1f}",
                    f"{row['PROJECT']:.1f}",
                    f"{row['SYNTH']:.1f}",
                    f"{sum(row.values()):.1f}",
                ]
            )
        table = format_table(
            ["Solution", "SCALA", "HLS", "PROJECT", "SYNTH", "total (s)"],
            body,
            title="Fig. 9 — generation-time breakdown (modeled seconds)",
        )
        lines = [
            table,
            f"total: {self.total_minutes:.1f} min "
            f"(paper: {PAPER_TOTAL_MINUTES:.0f} min for all four)",
        ]
        for arch in sorted(self.cores):
            per_core = ", ".join(
                f"{c['name']}={c['seconds']:.1f}s[{c['source']}/w{c['wave']}]"
                for c in self.cores[arch]
            )
            lines.append(f"  Arch{arch} cores: {per_core}")
        if self.cache:
            hits = self.cache_hits
            misses = sum(c.get("misses", 0) for c in self.cache.values())
            lines.append(
                f"build cache: {hits} hits / {misses} misses; "
                f"wall-clock {self.total_wall_minutes:.1f} min "
                f"vs cpu-time {self.total_minutes:.1f} min"
            )
        resumed = {a: r for a, r in self.resume.items() if r.get("resumed")}
        if resumed:
            # A resumed run's phase seconds only cover the re-executed
            # tail — flag it so the figure is never read as a cold build.
            detail = ", ".join(
                f"Arch{a}: {r.get('steps_skipped', 0)} step(s) skipped, "
                f"{r.get('crash_recoveries', 0)} recovered"
                for a, r in sorted(resumed.items())
            )
            lines.append(f"resumed builds (timings are partial): {detail}")
        return "\n".join(lines)


def regenerate_fig9(builds: dict[int, ArchBuild]) -> Fig9Result:
    breakdown = {}
    cores: dict[int, list[dict]] = {}
    cache: dict[int, dict[str, int]] = {}
    wall: dict[int, float] = {}
    resume: dict[int, dict] = {}
    for arch, build in builds.items():
        report = build.flow.timing.report()
        row = {phase: report[phase] for phase in ("SCALA", "HLS", "PROJECT", "SYNTH")}
        breakdown[arch] = row
        cores[arch] = report["cores"]
        cache[arch] = report["cache"]
        wall[arch] = build.flow.timing.total_wall_s
        resume[arch] = report.get("resume", {})
    return Fig9Result(breakdown, cores=cores, cache=cache, wall=wall, resume=resume)


# --- Fig. 10 -------------------------------------------------------------------
@dataclass
class Fig10Result:
    diagrams: dict[int, str]

    def render(self) -> str:
        lines = ["Fig. 10 — generated architectures (graphviz dot):"]
        for arch in sorted(self.diagrams):
            n_edges = self.diagrams[arch].count("->")
            lines.append(f"  Arch{arch}: {n_edges} bus connections")
        return "\n".join(lines)


def regenerate_fig10(builds: dict[int, ArchBuild]) -> Fig10Result:
    return Fig10Result(
        {arch: build.flow.design.to_diagram() for arch, build in builds.items()}
    )
