"""Random task-graph generation for scalability benchmarks.

Produces valid DSL graphs of configurable size — a mix of AXI-Lite
scalar cores and AXI-Stream chains — together with synthesizable C
sources, so the end-to-end flow can be benchmarked on designs far larger
than the case study (experiment X2 in DESIGN.md).
"""

from __future__ import annotations

import random

from repro.dsl.ast import SOC, ConnectEdge, LinkEdge, NodeDecl, PortDecl, PortKind, TgGraph
from repro.dsl.validate import validate_graph

_LITE_TEMPLATE = """
int {name}(int A, int B) {{
    int acc = A;
    for (int i = 0; i < {iters}; i++) {{
        acc = acc + B;
        acc = acc ^ (acc >> 3);
    }}
    return acc;
}}
"""

_STREAM_TEMPLATE = """
void {name}(int in[{n}], int out[{n}]) {{
    for (int i = 0; i < {n}; i++) {{
        int v = in[i];
        out[i] = (v * {mult} + {add}) >> {shift};
    }}
}}
"""


def random_task_graph(
    *,
    lite_nodes: int = 2,
    stream_chains: int = 1,
    chain_length: int = 2,
    stream_depth: int = 64,
    seed: int = 0,
) -> tuple[TgGraph, dict[str, str]]:
    """Generate a valid random graph + C sources.

    Layout: *lite_nodes* AXI-Lite scalar cores, plus *stream_chains*
    independent AXI-Stream pipelines of *chain_length* cores each.
    """
    rng = random.Random(seed)
    graph = TgGraph(f"rand_{seed}")
    sources: dict[str, str] = {}

    for i in range(lite_nodes):
        name = f"calc{i}"
        graph.nodes.append(
            NodeDecl(
                name,
                (
                    PortDecl("A", PortKind.LITE),
                    PortDecl("B", PortKind.LITE),
                    PortDecl("return", PortKind.LITE),
                ),
            )
        )
        graph.edges.append(ConnectEdge(name))
        sources[name] = _LITE_TEMPLATE.format(name=name, iters=rng.randint(4, 64))

    for c in range(stream_chains):
        prev: tuple[str, str] | None = None
        for k in range(chain_length):
            name = f"stage{c}_{k}"
            graph.nodes.append(
                NodeDecl(
                    name,
                    (PortDecl("in", PortKind.STREAM), PortDecl("out", PortKind.STREAM)),
                )
            )
            sources[name] = _STREAM_TEMPLATE.format(
                name=name,
                n=stream_depth,
                mult=rng.choice([1, 2, 3, 5]),
                add=rng.randint(0, 15),
                shift=rng.choice([0, 1, 2]),
            )
            if prev is None:
                graph.edges.append(LinkEdge(SOC, (name, "in")))
            else:
                graph.edges.append(LinkEdge(prev, (name, "in")))
            prev = (name, "out")
        assert prev is not None
        graph.edges.append(LinkEdge(prev, SOC))

    validate_graph(graph)
    return graph, sources
