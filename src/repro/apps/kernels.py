"""The Fig.-4 example architecture: ADD, MUL, GAUSS, EDGE.

ADD and MULT hang off the bus with AXI-Lite interfaces (the GPP writes
their scalar operands and reads the result); GAUSS and EDGE form an
image-processing pipeline on AXI-Stream.  GAUSS is a 1-D binomial
(Gaussian-approximating) smoothing filter over the pixel stream; EDGE is
a gradient-magnitude detector with thresholding.
"""

from __future__ import annotations

import numpy as np

from repro.dsl.ast import TgGraph
from repro.dsl.parser import parse_dsl
from repro.hls.interfaces import Directive, pipeline

FIG4_DSL = """
object fig4 extends App {
  tg nodes;
    tg node "MUL" i "A" i "B" i "return" end;
    tg node "ADD" i "A" i "B" i "return" end;
    tg node "GAUSS" is "in" is "out" end;
    tg node "EDGE" is "in" is "out" end;
  tg end_nodes;
  tg edges;
    tg connect "MUL";
    tg connect "ADD";
    tg link 'soc to ("GAUSS", "in") end;
    tg link ("GAUSS", "out") to ("EDGE", "in") end;
    tg link ("EDGE", "out") to 'soc end;
  tg end_edges;
}
"""

MUL_SRC = "int MUL(int A, int B) { return A * B; }"
ADD_SRC = "int ADD(int A, int B) { return A + B; }"


def gauss_src(n: int) -> str:
    """1-D binomial smoothing (1 2 1)/4 over the stream."""
    return f"""
void GAUSS(int in[{n}], int out[{n}]) {{
    int prev = 0;
    int curr = 0;
    for (int i = 0; i < {n}; i++) {{
        int next = in[i];
        if (i == 0) {{
            prev = next;
            curr = next;
        }}
        out[i] = (prev + (curr << 1) + next) >> 2;
        prev = curr;
        curr = next;
    }}
}}
"""


def edge_src(n: int, threshold: int = 24) -> str:
    """Gradient magnitude + threshold over the stream."""
    return f"""
void EDGE(int in[{n}], int out[{n}]) {{
    int prev = 0;
    for (int i = 0; i < {n}; i++) {{
        int curr = in[i];
        if (i == 0) prev = curr;
        int grad = curr - prev;
        int mag = grad < 0 ? -grad : grad;
        out[i] = mag > {threshold} ? 255 : 0;
        prev = curr;
    }}
}}
"""


def gauss_reference(data: np.ndarray) -> np.ndarray:
    """NumPy reference of :func:`gauss_src` (exact integer semantics)."""
    data = np.asarray(data, dtype=np.int64)
    out = np.empty_like(data)
    prev = curr = int(data[0]) if len(data) else 0
    for i, nxt in enumerate(data.tolist()):
        out[i] = (prev + (curr << 1) + nxt) >> 2
        prev, curr = curr, nxt
    return out.astype(np.int32)


def edge_reference(data: np.ndarray, threshold: int = 24) -> np.ndarray:
    """NumPy reference of :func:`edge_src`."""
    data = np.asarray(data, dtype=np.int64)
    prev = np.concatenate(([data[0]], data[:-1])) if len(data) else data
    mag = np.abs(data - prev)
    return np.where(mag > threshold, 255, 0).astype(np.int32)


def fig4_graph() -> TgGraph:
    return parse_dsl(FIG4_DSL)


def build_fig4_flow_inputs(
    n: int = 256,
) -> tuple[TgGraph, dict[str, str], dict[str, list[Directive]]]:
    """Graph + C sources + directives, ready for ``run_flow``."""
    sources = {
        "MUL": MUL_SRC,
        "ADD": ADD_SRC,
        "GAUSS": gauss_src(n),
        "EDGE": edge_src(n),
    }
    directives = {
        "GAUSS": [pipeline("GAUSS", "i")],
        "EDGE": [pipeline("EDGE", "i")],
    }
    return fig4_graph(), sources, directives
