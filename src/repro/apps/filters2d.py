"""True 2-D image filters (frame-buffered GAUSS and SOBEL).

The paper's Fig.-4 pipeline names its cores after a Gaussian and an
edge-detection filter; these are full 2-D implementations: each core
reads its input stream sequentially into a local frame buffer (2-D
array → BRAM), computes with random access and replicated borders, and
writes the output stream sequentially — the buffer-then-process pattern
that satisfies the AXI-Stream access discipline
(:func:`repro.hls.project.verify_stream_discipline` checks it).

GAUSS is the 3×3 binomial kernel [[1,2,1],[2,4,2],[1,2,1]]/16; SOBEL is
gradient magnitude (|Gx|+|Gy|) with thresholding.
"""

from __future__ import annotations

import numpy as np


def gauss2d_src(width: int, height: int) -> str:
    n = width * height
    return f"""
void GAUSS2D(int in[{n}], int out[{n}]) {{
    int buf[{height}][{width}];
    for (int r = 0; r < {height}; r++) {{
        for (int c = 0; c < {width}; c++) {{
            buf[r][c] = in[r * {width} + c];
        }}
    }}
    for (int r = 0; r < {height}; r++) {{
        for (int c = 0; c < {width}; c++) {{
            int acc = 0;
            for (int dr = -1; dr <= 1; dr++) {{
                for (int dc = -1; dc <= 1; dc++) {{
                    int rr = r + dr;
                    int cc = c + dc;
                    if (rr < 0) rr = 0;
                    if (rr > {height - 1}) rr = {height - 1};
                    if (cc < 0) cc = 0;
                    if (cc > {width - 1}) cc = {width - 1};
                    int wr = dr == 0 ? 2 : 1;
                    int wc = dc == 0 ? 2 : 1;
                    acc += buf[rr][cc] * (wr * wc);
                }}
            }}
            out[r * {width} + c] = acc >> 4;
        }}
    }}
}}
"""


def sobel2d_src(width: int, height: int, threshold: int = 96) -> str:
    n = width * height
    return f"""
void SOBEL2D(int in[{n}], int out[{n}]) {{
    int buf[{height}][{width}];
    for (int r = 0; r < {height}; r++) {{
        for (int c = 0; c < {width}; c++) {{
            buf[r][c] = in[r * {width} + c];
        }}
    }}
    for (int r = 0; r < {height}; r++) {{
        for (int c = 0; c < {width}; c++) {{
            int rm = r - 1 < 0 ? 0 : r - 1;
            int rp = r + 1 > {height - 1} ? {height - 1} : r + 1;
            int cm = c - 1 < 0 ? 0 : c - 1;
            int cp = c + 1 > {width - 1} ? {width - 1} : c + 1;
            int gx = buf[rm][cp] + 2 * buf[r][cp] + buf[rp][cp]
                   - buf[rm][cm] - 2 * buf[r][cm] - buf[rp][cm];
            int gy = buf[rp][cm] + 2 * buf[rp][c] + buf[rp][cp]
                   - buf[rm][cm] - 2 * buf[rm][c] - buf[rm][cp];
            int mag = abs(gx) + abs(gy);
            out[r * {width} + c] = mag > {threshold} ? 255 : 0;
        }}
    }}
}}
"""


# --- exact NumPy references -----------------------------------------------
def _clamp_pad(img: np.ndarray) -> np.ndarray:
    return np.pad(img, 1, mode="edge").astype(np.int64)


def gauss2d_reference(img: np.ndarray) -> np.ndarray:
    """(H, W) -> (H, W), identical integer arithmetic to the C."""
    p = _clamp_pad(np.asarray(img))
    h, w = img.shape
    acc = np.zeros((h, w), dtype=np.int64)
    weights = {(-1, -1): 1, (-1, 0): 2, (-1, 1): 1,
               (0, -1): 2, (0, 0): 4, (0, 1): 2,
               (1, -1): 1, (1, 0): 2, (1, 1): 1}
    for (dr, dc), wgt in weights.items():
        acc += wgt * p[1 + dr : 1 + dr + h, 1 + dc : 1 + dc + w]
    return (acc >> 4).astype(np.int32)


def sobel2d_reference(img: np.ndarray, threshold: int = 96) -> np.ndarray:
    p = _clamp_pad(np.asarray(img))
    h, w = img.shape

    def sh(dr, dc):
        return p[1 + dr : 1 + dr + h, 1 + dc : 1 + dc + w]

    gx = sh(-1, 1) + 2 * sh(0, 1) + sh(1, 1) - sh(-1, -1) - 2 * sh(0, -1) - sh(1, -1)
    gy = sh(1, -1) + 2 * sh(1, 0) + sh(1, 1) - sh(-1, -1) - 2 * sh(-1, 0) - sh(-1, 1)
    mag = np.abs(gx) + np.abs(gy)
    return np.where(mag > threshold, 255, 0).astype(np.int32)
