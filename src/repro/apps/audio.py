"""Always-on audio front-end (the intro's "Hey Siri!" motivation).

The paper motivates accelerator-based SoCs with the iPhone's always-on
voice trigger: a tiny hardware pipeline that watches the microphone
stream without waking the CPU.  This app is that shape: a streaming
dataflow phase of three actors —

* ``preemph`` — first-order pre-emphasis filter ``y[i] = x[i] - (a*x[i-1])>>7``;
* ``energy``  — per-frame energy (a windowed reduction, FRAME samples in,
  one energy value out);
* ``detect``  — adaptive threshold: a frame is "voiced" when its energy
  exceeds ``k×`` the running noise floor.

Everything is fixed-point integer C, synthesizable by the repro HLS
engine; NumPy references mirror the exact integer semantics.
"""

from __future__ import annotations

import numpy as np

from repro.htg.model import HTG, Actor, Phase, StreamChannel, Task
from repro.htg.partition import Partition
from repro.sim.runtime import Behavior
from repro.util.errors import ReproError

#: Pre-emphasis coefficient numerator (a = 97/128 ≈ 0.76).
PREEMPH_A = 97
#: Detection threshold: energy > (THRESH_NUM/8) × noise floor.
THRESH_NUM = 24


def preemph_src(n: int) -> str:
    return f"""
void preemph(int x[{n}], int y[{n}]) {{
    int prev = 0;
    for (int i = 0; i < {n}; i++) {{
        int cur = x[i];
        y[i] = cur - (({PREEMPH_A} * prev) >> 7);
        prev = cur;
    }}
}}
"""


def energy_src(n: int, frame: int) -> str:
    nframes = n // frame
    return f"""
void energy(int y[{n}], int e[{nframes}]) {{
    for (int f = 0; f < {nframes}; f++) {{
        int acc = 0;
        for (int i = 0; i < {frame}; i++) {{
            int v = y[f * {frame} + i];
            int m = v < 0 ? -v : v;
            acc = acc + ((m * m) >> 6);
        }}
        e[f] = acc;
    }}
}}
"""


def detect_src(nframes: int) -> str:
    return f"""
void detect(int e[{nframes}], int hits[{nframes}]) {{
    int floor_est = 0;
    for (int f = 0; f < {nframes}; f++) {{
        int cur = e[f];
        if (f == 0) floor_est = cur;
        int hit = (cur * 8) > ({THRESH_NUM} * floor_est) ? 1 : 0;
        hits[f] = hit;
        if (hit == 0) {{
            floor_est = floor_est + ((cur - floor_est) >> 3);
        }}
    }}
}}
"""


# --- exact NumPy references ------------------------------------------------
def preemph_reference(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.int64)
    prev = np.concatenate(([0], x[:-1]))
    return (x - ((PREEMPH_A * prev) >> 7)).astype(np.int32)


def energy_reference(y: np.ndarray, frame: int) -> np.ndarray:
    y = np.asarray(y, dtype=np.int64)
    nframes = len(y) // frame
    m = np.abs(y[: nframes * frame]).reshape(nframes, frame)
    return ((m * m) >> 6).sum(axis=1).astype(np.int32)


def detect_reference(e: np.ndarray) -> np.ndarray:
    hits = np.zeros(len(e), dtype=np.int32)
    floor_est = 0
    for f, cur in enumerate(np.asarray(e, dtype=np.int64).tolist()):
        if f == 0:
            floor_est = cur
        hit = 1 if cur * 8 > THRESH_NUM * floor_est else 0
        hits[f] = hit
        if not hit:
            floor_est = floor_est + ((cur - floor_est) >> 3)
    return hits


def synthetic_audio(n: int, *, seed: int = 7, keyword_at: float = 0.6) -> np.ndarray:
    """16-bit-ish samples: low noise with a loud 'keyword' burst."""
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 60, n)
    start = int(n * keyword_at)
    end = min(n, start + n // 8)
    t = np.arange(end - start)
    x[start:end] += 2800 * np.sin(t / 3.1) * np.hanning(end - start)
    return np.clip(x, -32768, 32767).astype(np.int32)


def build_audio_app(
    *, n: int = 1024, frame: int = 64, hw: bool = True, seed: int = 7
):
    """The keyword-detector application: HTG, partition, behaviours, sources.

    Returns ``(htg, partition, behaviors, c_sources, expected_hits)``.
    """
    if n % frame != 0:
        raise ReproError("sample count must be a multiple of the frame size")
    nframes = n // frame

    samples = synthetic_audio(n, seed=seed)
    y_ref = preemph_reference(samples)
    e_ref = energy_reference(y_ref, frame)
    hits_ref = detect_reference(e_ref)

    sources = {
        "preemph": preemph_src(n),
        "energy": energy_src(n, frame),
        "detect": detect_src(nframes),
    }
    phase = Phase(
        name="voiceTrigger",
        actors=[
            Actor("preemph", stream_inputs=("x",), stream_outputs=("y",),
                  c_source=sources["preemph"]),
            Actor("energy", stream_inputs=("y",), stream_outputs=("e",),
                  c_source=sources["energy"]),
            Actor("detect", stream_inputs=("e",), stream_outputs=("hits",),
                  c_source=sources["detect"]),
        ],
        channels=[
            StreamChannel(Phase.BOUNDARY, "samples", "preemph", "x"),
            StreamChannel("preemph", "y", "energy", "y"),
            StreamChannel("energy", "e", "detect", "e"),
            StreamChannel("detect", "hits", Phase.BOUNDARY, "hits"),
        ],
        inputs=("samples",),
        outputs=("hits",),
    )
    htg = HTG("voiceApp")
    htg.add(Task("mic", outputs=("samples",), io=True, sw_cycles=n * 2))
    htg.add(phase)
    htg.add(Task("wake", inputs=("hits",), io=True, sw_cycles=nframes * 6))
    htg.add_edge("mic", "voiceTrigger")
    htg.add_edge("voiceTrigger", "wake")

    partition = (
        Partition.from_hw_set(htg, {"voiceTrigger"})
        if hw
        else Partition.all_software(htg)
    )
    behaviors = {
        "mic": Behavior(lambda: samples),
        "wake": Behavior(lambda h: None),
        "voiceTrigger.preemph": Behavior(preemph_reference),
        "voiceTrigger.energy": Behavior(lambda y: energy_reference(y, frame)),
        "voiceTrigger.detect": Behavior(detect_reference),
    }
    return htg, partition, behaviors, sources, hits_ref
