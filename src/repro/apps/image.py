"""Image I/O and synthetic scenes.

The paper's ``readImage``/``writeImage`` tasks load and store image
files; we implement the netpbm formats (PGM for grayscale, PPM for
colour, both ASCII and binary variants) so examples round-trip real
files without external dependencies.

RGB pixels travelling through 32-bit AXI-Stream words are packed as
``0x00RRGGBB`` — one pixel per beat, which is what keeps the dataflow
rates of the Otsu pipeline uniform.

The synthetic scene replaces the paper's photograph: a vignetted
gradient with geometric foreground objects and deterministic sensor
noise — bimodal enough that Otsu thresholding does something visibly
meaningful (Fig. 7b's binarization).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.util.errors import ReproError


# --- packed RGB --------------------------------------------------------------
def pack_rgb(rgb: np.ndarray) -> np.ndarray:
    """(H, W, 3) uint8 -> (H*W,) int32 packed 0x00RRGGBB."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ReproError("pack_rgb expects an (H, W, 3) array")
    r = rgb[..., 0].astype(np.int32)
    g = rgb[..., 1].astype(np.int32)
    b = rgb[..., 2].astype(np.int32)
    return ((r << 16) | (g << 8) | b).reshape(-1)


def unpack_rgb(packed: np.ndarray, width: int, height: int) -> np.ndarray:
    """(H*W,) packed int32 -> (H, W, 3) uint8."""
    p = np.asarray(packed, dtype=np.int64).reshape(height, width)
    out = np.empty((height, width, 3), dtype=np.uint8)
    out[..., 0] = (p >> 16) & 0xFF
    out[..., 1] = (p >> 8) & 0xFF
    out[..., 2] = p & 0xFF
    return out


# --- netpbm ---------------------------------------------------------------------
def _read_tokens(data: bytes, count: int, start: int) -> tuple[list[int], int]:
    """Read *count* whitespace-separated ASCII integers, skipping comments."""
    tokens: list[int] = []
    i = start
    while len(tokens) < count and i < len(data):
        c = data[i : i + 1]
        if c == b"#":
            while i < len(data) and data[i : i + 1] != b"\n":
                i += 1
        elif c.isspace():
            i += 1
        else:
            j = i
            while j < len(data) and not data[j : j + 1].isspace():
                j += 1
            tokens.append(int(data[i:j]))
            i = j
    if len(tokens) < count:
        raise ReproError("truncated netpbm header/data")
    return tokens, i


def read_pgm(path: str | Path) -> np.ndarray:
    """Read a P2/P5 PGM file into an (H, W) uint8 array."""
    data = Path(path).read_bytes()
    magic = data[:2]
    if magic not in (b"P2", b"P5"):
        raise ReproError(f"not a PGM file: magic {magic!r}")
    (w, h, maxval), pos = _read_tokens(data, 3, 2)
    if maxval <= 0 or maxval > 255:
        raise ReproError(f"unsupported PGM maxval {maxval}")
    if magic == b"P5":
        pos += 1  # single whitespace after maxval
        raw = data[pos : pos + w * h]
        if len(raw) < w * h:
            raise ReproError("truncated P5 pixel data")
        return np.frombuffer(raw, dtype=np.uint8).reshape(h, w).copy()
    pixels, _ = _read_tokens(data, w * h, pos)
    return np.array(pixels, dtype=np.uint8).reshape(h, w)


def write_pgm(path: str | Path, img: np.ndarray, *, binary: bool = True) -> None:
    """Write an (H, W) uint8 array as P5 (or P2) PGM."""
    img = np.asarray(img, dtype=np.uint8)
    if img.ndim != 2:
        raise ReproError("write_pgm expects an (H, W) array")
    h, w = img.shape
    header = f"{'P5' if binary else 'P2'}\n{w} {h}\n255\n".encode()
    if binary:
        Path(path).write_bytes(header + img.tobytes())
    else:
        body = "\n".join(" ".join(str(v) for v in row) for row in img.tolist())
        Path(path).write_bytes(header + body.encode() + b"\n")


def read_ppm(path: str | Path) -> np.ndarray:
    """Read a P3/P6 PPM file into an (H, W, 3) uint8 array."""
    data = Path(path).read_bytes()
    magic = data[:2]
    if magic not in (b"P3", b"P6"):
        raise ReproError(f"not a PPM file: magic {magic!r}")
    (w, h, maxval), pos = _read_tokens(data, 3, 2)
    if maxval <= 0 or maxval > 255:
        raise ReproError(f"unsupported PPM maxval {maxval}")
    if magic == b"P6":
        pos += 1
        raw = data[pos : pos + w * h * 3]
        if len(raw) < w * h * 3:
            raise ReproError("truncated P6 pixel data")
        return np.frombuffer(raw, dtype=np.uint8).reshape(h, w, 3).copy()
    pixels, _ = _read_tokens(data, w * h * 3, pos)
    return np.array(pixels, dtype=np.uint8).reshape(h, w, 3)


def write_ppm(path: str | Path, img: np.ndarray, *, binary: bool = True) -> None:
    """Write an (H, W, 3) uint8 array as P6 (or P3) PPM."""
    img = np.asarray(img, dtype=np.uint8)
    if img.ndim != 3 or img.shape[2] != 3:
        raise ReproError("write_ppm expects an (H, W, 3) array")
    h, w, _ = img.shape
    header = f"{'P6' if binary else 'P3'}\n{w} {h}\n255\n".encode()
    if binary:
        Path(path).write_bytes(header + img.tobytes())
    else:
        flat = img.reshape(-1, 3)
        body = "\n".join(" ".join(str(v) for v in px) for px in flat.tolist())
        Path(path).write_bytes(header + body.encode() + b"\n")


# --- synthetic scene ----------------------------------------------------------------
def synthetic_scene(width: int = 256, height: int = 256, *, seed: int = 2016) -> np.ndarray:
    """A deterministic colour test scene, (H, W, 3) uint8.

    Bright geometric foreground objects over a dark vignetted gradient,
    with mild sensor noise: the grayscale histogram is bimodal, so the
    Otsu threshold lands between the modes and the binarization isolates
    the objects — the behaviour Fig. 7 illustrates.
    """
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width].astype(np.float64)
    cx, cy = width / 2, height / 2

    # Dark background with a corner-to-corner gradient and vignette.
    base = 30 + 50 * (xx / width) + 25 * (yy / height)
    vignette = 1.0 - 0.5 * (((xx - cx) / cx) ** 2 + ((yy - cy) / cy) ** 2) / 2
    gray = base * vignette

    # Bright foreground: a disc, a rotated bar and a ring.
    disc = (xx - 0.30 * width) ** 2 + (yy - 0.35 * height) ** 2 < (0.16 * width) ** 2
    u = (xx - 0.68 * width) * 0.8 + (yy - 0.62 * height) * 0.6
    v = -(xx - 0.68 * width) * 0.6 + (yy - 0.62 * height) * 0.8
    bar = (np.abs(u) < 0.22 * width) & (np.abs(v) < 0.05 * height)
    rr = np.sqrt((xx - 0.72 * width) ** 2 + (yy - 0.25 * height) ** 2)
    ring = np.abs(rr - 0.11 * width) < 0.025 * width
    fg = disc | bar | ring
    gray = np.where(fg, 195 + 18 * np.sin(xx / 9) * np.cos(yy / 11), gray)

    gray = gray + rng.normal(0, 4.0, gray.shape)
    gray = np.clip(gray, 0, 255)

    # Tint channels slightly so grayScale conversion is non-trivial.
    out = np.empty((height, width, 3), dtype=np.uint8)
    out[..., 0] = np.clip(gray * 1.05, 0, 255).astype(np.uint8)
    out[..., 1] = np.clip(gray * 1.00, 0, 255).astype(np.uint8)
    out[..., 2] = np.clip(gray * 0.92, 0, 255).astype(np.uint8)
    return out
