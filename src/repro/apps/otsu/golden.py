"""Golden NumPy references for the Otsu pipeline.

Bit-exact with the HLS-compiled C: the grayscale conversion uses the
same fixed-point coefficients, and the threshold search replays the same
float32 operation order as the interpreter, so a hardware run and the
software reference produce identical images.
"""

from __future__ import annotations

import numpy as np

from repro.apps.otsu.csrc import LUMA_B, LUMA_G, LUMA_R


def golden_grayscale(packed: np.ndarray) -> np.ndarray:
    """Packed 0x00RRGGBB words -> gray values (int32, same length)."""
    p = np.asarray(packed, dtype=np.int64)
    r = (p >> 16) & 255
    g = (p >> 8) & 255
    b = p & 255
    return ((LUMA_R * r + LUMA_G * g + LUMA_B * b) >> 8).astype(np.int32)


def golden_histogram(gray: np.ndarray) -> np.ndarray:
    """256-bin histogram (int32)."""
    return np.bincount(
        np.asarray(gray, dtype=np.int64) & 255, minlength=256
    ).astype(np.int32)


def golden_otsu_threshold(hist: np.ndarray, npix: int) -> int:
    """Between-class-variance maximization, float32 step-for-step.

    Mirrors the C actor exactly (same accumulation order, same float32
    rounding) so the reference threshold equals the hardware one.
    """
    f32 = np.float32
    hist = np.asarray(hist)
    total = f32(npix)
    s = f32(0.0)
    for i in range(256):
        s = f32(s + f32(f32(i) * f32(hist[i])))
    sum_b = f32(0.0)
    w_b = f32(0.0)
    max_var = f32(0.0)
    threshold = 0
    for t in range(256):
        w_b = f32(w_b + f32(hist[t]))
        if w_b == 0.0:
            continue
        w_f = f32(total - w_b)
        if w_f == 0.0:
            break
        sum_b = f32(sum_b + f32(f32(t) * f32(hist[t])))
        m_b = f32(sum_b / w_b)
        m_f = f32(f32(s - sum_b) / w_f)
        diff = f32(m_b - m_f)
        between = f32(f32(f32(w_b * w_f) * diff) * diff)
        if between > max_var:
            max_var = between
            threshold = t
    return threshold


def golden_binarize(gray: np.ndarray, threshold: int) -> np.ndarray:
    """gray -> 0/255 binary image (int32)."""
    return np.where(np.asarray(gray) > threshold, 255, 0).astype(np.int32)


def golden_pipeline(packed: np.ndarray) -> dict[str, np.ndarray | int]:
    """Run the whole software pipeline; returns every intermediate."""
    gray = golden_grayscale(packed)
    hist = golden_histogram(gray)
    threshold = golden_otsu_threshold(hist, len(gray))
    binary = golden_binarize(gray, threshold)
    return {
        "gray": gray,
        "hist": hist,
        "threshold": threshold,
        "binary": binary,
    }
