"""Synthesizable C sources of the Otsu dataflow actors.

Each function is generated for a concrete image size (the stream depth
is a compile-time constant, as Vivado HLS requires for the array
interfaces).  Pixels travel as 32-bit stream words: packed ``0x00RRGGBB``
into ``grayScale``, one gray value per word elsewhere.

Resource-profile notes (these are what reproduce Table II's DSP/BRAM
mix): ``grayScale`` multiplies by 8-bit constants and carries an
allocation directive capping it to a single DSP multiplier;
``computeHistogram`` only increments a 256×32-bit BRAM;
``halfProbability`` does the float between-class-variance search (the
shared float multiplier costs 2 DSP48); ``segment`` is compare/select
only.
"""

from __future__ import annotations

#: Fixed-point ITU-R BT.601 luma coefficients (x/256).
LUMA_R, LUMA_G, LUMA_B = 77, 150, 29


def gray_scale_src(npix: int) -> str:
    return f"""
void grayScale(int imageIn[{npix}], int imageOutCH[{npix}], int imageOutSEG[{npix}]) {{
    for (int i = 0; i < {npix}; i++) {{
        int px = imageIn[i];
        int r = (px >> 16) & 255;
        int g = (px >> 8) & 255;
        int b = px & 255;
        int y = ({LUMA_R} * r + {LUMA_G} * g + {LUMA_B} * b) >> 8;
        imageOutCH[i] = y;
        imageOutSEG[i] = y;
    }}
}}
"""


def gray_scale_single_src(npix: int) -> str:
    """Single-output variant, used when only one consumer exists."""
    return f"""
void grayScale(int imageIn[{npix}], int imageOut[{npix}]) {{
    for (int i = 0; i < {npix}; i++) {{
        int px = imageIn[i];
        int r = (px >> 16) & 255;
        int g = (px >> 8) & 255;
        int b = px & 255;
        imageOut[i] = ({LUMA_R} * r + {LUMA_G} * g + {LUMA_B} * b) >> 8;
    }}
}}
"""


def compute_histogram_src(npix: int) -> str:
    return f"""
void computeHistogram(int grayScaleImage[{npix}], int histogram[256]) {{
    int local[256];
    for (int i = 0; i < 256; i++) {{
        local[i] = 0;
    }}
    for (int i = 0; i < {npix}; i++) {{
        int bin = grayScaleImage[i] & 255;
        local[bin] = local[bin] + 1;
    }}
    for (int i = 0; i < 256; i++) {{
        histogram[i] = local[i];
    }}
}}
"""


def half_probability_src(npix: int) -> str:
    """The ``otsuMethod`` actor: exhaustive between-class-variance search.

    The stream is read **once** (an axis port cannot be replayed) into a
    16-bit local copy — 4 Kbit, which maps to distributed LUT-RAM rather
    than a RAMB18, matching the paper's Arch2 BRAM count.  16-bit bins
    bound the image at 65535 pixels per gray level (any image up to
    255x257, or larger non-degenerate ones).
    """
    if npix >= 1 << 16:
        raise ValueError(
            "halfProbability's 16-bit histogram copy supports < 65536 pixels"
        )
    return f"""
const int NPIX = {npix};

void halfProbability(int histogram[256], int probability[1]) {{
    uint16 local[256];
    float sum = 0.0;
    for (int i = 0; i < 256; i++) {{
        int h = histogram[i];
        local[i] = h;
        sum = sum + (float)i * (float)h;
    }}
    float total = (float)NPIX;
    float sumB = 0.0;
    float wB = 0.0;
    float maxVar = 0.0;
    int threshold = 0;
    for (int t = 0; t < 256; t++) {{
        int h = local[t];
        wB = wB + (float)h;
        if (wB == 0.0) continue;
        float wF = total - wB;
        if (wF == 0.0) break;
        sumB = sumB + (float)t * (float)h;
        float mB = sumB / wB;
        float mF = (sum - sumB) / wF;
        float diff = mB - mF;
        float between = wB * wF * diff * diff;
        if (between > maxVar) {{
            maxVar = between;
            threshold = t;
        }}
    }}
    probability[0] = threshold;
}}
"""


def segment_src(npix: int) -> str:
    return f"""
void segment(int grayScaleImage[{npix}], int otsuThreshold[1], int segmentedGrayImage[{npix}]) {{
    int thr = otsuThreshold[0];
    for (int i = 0; i < {npix}; i++) {{
        segmentedGrayImage[i] = grayScaleImage[i] > thr ? 255 : 0;
    }}
}}
"""


#: Function-name aliases: paper Table I name -> Listing-4 actor name.
TABLE1_TO_ACTOR = {
    "grayScale": "grayScale",
    "histogram": "computeHistogram",
    "otsuMethod": "halfProbability",
    "binarization": "segment",
}

ACTOR_TO_TABLE1 = {v: k for k, v in TABLE1_TO_ACTOR.items()}


def all_sources(npix: int) -> dict[str, str]:
    """C source per actor name, for an ``npix``-pixel image."""
    return {
        "grayScale": gray_scale_src(npix),
        "computeHistogram": compute_histogram_src(npix),
        "halfProbability": half_probability_src(npix),
        "segment": segment_src(npix),
    }
