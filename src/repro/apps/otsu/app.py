"""The four Otsu architectures of Table I.

Each architecture is an HTG + partition: the functions selected for
hardware (Table I) are grouped, in pipeline order, into a single
dataflow phase whose actors carry the Listing-4 names; the remaining
functions stay as software tasks.  ``Arch4`` reproduces Listing 4
exactly, including the double gray stream (``imageOutCH`` to the
histogram, ``imageOutSEG`` to the segmenter).

Software cycle costs model an ARM Cortex-A9 at the PL clock (per-pixel
costs in the tens of cycles — conversion and binarization are cheap,
the histogram's random-access increments and the float threshold search
cost more).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.image import pack_rgb, synthetic_scene
from repro.apps.otsu import csrc
from repro.apps.otsu.golden import (
    golden_binarize,
    golden_grayscale,
    golden_histogram,
    golden_otsu_threshold,
    golden_pipeline,
)
from repro.dsl.ast import TgGraph
from repro.dsl.from_htg import graph_from_htg
from repro.hls.interfaces import Directive, allocation, pipeline
from repro.htg.model import HTG, Actor, Phase, StreamChannel, Task
from repro.htg.partition import Partition
from repro.sim.runtime import Behavior
from repro.util.errors import ReproError

#: Table I — functions implemented as hardware cores per architecture.
ARCHITECTURES: dict[int, frozenset[str]] = {
    1: frozenset({"histogram"}),
    2: frozenset({"otsuMethod"}),
    3: frozenset({"histogram", "otsuMethod"}),
    4: frozenset({"grayScale", "histogram", "otsuMethod", "binarization"}),
}

#: Software cost factors (cycles) for the ARM side.
SW_COST = {
    "readImage": lambda npix: npix * 8,
    "writeImage": lambda npix: npix * 8,
    "grayScale": lambda npix: npix * 30,
    "histogram": lambda npix: npix * 14,
    "otsuMethod": lambda npix: 256 * 48,
    "binarization": lambda npix: npix * 10,
}

#: Pipeline order of the accelerable functions (Table I names).
_CHAIN = ("grayScale", "histogram", "otsuMethod", "binarization")

#: Data item produced by each function.
_PRODUCES = {
    "grayScale": "grayImage",
    "histogram": "histData",
    "otsuMethod": "threshold",
    "binarization": "binImage",
}
#: Data items consumed by each function.
_CONSUMES = {
    "grayScale": ("rgbImage",),
    "histogram": ("grayImage",),
    "otsuMethod": ("histData",),
    "binarization": ("grayImage", "threshold"),
}


@dataclass
class OtsuApplication:
    """One Table-I architecture, ready to synthesize and simulate."""

    arch: int
    width: int
    height: int
    htg: HTG
    partition: Partition
    phase_name: str | None
    c_sources: dict[str, str]
    behaviors: dict[str, Behavior]
    extra_directives: dict[str, list[Directive]]
    packed_scene: np.ndarray
    golden: dict[str, np.ndarray | int] = field(default_factory=dict)

    @property
    def npix(self) -> int:
        return self.width * self.height

    @property
    def hw_functions(self) -> frozenset[str]:
        return ARCHITECTURES[self.arch]

    def dsl_graph(self) -> TgGraph:
        """The DSL description of this architecture (paper Listing 4 style)."""
        return graph_from_htg(self.htg, self.partition, name=f"otsuArch{self.arch}")


def _actor_of(func: str) -> str:
    return csrc.TABLE1_TO_ACTOR[func]


def _build_phase(hw_funcs: list[str], npix: int) -> Phase:
    """The dataflow phase holding the given hardware functions."""
    actors: list[Actor] = []
    channels: list[StreamChannel] = []
    inputs: list[str] = []
    outputs: list[str] = []

    def add_boundary_in(data: str, actor: str, port: str) -> None:
        if data not in inputs:
            inputs.append(data)
        channels.append(StreamChannel(Phase.BOUNDARY, data, actor, port))

    def add_boundary_out(actor: str, port: str, data: str) -> None:
        if data not in outputs:
            outputs.append(data)
        channels.append(StreamChannel(actor, port, Phase.BOUNDARY, data))

    hw = set(hw_funcs)
    # grayScale needs its dual-output form whenever a second consumer of
    # the gray image exists (in hardware or waiting in shared memory).
    gray_dual = "grayScale" in hw and ("histogram" in hw or "binarization" in hw)
    if "grayScale" in hw:
        if gray_dual:
            actors.append(
                Actor(
                    "grayScale",
                    stream_inputs=("imageIn",),
                    stream_outputs=("imageOutCH", "imageOutSEG"),
                    c_source=csrc.gray_scale_src(npix),
                )
            )
        else:
            actors.append(
                Actor(
                    "grayScale",
                    stream_inputs=("imageIn",),
                    stream_outputs=("imageOut",),
                    c_source=csrc.gray_scale_single_src(npix),
                )
            )
        add_boundary_in("rgbImage", "grayScale", "imageIn")
        ch_port = "imageOutCH" if gray_dual else "imageOut"
        if "histogram" in hw:
            pass  # connected below, in the histogram branch
        else:
            add_boundary_out("grayScale", ch_port, "grayImage")
        if gray_dual:
            if "binarization" in hw:
                pass  # connected below, in the binarization branch
            else:
                add_boundary_out("grayScale", "imageOutSEG", "grayImage")
    if "histogram" in hw:
        actors.append(
            Actor(
                "computeHistogram",
                stream_inputs=("grayScaleImage",),
                stream_outputs=("histogram",),
                c_source=csrc.compute_histogram_src(npix),
            )
        )
        if "grayScale" in hw:
            channels.append(
                StreamChannel("grayScale", "imageOutCH", "computeHistogram", "grayScaleImage")
            )
        else:
            add_boundary_in("grayImage", "computeHistogram", "grayScaleImage")
    if "otsuMethod" in hw:
        actors.append(
            Actor(
                "halfProbability",
                stream_inputs=("histogram",),
                stream_outputs=("probability",),
                c_source=csrc.half_probability_src(npix),
            )
        )
        if "histogram" in hw:
            channels.append(
                StreamChannel("computeHistogram", "histogram", "halfProbability", "histogram")
            )
        else:
            add_boundary_in("histData", "halfProbability", "histogram")
    if "binarization" in hw:
        actors.append(
            Actor(
                "segment",
                stream_inputs=("grayScaleImage", "otsuThreshold"),
                stream_outputs=("segmentedGrayImage",),
                c_source=csrc.segment_src(npix),
            )
        )
        if "grayScale" in hw:
            channels.append(
                StreamChannel("grayScale", "imageOutSEG", "segment", "grayScaleImage")
            )
        else:
            add_boundary_in("grayImage", "segment", "grayScaleImage")
        if "otsuMethod" in hw:
            channels.append(
                StreamChannel("halfProbability", "probability", "segment", "otsuThreshold")
            )
        else:
            add_boundary_in("threshold", "segment", "otsuThreshold")

    # Outputs: every datum a software consumer still needs leaves through
    # the boundary (grayImage exports are handled in the grayScale branch).
    if "binarization" in hw:
        add_boundary_out("segment", "segmentedGrayImage", "binImage")
    if "otsuMethod" in hw and "binarization" not in hw:
        add_boundary_out("halfProbability", "probability", "threshold")
    if "histogram" in hw and "otsuMethod" not in hw:
        add_boundary_out("computeHistogram", "histogram", "histData")

    return Phase(
        name="hwPipeline",
        actors=actors,
        channels=channels,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
    )


def _hw_is_contiguous(hw: frozenset[str]) -> bool:
    idx = sorted(_CHAIN.index(f) for f in hw if f != "binarization")
    core = [i for i in idx]
    return all(b - a == 1 for a, b in zip(core, core[1:]))


def _hw_is_acyclic(hw: frozenset[str]) -> bool:
    """A phase must not need a software stage's output that itself
    depends on the phase: hardware binarization with a software
    otsuMethod downstream of hardware gray/histogram is circular."""
    if "binarization" in hw and "otsuMethod" not in hw:
        return not ({"grayScale", "histogram"} & hw)
    return True


def buildable_hw_sets() -> list[frozenset[str]]:
    """All hardware subsets the phase builder supports (DSE search space).

    The accelerable functions must be contiguous in the pipeline (a
    phase is one connected dataflow); the empty set is the all-software
    solution.
    """
    from itertools import combinations

    out: list[frozenset[str]] = [frozenset()]
    for r in range(1, len(_CHAIN) + 1):
        for combo in combinations(_CHAIN, r):
            hw = frozenset(combo)
            if _hw_is_contiguous(hw) and _hw_is_acyclic(hw):
                out.append(hw)
    return out


def build_otsu_app(
    arch: int,
    *,
    width: int = 64,
    height: int = 64,
    seed: int = 2016,
    rgb: "np.ndarray | None" = None,
) -> OtsuApplication:
    """Build architecture *arch* (1-4, Table I).

    Uses the synthetic width×height scene unless *rgb* supplies a real
    (H, W, 3) image.
    """
    if arch not in ARCHITECTURES:
        raise ReproError(f"unknown architecture {arch}; Table I defines 1..4")
    return build_otsu_custom(
        ARCHITECTURES[arch], arch=arch, width=width, height=height, seed=seed, rgb=rgb
    )


def build_otsu_custom(
    hw: frozenset[str] | set[str],
    *,
    arch: int = 0,
    width: int = 64,
    height: int = 64,
    seed: int = 2016,
    rgb: "np.ndarray | None" = None,
) -> OtsuApplication:
    """Build an Otsu solution with an arbitrary hardware set (DSE entry).

    ``hw`` must be a subset of the four accelerable functions and
    contiguous in the pipeline (see :func:`buildable_hw_sets`).  *rgb*
    supplies a real (H, W, 3) image instead of the synthetic scene (its
    shape overrides *width*/*height*).
    """
    hw = frozenset(hw)
    unknown = hw - set(_CHAIN)
    if unknown:
        raise ReproError(f"unknown functions in hw set: {sorted(unknown)}")
    if not _hw_is_contiguous(hw):
        raise ReproError("hardware functions must be contiguous in the pipeline")
    if not _hw_is_acyclic(hw):
        raise ReproError(
            "hardware binarization with software otsuMethod downstream of "
            "hardware stages would make the phase cyclic"
        )
    if rgb is not None:
        rgb = np.asarray(rgb)
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise ReproError("rgb image must be (H, W, 3)")
        height, width = rgb.shape[:2]
        scene = rgb.astype(np.uint8)
    else:
        scene = synthetic_scene(width, height, seed=seed)
    npix = width * height

    packed = pack_rgb(scene).astype(np.int32)
    golden = golden_pipeline(packed)

    htg = HTG(f"otsuArch{arch}")
    htg.add(Task("readImage", outputs=("rgbImage",), io=True,
                 sw_cycles=SW_COST["readImage"](npix)))
    htg.add(Task("writeImage", inputs=("binImage",), io=True,
                 sw_cycles=SW_COST["writeImage"](npix)))

    phase: Phase | None = None
    if hw:
        phase = _build_phase([f for f in _CHAIN if f in hw], npix)
        htg.add(phase)

    # Software tasks for the functions not in hardware.
    for func in _CHAIN:
        if func in hw:
            continue
        htg.add(
            Task(
                func,
                inputs=_CONSUMES[func],
                outputs=(_PRODUCES[func],),
                sw_cycles=SW_COST[func](npix),
            )
        )

    # Precedence edges, derived from data production/consumption.
    producer: dict[str, str] = {"rgbImage": "readImage"}
    for func in _CHAIN:
        node = phase.name if (phase is not None and func in hw) else func
        producer[_PRODUCES[func]] = node
    if phase is not None:
        for item in phase.outputs:
            producer[item] = phase.name

    def consumers_of(node_name: str) -> tuple[str, ...]:
        if phase is not None and node_name == phase.name:
            return phase.inputs
        if node_name == "writeImage":
            return ("binImage",)
        return _CONSUMES.get(node_name, ())

    for node_name in list(htg.nodes):
        for item in consumers_of(node_name):
            src = producer[item]
            if src != node_name and (src, node_name) not in htg.edges:
                htg.add_edge(src, node_name)

    partition = Partition.from_hw_set(htg, {phase.name} if phase is not None else set())

    # Behaviours: software tasks + actor functional models.
    behaviors: dict[str, Behavior] = {
        "readImage": Behavior(lambda: packed, sw_cycles=lambda: SW_COST["readImage"](npix)),
        "writeImage": Behavior(lambda img: None,
                               sw_cycles=lambda img: SW_COST["writeImage"](npix)),
        "grayScale": Behavior(golden_grayscale,
                              sw_cycles=lambda a: SW_COST["grayScale"](npix)),
        "histogram": Behavior(golden_histogram,
                              sw_cycles=lambda a: SW_COST["histogram"](npix)),
        "otsuMethod": Behavior(
            lambda hist: np.array([golden_otsu_threshold(hist, npix)], dtype=np.int32),
            sw_cycles=lambda a: SW_COST["otsuMethod"](npix),
        ),
        "binarization": Behavior(
            lambda gray, thr: golden_binarize(gray, int(np.asarray(thr).reshape(-1)[0])),
            sw_cycles=lambda a, b: SW_COST["binarization"](npix),
        ),
    }
    if phase is not None:
        # Dataflow actors (hardware functional models).
        if phase.has_actor("grayScale"):
            if len(phase.actor("grayScale").stream_outputs) == 2:
                behaviors[f"{phase.name}.grayScale"] = Behavior(
                    lambda p: (golden_grayscale(p), golden_grayscale(p))
                )
            else:
                behaviors[f"{phase.name}.grayScale"] = Behavior(golden_grayscale)
        behaviors[f"{phase.name}.computeHistogram"] = Behavior(golden_histogram)
        behaviors[f"{phase.name}.halfProbability"] = Behavior(
            lambda hist: np.array([golden_otsu_threshold(hist, npix)], dtype=np.int32)
        )
        behaviors[f"{phase.name}.segment"] = Behavior(
            lambda gray, thr: golden_binarize(gray, int(np.asarray(thr).reshape(-1)[0]))
        )

    extra_directives: dict[str, list[Directive]] = {
        "grayScale": [
            allocation("grayScale", "mul_small", 1),
            pipeline("grayScale", "i"),
        ],
        "computeHistogram": [pipeline("computeHistogram", "i")],
        "segment": [pipeline("segment", "i")],
        "halfProbability": [],
    }

    c_sources = (
        {a.name: a.c_source for a in phase.actors if a.c_source is not None}
        if phase is not None
        else {}
    )

    return OtsuApplication(
        arch=arch,
        width=width,
        height=height,
        htg=htg,
        partition=partition,
        phase_name=phase.name if phase is not None else None,
        c_sources=c_sources,
        behaviors=behaviors,
        extra_directives={
            k: v for k, v in extra_directives.items() if k in c_sources
        },
        packed_scene=packed,
        golden=golden,
    )
