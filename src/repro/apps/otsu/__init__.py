"""The Otsu-filter case study (paper Section VI).

Six tasks: ``readImage`` → ``grayScale`` → ``histogram`` →
``otsuMethod`` → ``binarization`` → ``writeImage``; everything except
the two I/O tasks can go to hardware.  Table I's four architectures are
built by :func:`build_otsu_app`; the dataflow actor names follow the
paper's Listing 4 (``grayScale``, ``computeHistogram``,
``halfProbability``, ``segment``).
"""

from repro.apps.otsu.app import ARCHITECTURES, OtsuApplication, build_otsu_app
from repro.apps.otsu.golden import (
    golden_binarize,
    golden_grayscale,
    golden_histogram,
    golden_otsu_threshold,
    golden_pipeline,
)

__all__ = [
    "ARCHITECTURES",
    "OtsuApplication",
    "build_otsu_app",
    "golden_binarize",
    "golden_grayscale",
    "golden_histogram",
    "golden_otsu_threshold",
    "golden_pipeline",
]
