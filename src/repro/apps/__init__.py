"""Applications and kernels used by the paper's evaluation.

* :mod:`image` — PGM/PPM I/O, packed-RGB helpers, and the synthetic
  test scene standing in for the paper's photograph (Fig. 7a);
* :mod:`otsu` — the Otsu-filter case study (Section VI): the six-task
  application, its synthesizable C sources, golden NumPy behaviours and
  the four architectures of Table I;
* :mod:`kernels` — the ADD/MUL/GAUSS/EDGE example of Fig. 4;
* :mod:`generator` — random task-graph generation for scalability
  benchmarks.
"""

from repro.apps.image import (
    pack_rgb,
    read_pgm,
    read_ppm,
    synthetic_scene,
    unpack_rgb,
    write_pgm,
    write_ppm,
)
from repro.apps.kernels import build_fig4_flow_inputs
from repro.apps.otsu import ARCHITECTURES, OtsuApplication, build_otsu_app

__all__ = [
    "ARCHITECTURES",
    "OtsuApplication",
    "build_fig4_flow_inputs",
    "build_otsu_app",
    "pack_rgb",
    "read_pgm",
    "read_ppm",
    "synthetic_scene",
    "unpack_rgb",
    "write_pgm",
    "write_ppm",
]
