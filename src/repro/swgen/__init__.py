"""Software-layer generation (paper Section V).

Generates the artifacts the paper's tool produces after the bitstream:
the C API for configuring and invoking AXI-Lite accelerators
(:mod:`api`), the DMA driver interface (:mod:`driver`), the customized
device tree (:mod:`devicetree`), the boot files (:mod:`boot`) and the
assembled PetaLinux image manifest (:mod:`petalinux`).
"""

from repro.swgen.api import generate_api_header, generate_api_source
from repro.swgen.boot import BootImage, generate_boot_files
from repro.swgen.devicetree import generate_device_tree
from repro.swgen.driver import generate_dma_api_header
from repro.swgen.petalinux import PetalinuxImage, assemble_image

__all__ = [
    "BootImage",
    "PetalinuxImage",
    "assemble_image",
    "generate_api_header",
    "generate_api_source",
    "generate_boot_files",
    "generate_device_tree",
    "generate_dma_api_header",
]
