"""Device-tree customization.

The boot-file generation "customizes the device-tree used by Linux" so
the kernel "automatically recognizes the new hardware accelerators and
the corresponding DMA cores" (Section V).  We emit a DTS overlay for the
``amba_pl`` bus with one node per AXI-Lite-mapped peripheral, carrying
``reg`` (from the address map), ``compatible`` strings and interrupt
properties.
"""

from __future__ import annotations

from repro.soc.integrator import IntegratedSystem

#: Shared-peripheral interrupt numbers for PL->PS IRQs on the Zynq
#: (IRQ_F2P[0] maps to SPI 61; the DT encodes SPI number - 32 ... the
#: conventional "0 29 4" style triplets start at 29 for SPI 61).
_FIRST_PL_IRQ = 29


def _compatible_of(vlnv: str) -> str:
    vendor, _lib, name, version = vlnv.split(":")
    return f"{vendor.split('.')[0]},{name.replace('_', '-')}-{version}"


def generate_device_tree(system: IntegratedSystem) -> str:
    """Render the ``pl.dtsi`` overlay for *system*."""
    bd = system.design
    lines = [
        "/* Auto-generated programmable-logic device tree overlay. */",
        "/ {",
        "\tamba_pl: amba_pl {",
        '\t\t#address-cells = <1>;',
        '\t\t#size-cells = <1>;',
        '\t\tcompatible = "simple-bus";',
        "\t\tranges;",
    ]
    irq = _FIRST_PL_IRQ
    for rng in sorted(bd.address_map.ranges, key=lambda r: r.base):
        cell = bd.cell(rng.name)
        label = rng.name.lower()
        lines.append(f"\t\t{label}: {label}@{rng.base:08x} {{")
        lines.append(f'\t\t\tcompatible = "{_compatible_of(cell.vlnv)}";')
        lines.append(f"\t\t\treg = <0x{rng.base:08x} 0x{rng.size:x}>;")
        n_irqs = len(
            [p for p in cell.pins if p.kind.value == "interrupt_out"]
        )
        if n_irqs:
            triplets = " ".join(f"0 {irq + k} 4" for k in range(n_irqs))
            lines.append(f"\t\t\tinterrupt-parent = <&intc>;")
            lines.append(f"\t\t\tinterrupts = <{triplets}>;")
            irq += n_irqs
        if "axi_dma" in cell.vlnv:
            lines.append('\t\t\tdevice_type = "dma";')
        lines.append("\t\t};")
    lines.append("\t};")
    lines.append("};")
    return "\n".join(lines) + "\n"
