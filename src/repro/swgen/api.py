"""C API generation for AXI-Lite accelerators.

For each ``connect``-ed core the tool emits a header/source pair
wrapping the register protocol: set each argument register, pulse
``ap_start``, poll ``ap_done``, fetch the return register.  This is the
"API to configure and invoke the accelerators from a software
application" of Section V.
"""

from __future__ import annotations

from repro.hls.project import SynthesisResult
from repro.soc.address_map import AddressRange

_CTRL_NAMES = {"CTRL", "GIE", "IER", "ISR"}


def _arg_registers(result: SynthesisResult):
    return [r for r in result.iface.registers if r.name not in _CTRL_NAMES]


def generate_api_header(core: str, result: SynthesisResult, rng: AddressRange) -> str:
    """The ``<core>_accel.h`` artifact."""
    guard = f"{core.upper()}_ACCEL_H"
    lines = [
        f"/* Auto-generated API for accelerator {core!r}. */",
        f"#ifndef {guard}",
        f"#define {guard}",
        "",
        "#include <stdint.h>",
        "",
        f"#define {core.upper()}_BASE_ADDR 0x{rng.base:08X}u",
        f"#define {core.upper()}_ADDR_RANGE 0x{rng.size:X}u",
        "",
        "/* Register map (Vivado HLS ap_ctrl_hs layout). */",
    ]
    for reg in result.iface.registers:
        lines.append(
            f"#define {core.upper()}_REG_{reg.name.upper()} 0x{reg.offset:02X}u"
        )
    lines.append("")
    for reg in _arg_registers(result):
        if reg.direction == "in":
            lines.append(f"void {core}_set_{reg.name}(uint32_t value);")
    if any(r.name == "return" for r in result.iface.registers):
        lines.append(f"uint32_t {core}_get_return(void);")
    lines += [
        f"void {core}_start(void);",
        f"int {core}_is_done(void);",
        f"void {core}_wait(void);",
        "/* Bounded wait: 0 once ap_done, -1 when the watchdog expires",
        f" * (call {core}_reset() before retrying). */",
        f"int {core}_wait_timeout(uint32_t max_spins);",
        f"void {core}_reset(void);",
        "",
        f"#endif /* {guard} */",
    ]
    return "\n".join(lines) + "\n"


def generate_api_source(core: str, result: SynthesisResult, rng: AddressRange) -> str:
    """The ``<core>_accel.c`` artifact (mmap-based userspace access)."""
    up = core.upper()
    lines = [
        f'#include "{core}_accel.h"',
        "",
        "#include <fcntl.h>",
        "#include <sys/mman.h>",
        "#include <unistd.h>",
        "",
        "static volatile uint32_t *regs;",
        "",
        "static void ensure_mapped(void) {",
        "    if (regs) return;",
        '    int fd = open("/dev/mem", O_RDWR | O_SYNC);',
        "    regs = (volatile uint32_t *)mmap(0, "
        f"{up}_ADDR_RANGE, PROT_READ | PROT_WRITE, MAP_SHARED, fd, "
        f"{up}_BASE_ADDR);",
        "    close(fd);",
        "}",
        "",
    ]
    for reg in _arg_registers(result):
        if reg.direction == "in":
            lines += [
                f"void {core}_set_{reg.name}(uint32_t value) {{",
                "    ensure_mapped();",
                f"    regs[{up}_REG_{reg.name.upper()} / 4] = value;",
                "}",
                "",
            ]
    if any(r.name == "return" for r in result.iface.registers):
        lines += [
            f"uint32_t {core}_get_return(void) {{",
            "    ensure_mapped();",
            f"    return regs[{up}_REG_RETURN / 4];",
            "}",
            "",
        ]
    lines += [
        f"void {core}_start(void) {{",
        "    ensure_mapped();",
        f"    regs[{up}_REG_CTRL / 4] = 0x1u; /* ap_start */",
        "}",
        "",
        f"int {core}_is_done(void) {{",
        "    ensure_mapped();",
        f"    return (regs[{up}_REG_CTRL / 4] & 0x2u) != 0; /* ap_done */",
        "}",
        "",
        f"void {core}_wait(void) {{",
        f"    while (!{core}_is_done()) {{ /* spin */ }}",
        "}",
        "",
        f"int {core}_wait_timeout(uint32_t max_spins) {{",
        "    while (max_spins--) {",
        f"        if ({core}_is_done()) return 0;",
        "    }",
        f"    return -1; /* hung: {core}_reset() and retry */",
        "}",
        "",
        f"void {core}_reset(void) {{",
        "    ensure_mapped();",
        f"    regs[{up}_REG_CTRL / 4] = 0x0u; /* drop ap_start; core re-arms idle */",
        "}",
    ]
    return "\n".join(lines) + "\n"
