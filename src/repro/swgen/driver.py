"""DMA driver API generation.

For AXI-Stream connections the paper ships a pre-compiled kernel driver
and exposes two calls — ``readDMA`` and ``writeDMA`` — against the
``/dev`` node of each DMA core (Section V).  This module emits the
user-space header for those calls; the *behavioural* model of the driver
lives in :mod:`repro.sim.devfs`.

The robust surface adds bounded variants (``readDMA_timeout`` /
``writeDMA_timeout``) and ``resetDMA``: a transfer that exceeds its
watchdog returns a negative status and leaves the channel wedged until
``resetDMA`` pulses DMACR.Reset — the contract the generated
application's retry ladder is written against.
"""

from __future__ import annotations

from repro.soc.integrator import IntegratedSystem

DRIVER_MODULE_NAME = "zedboard_axidma"


def device_nodes(system: IntegratedSystem) -> list[str]:
    """/dev paths the customized device tree will create at boot."""
    nodes = [f"/dev/axidma{i}" for i, _ in enumerate(system.dmas)]
    nodes += [
        f"/dev/uio_{system.cell_of[e.node]}" for e in system.graph.connects()
    ]
    return nodes


def generate_dma_api_header(system: IntegratedSystem) -> str:
    """The ``dma_api.h`` artifact (readDMA/writeDMA)."""
    lines = [
        "/* Auto-generated DMA API (readDMA/writeDMA over /dev nodes). */",
        "#ifndef DMA_API_H",
        "#define DMA_API_H",
        "",
        "#include <stddef.h>",
        "#include <stdint.h>",
        "",
        "/* Device nodes created by the customized device tree: */",
    ]
    for i, binding in enumerate(system.dmas):
        served = []
        if binding.mm2s_link is not None:
            served.append("mm2s")
        if binding.s2mm_link is not None:
            served.append("s2mm")
        lines.append(f"/*   /dev/axidma{i}: {binding.cell} ({'+'.join(served)}) */")
    lines += [
        "",
        "int openDMA(const char *dev_path);",
        "/* Blocking transfers; return bytes moved or a negative errno. */",
        "ssize_t writeDMA(int fd, const void *buf, size_t nbytes);",
        "ssize_t readDMA(int fd, void *buf, size_t nbytes);",
        "/* Bounded transfers: return bytes moved, or negative once the",
        " * watchdog expires.  A timed-out channel stays wedged until",
        " * resetDMA() pulses DMACR.Reset on both channels. */",
        "ssize_t writeDMA_timeout(int fd, const void *buf, size_t nbytes,",
        "                         unsigned timeout_us);",
        "ssize_t readDMA_timeout(int fd, void *buf, size_t nbytes,",
        "                        unsigned timeout_us);",
        "int resetDMA(int fd);",
        "void closeDMA(int fd);",
        "",
        "#endif /* DMA_API_H */",
    ]
    return "\n".join(lines) + "\n"
