"""PetaLinux image assembly: boot files + generated software layer.

Bundles everything the flow produced on the software side: the boot
file set, one API header/source pair per AXI-Lite core, the DMA API
header, and the ``/dev`` nodes the booted kernel will create (derived
from the device tree, exactly as Section V describes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soc.integrator import IntegratedSystem
from repro.soc.synthesis import Bitstream
from repro.swgen.api import generate_api_header, generate_api_source
from repro.swgen.boot import BootImage, generate_boot_files
from repro.swgen.driver import device_nodes, generate_dma_api_header
from repro.swgen.mainapp import generate_main_c


@dataclass
class PetalinuxImage:
    """The complete deployable software bundle."""

    boot: BootImage
    #: Source files for the application developer: name -> content.
    sources: dict[str, str] = field(default_factory=dict)
    #: /dev entries present after boot.
    dev_nodes: list[str] = field(default_factory=list)

    def listing(self) -> str:
        lines = [self.boot.manifest(), "", "Generated API sources:"]
        lines += [f"  {name}" for name in sorted(self.sources)]
        lines.append("")
        lines.append("Device nodes after boot:")
        lines += [f"  {node}" for node in self.dev_nodes]
        return "\n".join(lines)


def assemble_image(
    system: IntegratedSystem,
    bitstream: Bitstream,
    *,
    c_sources: dict[str, str] | None = None,
) -> PetalinuxImage:
    """Build the full software bundle for *system*.

    *c_sources* (node -> synthesized C text) flows into the generated
    ``main.c`` so its hardware-failure fallbacks call the golden
    software versions of the cores.
    """
    image = PetalinuxImage(boot=generate_boot_files(system, bitstream))
    for edge in system.graph.connects():
        core = edge.node
        result = system.cores[core]
        rng = system.design.address_map.of(system.cell_of[core])
        image.sources[f"{core}_accel.h"] = generate_api_header(core, result, rng)
        image.sources[f"{core}_accel.c"] = generate_api_source(core, result, rng)
    if system.dmas:
        image.sources["dma_api.h"] = generate_dma_api_header(system)
    image.sources["main.c"] = generate_main_c(system, c_sources=c_sources)
    image.dev_nodes = device_nodes(system)
    return image
