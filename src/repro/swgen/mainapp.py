"""Generated application skeleton (`main.c`).

Flow step 5 of paper Section II: "the application that runs on the GPP
is updated to take advantage of the new hardware accelerators".  This
module emits the C main that a designer would start from — opening the
DMA devices, invoking each AXI-Lite core through its generated API, and
moving every boundary stream through ``writeDMA``/``readDMA``.

Every hardware interaction is wrapped in the retry ladder a deployed
system needs: bounded waits (``<core>_wait_timeout``,
``readDMA_timeout``/``writeDMA_timeout``), a soft reset between
attempts, and a software-fallback slot once the retry budget is spent —
mirroring the simulator runtime's recovery policy.
"""

from __future__ import annotations

from repro.soc.integrator import IntegratedSystem

_CTRL_NAMES = {"CTRL", "GIE", "IER", "ISR"}


def generate_main_c(system: IntegratedSystem, *, buffer_words: int = 1024) -> str:
    """Render the application skeleton for *system*."""
    lines = [
        "/* Auto-generated application skeleton.",
        " * Replace the buffer setup with real application data. */",
        "#include <stdio.h>",
        "#include <stdint.h>",
        "",
        '#include "dma_api.h"' if system.dmas else "",
    ]
    for edge in system.graph.connects():
        lines.append(f'#include "{edge.node}_accel.h"')
    lines += [
        "",
        "/* Recovery ladder: watchdog -> reset -> retry -> software fallback. */",
        "#define ACCEL_TIMEOUT 10000000u /* watchdog budget per attempt */",
        "#define ACCEL_RETRIES 3",
        "",
        "int main(void) {",
    ]

    # DMA devices.
    for i, binding in enumerate(system.dmas):
        lines.append(f'    int dma{i} = openDMA("/dev/axidma{i}");')
    if system.dmas:
        lines.append("")

    # Buffers for every boundary stream.
    buf_id = 0
    buffer_of: dict[int, str] = {}
    for i, binding in enumerate(system.dmas):
        if binding.mm2s_link is not None:
            name = f"in_buf{buf_id}"
            lines.append(f"    static int32_t {name}[{buffer_words}];")
            buffer_of[id(binding.mm2s_link)] = name
            buf_id += 1
        if binding.s2mm_link is not None:
            name = f"out_buf{buf_id}"
            lines.append(f"    static int32_t {name}[{buffer_words}];")
            buffer_of[id(binding.s2mm_link)] = name
            buf_id += 1
    if buffer_of:
        lines.append("")

    # AXI-Lite invocations (the control pattern the API wraps), each
    # under the retry ladder: bounded wait, reset between attempts,
    # software fallback once the budget is spent.
    for edge in system.graph.connects():
        core = edge.node
        result = system.cores[core]
        lines.append(f"    /* invoke {core} (retry, then software fallback) */")
        lines.append("    {")
        lines.append("        int attempt, ok = 0;")
        lines.append(
            "        for (attempt = 1; attempt <= ACCEL_RETRIES && !ok; ++attempt) {"
        )
        for reg in result.iface.registers:
            if reg.name in _CTRL_NAMES or reg.direction != "in":
                continue
            lines.append(f"            {core}_set_{reg.name}(0 /* TODO */);")
        lines.append(f"            {core}_start();")
        lines.append(f"            ok = {core}_wait_timeout(ACCEL_TIMEOUT) == 0;")
        lines.append(f"            if (!ok) {core}_reset();")
        lines.append("        }")
        lines.append("        if (!ok) {")
        lines.append(
            f'            fprintf(stderr, "{core}: hardware gave up, '
            'falling back to software\\n");'
        )
        lines.append(f"            /* TODO: golden software version of {core} */")
        lines.append("        }")
        if any(r.name == "return" for r in result.iface.registers):
            lines.append(
                f'        printf("{core} -> %u\\n", {core}_get_return());'
            )
        lines.append("    }")
        lines.append("")

    # Stream transfers: start every read first, then push the inputs
    # (the S2MM channel must be armed before data can drain into it).
    # A timed-out transfer resets every engine and the whole set is
    # retried; persistent failure falls back to the software pipeline.
    if system.dmas:
        lines.append("    {")
        lines.append("        int attempt, ok = 0;")
        lines.append(
            "        for (attempt = 1; attempt <= ACCEL_RETRIES && !ok; ++attempt) {"
        )
        lines.append("            ok = 1;")
        for i, binding in enumerate(system.dmas):
            if binding.s2mm_link is not None:
                buf = buffer_of[id(binding.s2mm_link)]
                lines.append(
                    f"            ok &= readDMA_timeout(dma{i}, {buf}, "
                    f"sizeof {buf}, ACCEL_TIMEOUT) >= 0;   /* arm S2MM */"
                )
        for i, binding in enumerate(system.dmas):
            if binding.mm2s_link is not None:
                buf = buffer_of[id(binding.mm2s_link)]
                dst = binding.mm2s_link.dst
                label = f"{dst[0]}.{dst[1]}" if isinstance(dst, tuple) else "soc"
                lines.append(
                    f"            ok &= writeDMA_timeout(dma{i}, {buf}, "
                    f"sizeof {buf}, ACCEL_TIMEOUT) >= 0;  /* -> {label} */"
                )
        lines.append("            if (!ok) {")
        for i, _ in enumerate(system.dmas):
            lines.append(
                f"                resetDMA(dma{i}); /* clear wedged channels */"
            )
        lines.append("            }")
        lines.append("        }")
        lines.append("        if (!ok) {")
        lines.append(
            '            fprintf(stderr, "DMA pipeline gave up, '
            'falling back to software\\n");'
        )
        lines.append("            /* TODO: golden software pipeline */")
        lines.append("        }")
        lines.append("    }")
        lines.append("")
        for i, _ in enumerate(system.dmas):
            lines.append(f"    closeDMA(dma{i});")
    lines += ["    return 0;", "}"]
    return "\n".join(ln for ln in lines if ln is not None) + "\n"
