"""Generated application skeleton (`main.c`).

Flow step 5 of paper Section II: "the application that runs on the GPP
is updated to take advantage of the new hardware accelerators".  This
module emits the C main that a designer would start from — opening the
DMA devices, invoking each AXI-Lite core through its generated API, and
moving every boundary stream through ``writeDMA``/``readDMA``.

Every hardware interaction is wrapped in the retry ladder a deployed
system needs: bounded waits (``<core>_wait_timeout``,
``readDMA_timeout``/``writeDMA_timeout``), a soft reset between
attempts, and a **working software fallback** once the retry budget is
spent.  The fallback is not a TODO stub: when the cores' C sources are
available (the flow always passes them), each core's function is
embedded as ``<core>_golden`` — the exact C the HLS engine synthesized,
renamed — and the fallback branches call it with the same arguments and
buffers the hardware would have used, chained along the stream topology
for the DMA pipeline.  Register writes likewise initialize from the
core's real register map: one named variable per argument register,
annotated with its offset and width, instead of a ``0 /* TODO */``.
"""

from __future__ import annotations

import re

from repro.soc.integrator import IntegratedSystem

_CTRL_NAMES = {"CTRL", "GIE", "IER", "ISR"}


def _golden_source(name: str, source: str) -> str:
    """The core's C source with its top function renamed ``<name>_golden``.

    The rename is token-exact (word boundaries), so recursive calls keep
    pointing at the golden copy and unrelated identifiers that merely
    contain the name are untouched.
    """
    renamed = re.sub(rf"\b{re.escape(name)}\b", f"{name}_golden", source)
    return (
        f"/* Golden software version of {name!r} — the synthesized C itself,\n"
        " * kept callable for the hardware-failure fallback path. */\n"
        f"static {renamed.strip()}\n"
    )


def _stream_chain(system: IntegratedSystem) -> list[str]:
    """Stream nodes in dataflow order (producer before consumer)."""
    nodes = [n.name for n in system.graph.nodes if n.stream_ports()]
    deps: dict[str, set[str]] = {n: set() for n in nodes}
    for link in system.graph.links():
        if isinstance(link.src, tuple) and isinstance(link.dst, tuple):
            deps[link.dst[0]].add(link.src[0])
    ordered: list[str] = []
    while deps:
        ready = sorted(n for n, d in deps.items() if d <= set(ordered))
        if not ready:  # cycle — validated earlier, but never loop here
            ordered += sorted(deps)
            break
        ordered.append(ready[0])
        del deps[ready[0]]
    return ordered


def _port_buffers(
    system: IntegratedSystem, buffer_of: dict[int, str]
) -> tuple[dict[tuple[str, str], str], list[str]]:
    """Map every stream ``(node, port)`` to a C buffer name.

    Boundary ports reuse the DMA buffers; core-to-core links get
    dedicated ``sw_tmp<k>`` intermediates (declared by the caller).
    Returns ``(mapping, intermediate buffer names)``.
    """
    mapping: dict[tuple[str, str], str] = {}
    temps: list[str] = []
    for binding in system.dmas:
        if binding.mm2s_link is not None and isinstance(binding.mm2s_link.dst, tuple):
            mapping[binding.mm2s_link.dst] = buffer_of[id(binding.mm2s_link)]
        if binding.s2mm_link is not None and isinstance(binding.s2mm_link.src, tuple):
            mapping[binding.s2mm_link.src] = buffer_of[id(binding.s2mm_link)]
    for link in system.graph.links():
        if isinstance(link.src, tuple) and isinstance(link.dst, tuple):
            name = f"sw_tmp{len(temps)}"
            temps.append(name)
            mapping[link.src] = name
            mapping[link.dst] = name
    return mapping, temps


def _golden_call(core: str, result, args_of) -> str:
    """Render ``<core>_golden(...)`` with per-parameter arguments.

    *args_of* maps a parameter name to its C expression; parameters it
    does not know (unbound scalars) pass 0.
    """
    exprs = [args_of.get(pname, "0") for pname, _ in result.function.params]
    return f"{core}_golden({', '.join(exprs)})"


def generate_main_c(
    system: IntegratedSystem,
    *,
    buffer_words: int = 1024,
    c_sources: dict[str, str] | None = None,
) -> str:
    """Render the application skeleton for *system*.

    *c_sources* (node -> C text) enables the golden-software fallbacks;
    the flow passes the exact sources it synthesized.  Without a source
    for a core, its fallback branch reports and continues — but never
    emits a TODO.
    """
    c_sources = c_sources or {}
    lines = [
        "/* Auto-generated application skeleton.",
        " * Replace the buffer setup with real application data. */",
        "#include <stdio.h>",
        "#include <stdint.h>",
        "",
        '#include "dma_api.h"' if system.dmas else "",
    ]
    for edge in system.graph.connects():
        lines.append(f'#include "{edge.node}_accel.h"')
    lines += [
        "",
        "/* Recovery ladder: watchdog -> reset -> retry -> software fallback. */",
        "#define ACCEL_TIMEOUT 10000000u /* watchdog budget per attempt */",
        "#define ACCEL_RETRIES 3",
    ]

    # Golden software fallbacks: the synthesized C itself, renamed.
    golden: set[str] = set()
    for node in system.graph.nodes:
        source = c_sources.get(node.name)
        if source:
            lines += ["", _golden_source(node.name, source).rstrip()]
            golden.add(node.name)
    lines += [
        "",
        "int main(void) {",
    ]

    # DMA devices.
    for i, binding in enumerate(system.dmas):
        lines.append(f'    int dma{i} = openDMA("/dev/axidma{i}");')
    if system.dmas:
        lines.append("")

    # Buffers for every boundary stream.
    buf_id = 0
    buffer_of: dict[int, str] = {}
    for i, binding in enumerate(system.dmas):
        if binding.mm2s_link is not None:
            name = f"in_buf{buf_id}"
            lines.append(f"    static int32_t {name}[{buffer_words}];")
            buffer_of[id(binding.mm2s_link)] = name
            buf_id += 1
        if binding.s2mm_link is not None:
            name = f"out_buf{buf_id}"
            lines.append(f"    static int32_t {name}[{buffer_words}];")
            buffer_of[id(binding.s2mm_link)] = name
            buf_id += 1
    if buffer_of:
        lines.append("")

    # AXI-Lite invocations (the control pattern the API wraps), each
    # under the retry ladder: bounded wait, reset between attempts,
    # golden-software fallback once the budget is spent.
    for edge in system.graph.connects():
        core = edge.node
        result = system.cores[core]
        arg_regs = [
            r
            for r in result.iface.registers
            if r.name not in _CTRL_NAMES and r.direction == "in"
        ]
        has_return = any(r.name == "return" for r in result.iface.registers)
        lines.append(f"    /* invoke {core} (retry, then software fallback) */")
        lines.append("    {")
        if arg_regs:
            lines.append(f"        /* {core} argument registers (from the register map) */")
        for reg in arg_regs:
            lines.append(
                f"        uint32_t {core}_arg_{reg.name} = 0u; "
                f"/* reg {reg.name} @ 0x{reg.offset:02X}, {reg.width} bits */"
            )
        if has_return:
            lines.append(f"        uint32_t {core}_result = 0u;")
        lines.append("        int attempt, ok = 0;")
        lines.append(
            "        for (attempt = 1; attempt <= ACCEL_RETRIES && !ok; ++attempt) {"
        )
        for reg in arg_regs:
            lines.append(f"            {core}_set_{reg.name}({core}_arg_{reg.name});")
        lines.append(f"            {core}_start();")
        lines.append(f"            ok = {core}_wait_timeout(ACCEL_TIMEOUT) == 0;")
        lines.append(f"            if (!ok) {core}_reset();")
        lines.append("        }")
        if has_return:
            lines.append(f"        if (ok) {core}_result = {core}_get_return();")
        lines.append("        if (!ok) {")
        lines.append(
            f'            fprintf(stderr, "{core}: hardware gave up, '
            'falling back to software\\n");'
        )
        if core in golden:
            args_of = {r.name: f"{core}_arg_{r.name}" for r in arg_regs}
            call = _golden_call(core, result, args_of)
            if has_return:
                lines.append(f"            {core}_result = {call};")
            else:
                lines.append(f"            {call};")
        else:
            lines.append(f"            /* no C source was supplied for {core} */")
        lines.append("        }")
        if has_return:
            lines.append(f'        printf("{core} -> %u\\n", {core}_result);')
        lines.append("    }")
        lines.append("")

    # Stream transfers: start every read first, then push the inputs
    # (the S2MM channel must be armed before data can drain into it).
    # A timed-out transfer resets every engine and the whole set is
    # retried; persistent failure falls back to the software pipeline —
    # the golden functions chained along the stream topology.
    if system.dmas:
        port_buf, temps = _port_buffers(system, buffer_of)
        chain = _stream_chain(system)
        lines.append("    {")
        lines.append("        int attempt, ok = 0;")
        lines.append(
            "        for (attempt = 1; attempt <= ACCEL_RETRIES && !ok; ++attempt) {"
        )
        lines.append("            ok = 1;")
        for i, binding in enumerate(system.dmas):
            if binding.s2mm_link is not None:
                buf = buffer_of[id(binding.s2mm_link)]
                lines.append(
                    f"            ok &= readDMA_timeout(dma{i}, {buf}, "
                    f"sizeof {buf}, ACCEL_TIMEOUT) >= 0;   /* arm S2MM */"
                )
        for i, binding in enumerate(system.dmas):
            if binding.mm2s_link is not None:
                buf = buffer_of[id(binding.mm2s_link)]
                dst = binding.mm2s_link.dst
                label = f"{dst[0]}.{dst[1]}" if isinstance(dst, tuple) else "soc"
                lines.append(
                    f"            ok &= writeDMA_timeout(dma{i}, {buf}, "
                    f"sizeof {buf}, ACCEL_TIMEOUT) >= 0;  /* -> {label} */"
                )
        lines.append("            if (!ok) {")
        for i, _ in enumerate(system.dmas):
            lines.append(
                f"                resetDMA(dma{i}); /* clear wedged channels */"
            )
        lines.append("            }")
        lines.append("        }")
        lines.append("        if (!ok) {")
        lines.append(
            '            fprintf(stderr, "DMA pipeline gave up, '
            'falling back to software\\n");'
        )
        if chain and all(node in golden for node in chain):
            for name in temps:
                lines.append(f"            static int32_t {name}[{buffer_words}];")
            lines.append(
                "            /* software pipeline: golden cores chained "
                "along the stream links */"
            )
            for node in chain:
                result = system.cores[node]
                args_of = {
                    pname: f"(int *){port_buf[(node, pname)]}"
                    for pname, _ in result.function.params
                    if (node, pname) in port_buf
                }
                lines.append(
                    f"            {_golden_call(node, result, args_of)};"
                )
        else:
            lines.append(
                "            /* no C sources were supplied for the pipeline */"
            )
        lines.append("        }")
        lines.append("    }")
        lines.append("")
        for i, _ in enumerate(system.dmas):
            lines.append(f"    closeDMA(dma{i});")
    lines += ["    return 0;", "}"]
    return "\n".join(ln for ln in lines if ln is not None) + "\n"
