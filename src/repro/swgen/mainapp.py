"""Generated application skeleton (`main.c`).

Flow step 5 of paper Section II: "the application that runs on the GPP
is updated to take advantage of the new hardware accelerators".  This
module emits the C main that a designer would start from — opening the
DMA devices, invoking each AXI-Lite core through its generated API, and
moving every boundary stream through ``writeDMA``/``readDMA``.
"""

from __future__ import annotations

from repro.soc.integrator import IntegratedSystem

_CTRL_NAMES = {"CTRL", "GIE", "IER", "ISR"}


def generate_main_c(system: IntegratedSystem, *, buffer_words: int = 1024) -> str:
    """Render the application skeleton for *system*."""
    lines = [
        "/* Auto-generated application skeleton.",
        " * Replace the buffer setup with real application data. */",
        "#include <stdio.h>",
        "#include <stdint.h>",
        "",
        '#include "dma_api.h"' if system.dmas else "",
    ]
    for edge in system.graph.connects():
        lines.append(f'#include "{edge.node}_accel.h"')
    lines += ["", "int main(void) {"]

    # DMA devices.
    for i, binding in enumerate(system.dmas):
        lines.append(f'    int dma{i} = openDMA("/dev/axidma{i}");')
    if system.dmas:
        lines.append("")

    # Buffers for every boundary stream.
    buf_id = 0
    buffer_of: dict[int, str] = {}
    for i, binding in enumerate(system.dmas):
        if binding.mm2s_link is not None:
            name = f"in_buf{buf_id}"
            lines.append(f"    static int32_t {name}[{buffer_words}];")
            buffer_of[id(binding.mm2s_link)] = name
            buf_id += 1
        if binding.s2mm_link is not None:
            name = f"out_buf{buf_id}"
            lines.append(f"    static int32_t {name}[{buffer_words}];")
            buffer_of[id(binding.s2mm_link)] = name
            buf_id += 1
    if buffer_of:
        lines.append("")

    # AXI-Lite invocations (the control pattern the API wraps).
    for edge in system.graph.connects():
        core = edge.node
        result = system.cores[core]
        lines.append(f"    /* invoke {core} */")
        for reg in result.iface.registers:
            if reg.name in _CTRL_NAMES or reg.direction != "in":
                continue
            lines.append(f"    {core}_set_{reg.name}(0 /* TODO */);")
        lines.append(f"    {core}_start();")
        lines.append(f"    {core}_wait();")
        if any(r.name == "return" for r in result.iface.registers):
            lines.append(
                f'    printf("{core} -> %u\\n", {core}_get_return());'
            )
        lines.append("")

    # Stream transfers: start every read first, then push the inputs
    # (the S2MM channel must be armed before data can drain into it).
    for i, binding in enumerate(system.dmas):
        if binding.s2mm_link is not None:
            buf = buffer_of[id(binding.s2mm_link)]
            lines.append(
                f"    readDMA(dma{i}, {buf}, sizeof {buf});   /* arm S2MM */"
            )
    for i, binding in enumerate(system.dmas):
        if binding.mm2s_link is not None:
            buf = buffer_of[id(binding.mm2s_link)]
            dst = binding.mm2s_link.dst
            label = f"{dst[0]}.{dst[1]}" if isinstance(dst, tuple) else "soc"
            lines.append(
                f"    writeDMA(dma{i}, {buf}, sizeof {buf});  /* -> {label} */"
            )
    if system.dmas:
        lines.append("")
        for i, _ in enumerate(system.dmas):
            lines.append(f"    closeDMA(dma{i});")
    lines += ["    return 0;", "}"]
    return "\n".join(ln for ln in lines if ln is not None) + "\n"
