"""Boot-file generation.

"The boot file generation process first produces the files needed to
start the board with Linux and then customizes the device-tree"
(Section V).  The output is the SD-card file set for a Zedboard
PetaLinux boot: ``BOOT.BIN`` (FSBL + bitstream + u-boot), ``uImage``
(pre-built kernel), ``devicetree.dtb`` and ``uramdisk.image.gz``.  File
contents are deterministic digests of their inputs, so two builds of the
same design produce byte-identical boot sets.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.soc.integrator import IntegratedSystem
from repro.soc.synthesis import Bitstream
from repro.swgen.devicetree import generate_device_tree
from repro.util.errors import FlowError

#: The pre-compiled artifacts the flow ships (paper: "a pre-compiled
#: version of the PetaLinux Operating System").
PREBUILT_KERNEL_ID = "petalinux-2015.3-zynq-uImage"
PREBUILT_RAMDISK_ID = "petalinux-2015.3-zynq-uramdisk"
PREBUILT_FSBL_ID = "zedboard-fsbl-2015.3"
PREBUILT_UBOOT_ID = "zedboard-u-boot-2015.3"


@dataclass(frozen=True)
class BootFile:
    name: str
    digest: str
    description: str


@dataclass
class BootImage:
    """The SD-card file set."""

    files: dict[str, BootFile] = field(default_factory=dict)
    dts: str = ""

    def file(self, name: str) -> BootFile:
        try:
            return self.files[name]
        except KeyError:
            raise FlowError(f"boot image has no file {name!r}") from None

    def manifest(self) -> str:
        lines = ["SD card contents:"]
        for name in sorted(self.files):
            f = self.files[name]
            lines.append(f"  {name:<22} {f.digest[:12]}  {f.description}")
        return "\n".join(lines)


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for p in parts:
        h.update(p.encode())
        h.update(b"\0")
    return h.hexdigest()


def generate_boot_files(system: IntegratedSystem, bitstream: Bitstream) -> BootImage:
    """Produce the boot file set for *system* + *bitstream*."""
    image = BootImage()
    dts = generate_device_tree(system)
    image.dts = dts
    image.files["BOOT.BIN"] = BootFile(
        "BOOT.BIN",
        _digest(PREBUILT_FSBL_ID, bitstream.digest, PREBUILT_UBOOT_ID),
        "FSBL + PL bitstream + u-boot",
    )
    image.files["uImage"] = BootFile(
        "uImage", _digest(PREBUILT_KERNEL_ID), "pre-built PetaLinux kernel"
    )
    image.files["devicetree.dtb"] = BootFile(
        "devicetree.dtb", _digest(dts), "customized device tree"
    )
    image.files["uramdisk.image.gz"] = BootFile(
        "uramdisk.image.gz",
        _digest(PREBUILT_RAMDISK_ID, "zedboard_axidma.ko"),
        "root fs with the pre-compiled DMA driver",
    )
    return image
