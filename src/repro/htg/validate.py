"""Structural validation of hierarchical task graphs.

Checks performed (raising :class:`~repro.util.errors.HtgError`):

* the top-level precedence graph is acyclic;
* every phase's dataflow graph is acyclic;
* every stream channel references existing actors and ports with the
  correct direction;
* every actor stream port is connected exactly once (dataflow actors have
  point-to-point streams — fan-out must be made explicit with duplicated
  output ports, exactly as the Otsu case study does with
  ``imageOutCH``/``imageOutSEG``);
* phase boundary ports are all bound to a channel.  A boundary *input*
  may feed several actors (each binding becomes its own DMA read of the
  same shared-memory buffer); a boundary *output* has exactly one
  producer.
"""

from __future__ import annotations

from repro.htg.model import HTG, Phase, Task
from repro.util.errors import HtgError


def _check_acyclic(nodes: list[str], edges: list[tuple[str, str]], what: str) -> None:
    indeg = {n: 0 for n in nodes}
    for _, d in edges:
        indeg[d] += 1
    ready = [n for n, k in indeg.items() if k == 0]
    seen = 0
    succ: dict[str, list[str]] = {n: [] for n in nodes}
    for s, d in edges:
        succ[s].append(d)
    while ready:
        n = ready.pop()
        seen += 1
        for d in succ[n]:
            indeg[d] -= 1
            if indeg[d] == 0:
                ready.append(d)
    if seen != len(nodes):
        stuck = sorted(n for n, k in indeg.items() if k > 0)
        raise HtgError(f"cycle detected in {what} involving {stuck}")


def validate_phase(phase: Phase) -> None:
    """Validate one phase's dataflow graph."""
    names = [a.name for a in phase.actors]
    if len(set(names)) != len(names):
        raise HtgError(f"phase {phase.name!r}: duplicate actor names")

    used_in: set[tuple[str, str]] = set()
    used_out: set[tuple[str, str]] = set()
    bound_boundary_in: set[str] = set()
    bound_boundary_out: set[str] = set()

    for ch in phase.channels:
        # Source endpoint.
        if ch.describes_input():
            if ch.src_port not in phase.inputs:
                raise HtgError(
                    f"phase {phase.name!r}: channel reads unknown boundary input {ch.src_port!r}"
                )
            bound_boundary_in.add(ch.src_port)
        else:
            actor = phase.actor(ch.src_actor)
            if ch.src_port not in actor.stream_outputs:
                raise HtgError(
                    f"phase {phase.name!r}: {ch.src_actor!r} has no output port {ch.src_port!r}"
                )
            key = (ch.src_actor, ch.src_port)
            if key in used_out:
                raise HtgError(f"phase {phase.name!r}: output {key} connected twice")
            used_out.add(key)

        # Destination endpoint.
        if ch.describes_output():
            if ch.dst_port not in phase.outputs:
                raise HtgError(
                    f"phase {phase.name!r}: channel writes unknown boundary output {ch.dst_port!r}"
                )
            if ch.dst_port in bound_boundary_out:
                raise HtgError(
                    f"phase {phase.name!r}: boundary output {ch.dst_port!r} bound twice"
                )
            bound_boundary_out.add(ch.dst_port)
        else:
            actor = phase.actor(ch.dst_actor)
            if ch.dst_port not in actor.stream_inputs:
                raise HtgError(
                    f"phase {phase.name!r}: {ch.dst_actor!r} has no input port {ch.dst_port!r}"
                )
            key = (ch.dst_actor, ch.dst_port)
            if key in used_in:
                raise HtgError(f"phase {phase.name!r}: input {key} connected twice")
            used_in.add(key)

    # Every actor port must be connected exactly once.
    for a in phase.actors:
        for p in a.stream_inputs:
            if (a.name, p) not in used_in:
                raise HtgError(f"phase {phase.name!r}: input {(a.name, p)} is unconnected")
        for p in a.stream_outputs:
            if (a.name, p) not in used_out:
                raise HtgError(f"phase {phase.name!r}: output {(a.name, p)} is unconnected")
    for p in phase.inputs:
        if p not in bound_boundary_in:
            raise HtgError(f"phase {phase.name!r}: boundary input {p!r} is unconnected")
    for p in phase.outputs:
        if p not in bound_boundary_out:
            raise HtgError(f"phase {phase.name!r}: boundary output {p!r} is unconnected")

    # Acyclicity of the internal dataflow.
    internal = [
        (c.src_actor, c.dst_actor) for c in phase.internal_channels() if c.src_actor != c.dst_actor
    ]
    for c in phase.internal_channels():
        if c.src_actor == c.dst_actor:
            raise HtgError(f"phase {phase.name!r}: self-loop on actor {c.src_actor!r}")
    # Deduplicate parallel channels for the cycle check.
    _check_acyclic(names, sorted(set(internal)), f"phase {phase.name!r}")


def validate_htg(htg: HTG) -> None:
    """Validate the whole two-level graph; raises :class:`HtgError`."""
    if not htg.nodes:
        raise HtgError(f"graph {htg.name!r} has no nodes")
    _check_acyclic(list(htg.nodes), htg.edges, f"graph {htg.name!r}")
    for node in htg.nodes.values():
        if isinstance(node, Phase):
            validate_phase(node)
        elif isinstance(node, Task):
            pass  # Tasks are validated at construction time.
        else:  # pragma: no cover - defensive
            raise HtgError(f"unknown node type {type(node).__name__}")
