"""Data model for the two-level Hierarchical Task Graph.

Terminology (paper Section II-A):

* **Task** — a simple top-level node.  When mapped to hardware it becomes
  one accelerator with an AXI-Lite control interface; data moves through
  shared memory (DRAM).
* **Phase** — a top-level node that is internally a dataflow graph of
  **actors** exchanging data over stream channels; a hardware phase
  becomes a set of accelerators linked by AXI-Stream, with DMA cores at
  the boundary to/from the processing system.
* Top-level **edges** are pure precedence constraints: a node runs only
  after all its predecessors completed and stored results in shared
  memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import HtgError
from repro.util.ids import is_identifier


def _check_name(name: str, what: str) -> str:
    if not is_identifier(name):
        raise HtgError(f"{what} name {name!r} is not a legal identifier")
    return name


@dataclass(frozen=True)
class Task:
    """A simple top-level task.

    Parameters
    ----------
    name:
        Unique node name; becomes the accelerator/core name if mapped to HW.
    inputs, outputs:
        Named data items read from / written to shared memory.
    c_source:
        Synthesizable C source implementing the task (required to map the
        task to hardware).
    sw_cycles:
        Estimated cycles when executed on the GPP (cost-model input).
    io:
        True for host-I/O tasks (e.g. ``readImage``/``writeImage``) which
        can never be mapped to hardware.
    """

    name: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    c_source: str | None = None
    sw_cycles: int = 0
    io: bool = False

    def __post_init__(self) -> None:
        _check_name(self.name, "task")
        for p in (*self.inputs, *self.outputs):
            _check_name(p, "port")
        dup = set(self.inputs) & set(self.outputs)
        if dup:
            raise HtgError(f"task {self.name!r}: ports both input and output: {sorted(dup)}")
        if self.sw_cycles < 0:
            raise HtgError(f"task {self.name!r}: negative sw_cycles")

    @property
    def ports(self) -> tuple[str, ...]:
        return self.inputs + self.outputs


@dataclass(frozen=True)
class Actor:
    """A dataflow actor inside a phase.

    Actors fire as soon as the minimum amount of data is available on
    their input streams and repeat until the whole stream is consumed.
    """

    name: str
    stream_inputs: tuple[str, ...] = ()
    stream_outputs: tuple[str, ...] = ()
    c_source: str | None = None
    sw_cycles: int = 0

    def __post_init__(self) -> None:
        _check_name(self.name, "actor")
        for p in (*self.stream_inputs, *self.stream_outputs):
            _check_name(p, "stream port")
        dup = set(self.stream_inputs) & set(self.stream_outputs)
        if dup:
            raise HtgError(f"actor {self.name!r}: ports both input and output: {sorted(dup)}")

    @property
    def ports(self) -> tuple[str, ...]:
        return self.stream_inputs + self.stream_outputs


@dataclass(frozen=True)
class StreamChannel:
    """A stream edge inside a phase: ``(src actor, out port) -> (dst actor, in port)``.

    The special endpoint name :data:`Phase.BOUNDARY` (``"@soc"``) denotes
    the phase boundary, i.e. data entering from / leaving to the
    processing system through DMA.
    """

    src_actor: str
    src_port: str
    dst_actor: str
    dst_port: str

    def describes_input(self) -> bool:
        return self.src_actor == Phase.BOUNDARY

    def describes_output(self) -> bool:
        return self.dst_actor == Phase.BOUNDARY


@dataclass
class Phase:
    """A top-level node holding a dataflow graph of actors.

    The whole phase is mapped either to hardware or to software during
    partitioning; partitioning never splits a phase.
    """

    BOUNDARY = "@soc"

    name: str
    actors: list[Actor] = field(default_factory=list)
    channels: list[StreamChannel] = field(default_factory=list)
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_name(self.name, "phase")

    def actor(self, name: str) -> Actor:
        for a in self.actors:
            if a.name == name:
                return a
        raise HtgError(f"phase {self.name!r}: no actor named {name!r}")

    def has_actor(self, name: str) -> bool:
        return any(a.name == name for a in self.actors)

    @property
    def ports(self) -> tuple[str, ...]:
        return self.inputs + self.outputs

    def internal_channels(self) -> list[StreamChannel]:
        return [c for c in self.channels if not c.describes_input() and not c.describes_output()]

    def boundary_inputs(self) -> list[StreamChannel]:
        return [c for c in self.channels if c.describes_input()]

    def boundary_outputs(self) -> list[StreamChannel]:
        return [c for c in self.channels if c.describes_output()]


@dataclass
class HTG:
    """The top-level hierarchical task graph.

    ``nodes`` maps node name to :class:`Task` or :class:`Phase`;
    ``edges`` is a list of ``(producer, consumer)`` precedence pairs.
    """

    name: str
    nodes: dict[str, Task | Phase] = field(default_factory=dict)
    edges: list[tuple[str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        _check_name(self.name, "graph")

    # -- construction ---------------------------------------------------
    def add(self, node: Task | Phase) -> Task | Phase:
        if node.name in self.nodes:
            raise HtgError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def add_edge(self, src: str, dst: str) -> None:
        for end in (src, dst):
            if end not in self.nodes:
                raise HtgError(f"edge endpoint {end!r} is not a node of {self.name!r}")
        if src == dst:
            raise HtgError(f"self-edge on node {src!r}")
        if (src, dst) in self.edges:
            raise HtgError(f"duplicate edge {src!r} -> {dst!r}")
        self.edges.append((src, dst))

    # -- queries ----------------------------------------------------------
    def node(self, name: str) -> Task | Phase:
        try:
            return self.nodes[name]
        except KeyError:
            raise HtgError(f"no node named {name!r} in graph {self.name!r}") from None

    def tasks(self) -> list[Task]:
        return [n for n in self.nodes.values() if isinstance(n, Task)]

    def phases(self) -> list[Phase]:
        return [n for n in self.nodes.values() if isinstance(n, Phase)]

    def predecessors(self, name: str) -> list[str]:
        return [s for s, d in self.edges if d == name]

    def successors(self, name: str) -> list[str]:
        return [d for s, d in self.edges if s == name]

    def sources(self) -> list[str]:
        """Nodes with no predecessors."""
        dsts = {d for _, d in self.edges}
        return [n for n in self.nodes if n not in dsts]

    def sinks(self) -> list[str]:
        """Nodes with no successors."""
        srcs = {s for s, _ in self.edges}
        return [n for n in self.nodes if n not in srcs]
