"""Execution-order analysis for hierarchical task graphs.

The paper's top-level semantics is simple: a node executes only when all
its predecessors completed and stored their results in shared memory.
Within a phase, actors fire as soon as enough stream data is available;
for scheduling purposes a topological firing order suffices.
"""

from __future__ import annotations

from repro.htg.model import HTG, Phase, Task
from repro.util.errors import HtgError


def topological_order(htg: HTG) -> list[str]:
    """Return a deterministic topological order of top-level node names.

    Ties are broken by insertion order so repeated calls are stable.
    """
    order: list[str] = []
    indeg = {n: 0 for n in htg.nodes}
    for _, d in htg.edges:
        indeg[d] += 1
    ready = [n for n in htg.nodes if indeg[n] == 0]
    while ready:
        n = ready.pop(0)
        order.append(n)
        for d in htg.successors(n):
            indeg[d] -= 1
            if indeg[d] == 0:
                ready.append(d)
    if len(order) != len(htg.nodes):
        raise HtgError(f"graph {htg.name!r} has a cycle; no topological order exists")
    return order


def phase_firing_order(phase: Phase) -> list[str]:
    """Topological order of actors within a phase (deterministic)."""
    names = [a.name for a in phase.actors]
    indeg = {n: 0 for n in names}
    succ: dict[str, list[str]] = {n: [] for n in names}
    for ch in sorted(set((c.src_actor, c.dst_actor) for c in phase.internal_channels())):
        s, d = ch
        succ[s].append(d)
        indeg[d] += 1
    ready = [n for n in names if indeg[n] == 0]
    order: list[str] = []
    while ready:
        n = ready.pop(0)
        order.append(n)
        for d in succ[n]:
            indeg[d] -= 1
            if indeg[d] == 0:
                ready.append(d)
    if len(order) != len(names):
        raise HtgError(f"phase {phase.name!r} has a dataflow cycle")
    return order


def _node_cost(node: Task | Phase, cost: dict[str, int] | None) -> int:
    if cost is not None and node.name in cost:
        return cost[node.name]
    if isinstance(node, Task):
        return node.sw_cycles
    return sum(a.sw_cycles for a in node.actors)


def makespan(htg: HTG, cost: dict[str, int] | None = None) -> int:
    """Critical-path length of the top-level graph under *cost*.

    *cost* overrides the per-node cost (cycles); nodes not present fall
    back to their declared ``sw_cycles``.  Nodes with no dependence may
    overlap, so the result is the longest path, not the sum.
    """
    finish: dict[str, int] = {}
    for name in topological_order(htg):
        node = htg.node(name)
        start = max((finish[p] for p in htg.predecessors(name)), default=0)
        finish[name] = start + _node_cost(node, cost)
    return max(finish.values(), default=0)
