"""Graph analytics over hierarchical task graphs (networkx-backed).

Optional helpers the DSE and reporting layers use: critical path,
parallelism profile, and acceleration-candidate ranking.  These are the
analyses the paper defers to external DSE tools (Section II-C references
[6], [8], [12]); having them in-library supports the partitioning
heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.htg.model import HTG, Phase, Task
from repro.htg.schedule import topological_order
from repro.util.errors import HtgError


def to_networkx(htg: HTG, cost: dict[str, int] | None = None) -> "nx.DiGraph":
    """The top-level precedence DAG as a networkx DiGraph.

    Node attribute ``cost`` carries the per-node cycle cost (overridable
    via *cost*), ``kind`` is ``task``/``phase``/``io``.
    """
    g = nx.DiGraph(name=htg.name)
    for name, node in htg.nodes.items():
        if isinstance(node, Task):
            c = node.sw_cycles
            kind = "io" if node.io else "task"
        else:
            c = sum(a.sw_cycles for a in node.actors)
            kind = "phase"
        if cost is not None and name in cost:
            c = cost[name]
        g.add_node(name, cost=c, kind=kind)
    g.add_edges_from(htg.edges)
    return g


@dataclass(frozen=True)
class CriticalPath:
    nodes: tuple[str, ...]
    length: int  # total cycles along the path


def critical_path(htg: HTG, cost: dict[str, int] | None = None) -> CriticalPath:
    """Longest (cost-weighted) path through the top-level DAG."""
    g = to_networkx(htg, cost)
    if not nx.is_directed_acyclic_graph(g):
        raise HtgError(f"graph {htg.name!r} is not acyclic")
    best_end: dict[str, tuple[int, list[str]]] = {}
    for name in topological_order(htg):
        c = g.nodes[name]["cost"]
        preds = list(g.predecessors(name))
        if preds:
            plen, ppath = max((best_end[p] for p in preds), key=lambda t: t[0])
            best_end[name] = (plen + c, ppath + [name])
        else:
            best_end[name] = (c, [name])
    length, path = max(best_end.values(), key=lambda t: t[0])
    return CriticalPath(tuple(path), length)


def parallelism_profile(htg: HTG) -> dict[int, int]:
    """Nodes per precedence level (how wide the graph can execute)."""
    g = to_networkx(htg)
    level: dict[str, int] = {}
    for name in topological_order(htg):
        preds = list(g.predecessors(name))
        level[name] = 1 + max((level[p] for p in preds), default=-1)
    profile: dict[int, int] = {}
    for lv in level.values():
        profile[lv] = profile.get(lv, 0) + 1
    return profile


def acceleration_candidates(
    htg: HTG, cost: dict[str, int] | None = None
) -> list[tuple[str, float]]:
    """Rank accelerable nodes by criticality × cost share.

    A node is a candidate if it is a non-I/O task with a C source or a
    phase.  The score is its cost share of the graph total, doubled when
    it lies on the critical path — the standard what-to-accelerate-first
    signal a DSE tool starts from.
    """
    g = to_networkx(htg, cost)
    cp = set(critical_path(htg, cost).nodes)
    total = sum(d["cost"] for _, d in g.nodes(data=True)) or 1
    ranked: list[tuple[str, float]] = []
    for name, data in g.nodes(data=True):
        node = htg.node(name)
        accelerable = isinstance(node, Phase) or (
            isinstance(node, Task) and not node.io and node.c_source is not None
        )
        if not accelerable:
            continue
        score = data["cost"] / total
        if name in cp:
            score *= 2.0
        ranked.append((name, score))
    ranked.sort(key=lambda t: (-t[1], t[0]))
    return ranked
