"""Hardware/software partitioning of a hierarchical task graph.

The paper performs partitioning manually (Section II-C); a partition is
therefore a first-class, user-supplied object.  The :mod:`repro.dse`
package enumerates partitions automatically as the paper's declared
future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.htg.model import HTG, Phase, Task
from repro.util.errors import HtgError


class Mapping(Enum):
    """Where a top-level node executes."""

    SW = "sw"
    HW = "hw"


@dataclass
class Partition:
    """Assignment of every top-level node to hardware or software.

    Phases are mapped as a whole (the paper partitions only at the top
    level).  I/O tasks (``Task.io``) must stay in software.
    """

    assignment: dict[str, Mapping] = field(default_factory=dict)

    def assign(self, node: str, where: Mapping | str) -> "Partition":
        self.assignment[node] = Mapping(where)
        return self

    def mapping(self, node: str) -> Mapping:
        try:
            return self.assignment[node]
        except KeyError:
            raise HtgError(f"partition does not cover node {node!r}") from None

    def is_hw(self, node: str) -> bool:
        return self.mapping(node) is Mapping.HW

    def hw_nodes(self) -> list[str]:
        return sorted(n for n, m in self.assignment.items() if m is Mapping.HW)

    def sw_nodes(self) -> list[str]:
        return sorted(n for n, m in self.assignment.items() if m is Mapping.SW)

    # -- validation -------------------------------------------------------
    def validate(self, htg: HTG) -> None:
        """Check the partition is total, consistent and synthesizable."""
        for name in htg.nodes:
            if name not in self.assignment:
                raise HtgError(f"partition does not cover node {name!r}")
        for name in self.assignment:
            if name not in htg.nodes:
                raise HtgError(f"partition names unknown node {name!r}")
        for name, where in self.assignment.items():
            node = htg.node(name)
            if where is not Mapping.HW:
                continue
            if isinstance(node, Task):
                if node.io:
                    raise HtgError(f"I/O task {name!r} cannot be mapped to hardware")
                if node.c_source is None:
                    raise HtgError(f"task {name!r} mapped to HW but has no C source")
            elif isinstance(node, Phase):
                for actor in node.actors:
                    if actor.c_source is None:
                        raise HtgError(
                            f"phase {name!r} mapped to HW but actor "
                            f"{actor.name!r} has no C source"
                        )

    @classmethod
    def all_software(cls, htg: HTG) -> "Partition":
        """The trivial partition: everything runs on the GPP."""
        return cls({name: Mapping.SW for name in htg.nodes})

    @classmethod
    def from_hw_set(cls, htg: HTG, hw: set[str] | frozenset[str]) -> "Partition":
        """Build a partition mapping exactly the nodes in *hw* to hardware."""
        unknown = set(hw) - set(htg.nodes)
        if unknown:
            raise HtgError(f"hw set names unknown nodes: {sorted(unknown)}")
        return cls(
            {name: (Mapping.HW if name in hw else Mapping.SW) for name in htg.nodes}
        )
