"""JSON-friendly (de)serialization of hierarchical task graphs.

``htg_to_dict``/``htg_from_dict`` round-trip every field of the model so
applications can be stored alongside their C sources in a workspace.
"""

from __future__ import annotations

from typing import Any

from repro.htg.model import HTG, Actor, Phase, StreamChannel, Task
from repro.util.errors import HtgError


def _task_to_dict(t: Task) -> dict[str, Any]:
    return {
        "kind": "task",
        "name": t.name,
        "inputs": list(t.inputs),
        "outputs": list(t.outputs),
        "c_source": t.c_source,
        "sw_cycles": t.sw_cycles,
        "io": t.io,
    }


def _phase_to_dict(p: Phase) -> dict[str, Any]:
    return {
        "kind": "phase",
        "name": p.name,
        "inputs": list(p.inputs),
        "outputs": list(p.outputs),
        "actors": [
            {
                "name": a.name,
                "stream_inputs": list(a.stream_inputs),
                "stream_outputs": list(a.stream_outputs),
                "c_source": a.c_source,
                "sw_cycles": a.sw_cycles,
            }
            for a in p.actors
        ],
        "channels": [
            [c.src_actor, c.src_port, c.dst_actor, c.dst_port] for c in p.channels
        ],
    }


def htg_to_dict(htg: HTG) -> dict[str, Any]:
    """Serialize *htg* to plain dict/list/str/int values."""
    nodes = []
    for node in htg.nodes.values():
        if isinstance(node, Task):
            nodes.append(_task_to_dict(node))
        else:
            nodes.append(_phase_to_dict(node))
    return {"name": htg.name, "nodes": nodes, "edges": [list(e) for e in htg.edges]}


def htg_from_dict(data: dict[str, Any]) -> HTG:
    """Rebuild an :class:`HTG` from :func:`htg_to_dict` output."""
    htg = HTG(data["name"])
    for nd in data["nodes"]:
        kind = nd.get("kind")
        if kind == "task":
            htg.add(
                Task(
                    name=nd["name"],
                    inputs=tuple(nd.get("inputs", ())),
                    outputs=tuple(nd.get("outputs", ())),
                    c_source=nd.get("c_source"),
                    sw_cycles=nd.get("sw_cycles", 0),
                    io=nd.get("io", False),
                )
            )
        elif kind == "phase":
            actors = [
                Actor(
                    name=a["name"],
                    stream_inputs=tuple(a.get("stream_inputs", ())),
                    stream_outputs=tuple(a.get("stream_outputs", ())),
                    c_source=a.get("c_source"),
                    sw_cycles=a.get("sw_cycles", 0),
                )
                for a in nd.get("actors", ())
            ]
            channels = [StreamChannel(*c) for c in nd.get("channels", ())]
            htg.add(
                Phase(
                    name=nd["name"],
                    actors=actors,
                    channels=channels,
                    inputs=tuple(nd.get("inputs", ())),
                    outputs=tuple(nd.get("outputs", ())),
                )
            )
        else:
            raise HtgError(f"unknown node kind {kind!r}")
    for s, d in data.get("edges", ()):
        htg.add_edge(s, d)
    return htg
