"""Two-level Hierarchical Task Graph (HTG) application model.

This is the input representation of the paper's flow (Section II-A,
Fig. 1): the top level is a precedence DAG whose nodes are either simple
*tasks* or *phases*; each phase is a dataflow graph of *actors* connected
by stream channels.  Hardware/software partitioning happens only at the
top level; a phase is mapped entirely to hardware or entirely to
software.
"""

from repro.htg.analysis import (
    acceleration_candidates,
    critical_path,
    parallelism_profile,
    to_networkx,
)
from repro.htg.model import HTG, Actor, Phase, StreamChannel, Task
from repro.htg.partition import Mapping, Partition
from repro.htg.schedule import makespan, phase_firing_order, topological_order
from repro.htg.serialize import htg_from_dict, htg_to_dict
from repro.htg.validate import validate_htg

__all__ = [
    "HTG",
    "Actor",
    "Mapping",
    "Partition",
    "Phase",
    "StreamChannel",
    "Task",
    "acceleration_candidates",
    "critical_path",
    "htg_from_dict",
    "htg_to_dict",
    "makespan",
    "parallelism_profile",
    "phase_firing_order",
    "to_networkx",
    "topological_order",
    "validate_htg",
]
