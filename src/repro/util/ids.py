"""Identifier validation and unique-name registries.

Node and port names flow from the DSL into generated tcl, Verilog, C and
device-tree text, so they must stay within the intersection of all those
languages' identifier rules: ``[A-Za-z_][A-Za-z0-9_]*``.
"""

from __future__ import annotations

import re

from repro.util.errors import ReproError

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def is_identifier(name: str) -> bool:
    """Return True if *name* is a legal cross-language identifier."""
    return bool(_IDENT_RE.match(name))


def sanitize_identifier(name: str, *, fallback: str = "x") -> str:
    """Rewrite *name* into a legal identifier.

    Illegal characters become underscores; a leading digit gets an
    underscore prefix; an empty result falls back to *fallback*.
    """
    out = re.sub(r"[^A-Za-z0-9_]", "_", name)
    if not out:
        out = fallback
    if out[0].isdigit():
        out = "_" + out
    return out


class NameRegistry:
    """Allocates names unique within one namespace.

    ``register`` claims an exact name (raising on collision) while
    ``fresh`` derives an unused name from a stem by appending ``_0``,
    ``_1``, ... as needed.
    """

    def __init__(self) -> None:
        self._used: set[str] = set()

    def __contains__(self, name: str) -> bool:
        return name in self._used

    def __len__(self) -> int:
        return len(self._used)

    def register(self, name: str) -> str:
        if not is_identifier(name):
            raise ReproError(f"illegal identifier: {name!r}")
        if name in self._used:
            raise ReproError(f"duplicate name: {name!r}")
        self._used.add(name)
        return name

    def fresh(self, stem: str) -> str:
        stem = sanitize_identifier(stem)
        if stem not in self._used:
            self._used.add(stem)
            return stem
        i = 0
        while f"{stem}_{i}" in self._used:
            i += 1
        name = f"{stem}_{i}"
        self._used.add(name)
        return name
