"""Shared utilities: error hierarchy, identifier handling, text helpers.

These are deliberately dependency-free; every other subpackage of
:mod:`repro` may import from here.
"""

from repro.util.errors import (
    AddressMapError,
    CSemanticError,
    CSyntaxError,
    DrcError,
    DslError,
    DslSyntaxError,
    DslValidationError,
    FlowError,
    HlsError,
    HtgError,
    IntegrationError,
    ReproError,
    ScheduleError,
    SimError,
    TclError,
)
from repro.util.ids import NameRegistry, is_identifier, sanitize_identifier
from repro.util.text import count_chars, count_lines, format_table, indent_block

__all__ = [
    "AddressMapError",
    "CSemanticError",
    "CSyntaxError",
    "DrcError",
    "DslError",
    "DslSyntaxError",
    "DslValidationError",
    "FlowError",
    "HlsError",
    "HtgError",
    "IntegrationError",
    "NameRegistry",
    "ReproError",
    "ScheduleError",
    "SimError",
    "TclError",
    "count_chars",
    "count_lines",
    "format_table",
    "indent_block",
    "is_identifier",
    "sanitize_identifier",
]
