"""Exception hierarchy for the whole library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch one type at the flow boundary.  Subpackages raise the
most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class SourceLocation:
    """A (line, column) position inside a source text, 1-based.

    Used by both the DSL parser and the mini-C frontend so error messages
    can point at the offending token.
    """

    __slots__ = ("line", "column", "filename")

    def __init__(self, line: int, column: int, filename: str = "<input>") -> None:
        self.line = line
        self.column = column
        self.filename = filename

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __repr__(self) -> str:
        return f"SourceLocation({self.line}, {self.column}, {self.filename!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.line, self.column, self.filename) == (
            other.line,
            other.column,
            other.filename,
        )

    def __hash__(self) -> int:
        return hash((self.line, self.column, self.filename))


class LocatedError(ReproError):
    """An error that carries an optional :class:`SourceLocation`."""

    def __init__(self, message: str, location: SourceLocation | None = None) -> None:
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


# --- DSL ---------------------------------------------------------------
class DslError(LocatedError):
    """Base class for task-graph DSL errors."""


class DslSyntaxError(DslError):
    """The textual DSL did not match the Listing-1 grammar."""


class DslValidationError(DslError):
    """The DSL parsed but describes an inconsistent system."""


# --- HTG ---------------------------------------------------------------
class HtgError(ReproError):
    """Hierarchical task graph model violation (cycles, bad references)."""


# --- HLS ---------------------------------------------------------------
class HlsError(LocatedError):
    """Base class for high-level-synthesis errors."""


class CSyntaxError(HlsError):
    """The C source did not parse."""


class CSemanticError(HlsError):
    """The C source parsed but is not synthesizable / not well-typed."""


class ScheduleError(HlsError):
    """Operation scheduling failed (infeasible constraints)."""


# --- SoC integration ----------------------------------------------------
class SocError(ReproError):
    """Base class for system-integration errors."""


class IntegrationError(SocError):
    """Block-design construction failed (unknown ports, bad connection)."""


class AddressMapError(SocError):
    """AXI address allocation failed (overlap, exhaustion, alignment)."""


class DrcError(SocError):
    """A design-rule check failed on the final block design."""


# --- tcl ----------------------------------------------------------------
class TclError(ReproError):
    """Generation or interpretation of tcl scripts failed."""


# --- simulation ---------------------------------------------------------
class SimError(ReproError):
    """The SoC simulator hit an inconsistent state (deadlock, bad access)."""


class SimProcessError(SimError):
    """A simulation process raised; carries the process name and cycle.

    Raised out of :meth:`Environment.run` so a failure inside any
    generator process surfaces as a structured, cycle-stamped diagnostic
    instead of silently aborting mid-simulation.  The original exception
    is chained (``__cause__``) and kept on :attr:`original`.
    """

    def __init__(self, message: str, *, process: str = "?", cycle: int = 0,
                 original: BaseException | None = None) -> None:
        super().__init__(message)
        self.process = process
        self.cycle = cycle
        self.original = original


class SimTimeoutError(SimError):
    """A watchdog deadline expired before the guarded work completed."""

    def __init__(self, message: str, *, cycle: int = 0, budget: int = 0) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.budget = budget


class SimDeadlockError(SimError):
    """The event queue drained while processes remained blocked.

    Carries the blocked process names and the FIFO occupancies at the
    moment of the deadlock so pipelines can be diagnosed structurally.
    """

    def __init__(self, message: str, *, cycle: int = 0,
                 blocked: tuple[str, ...] = (),
                 fifo_occupancy: dict[str, tuple[int, int]] | None = None) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.blocked = blocked
        self.fifo_occupancy = dict(fifo_occupancy or {})


class FaultInjectionError(SimError):
    """An injected fault surfaced as an observable hardware error
    (AXI SLVERR/DECERR, failed end-to-end integrity check, ...)."""

    def __init__(self, message: str, *, cycle: int = 0, fault: object = None) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.fault = fault


# --- flow ---------------------------------------------------------------
class FlowError(ReproError):
    """End-to-end flow orchestration failed."""


class FlowInterrupted(FlowError):
    """The flow process was killed at a crash-point (journal boundary).

    Raised by :func:`repro.flow.crashpoints.crashpoint` when an armed
    :class:`~repro.flow.crashpoints.CrashPlan` fires.  Carries the
    journal *step* the flow died in (e.g. ``hls:histogram:start``) and,
    for per-core steps, the *core* name, so the crash-injection harness
    can assert it killed the flow exactly where it armed the kill.
    """

    def __init__(self, message: str, *, step: str = "?", core: str | None = None) -> None:
        super().__init__(message)
        self.step = step
        self.core = core


class CacheCorrupted(FlowError):
    """A build-cache entry failed its integrity check.

    The cache itself never raises this on the read path — a bad entry is
    quarantined and treated as a miss, so the flow transparently
    rebuilds.  ``repro cachecheck --strict`` raises it to fail CI when a
    scrub found corruption.  Carries the entry *key* and the quarantine
    *path* the bad bytes were moved to.
    """

    def __init__(self, message: str, *, key: str = "?", path: str | None = None) -> None:
        super().__init__(message)
        self.key = key
        self.path = path


class CacheLockTimeout(FlowError):
    """The cross-process build-cache lock could not be acquired in time."""

    def __init__(self, message: str, *, path: str | None = None, timeout_s: float = 0.0) -> None:
        super().__init__(message)
        self.path = path
        self.timeout_s = timeout_s


class WorkspaceTorn(FlowError):
    """A materialized workspace is incomplete or does not match its manifest.

    Raised by :func:`repro.flow.workspace.verify_workspace` in strict
    mode; carries the workspace *root*, the manifest-listed files that
    are *missing* and those whose content digest *mismatched*.
    """

    def __init__(
        self,
        message: str,
        *,
        root: str | None = None,
        missing: tuple[str, ...] = (),
        mismatched: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        self.root = root
        self.missing = missing
        self.mismatched = mismatched
