"""Plain-text helpers: indentation, ASCII tables, code-size metrics.

The code-size helpers back the Discussion-section comparison between the
DSL source and the generated tcl (lines and characters).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def indent_block(text: str, levels: int = 1, *, width: int = 4) -> str:
    """Indent every non-empty line of *text* by ``levels * width`` spaces."""
    pad = " " * (levels * width)
    return "\n".join(pad + line if line.strip() else line for line in text.splitlines())


def count_lines(text: str, *, skip_blank: bool = True) -> int:
    """Count lines of *text*; blank lines are skipped by default.

    This mirrors how the paper counts "lines of code" when comparing the
    Scala task-graph source with the generated tcl script.
    """
    lines = text.splitlines()
    if skip_blank:
        lines = [ln for ln in lines if ln.strip()]
    return len(lines)


def count_chars(text: str, *, skip_whitespace: bool = True) -> int:
    """Count characters of *text*, ignoring whitespace by default.

    Ignoring whitespace makes the metric robust to formatting choices,
    matching the paper's "actual characters that have to be written".
    """
    if skip_whitespace:
        return sum(1 for c in text if not c.isspace())
    return len(text)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a minimal ASCII table (used by reports and benchmarks)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    out: list[str] = []
    if title:
        out.append(title)
    out.append(fmt(list(headers)))
    out.append(sep)
    out.extend(fmt(row) for row in str_rows)
    return "\n".join(out)
