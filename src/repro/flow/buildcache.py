"""Persistent content-addressed artifact cache for the build engine.

The paper reuses synthesized cores *by name* ("the generation of the
hardware cores is done only once for each function", Section VI-B) —
which silently conflates two cores that share a function name but differ
in source or directives.  This module replaces the name with a digest of
everything the synthesis result actually depends on:

* the C source text of the core,
* the rendered interface/optimization directives (order preserved —
  Vivado HLS applies them in file order),
* the tcl backend version,
* an engine version constant (bumped on incompatible pipeline changes,
  so stale entries become unreachable rather than wrong).

Entries are pickled payloads stored under ``<dir>/objects/<k[:2]>/<key>``
behind a SHA-256 integrity header; a corrupted or truncated entry is
detected on read, counted, **quarantined** (moved to
``<dir>/quarantine/`` with a structured :class:`CacheIntegrityWarning`,
so the bad bytes stay available for a post-mortem) and treated as a
miss — the core is then rebuilt, never served from the bad bytes.
Writes go through a temp-file + :func:`os.replace` so a crashed build
leaves no partial entry.

The cache is safe to share between serial and parallel flows *and
between concurrent processes*: an entry is written only after its
synthesis completed successfully, and every mutating operation (store,
LRU eviction, quarantine, scrub) holds a cross-process ``flock`` on
``<dir>/lock`` (bounded wait — :class:`~repro.util.errors.CacheLockTimeout`
after *lock_timeout_s*).  Reads stay lock-free: they verify the
integrity header and fall back to a rebuild if a concurrent eviction
snatched the file mid-read, so no reader can ever observe a torn entry.
:meth:`BuildCache.scrub` walks every entry, quarantines the corrupt
ones and reports — the engine behind ``repro cachecheck``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.events import BUS as _BUS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.util.errors import CacheLockTimeout

try:  # posix; on platforms without fcntl the lock degrades to a no-op
    import fcntl
except ImportError:  # pragma: no cover - windows fallback
    fcntl = None  # type: ignore[assignment]

#: Version of the HLS engine + artifact layout baked into every key.
#: Bumping it invalidates the whole cache without deleting any file.
ENGINE_VERSION = "1"

#: File header: magic line, then the payload digest, then the payload.
_MAGIC = b"repro-buildcache/1\n"


def cache_key(
    name: str,
    source: str,
    directives_tcl: str,
    backend_version: str,
    *,
    engine_version: str = ENGINE_VERSION,
) -> str:
    """Content digest identifying one core build.

    Two builds share a key iff the HLS engine would produce bit-identical
    artifacts for both; the function *name* participates because it is
    the top symbol and appears in every generated artifact.
    """
    h = hashlib.sha256()
    for part in (engine_version, name, source, directives_tcl, backend_version):
        data = part.encode()
        # Length-prefix every field so no concatenation is ambiguous.
        h.update(len(data).to_bytes(8, "little"))
        h.update(data)
    return h.hexdigest()


class CacheIntegrityWarning(UserWarning):
    """A cache entry failed its integrity check and was quarantined."""


class FileLock:
    """Reentrant, cross-process advisory lock on one path (``flock``).

    One instance guards one :class:`BuildCache`; re-acquiring from the
    same instance (e.g. ``put`` → ``_evict``) just bumps a depth
    counter, while a second process — or a second instance in this
    process — contends on the OS lock.  Acquisition polls with a
    *timeout_s* bound and raises :class:`CacheLockTimeout` instead of
    hanging a build forever on a wedged peer.
    """

    def __init__(self, path: Path, timeout_s: float = 10.0) -> None:
        self.path = path
        self.timeout_s = timeout_s
        self._fh = None
        self._depth = 0

    def acquire(self) -> None:
        if self._depth:
            self._depth += 1
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "a+")
        if fcntl is not None:
            deadline = time.monotonic() + self.timeout_s
            while True:
                try:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        fh.close()
                        raise CacheLockTimeout(
                            f"could not lock build cache at {self.path} "
                            f"within {self.timeout_s:g} s",
                            path=str(self.path),
                            timeout_s=self.timeout_s,
                        ) from None
                    time.sleep(0.02)
        self._fh = fh
        self._depth = 1

    def release(self) -> None:
        if not self._depth:
            return
        self._depth -= 1
        if self._depth == 0 and self._fh is not None:
            if fcntl is not None:
                fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


@dataclass
class CacheStats:
    """Counters for one :class:`BuildCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0
    #: Namespaced lookups served by an object another tenant stored —
    #: the cross-tenant content dedup the shared store exists for.
    dedup_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "dedup_hits": self.dedup_hits,
        }


@dataclass
class ScrubReport:
    """What one :meth:`BuildCache.scrub` pass found and did."""

    checked: int = 0
    ok: int = 0
    quarantined: list[str] = field(default_factory=list)
    #: Keys already sitting in quarantine before this pass.
    quarantine_backlog: int = 0
    #: Stale tenant refs (pointing at evicted/quarantined objects) that
    #: the scrub deleted — the "repaired" leg of the report.
    repaired: int = 0
    #: Entries removed by the scrub because the store was over its
    #: configured ``max_entries`` bound.
    evicted: int = 0

    @property
    def healthy(self) -> bool:
        return not self.quarantined

    def as_dict(self) -> dict:
        """Machine-readable form (``repro cachecheck --json``)."""
        return {
            "checked": self.checked,
            "ok": self.ok,
            "quarantined": sorted(self.quarantined),
            "quarantined_count": len(self.quarantined),
            "quarantine_backlog": self.quarantine_backlog,
            "repaired": self.repaired,
            "evicted": self.evicted,
            "healthy": self.healthy,
        }

    def render(self) -> str:
        lines = [
            f"cache scrub: {self.checked} entries checked, {self.ok} ok, "
            f"{len(self.quarantined)} quarantined"
            + (f" ({self.quarantine_backlog} already in quarantine)"
               if self.quarantine_backlog else "")
            + (f", {self.repaired} stale ref(s) repaired" if self.repaired else "")
            + (f", {self.evicted} over-bound entr"
               f"{'y' if self.evicted == 1 else 'ies'} evicted"
               if self.evicted else "")
        ]
        for key in self.quarantined:
            lines.append(f"  quarantined {key}")
        return "\n".join(lines)


class BuildCache:
    """Content-addressed store of picklable build artifacts.

    *cache_dir* ``None`` keeps everything in memory (useful for tests and
    one-shot runs); otherwise entries persist on disk and survive the
    process.  *max_entries* bounds the on-disk entry count: after a
    store, the least-recently-used entries (by mtime — reads touch their
    file) are evicted until the bound holds.

    *namespace* turns the instance into one tenant's **view** of a
    shared store: objects stay global (two tenants submitting the same
    core share one blob — dedup is by content digest, not by owner), but
    every key this view stores or serves is recorded as a per-tenant
    *ref* marker under ``<dir>/tenants/<namespace>/refs/``.  The refs
    give the multi-tenant build service per-tenant accounting (what does
    tenant T depend on?) without ever duplicating artifact bytes;
    ``stats.dedup_hits`` counts lookups this view satisfied from an
    object some *other* tenant had already paid to build.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        *,
        max_entries: int | None = None,
        lock_timeout_s: float = 10.0,
        namespace: str | None = None,
    ) -> None:
        self.dir = Path(cache_dir) if cache_dir is not None else None
        self.root = self.dir / "objects" if self.dir is not None else None
        self.max_entries = max_entries
        self.namespace = namespace
        self.stats = CacheStats()
        self._memory: dict[str, object] = {}
        self._lock = (
            FileLock(self.dir / "lock", lock_timeout_s) if self.dir is not None else None
        )

    # -- paths -------------------------------------------------------------
    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / key[:2] / key

    @property
    def quarantine_dir(self) -> Path:
        assert self.dir is not None
        return self.dir / "quarantine"

    @property
    def tenants_dir(self) -> Path:
        assert self.dir is not None
        return self.dir / "tenants"

    def _refs_dir(self, namespace: str) -> Path:
        return self.tenants_dir / namespace / "refs"

    def tenants(self) -> list[str]:
        """Namespaces that hold at least one ref in this store."""
        if self.dir is None or not self.tenants_dir.exists():
            return []
        return sorted(
            p.name for p in self.tenants_dir.iterdir() if (p / "refs").is_dir()
        )

    def tenant_refs(self, namespace: str | None = None) -> list[str]:
        """Keys a tenant's view has stored or served (its dependency set)."""
        ns = namespace if namespace is not None else self.namespace
        if self.dir is None or ns is None:
            return []
        refs = self._refs_dir(ns)
        if not refs.exists():
            return []
        return sorted(p.name for p in refs.iterdir() if p.is_file())

    def _record_ref(self, key: str) -> bool:
        """Mark *key* as referenced by this view's tenant.

        Returns True when the object was already referenced by some
        *other* tenant — i.e. this lookup was deduplicated across
        tenants.  Marker creation is idempotent and crash-safe (an empty
        file; a torn write leaves an empty file, which is the marker).
        """
        if self.dir is None or self.namespace is None:
            return False
        refs = self._refs_dir(self.namespace)
        marker = refs / key
        shared = any(
            ns != self.namespace and (self._refs_dir(ns) / key).exists()
            for ns in self.tenants()
        )
        if not marker.exists():
            refs.mkdir(parents=True, exist_ok=True)
            marker.touch()
        return shared

    def _entry_files(self) -> list[Path]:
        if self.root is None or not self.root.exists():
            return []
        return [p for p in self.root.glob("*/*") if p.is_file()]

    def __len__(self) -> int:
        if self.root is None:
            return len(self._memory)
        return len(self._entry_files())

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.root is not None and self._path(key).exists()

    # -- read --------------------------------------------------------------
    def get(self, key: str) -> object | None:
        """Return the cached value for *key* or ``None`` (counted as a miss).

        A corrupted on-disk entry — bad magic, digest mismatch, truncated
        or unpicklable payload — is deleted, counted in ``stats.corrupt``
        and reported as a miss, so the caller rebuilds instead of using it.
        """
        if key in self._memory:
            self.stats.hits += 1
            if self._record_ref(key):
                self.stats.dedup_hits += 1
            self._observe("hit", key, tier="memory")
            return self._memory[key]
        if self.root is not None:
            value = self._read_disk(key)
            if value is not None:
                self._memory[key] = value
                self.stats.hits += 1
                if self._record_ref(key):
                    self.stats.dedup_hits += 1
                self._observe("hit", key, tier="disk")
                return value
        self.stats.misses += 1
        self._observe("miss", key)
        return None

    def _observe(self, what: str, key: str, **fields) -> None:
        """Emit a ``cache.*`` event + counters (no-op when obs is off).

        The invariant the harness checks: ``cache.hits + cache.misses ==
        cache.lookups`` — every lookup resolves to exactly one of the
        two, and evictions are counted separately.
        """
        if not _BUS.enabled:
            return
        _BUS.emit(f"cache.{what}", key[:16], **fields)
        if what in ("hit", "miss"):
            _METRICS.counter("cache.lookups", "cache get() calls").inc()
        counter = {
            "hit": ("cache.hits", "lookups served from the cache"),
            "miss": ("cache.misses", "lookups that found nothing"),
            "evict": ("cache.evictions", "LRU entries evicted"),
        }[what]
        _METRICS.counter(*counter).inc()

    def _read_disk(self, key: str) -> object | None:
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            # Concurrently evicted (or never stored) — a plain miss, so
            # the caller rebuilds instead of raising mid-flow.
            return None
        payload = self._checked_payload(raw)
        if payload is None:
            self._drop_corrupt(path)
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            self._drop_corrupt(path)
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        return value

    @staticmethod
    def _checked_payload(raw: bytes) -> bytes | None:
        if not raw.startswith(_MAGIC):
            return None
        rest = raw[len(_MAGIC) :]
        digest, sep, payload = rest.partition(b"\n")
        if not sep or digest.decode("ascii", "replace") != hashlib.sha256(payload).hexdigest():
            return None
        return payload

    def _drop_corrupt(self, path: Path) -> None:
        """Quarantine a corrupt entry: out of the serving path, kept for
        post-mortem, counted, and reported as a structured warning."""
        self.stats.corrupt += 1
        dest = self.quarantine_dir / path.name
        try:
            with self._locked():
                dest.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, dest)
            moved = True
        except OSError:
            moved = False
            try:  # same-filesystem move failed — at least stop serving it
                path.unlink()
            except OSError:
                pass
        warnings.warn(
            f"build-cache entry {path.name[:16]}... failed its integrity "
            f"check; {'quarantined to ' + str(dest) if moved else 'deleted'} "
            "and the core will be rebuilt",
            CacheIntegrityWarning,
            stacklevel=3,
        )

    def _locked(self):
        """The cache's cross-process lock (no-op for the in-memory cache)."""
        if self._lock is None:
            from contextlib import nullcontext

            return nullcontext()
        return self._lock

    # -- write -------------------------------------------------------------
    def put(self, key: str, value: object) -> None:
        """Store *value* under *key*; atomic on disk, then evict over-bound."""
        self._memory[key] = value
        self.stats.stores += 1
        if self.root is None:
            return
        self._record_ref(key)
        payload = pickle.dumps(value)
        blob = _MAGIC + hashlib.sha256(payload).hexdigest().encode() + b"\n" + payload
        path = self._path(key)
        with self._locked():
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=path.parent)
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._evict()

    def _evict(self) -> None:
        """Evict LRU entries over *max_entries*, under the process lock.

        Two concurrent processes sharing one cache dir used to race
        here: one could unlink an entry the other was about to read.
        The lock serializes evictions against stores; readers stay
        lock-free and treat a snatched file as a miss (rebuild), never
        an error.
        """
        if self.max_entries is None or self.root is None:
            return
        with self._locked():
            files = self._entry_files()
            if len(files) <= self.max_entries:
                return
            files.sort(key=lambda p: (p.stat().st_mtime, p.name))
            for path in files[: len(files) - self.max_entries]:
                try:
                    path.unlink()
                except OSError:
                    continue
                self._memory.pop(path.name, None)
                self._drop_refs(path.name)
                self.stats.evictions += 1
                self._observe("evict", path.name)

    def _drop_refs(self, key: str) -> None:
        """Remove every tenant's ref marker for a now-gone object."""
        if self.dir is None:
            return
        for ns in self.tenants():
            try:
                (self._refs_dir(ns) / key).unlink()
            except OSError:
                pass

    # -- maintenance -------------------------------------------------------
    def scrub(self) -> ScrubReport:
        """Verify every on-disk entry; quarantine the corrupt ones.

        The engine behind ``repro cachecheck``: reads each entry through
        the same integrity checks the serving path uses, so anything a
        flow would have rejected is moved out of the way *now*, with a
        report, instead of surfacing as a surprise rebuild later.
        """
        report = ScrubReport()
        if self.root is None:
            return report
        with self._locked():
            if self.quarantine_dir.exists():
                report.quarantine_backlog = sum(
                    1 for p in self.quarantine_dir.iterdir() if p.is_file()
                )
            for path in sorted(self._entry_files()):
                report.checked += 1
                try:
                    raw = path.read_bytes()
                except OSError:
                    continue
                payload = self._checked_payload(raw)
                ok = payload is not None
                if ok:
                    try:
                        pickle.loads(payload)
                    except Exception:
                        ok = False
                if ok:
                    report.ok += 1
                else:
                    self._memory.pop(path.name, None)
                    self._drop_corrupt(path)
                    report.quarantined.append(path.name)
            # Repair leg: a quarantined or externally-deleted object can
            # leave tenant refs dangling; delete them so per-tenant
            # accounting never claims a dependency the store cannot serve.
            live = {p.name for p in self._entry_files()}
            for ns in self.tenants():
                for key in self.tenant_refs(ns):
                    if key not in live:
                        try:
                            (self._refs_dir(ns) / key).unlink()
                            report.repaired += 1
                        except OSError:
                            pass
            # Eviction leg: a bounded store scrubbed over its bound (e.g.
            # after a max_entries change) trims back down here.
            if self.max_entries is not None:
                before = self.stats.evictions
                self._evict()
                report.evicted = self.stats.evictions - before
        return report

    def quarantined_keys(self) -> list[str]:
        if self.dir is None or not self.quarantine_dir.exists():
            return []
        return sorted(p.name for p in self.quarantine_dir.iterdir() if p.is_file())

    def purge_quarantine(self) -> int:
        """Delete quarantined blobs (post-mortem done); returns the count."""
        n = 0
        if self.dir is None:
            return n
        with self._locked():
            if self.quarantine_dir.exists():
                for path in self.quarantine_dir.iterdir():
                    try:
                        path.unlink()
                        n += 1
                    except OSError:
                        continue
        return n

    def clear(self) -> None:
        self._memory.clear()
        with self._locked():
            for path in self._entry_files():
                try:
                    path.unlink()
                except OSError:
                    pass


__all__ = [
    "ENGINE_VERSION",
    "BuildCache",
    "CacheIntegrityWarning",
    "CacheStats",
    "FileLock",
    "ScrubReport",
    "cache_key",
]
