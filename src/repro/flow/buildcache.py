"""Persistent content-addressed artifact cache for the build engine.

The paper reuses synthesized cores *by name* ("the generation of the
hardware cores is done only once for each function", Section VI-B) —
which silently conflates two cores that share a function name but differ
in source or directives.  This module replaces the name with a digest of
everything the synthesis result actually depends on:

* the C source text of the core,
* the rendered interface/optimization directives (order preserved —
  Vivado HLS applies them in file order),
* the tcl backend version,
* an engine version constant (bumped on incompatible pipeline changes,
  so stale entries become unreachable rather than wrong).

Entries are pickled payloads stored under ``<dir>/objects/<k[:2]>/<key>``
behind a SHA-256 integrity header; a corrupted or truncated entry is
detected on read, counted, deleted and treated as a miss — the core is
then rebuilt, never served from the bad bytes.  Writes go through a
temp-file + :func:`os.replace` so a crashed build leaves no partial
entry.  The cache is safe to share between serial and parallel flows:
an entry is written only after its synthesis completed successfully.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path

#: Version of the HLS engine + artifact layout baked into every key.
#: Bumping it invalidates the whole cache without deleting any file.
ENGINE_VERSION = "1"

#: File header: magic line, then the payload digest, then the payload.
_MAGIC = b"repro-buildcache/1\n"


def cache_key(
    name: str,
    source: str,
    directives_tcl: str,
    backend_version: str,
    *,
    engine_version: str = ENGINE_VERSION,
) -> str:
    """Content digest identifying one core build.

    Two builds share a key iff the HLS engine would produce bit-identical
    artifacts for both; the function *name* participates because it is
    the top symbol and appears in every generated artifact.
    """
    h = hashlib.sha256()
    for part in (engine_version, name, source, directives_tcl, backend_version):
        data = part.encode()
        # Length-prefix every field so no concatenation is ambiguous.
        h.update(len(data).to_bytes(8, "little"))
        h.update(data)
    return h.hexdigest()


@dataclass
class CacheStats:
    """Counters for one :class:`BuildCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }


class BuildCache:
    """Content-addressed store of picklable build artifacts.

    *cache_dir* ``None`` keeps everything in memory (useful for tests and
    one-shot runs); otherwise entries persist on disk and survive the
    process.  *max_entries* bounds the on-disk entry count: after a
    store, the least-recently-used entries (by mtime — reads touch their
    file) are evicted until the bound holds.
    """

    def __init__(
        self, cache_dir: str | os.PathLike | None = None, *, max_entries: int | None = None
    ) -> None:
        self.root = Path(cache_dir) / "objects" if cache_dir is not None else None
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._memory: dict[str, object] = {}

    # -- paths -------------------------------------------------------------
    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / key[:2] / key

    def _entry_files(self) -> list[Path]:
        if self.root is None or not self.root.exists():
            return []
        return [p for p in self.root.glob("*/*") if p.is_file()]

    def __len__(self) -> int:
        if self.root is None:
            return len(self._memory)
        return len(self._entry_files())

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.root is not None and self._path(key).exists()

    # -- read --------------------------------------------------------------
    def get(self, key: str) -> object | None:
        """Return the cached value for *key* or ``None`` (counted as a miss).

        A corrupted on-disk entry — bad magic, digest mismatch, truncated
        or unpicklable payload — is deleted, counted in ``stats.corrupt``
        and reported as a miss, so the caller rebuilds instead of using it.
        """
        if key in self._memory:
            self.stats.hits += 1
            return self._memory[key]
        if self.root is not None:
            value = self._read_disk(key)
            if value is not None:
                self._memory[key] = value
                self.stats.hits += 1
                return value
        self.stats.misses += 1
        return None

    def _read_disk(self, key: str) -> object | None:
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        payload = self._checked_payload(raw)
        if payload is None:
            self._drop_corrupt(path)
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            self._drop_corrupt(path)
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        return value

    @staticmethod
    def _checked_payload(raw: bytes) -> bytes | None:
        if not raw.startswith(_MAGIC):
            return None
        rest = raw[len(_MAGIC) :]
        digest, sep, payload = rest.partition(b"\n")
        if not sep or digest.decode("ascii", "replace") != hashlib.sha256(payload).hexdigest():
            return None
        return payload

    def _drop_corrupt(self, path: Path) -> None:
        self.stats.corrupt += 1
        try:
            path.unlink()
        except OSError:
            pass

    # -- write -------------------------------------------------------------
    def put(self, key: str, value: object) -> None:
        """Store *value* under *key*; atomic on disk, then evict over-bound."""
        self._memory[key] = value
        self.stats.stores += 1
        if self.root is None:
            return
        payload = pickle.dumps(value)
        blob = _MAGIC + hashlib.sha256(payload).hexdigest().encode() + b"\n" + payload
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._evict()

    def _evict(self) -> None:
        if self.max_entries is None or self.root is None:
            return
        files = self._entry_files()
        if len(files) <= self.max_entries:
            return
        files.sort(key=lambda p: (p.stat().st_mtime, p.name))
        for path in files[: len(files) - self.max_entries]:
            try:
                path.unlink()
            except OSError:
                continue
            self._memory.pop(path.name, None)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._memory.clear()
        for path in self._entry_files():
            try:
                path.unlink()
            except OSError:
                pass


__all__ = ["ENGINE_VERSION", "BuildCache", "CacheStats", "cache_key"]
