"""End-to-end flow orchestration (the paper's executable-DSL tool).

:func:`run_flow` "executes" a task-graph description: the DSL keywords
fire :class:`FlowHooks` callbacks that create HLS projects, synthesize
cores, integrate the system, generate tcl, run implementation and emit
the software layer — the exact step sequence of paper Section IV-B.
:mod:`timing` models the wall-clock cost of each phase (Fig. 9);
:mod:`baseline` is the SDSoC-like comparison flow; :mod:`gui_model`
estimates the manual-GUI alternative from the Discussion section;
:mod:`workspace` materializes all artifacts to a directory tree —
atomically, behind a ``MANIFEST.json`` + ``DONE`` protocol that
:func:`verify_workspace` checks and repairs.

The build engine lives in :mod:`buildcache` (persistent
content-addressed artifact cache, cross-process locked, with corruption
quarantine) and :mod:`parallel` (topological-wave worker pool for
per-core HLS) — enabled via ``FlowConfig(jobs=N, cache_dir=...)`` and
proven artifact-equivalent to the serial path by
``tests/test_flow_parallel.py``.

The crash-consistency layer lives in :mod:`journal` (write-ahead run
journal; :func:`resume_flow` continues a killed run, re-executing only
the interrupted tail) and :mod:`crashpoints` (deterministic
crash-injection at every journal boundary — the engine behind
``repro crashcheck``).
"""

from repro.flow.autosim import AutoSimResult, autosimulate, lift_to_htg
from repro.flow.baseline import SdsocResult, sdsoc_flow
from repro.flow.buildcache import (
    ENGINE_VERSION,
    BuildCache,
    CacheIntegrityWarning,
    CacheStats,
    ScrubReport,
    cache_key,
)
from repro.flow.crashpoints import CrashPlan, all_sites, crashpoint
from repro.flow.gui_model import estimate_gui_seconds
from repro.flow.journal import RunJournal, stable_digest
from repro.flow.orchestrator import (
    CoreBuild,
    FlowConfig,
    FlowResult,
    flow_run_digest,
    resume_flow,
    run_flow,
)
from repro.flow.parallel import topological_waves
from repro.flow.timing import CoreTrace, FlowTiming, TimingModel
from repro.flow.workspace import (
    WorkspaceStatus,
    materialize,
    verify_workspace,
    workspace_files,
)

__all__ = [
    "AutoSimResult",
    "BuildCache",
    "CacheIntegrityWarning",
    "CacheStats",
    "CoreBuild",
    "CoreTrace",
    "CrashPlan",
    "ENGINE_VERSION",
    "FlowConfig",
    "FlowResult",
    "FlowTiming",
    "RunJournal",
    "ScrubReport",
    "SdsocResult",
    "TimingModel",
    "WorkspaceStatus",
    "all_sites",
    "autosimulate",
    "cache_key",
    "crashpoint",
    "estimate_gui_seconds",
    "flow_run_digest",
    "lift_to_htg",
    "materialize",
    "resume_flow",
    "run_flow",
    "sdsoc_flow",
    "stable_digest",
    "topological_waves",
    "verify_workspace",
    "workspace_files",
]
