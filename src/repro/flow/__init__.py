"""End-to-end flow orchestration (the paper's executable-DSL tool).

:func:`run_flow` "executes" a task-graph description: the DSL keywords
fire :class:`FlowHooks` callbacks that create HLS projects, synthesize
cores, integrate the system, generate tcl, run implementation and emit
the software layer — the exact step sequence of paper Section IV-B.
:mod:`timing` models the wall-clock cost of each phase (Fig. 9);
:mod:`baseline` is the SDSoC-like comparison flow; :mod:`gui_model`
estimates the manual-GUI alternative from the Discussion section;
:mod:`workspace` materializes all artifacts to a directory tree.

The build engine lives in :mod:`buildcache` (persistent
content-addressed artifact cache) and :mod:`parallel` (topological-wave
worker pool for per-core HLS) — enabled via ``FlowConfig(jobs=N,
cache_dir=...)`` and proven artifact-equivalent to the serial path by
``tests/test_flow_parallel.py``.
"""

from repro.flow.autosim import AutoSimResult, autosimulate, lift_to_htg
from repro.flow.baseline import SdsocResult, sdsoc_flow
from repro.flow.buildcache import ENGINE_VERSION, BuildCache, CacheStats, cache_key
from repro.flow.gui_model import estimate_gui_seconds
from repro.flow.orchestrator import CoreBuild, FlowConfig, FlowResult, run_flow
from repro.flow.parallel import topological_waves
from repro.flow.timing import CoreTrace, FlowTiming, TimingModel
from repro.flow.workspace import materialize

__all__ = [
    "AutoSimResult",
    "BuildCache",
    "CacheStats",
    "CoreBuild",
    "CoreTrace",
    "ENGINE_VERSION",
    "autosimulate",
    "cache_key",
    "lift_to_htg",
    "FlowConfig",
    "FlowResult",
    "FlowTiming",
    "SdsocResult",
    "TimingModel",
    "estimate_gui_seconds",
    "materialize",
    "run_flow",
    "sdsoc_flow",
    "topological_waves",
]
