"""Deterministic wall-clock model of the flow phases (Fig. 9).

Absolute tool runtimes are testbed-specific, so we model them: the
constants are anchored to what the paper reports — compiling the Scala
task graph takes ~6 s, generating the Vivado project ~50 s (vs. 48 s for
a human just instantiating the PS in the GUI), and generating all four
Otsu architectures ~42 minutes in total, dominated by HLS and
synthesis/implementation.  Within an architecture the model scales with
design size: HLS time with the core's IR size and FU mix, implementation
time with the post-synthesis LUT count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.project import SynthesisResult
from repro.soc.blockdesign import BlockDesign

#: Phase labels, in the order Fig. 9 stacks them.
PHASES = ("SCALA", "HLS", "PROJECT", "SYNTH")


@dataclass(frozen=True)
class CoreTrace:
    """How one core's build was satisfied — the per-core Fig. 9 record.

    *source* is ``synth`` (HLS ran), ``memo`` (reused from the caller's
    name-keyed ``core_cache`` after a content match) or ``cache`` (hit in
    the persistent content-addressed build cache).  *wave* is the
    topological wave the core was scheduled in (0 on the serial path),
    *attempts* how many synthesis attempts it took (retries included).
    """

    name: str
    seconds: float
    source: str = "synth"
    wave: int = 0
    attempts: int = 1
    #: Per-function memo lookups (front-end / result stage) that served
    #: this core's synthesis — non-zero only when source == "synth".
    fn_cache_hits: int = 0


@dataclass
class FlowTiming:
    """Modeled seconds per phase for one architecture build.

    ``hls_s`` is cpu-time (the sum every core's synthesis cost);
    ``hls_wall_s`` is the modeled wall-clock of the schedule that
    actually ran — equal to ``hls_s`` on the serial path, the wave
    makespan on the parallel path.  The other phases are single-threaded
    either way, so the flow's wall-clock is ``total_wall_s``.
    """

    scala_s: float = 0.0
    hls_s: float = 0.0
    project_s: float = 0.0
    synth_s: float = 0.0
    #: Per-core HLS breakdown (reused cores appear with 0.0).
    hls_cores: dict[str, float] = field(default_factory=dict)
    #: Modeled wall-clock of the HLS phase under the executed schedule.
    hls_wall_s: float = 0.0
    #: Worker count the flow ran with (1 = serial path).
    jobs: int = 1
    #: Content-addressed build-cache hits / misses (0/0 without a cache).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Sub-core per-function memo hits / misses across all synthesized
    #: cores (the layer beneath the whole-core cache; see repro.hls.fncache).
    fn_cache_hits: int = 0
    fn_cache_misses: int = 0
    #: True when this run continued an existing run journal (resume).
    resumed: bool = False
    #: Journal-committed steps satisfied without re-executing the work
    #: (cache-served HLS cores, already-promoted workspaces).
    steps_skipped: int = 0
    #: Steps the prior run left started-but-uncommitted — the
    #: interrupted tail this run recovered.
    crash_recoveries: int = 0
    #: Per-core build records, in graph declaration order.
    trace: list[CoreTrace] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.scala_s + self.hls_s + self.project_s + self.synth_s

    @property
    def total_wall_s(self) -> float:
        """Modeled wall-clock: HLS overlaps across workers, the rest is serial."""
        return self.scala_s + self.hls_wall_s + self.project_s + self.synth_s

    @property
    def speedup(self) -> float:
        """Cpu-time over wall-clock — 1.0 on the serial path."""
        return self.total_s / self.total_wall_s if self.total_wall_s else 1.0

    def as_row(self) -> dict[str, float]:
        return {
            "SCALA": round(self.scala_s, 1),
            "HLS": round(self.hls_s, 1),
            "PROJECT": round(self.project_s, 1),
            "SYNTH": round(self.synth_s, 1),
            "TOTAL": round(self.total_s, 1),
        }

    def report(self) -> dict:
        """Full build-engine record: phases, per-core trace, cache, wall."""
        return {
            **self.as_row(),
            "WALL": round(self.total_wall_s, 1),
            "jobs": self.jobs,
            "speedup": round(self.speedup, 2),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "fn_cache": {"hits": self.fn_cache_hits, "misses": self.fn_cache_misses},
            "resume": {
                "resumed": self.resumed,
                "steps_skipped": self.steps_skipped,
                "crash_recoveries": self.crash_recoveries,
            },
            "cores": [
                {
                    "name": t.name,
                    "seconds": round(t.seconds, 1),
                    "source": t.source,
                    "wave": t.wave,
                    "attempts": t.attempts,
                    "fn_cache_hits": t.fn_cache_hits,
                }
                for t in self.trace
            ],
        }


@dataclass(frozen=True)
class TimingModel:
    """Calibrated constants; defaults reproduce the paper's anchors."""

    # Scala/DSL compilation: ~6 s for the case-study descriptions.
    scala_base_s: float = 5.6
    scala_per_line_s: float = 0.03

    # Vivado HLS: tool start-up plus scheduling/binding effort.
    hls_base_s: float = 32.0
    hls_per_op_s: float = 0.35
    hls_float_core_extra_s: float = 28.0

    # Vivado project generation: ~50 s per architecture.
    project_base_s: float = 41.0
    project_per_cell_s: float = 0.9
    project_per_conn_s: float = 0.12

    # Synthesis + place&route + bitstream.
    synth_base_s: float = 252.0
    synth_per_lut_s: float = 0.045

    def scala_compile_s(self, dsl_lines: int) -> float:
        return self.scala_base_s + self.scala_per_line_s * dsl_lines

    def hls_core_s(self, result: SynthesisResult) -> float:
        n_ops = sum(len(b.ops) for b in result.function.blocks)
        t = self.hls_base_s + self.hls_per_op_s * n_ops
        if any(cls.startswith("f") for cls in result.binding.fu_counts):
            t += self.hls_float_core_extra_s
        return t

    def project_generation_s(self, design: BlockDesign) -> float:
        return (
            self.project_base_s
            + self.project_per_cell_s * len(design.cells)
            + self.project_per_conn_s * len(design.connections)
        )

    def synthesis_s(self, design: BlockDesign) -> float:
        return self.synth_base_s + self.synth_per_lut_s * design.total_resources().lut
