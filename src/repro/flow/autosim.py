"""Automatic simulation of an arbitrary DSL design.

Given only what the flow already has — the task graph and the
synthesized cores — this module builds everything
:func:`~repro.sim.runtime.simulate_application` needs:

* an :class:`~repro.htg.model.HTG` lifted from the DSL graph (all
  streaming nodes become one dataflow phase; each AXI-Lite node becomes
  a hardware task driven with caller-supplied or default scalar
  arguments);
* behaviours synthesized from the cores' own compiled C via the IR
  interpreter — the HLS model is the single source of functional truth,
  so *any* ``.tg`` design can be executed without hand-written golden
  models;
* stimulus buffers for every ``'soc`` stream input (caller-supplied or
  deterministic pseudo-random), sized from the C signatures.

This is what the CLI's ``simulate`` command runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsl.ast import TgGraph
from repro.flow.orchestrator import FlowResult
from repro.hls.interp import dtype_for
from repro.hls.project import SynthesisResult
from repro.htg.model import HTG, Actor, Phase, StreamChannel, Task
from repro.htg.partition import Partition
from repro.sim.runtime import Behavior, ExecutionReport, simulate_application
from repro.util.errors import FlowError


@dataclass
class AutoSimResult:
    """Everything the automatic simulation produced."""

    report: ExecutionReport
    #: 'soc stream input name -> stimulus array fed in.
    stimuli: dict[str, np.ndarray] = field(default_factory=dict)
    #: 'soc stream output name -> captured array.
    outputs: dict[str, np.ndarray] = field(default_factory=dict)
    #: AXI-Lite node -> return value (None for void cores).
    lite_returns: dict[str, int | float | None] = field(default_factory=dict)


def _stream_length(core: SynthesisResult, port: str) -> int:
    atype = core.function.array_params.get(port)
    if atype is None or atype.size is None:
        raise FlowError(
            f"core {core.top!r}: stream port {port!r} needs a sized array "
            "parameter for automatic simulation"
        )
    return atype.size


def _interpreter_behavior(core: SynthesisResult) -> Behavior:
    """Actor behaviour that runs the core's compiled C."""
    in_ports = [
        (name, atype)
        for name, atype in core.function.array_params.items()
        if core.iface.modes.get(name) is not None
        and any(s.name == name and s.direction == "in" for s in core.iface.streams)
    ]
    out_ports = [
        (name, atype)
        for name, atype in core.function.array_params.items()
        if any(s.name == name and s.direction == "out" for s in core.iface.streams)
    ]

    def run(*inputs: np.ndarray):
        args: list[object] = []
        outs: list[np.ndarray] = []
        it = iter(inputs)
        for pname, ptype in core.function.params:
            if pname in dict(in_ports):
                args.append(np.asarray(next(it)))
            elif pname in dict(out_ports):
                atype = dict(out_ports)[pname]
                buf = np.zeros(atype.size, dtype=dtype_for(atype.element))
                args.append(buf)
                outs.append(buf)
            else:
                args.append(0)  # scalar params default to zero
        core.run(*args)
        return tuple(outs) if len(outs) != 1 else outs[0]

    return Behavior(run)


def lift_to_htg(
    graph: TgGraph, cores: dict[str, SynthesisResult]
) -> tuple[HTG, Partition, dict[str, Behavior], dict[str, np.ndarray], list[str]]:
    """Lift a DSL graph to an HTG + interpreter behaviours.

    Returns ``(htg, partition, behaviors, input_sizes, lite_nodes)``
    where ``input_sizes`` maps each boundary input name to its element
    count/dtype prototype (zeros array).
    """
    htg = HTG(f"{graph.name}_sim" if graph.name != "anonymous" else "sim")
    behaviors: dict[str, Behavior] = {}
    prototypes: dict[str, np.ndarray] = {}

    stream_nodes = [n for n in graph.nodes if n.stream_ports()]
    lite_nodes = [n.name for n in graph.nodes if not n.stream_ports()]
    hw_nodes: set[str] = set()

    phase: Phase | None = None
    if stream_nodes:
        actors = []
        channels = []
        inputs: list[str] = []
        outputs: list[str] = []
        for node in stream_nodes:
            core = cores[node.name]
            ins = tuple(
                s.name for s in core.iface.streams if s.direction == "in"
            )
            outs = tuple(
                s.name for s in core.iface.streams if s.direction == "out"
            )
            actors.append(
                Actor(node.name, stream_inputs=ins, stream_outputs=outs,
                      c_source="(from flow)")
            )
            behaviors[f"pipeline.{node.name}"] = _interpreter_behavior(core)
        for link in graph.links():
            if link.from_soc():
                assert isinstance(link.dst, tuple)
                data = f"in_{link.dst[0]}_{link.dst[1]}"
                inputs.append(data)
                channels.append(
                    StreamChannel(Phase.BOUNDARY, data, link.dst[0], link.dst[1])
                )
                core = cores[link.dst[0]]
                size = _stream_length(core, link.dst[1])
                elem = core.function.array_params[link.dst[1]].element
                prototypes[data] = np.zeros(size, dtype=dtype_for(elem))
            elif link.to_soc():
                assert isinstance(link.src, tuple)
                data = f"out_{link.src[0]}_{link.src[1]}"
                outputs.append(data)
                channels.append(
                    StreamChannel(link.src[0], link.src[1], Phase.BOUNDARY, data)
                )
            else:
                assert isinstance(link.src, tuple) and isinstance(link.dst, tuple)
                channels.append(
                    StreamChannel(link.src[0], link.src[1], link.dst[0], link.dst[1])
                )
        phase = Phase(
            name="pipeline",
            actors=actors,
            channels=channels,
            inputs=tuple(inputs),
            outputs=tuple(outputs),
        )
        htg.add(phase)
        hw_nodes.add("pipeline")

        htg.add(
            Task(
                "stimulus",
                outputs=tuple(inputs),
                io=True,
                sw_cycles=sum(len(p) for p in prototypes.values()) or 1,
            )
        )
        htg.add(Task("capture", inputs=tuple(outputs), io=True, sw_cycles=1))
        htg.add_edge("stimulus", "pipeline")
        htg.add_edge("pipeline", "capture")
        behaviors["capture"] = Behavior(lambda *a: None)

    partition = Partition.from_hw_set(htg, hw_nodes) if htg.nodes else Partition()
    return htg, partition, behaviors, prototypes, lite_nodes


def autosimulate(
    flow: FlowResult,
    *,
    stimuli: dict[str, np.ndarray] | None = None,
    lite_args: dict[str, dict[str, int]] | None = None,
    seed: int = 1,
    wait_mode: str = "poll",
    burst_mode: bool | None = None,
    faults=None,
    policy=None,
) -> AutoSimResult:
    """Simulate *flow*'s system with interpreter-derived behaviours.

    *stimuli* overrides the generated inputs (keyed
    ``in_<node>_<port>``); *lite_args* supplies scalar arguments per
    AXI-Lite node (register name -> value); *burst_mode*, *faults* (a
    :class:`~repro.sim.faults.FaultPlan`) and *policy* (a
    :class:`~repro.sim.faults.RecoveryPolicy`) are forwarded to
    :func:`~repro.sim.runtime.simulate_application` (None = defaults) —
    the build service's fault-injected simulation jobs ride this path.
    """
    cores = {name: build.result for name, build in flow.cores.items()}
    htg, partition, behaviors, prototypes, lite_nodes = lift_to_htg(
        flow.graph, cores
    )

    rng = np.random.default_rng(seed)
    fed: dict[str, np.ndarray] = {}
    for name, proto in prototypes.items():
        if stimuli and name in stimuli:
            arr = np.asarray(stimuli[name]).astype(proto.dtype)
            if arr.shape != proto.shape:
                raise FlowError(
                    f"stimulus {name!r} has shape {arr.shape}, needs {proto.shape}"
                )
            fed[name] = arr
        else:
            info_max = 127  # keep values well inside every element type
            fed[name] = rng.integers(0, info_max, proto.shape).astype(proto.dtype)
    if prototypes:
        behaviors["stimulus"] = Behavior(lambda: tuple(fed[n] for n in prototypes))

    result = AutoSimResult(report=None)  # type: ignore[arg-type]
    outputs: dict[str, np.ndarray] = {}
    if htg.nodes:
        report = simulate_application(
            htg, partition, behaviors, {}, system=flow.system,
            wait_mode=wait_mode, burst_mode=burst_mode,
            faults=faults, policy=policy,
        )
        for node in htg.nodes.values():
            if isinstance(node, Phase):
                for out in node.outputs:
                    outputs[out] = report.of(out)
        result.report = report
    else:
        raise FlowError("nothing to simulate: the design has no stream nodes")

    # Drive the AXI-Lite nodes directly (outside the HTG semantics).
    lite_returns: dict[str, int | float | None] = {}
    for name in lite_nodes:
        core = cores[name]
        args = []
        supplied = (lite_args or {}).get(name, {})
        for pname, ptype in core.function.params:
            args.append(supplied.get(pname, 0))
        lite_returns[name] = core.run(*args)

    result.stimuli = fed
    result.outputs = outputs
    result.lite_returns = lite_returns
    return result
