"""Write-ahead run journal for the flow.

A killed or crashed ``repro`` invocation used to lose every in-flight
step.  The journal makes the flow resumable the way a database makes a
transaction durable: before a step executes, an *intent* record (step
name + input digest) is appended and fsynced; after the step's artifact
is safely published (to the content-addressed build cache or to the
promoted workspace), a *commit* record follows.  A resumed run replays
the journal and knows exactly which steps completed — committed per-core
HLS steps are satisfied from the cache, and only the interrupted tail
re-executes.

Durability model
----------------
* The journal is an append-only JSONL file; every record is one line,
  flushed and fsynced before the step runs, so a ``kill -9`` at any
  instant loses at most the line being written.
* A torn trailing line (the crash hit mid-append) is tolerated and
  ignored on load; a torn line *before* the end means the file did not
  come from this writer, so the whole journal is discarded — a clean
  rebuild is always safe, stale reuse never is.
* The header pins the *run digest* — a digest of everything the flow
  depends on (DSL text, C sources, directives, backend, config).  A
  journal whose header does not match the current inputs is discarded,
  so resuming after a config or source change forces a clean rebuild
  instead of stitching incompatible halves together.

Step input digests follow the same rule as the build cache: a committed
record is honoured only when its digest equals the digest the resumed
run computes for that step, so a resumed run can never reuse a step
whose inputs drifted.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.obs.events import BUS as _BUS
from repro.obs.metrics import REGISTRY as _METRICS

#: Bumped on incompatible journal-format changes; old journals are then
#: discarded (clean rebuild) instead of misread.
JOURNAL_VERSION = 1


def stable_digest(obj: object) -> str:
    """SHA-256 of the canonical JSON rendering of *obj* (sorted keys)."""
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True, default=repr).encode()
    ).hexdigest()


def fsync_dir(path: Path) -> None:
    """fsync a directory so a file created inside it survives power loss."""
    dirfd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(dirfd)
    finally:
        os.close(dirfd)


class RunJournal:
    """Append-only write-ahead log of one flow run's step lifecycle.

    Usage::

        journal = RunJournal(path)
        journal.begin(run_digest)          # load-or-create; sets .resumed
        if not journal.committed(step, d):
            journal.step_start(step, d)    # durable before the work
            ...do the work, publish the artifact...
            journal.step_commit(step, d)   # durable after the publish

    ``begin`` may be called again (e.g. a double resume); the journal
    then reloads from disk with the same discard rules.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.run_digest: str | None = None
        #: True when ``begin`` found a matching journal with prior steps.
        self.resumed = False
        #: Steps the loaded journal had started but never committed —
        #: the interrupted tail the resumed run is recovering.
        self.interrupted: tuple[str, ...] = ()
        self._committed: dict[str, str] = {}
        self._started: dict[str, str] = {}
        self._fh = None

    # -- lifecycle ---------------------------------------------------------
    def begin(self, run_digest: str) -> None:
        """Open the journal for a run whose inputs digest to *run_digest*.

        An existing journal is resumed only when its header matches the
        digest and the journal version; otherwise (mismatch, corruption,
        unreadable) it is discarded and a fresh journal is started.
        """
        self.close()
        self.run_digest = run_digest
        self.resumed = False
        self.interrupted = ()
        self._committed = {}
        self._started = {}
        records = self._load()
        if records is not None:
            started, committed = {}, {}
            for rec in records:
                if rec.get("e") == "start":
                    started[rec["s"]] = rec["d"]
                elif rec.get("e") == "commit":
                    committed[rec["s"]] = rec["d"]
            self._committed = committed
            self._started = started
            self.resumed = bool(started or committed)
            self.interrupted = tuple(
                s for s, d in started.items() if committed.get(s) != d
            )
            # Replayed commits are surfaced on the bus so a resumed run's
            # trace carries the full committed-step set, not just the
            # re-executed tail — the resume differential test compares
            # exactly these sets against an uninterrupted run.
            if _BUS.enabled and committed:
                for step in sorted(committed):
                    _BUS.emit("journal.commit", step, replayed=True)
                _METRICS.counter(
                    "journal.replays", "committed records replayed on resume"
                ).inc(len(committed))
            self._fh = open(self.path, "a", encoding="utf-8")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
            self._append({"e": "run", "v": JOURNAL_VERSION, "d": run_digest})
            # The header record is fsynced by _append, but the *file
            # creation* lives in the directory: without a dir fsync a
            # power loss can forget the journal exists while keeping
            # artifacts it journaled — fsync the parent so the header
            # is durable the way every record after it is.
            fsync_dir(self.path.parent)

    def _load(self) -> list[dict] | None:
        """Parse the on-disk journal; ``None`` means start fresh."""
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return None
        lines = raw.split("\n")
        # A crash mid-append leaves a torn final line: raw not ending in
        # "\n" makes lines[-1] that torn fragment; drop it.  (A complete
        # file ends in "\n", so lines[-1] is then just "".)
        lines = lines[:-1]
        records: list[dict] = []
        for i, line in enumerate(lines):
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                if i == len(lines) - 1:
                    break  # torn tail from a crash mid-write — tolerated
                return None  # corruption before the tail — discard all
            records.append(rec)
        if not records:
            return None
        head = records[0]
        if (
            head.get("e") != "run"
            or head.get("v") != JOURNAL_VERSION
            or head.get("d") != self.run_digest
        ):
            return None  # different inputs/format — clean rebuild
        return records[1:]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- records -----------------------------------------------------------
    def _append(self, rec: dict) -> None:
        assert self._fh is not None, "RunJournal.begin() not called"
        self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def step_start(self, step: str, digest: str) -> None:
        """Durably record the *intent* to run *step* — before the work."""
        self._started[step] = digest
        self._append({"e": "start", "s": step, "d": digest})
        if _BUS.enabled:
            _BUS.emit("journal.intent", step, digest=digest[:16])
            _METRICS.counter(
                "journal.intents", "write-ahead intent records appended"
            ).inc()

    def step_commit(self, step: str, digest: str) -> None:
        """Durably record that *step*'s artifact is published."""
        self._committed[step] = digest
        self._append({"e": "commit", "s": step, "d": digest})
        if _BUS.enabled:
            _BUS.emit("journal.commit", step, digest=digest[:16])
            _METRICS.counter(
                "journal.commits", "commit records appended"
            ).inc()

    def committed(self, step: str, digest: str) -> bool:
        """Did a previous run commit *step* with exactly this input digest?"""
        return self._committed.get(step) == digest

    @property
    def committed_steps(self) -> dict[str, str]:
        """Step -> input digest of every committed step (a copy)."""
        return dict(self._committed)

    @property
    def started_steps(self) -> dict[str, str]:
        """Step -> input digest of every started step (a copy).

        The build service attributes a failed run to a backend step by
        looking at the started-but-uncommitted tail — the step the flow
        died inside is the last intent with no matching commit.
        """
        return dict(self._started)

    @property
    def crash_recoveries(self) -> int:
        """Steps the loaded journal left started-but-uncommitted."""
        return len(self.interrupted)

    def describe(self) -> dict:
        """Structured summary (for logs and the crashcheck records)."""
        return {
            "resumed": self.resumed,
            "committed": sorted(self._committed),
            "interrupted": sorted(self.interrupted),
        }


__all__ = ["JOURNAL_VERSION", "RunJournal", "fsync_dir", "stable_digest"]
