"""Cost model of the manual GUI alternative (Discussion section).

The paper timed the manual route: 48 seconds after launching Vivado the
authors "were only able to instantiate the Zynq PS, and still had to add
the repository for the HLS cores, add all the generated cores, and
perform the interconnections".  This model charges that measured PS
cost plus per-action times for the remaining clicks, giving the
"designer seconds" a GUI session would need for a given design.
"""

from __future__ import annotations

from repro.soc.blockdesign import BlockDesign
from repro.soc.ip import PinKind

#: Measured in the paper: project creation + PS instantiation.
PS_SETUP_S = 48.0
#: Adding the exported-HLS IP repository to the project.
IP_REPO_S = 35.0
#: Per-cell instantiation (search, place, configure).
PER_CELL_S = 22.0
#: Per bus connection drawn in the diagram.
PER_BUS_CONNECTION_S = 9.0
#: Clock/reset nets are mostly handled by connection automation.
PER_NET_CONNECTION_S = 2.5
#: Address editor work per mapped segment.
PER_SEGMENT_S = 12.0

_BUS_KINDS = {
    PinKind.AXI_LITE_MASTER,
    PinKind.AXI_FULL_MASTER,
    PinKind.AXIS_MASTER,
}


def estimate_gui_seconds(design: BlockDesign) -> float:
    """Designer time to build *design* manually in the IP-integrator GUI."""
    total = PS_SETUP_S + IP_REPO_S
    total += PER_CELL_S * max(0, len(design.cells) - 1)  # PS already counted
    for conn in design.connections:
        kind = design.cell(conn.src_cell).pin(conn.src_pin).kind
        if kind in _BUS_KINDS:
            total += PER_BUS_CONNECTION_S
        else:
            total += PER_NET_CONNECTION_S
    total += PER_SEGMENT_S * len(design.address_map.ranges)
    return total
