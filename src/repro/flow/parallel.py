"""Parallel wave executor for per-core HLS synthesis.

Each ``on_node_end`` synthesis is an independent unit of work (cores
share no mutable state — the HLS pipeline is pure), so the flow can fan
them out across a worker pool the way COSMOS coordinates its many
per-accelerator HLS runs.  Scheduling is by **topological waves** over
the task graph's stream links: wave 0 holds every core with no stream
predecessor, wave *k* the cores whose predecessors all sit in earlier
waves.  Waves keep the dispatch order deterministic and mirror how a
real build would overlap cores whose upstream neighbours are settled.

Failure semantics (asserted by the fault-injection tests):

* a core whose synthesis raises is retried up to ``retries`` extra
  times, then fails the whole flow with a :class:`FlowError` naming it;
* a core that exceeds ``timeout_s`` fails the flow the same way;
* on the first failure (first in declaration order, so the error is
  deterministic) all queued work is cancelled — running siblings finish
  their bounded synthesis but nothing new starts, and no artifact of the
  failing core is published, so no partial cache entry can exist;
* a :class:`~repro.util.errors.FlowInterrupted` (an armed crash-point —
  see :mod:`repro.flow.crashpoints`) propagates *unwrapped*, so the run
  journal observes the kill at the exact boundary it was armed on.  All
  crash-points fire on the orchestrator thread, never inside a worker:
  artifact publication and journal commits stay single-threaded.

Results are returned keyed by core name; the caller re-inserts them in
graph declaration order, which makes the parallel flow's artifact
ordering byte-identical to the serial flow's.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass

from repro.dsl.ast import TgGraph
from repro.hls.project import HlsProject, SynthesisResult
from repro.obs.events import BUS as _BUS
from repro.util.errors import FlowError, FlowInterrupted


def topological_waves(graph: TgGraph, names: list[str] | None = None) -> list[list[str]]:
    """Partition *names* (default: every node) into dependency waves.

    A stream ``link (A, out) to (B, in)`` makes A a predecessor of B;
    AXI-Lite cores and ``'soc`` endpoints impose no ordering.  Within a
    wave, declaration order is preserved.
    """
    if names is None:
        names = [n.name for n in graph.nodes]
    wanted = set(names)
    preds: dict[str, set[str]] = {n: set() for n in names}
    for edge in graph.links():
        if isinstance(edge.src, tuple) and isinstance(edge.dst, tuple):
            src, dst = edge.src[0], edge.dst[0]
            if src in wanted and dst in wanted and src != dst:
                preds[dst].add(src)
    waves: list[list[str]] = []
    placed: set[str] = set()
    remaining = list(names)
    while remaining:
        wave = [n for n in remaining if preds[n] <= placed]
        if not wave:
            raise FlowError(
                f"stream links form a cycle through {sorted(remaining)}"
            )
        waves.append(wave)
        placed.update(wave)
        remaining = [n for n in remaining if n not in placed]
    return waves


@dataclass
class SynthesisJob:
    """One deferred ``on_node_end`` synthesis."""

    name: str
    project: HlsProject
    key: str  # content digest (see :mod:`repro.flow.buildcache`)


@dataclass
class JobOutcome:
    """A completed synthesis plus its scheduling metadata."""

    name: str
    result: SynthesisResult
    wave: int
    attempts: int


def _attempt(job: SynthesisJob, retries: int) -> tuple[SynthesisResult, int]:
    # Runs on a pool worker thread; the span's worker defaults to the
    # thread name, so each pool thread gets its own Chrome trace track.
    last: Exception | None = None
    for attempt in range(1, retries + 2):
        try:
            with _BUS.span("flow.step", f"hls:{job.name}", core=job.name, attempt=attempt):
                return job.project.csynth(), attempt
        except Exception as exc:  # noqa: BLE001 - rethrown after bounded retry
            last = exc
    assert last is not None
    raise last


def run_parallel_synthesis(
    jobs: list[SynthesisJob],
    graph: TgGraph,
    *,
    workers: int,
    timeout_s: float | None = None,
    retries: int = 0,
) -> dict[str, JobOutcome]:
    """Synthesize *jobs* in topological waves over a thread pool.

    Each core must complete within *timeout_s* of its wave being
    dispatched (``None`` disables the bound).  Returns outcomes for every
    job or raises :class:`FlowError` naming the first failing core in
    declaration order.
    """
    if not jobs:
        return {}
    by_name = {j.name: j for j in jobs}
    waves = [
        [n for n in wave if n in by_name]
        for wave in topological_waves(graph, list(by_name))
    ]
    outcomes: dict[str, JobOutcome] = {}
    pool = concurrent.futures.ThreadPoolExecutor(max_workers=max(1, workers))
    try:
        for wave_idx, wave in enumerate(w for w in waves if w):
            futures = {
                name: pool.submit(_attempt, by_name[name], retries) for name in wave
            }
            for name in wave:  # declaration order -> deterministic first failure
                try:
                    result, attempts = futures[name].result(timeout=timeout_s)
                except concurrent.futures.TimeoutError:
                    raise FlowError(
                        f"HLS synthesis of core {name!r} exceeded its "
                        f"{timeout_s:g} s timeout"
                    ) from None
                except FlowInterrupted:
                    raise  # crash-point kill — never rewrapped (journal semantics)
                except FlowError:
                    raise
                except Exception as exc:
                    raise FlowError(
                        f"HLS synthesis of core {name!r} failed after "
                        f"{retries + 1} attempt(s): {exc}"
                    ) from exc
                outcomes[name] = JobOutcome(name, result, wave_idx, attempts)
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return outcomes


def modeled_wall_s(
    per_core_s: dict[str, float], waves: list[list[str]], workers: int
) -> float:
    """Modeled wall-clock of the wave schedule on *workers* workers.

    List scheduling in declaration order: each core goes to the
    least-loaded worker; a wave's span is its maximum worker load, the
    total is the sum of spans (waves are barriers).  With one worker this
    degenerates to the serial sum.
    """
    total = 0.0
    for wave in waves:
        loads = [0.0] * max(1, workers)
        for name in wave:
            if name not in per_core_s:
                continue  # cache hits cost nothing and occupy no worker
            loads[loads.index(min(loads))] += per_core_s[name]
        total += max(loads)
    return total


__all__ = [
    "JobOutcome",
    "SynthesisJob",
    "modeled_wall_s",
    "run_parallel_synthesis",
    "topological_waves",
]
