"""Materialize a flow result to a directory tree.

Mirrors what the real tool leaves on disk: one Vivado HLS project
directory per core (C source, script, directives, Verilog, report,
csim golden vectors), the system-level tcl, the block-design diagram,
the bitstream metadata, and the ``sdcard/`` + ``sw/`` software layer.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.flow.orchestrator import FlowResult
from repro.hls.interp import dtype_for
from repro.hls.rtl import library_cells


def _csim_vectors(result, seed: int = 1) -> dict | None:
    """Deterministic stimulus/response vectors for a stream core.

    What an RTL engineer would replay against the generated Verilog:
    every axis input gets a seeded pseudo-random vector; outputs come
    from the csim model.  Cores without stream ports return None.
    """
    iface = result.iface
    if not iface.streams:
        return None
    rng = np.random.default_rng(seed)
    args = []
    record_in: dict[str, list[int]] = {}
    record_out: dict[str, np.ndarray] = {}
    for pname, ptype in result.function.params:
        if pname in result.function.array_params:
            atype = result.function.array_params[pname]
            stream = next((s for s in iface.streams if s.name == pname), None)
            buf = np.zeros(atype.size or 0, dtype=dtype_for(atype.element))
            if stream is not None and stream.direction == "in":
                buf[:] = rng.integers(0, 100, len(buf))
                record_in[pname] = buf.tolist()
            elif stream is not None:
                record_out[pname] = buf
            args.append(buf)
        else:
            args.append(1)
    try:
        result.run(*args)
    except Exception:
        return None  # data-dependent cores may reject random stimulus
    return {
        "seed": seed,
        "inputs": record_in,
        "outputs": {k: v.tolist() for k, v in record_out.items()},
    }


def materialize(result: FlowResult, root: str | Path) -> Path:
    """Write every artifact of *result* under *root*; returns the path."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)

    (root / "taskgraph.tg").write_text(result.dsl_text)

    # Per-core HLS projects (scripts are re-executable: the C source the
    # script's add_files references sits next to it).
    for name, build in result.cores.items():
        core_dir = root / "hls" / name
        core_dir.mkdir(parents=True, exist_ok=True)
        (core_dir / "script.tcl").write_text(build.hls_tcl.render())
        (core_dir / "directives.tcl").write_text(build.directives_tcl)
        if build.key:
            (core_dir / "cachekey.txt").write_text(build.key + "\n")
        (core_dir / f"{build.result.top}.c").write_text(build.c_source)
        (core_dir / f"{name}.v").write_text(build.result.verilog)
        (core_dir / "csynth.rpt").write_text(build.result.report.render())
        vectors = _csim_vectors(build.result)
        if vectors is not None:
            (core_dir / "csim_vectors.json").write_text(
                json.dumps(vectors, indent=1) + "\n"
            )
    (root / "hls" / "repro_cells.v").write_text(library_cells())

    # System integration.
    sys_dir = root / "vivado"
    sys_dir.mkdir(parents=True, exist_ok=True)
    (sys_dir / "system.tcl").write_text(result.system_tcl.render())
    (sys_dir / "design.dot").write_text(result.design.to_diagram())
    (sys_dir / "address_map.txt").write_text(result.design.address_map.render() + "\n")
    (sys_dir / "bitstream.json").write_text(
        json.dumps(
            {
                "design": result.bitstream.design,
                "part": result.bitstream.part,
                "digest": result.bitstream.digest,
                "achieved_clock_mhz": result.bitstream.achieved_clock_mhz,
                "utilization": {
                    "LUT": result.bitstream.utilization.lut,
                    "FF": result.bitstream.utilization.ff,
                    "RAMB18": result.bitstream.utilization.bram18,
                    "DSP": result.bitstream.utilization.dsp,
                },
            },
            indent=2,
        )
        + "\n"
    )

    # Software layer.
    sw_dir = root / "sw"
    sw_dir.mkdir(parents=True, exist_ok=True)
    for name, content in result.image.sources.items():
        (sw_dir / name).write_text(content)
    sd_dir = root / "sdcard"
    sd_dir.mkdir(parents=True, exist_ok=True)
    (sd_dir / "MANIFEST").write_text(result.image.boot.manifest() + "\n")
    (sd_dir / "devicetree.dts").write_text(result.image.boot.dts)

    # Timing summary (the Fig. 9 input): phases plus the build-engine
    # record — per-core trace, wave schedule, cache hits, wall-clock.
    (root / "timing.json").write_text(
        json.dumps(result.timing.report(), indent=2) + "\n"
    )
    return root
