"""Materialize a flow result to a directory tree — atomically.

Mirrors what the real tool leaves on disk: one Vivado HLS project
directory per core (C source, script, directives, Verilog, report,
csim golden vectors), the system-level tcl, the block-design diagram,
the bitstream metadata, and the ``sdcard/`` + ``sw/`` software layer.

Crash consistency
-----------------
``materialize`` used to write ~20 files straight into ``out/`` with bare
``write_text`` — a crash mid-call left a torn tree that *looked*
complete.  It now stages the whole tree into a ``.stage-<digest>``
sibling directory, writes a ``MANIFEST.json`` (per-file SHA-256 digests
plus a tree-level *artifact digest*) and a ``DONE`` marker, then
promotes the stage into place with directory renames.  Every observable
state is therefore either the old tree, the new tree, or an obviously
incomplete one (no ``DONE``) that :func:`verify_workspace` detects and
repairs.  Re-materializing a result whose artifact digest already sits
promoted is a no-op (counted in ``timing.steps_skipped``), which makes
resumed builds idempotent.

The *artifact digest* covers every file except ``timing.json`` — timing
is run metadata (cache hits, resume counters) that legitimately differs
between an uninterrupted run and a kill/resume pair, while the artifact
set must be byte-identical; ``repro crashcheck`` diffs exactly this
digest.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from pathlib import Path

import numpy as np

from repro.flow.crashpoints import crashpoint
from repro.flow.journal import RunJournal
from repro.flow.orchestrator import FlowResult
from repro.hls.interp import dtype_for
from repro.hls.rtl import library_cells
from repro.util.errors import WorkspaceTorn

MANIFEST_NAME = "MANIFEST.json"
DONE_NAME = "DONE"

#: Run metadata, excluded from the artifact digest (see module docstring).
VOLATILE_FILES = frozenset({"timing.json"})


def _csim_vectors(result, seed: int = 1) -> dict | None:
    """Deterministic stimulus/response vectors for a stream core.

    What an RTL engineer would replay against the generated Verilog:
    every axis input gets a seeded pseudo-random vector; outputs come
    from the csim model.  Cores without stream ports return None.
    """
    iface = result.iface
    if not iface.streams:
        return None
    rng = np.random.default_rng(seed)
    args = []
    record_in: dict[str, list[int]] = {}
    record_out: dict[str, np.ndarray] = {}
    for pname, ptype in result.function.params:
        if pname in result.function.array_params:
            atype = result.function.array_params[pname]
            stream = next((s for s in iface.streams if s.name == pname), None)
            buf = np.zeros(atype.size or 0, dtype=dtype_for(atype.element))
            if stream is not None and stream.direction == "in":
                buf[:] = rng.integers(0, 100, len(buf))
                record_in[pname] = buf.tolist()
            elif stream is not None:
                record_out[pname] = buf
            args.append(buf)
        else:
            args.append(1)
    try:
        result.run(*args)
    except Exception:
        return None  # data-dependent cores may reject random stimulus
    return {
        "seed": seed,
        "inputs": record_in,
        "outputs": {k: v.tolist() for k, v in record_out.items()},
    }


def workspace_files(result: FlowResult) -> dict[str, str]:
    """Every artifact of *result* as ``relative path -> text content``.

    Pure function of the result — computing the tree before touching the
    filesystem is what makes staging, digesting and verification
    possible.
    """
    files: dict[str, str] = {}
    files["taskgraph.tg"] = result.dsl_text

    # Per-core HLS projects (scripts are re-executable: the C source the
    # script's add_files references sits next to it).
    for name, build in result.cores.items():
        core = f"hls/{name}"
        files[f"{core}/script.tcl"] = build.hls_tcl.render()
        files[f"{core}/directives.tcl"] = build.directives_tcl
        if build.key:
            files[f"{core}/cachekey.txt"] = build.key + "\n"
        files[f"{core}/{build.result.top}.c"] = build.c_source
        files[f"{core}/{name}.v"] = build.result.verilog
        files[f"{core}/csynth.rpt"] = build.result.report.render()
        vectors = _csim_vectors(build.result)
        if vectors is not None:
            files[f"{core}/csim_vectors.json"] = json.dumps(vectors, indent=1) + "\n"
    files["hls/repro_cells.v"] = library_cells()

    # System integration.
    files["vivado/system.tcl"] = result.system_tcl.render()
    files["vivado/design.dot"] = result.design.to_diagram()
    files["vivado/address_map.txt"] = result.design.address_map.render() + "\n"
    files["vivado/bitstream.json"] = (
        json.dumps(
            {
                "design": result.bitstream.design,
                "part": result.bitstream.part,
                "digest": result.bitstream.digest,
                "achieved_clock_mhz": result.bitstream.achieved_clock_mhz,
                "utilization": {
                    "LUT": result.bitstream.utilization.lut,
                    "FF": result.bitstream.utilization.ff,
                    "RAMB18": result.bitstream.utilization.bram18,
                    "DSP": result.bitstream.utilization.dsp,
                },
            },
            indent=2,
        )
        + "\n"
    )

    # Software layer.
    for name, content in result.image.sources.items():
        files[f"sw/{name}"] = content
    files["sdcard/MANIFEST"] = result.image.boot.manifest() + "\n"
    files["sdcard/devicetree.dts"] = result.image.boot.dts

    # Timing summary (the Fig. 9 input): phases plus the build-engine
    # record — per-core trace, wave schedule, cache counters, resume
    # counters, wall-clock.  Volatile: excluded from the artifact digest.
    files["timing.json"] = json.dumps(result.timing.report(), indent=2) + "\n"
    return files


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def manifest_for(files: dict[str, str]) -> dict:
    """The ``MANIFEST.json`` payload for a staged tree."""
    digests = {path: _sha256(content) for path, content in sorted(files.items())}
    artifact = hashlib.sha256()
    for path, digest in sorted(digests.items()):
        if path in VOLATILE_FILES:
            continue
        artifact.update(f"{path}\0{digest}\n".encode())
    return {
        "version": 1,
        "artifact_digest": artifact.hexdigest(),
        "files": digests,
    }


def _write_tree(root: Path, files: dict[str, str]) -> None:
    for rel, content in sorted(files.items()):
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)


class WorkspaceStatus:
    """What :func:`verify_workspace` found at a workspace root."""

    def __init__(
        self,
        root: Path,
        state: str,
        *,
        missing: tuple[str, ...] = (),
        mismatched: tuple[str, ...] = (),
        manifest: dict | None = None,
        repaired: bool = False,
    ) -> None:
        self.root = root
        self.state = state  # "ok" | "missing" | "torn"
        self.missing = missing
        self.mismatched = mismatched
        self.manifest = manifest
        self.repaired = repaired

    @property
    def ok(self) -> bool:
        return self.state == "ok"

    @property
    def artifact_digest(self) -> str | None:
        return self.manifest.get("artifact_digest") if self.manifest else None

    def describe(self) -> str:
        if self.ok:
            tail = " (repaired)" if self.repaired else ""
            return f"{self.root}: ok, artifact {self.artifact_digest[:16]}...{tail}"
        detail = []
        if self.missing:
            detail.append(f"missing: {', '.join(self.missing)}")
        if self.mismatched:
            detail.append(f"mismatched: {', '.join(self.mismatched)}")
        return f"{self.root}: {self.state}" + (f" — {'; '.join(detail)}" if detail else "")


def verify_workspace(
    root: str | Path,
    *,
    repair_with: FlowResult | None = None,
    strict: bool = False,
) -> WorkspaceStatus:
    """Check a materialized tree against its own manifest.

    Detects every torn state a crash (or a tamper) can leave: no
    ``MANIFEST.json``, no ``DONE`` marker, a ``DONE`` that disagrees
    with the manifest, files missing from the tree, files whose bytes no
    longer match their recorded digest.  With *repair_with* the torn
    tree is re-materialized from that result; with *strict* a torn tree
    raises :class:`WorkspaceTorn` instead of returning.
    """
    root = Path(root)
    status = _inspect(root)
    if not status.ok and repair_with is not None:
        materialize(repair_with, root)
        status = _inspect(root)
        status.repaired = True
    if strict and not status.ok:
        raise WorkspaceTorn(
            f"workspace at {root} is {status.state}: {status.describe()}",
            root=str(root),
            missing=status.missing,
            mismatched=status.mismatched,
        )
    return status


def _inspect(root: Path) -> WorkspaceStatus:
    if not root.exists():
        return WorkspaceStatus(root, "missing")
    try:
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert isinstance(manifest.get("files"), dict)
    except (OSError, ValueError, AssertionError):
        return WorkspaceStatus(root, "torn", missing=(MANIFEST_NAME,))
    try:
        done = (root / DONE_NAME).read_text().strip()
    except OSError:
        return WorkspaceStatus(root, "torn", missing=(DONE_NAME,), manifest=manifest)
    missing: list[str] = []
    mismatched: list[str] = []
    if done != manifest.get("artifact_digest"):
        mismatched.append(DONE_NAME)
    for rel, digest in sorted(manifest["files"].items()):
        try:
            content = (root / rel).read_text()
        except OSError:
            missing.append(rel)
            continue
        if _sha256(content) != digest:
            mismatched.append(rel)
    state = "ok" if not (missing or mismatched) else "torn"
    return WorkspaceStatus(
        root,
        state,
        missing=tuple(missing),
        mismatched=tuple(mismatched),
        manifest=manifest,
    )


def materialize(
    result: FlowResult, root: str | Path, *, journal: RunJournal | None = None
) -> Path:
    """Write every artifact of *result* under *root*; returns the path.

    Atomic: the tree is staged next to *root* and promoted by rename, so
    a crash at any instant leaves either the previous tree, the new
    tree, or a clearly-incomplete stage that the next run sweeps away.
    When *journal* is given the step rides the run journal like every
    flow step (intent before staging, commit after promotion).
    """
    root = Path(root)
    files = workspace_files(result)
    manifest = manifest_for(files)
    digest = manifest["artifact_digest"]

    if journal is not None:
        journal.step_start("materialize", digest)
    crashpoint("materialize:start")

    existing = _inspect(root)
    if existing.ok and existing.artifact_digest == digest:
        # Same artifacts already promoted — resumed runs skip the write.
        result.timing.steps_skipped += 1
        if journal is not None and not journal.committed("materialize", digest):
            journal.step_commit("materialize", digest)
        crashpoint("materialize:commit")
        return root

    stage = root.parent / f".stage-{digest[:16]}-{root.name}"
    if stage.exists():
        shutil.rmtree(stage)  # leftover of a crashed predecessor
    root.parent.mkdir(parents=True, exist_ok=True)
    _write_tree(stage, files)
    (stage / MANIFEST_NAME).write_text(json.dumps(manifest, indent=1) + "\n")
    (stage / DONE_NAME).write_text(digest + "\n")
    crashpoint("materialize:stage")

    old = root.parent / f".old-{digest[:16]}-{root.name}"
    if old.exists():
        shutil.rmtree(old)  # leftover of a crash between the two renames
    if root.exists():
        root.rename(old)
        crashpoint("materialize:swap")
        stage.rename(root)
        shutil.rmtree(old)
    else:
        stage.rename(root)

    if journal is not None:
        journal.step_commit("materialize", digest)
    crashpoint("materialize:commit")
    return root
