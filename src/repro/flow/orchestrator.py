"""The flow orchestrator: executing a DSL description runs the tool-chain.

:class:`FlowHooks` implements the paper's Section IV-B semantics — every
DSL keyword is an executable function:

1. ``tg nodes``     → a new Vivado project is created;
2. ``tg node``      → a Vivado HLS project opens for that core;
3. ``i`` / ``is``   → an interface directive is appended;
4. ``end``          → HLS synthesis of the core runs;
5. ``tg connect``   → an AXI-Lite attachment is recorded;
6. ``tg link``      → a Link instance opens;
7. ``to``/``end``   → the AXI-Stream connection is recorded;
8. ``tg end_edges`` → integration, tcl generation, the (simulated)
   implementation up to the bitstream, then API/boot generation.

Cores already synthesized in a previous run can be supplied through
``core_cache`` — the case study builds Arch4 first and reuses its cores,
"the generation of the hardware cores is done only once for each
function" (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl.actions import ActionHooks
from repro.dsl.ast import NodeDecl, PortDecl, PortKind, TgGraph
from repro.dsl.codegen import emit_dsl
from repro.dsl.parser import parse_dsl
from repro.dsl.validate import validate_graph
from repro.hls.interfaces import Directive, InterfaceMode, interface
from repro.hls.project import HlsProject, SynthesisResult
from repro.soc.integrator import IntegratedSystem, IntegrationConfig, integrate
from repro.soc.ip import hls_core
from repro.soc.synthesis import Bitstream, run_synthesis
from repro.swgen.petalinux import PetalinuxImage, assemble_image
from repro.tcl.backends import VivadoBackend, Vivado2015_3
from repro.tcl.generate import generate_hls_tcl, generate_system_tcl
from repro.tcl.runner import TclRunner
from repro.tcl.script import TclScript
from repro.flow.timing import FlowTiming, TimingModel
from repro.util.errors import FlowError
from repro.util.text import count_lines


@dataclass(frozen=True)
class FlowConfig:
    """Configuration of one flow execution."""

    backend: VivadoBackend = field(default_factory=Vivado2015_3)
    integration: IntegrationConfig = field(default_factory=IntegrationConfig)
    timing_model: TimingModel = field(default_factory=TimingModel)
    #: Validate the generated tcl by re-executing it and comparing
    #: bitstream digests (slower but machine-checks the scripts).
    check_tcl: bool = True


@dataclass
class CoreBuild:
    """One synthesized core plus its per-core artifacts."""

    name: str
    result: SynthesisResult
    hls_tcl: TclScript
    directives_tcl: str
    modeled_seconds: float
    c_source: str = ""
    reused: bool = False


@dataclass
class FlowResult:
    """Everything one flow execution produced."""

    graph: TgGraph
    dsl_text: str
    cores: dict[str, CoreBuild]
    system: IntegratedSystem
    system_tcl: TclScript
    bitstream: Bitstream
    image: PetalinuxImage
    timing: FlowTiming

    @property
    def design(self):
        return self.system.design


class FlowHooks(ActionHooks):
    """DSL action hooks that drive the tool-chain while parsing."""

    def __init__(
        self,
        c_sources: dict[str, str],
        *,
        extra_directives: dict[str, list[Directive]] | None = None,
        core_cache: dict[str, CoreBuild] | None = None,
        config: FlowConfig | None = None,
    ) -> None:
        self.c_sources = c_sources
        self.extra_directives = extra_directives or {}
        self.core_cache = core_cache or {}
        self.config = config or FlowConfig()
        self.cores: dict[str, CoreBuild] = {}
        self.timing = FlowTiming()
        self._project: HlsProject | None = None
        self.result: FlowResult | None = None

    # -- nodes section: HLS ------------------------------------------------
    def on_nodes_begin(self, graph: TgGraph) -> None:
        # Step 1: "the function nodes creates a new Vivado project".
        self._vivado_project_open = True

    def on_node_begin(self, graph: TgGraph, name: str) -> None:
        # Step 2: a Vivado HLS project for this core.
        if name in self.core_cache:
            self._project = None  # core reused, no HLS project needed
            return
        source = self.c_sources.get(name)
        if source is None:
            raise FlowError(f"no C source supplied for node {name!r}")
        self._project = HlsProject(name).add_files(source).set_top(name)
        for d in self.extra_directives.get(name, []):
            self._project.add_directive(d)

    def on_interface(self, graph: TgGraph, node: str, port: PortDecl) -> None:
        # Step 3: append the interface directive.
        if self._project is None:
            return  # cached core: interfaces already baked in
        mode = (
            InterfaceMode.AXIS if port.kind is PortKind.STREAM else InterfaceMode.S_AXILITE
        )
        self._project.add_directive(interface(node, port.name, mode))

    def on_node_end(self, graph: TgGraph, node: NodeDecl) -> None:
        # Step 4: invoke HLS synthesis for this core.
        if node.name in self.core_cache:
            cached = self.core_cache[node.name]
            self.cores[node.name] = CoreBuild(
                name=node.name,
                result=cached.result,
                hls_tcl=cached.hls_tcl,
                directives_tcl=cached.directives_tcl,
                modeled_seconds=0.0,
                c_source=cached.c_source,
                reused=True,
            )
            self.timing.hls_cores[node.name] = 0.0
            return
        assert self._project is not None
        result = self._project.csynth()
        seconds = self.config.timing_model.hls_core_s(result)
        self.timing.hls_s += seconds
        self.timing.hls_cores[node.name] = seconds
        self.cores[node.name] = CoreBuild(
            name=node.name,
            result=result,
            hls_tcl=generate_hls_tcl(node.name, result),
            directives_tcl=self._project.directives_tcl(),
            modeled_seconds=seconds,
            c_source="\n".join(self._project.sources),
        )
        self._project = None

    # -- edges section: integration -----------------------------------------------
    def on_edges_end(self, graph: TgGraph) -> None:
        # Step 8: execute the project tcl up to the bitstream, then the
        # software layer.
        validate_graph(graph)
        results = {name: build.result for name, build in self.cores.items()}
        system = integrate(graph, results, self.config.integration)
        system_tcl = generate_system_tcl(system, self.config.backend)
        bitstream = run_synthesis(system.design)

        if self.config.check_tcl:
            runner = TclRunner()
            for name, build in self.cores.items():
                runner.register_ip(
                    f"xilinx.com:hls:{name}",
                    lambda cell, params, r=build.result, n=name: hls_core(cell, n, r),
                )
            rebuilt = runner.execute(system_tcl.render())
            if rebuilt.bitstream is None or rebuilt.bitstream.digest != bitstream.digest:
                raise FlowError(
                    "generated tcl does not reproduce the integrated design"
                )

        image = assemble_image(system, bitstream)

        model = self.config.timing_model
        self.timing.scala_s = model.scala_compile_s(count_lines(emit_dsl(graph)))
        self.timing.project_s = model.project_generation_s(system.design)
        self.timing.synth_s = model.synthesis_s(system.design)

        self.result = FlowResult(
            graph=graph,
            dsl_text=emit_dsl(graph),
            cores=self.cores,
            system=system,
            system_tcl=system_tcl,
            bitstream=bitstream,
            image=image,
            timing=self.timing,
        )


def run_flow(
    description: str | TgGraph,
    c_sources: dict[str, str],
    *,
    extra_directives: dict[str, list[Directive]] | None = None,
    core_cache: dict[str, CoreBuild] | None = None,
    config: FlowConfig | None = None,
) -> FlowResult:
    """Execute a task-graph description through the full tool-chain.

    *description* is DSL text (parsed and executed keyword by keyword) or
    an already-built :class:`TgGraph` (re-emitted and executed, so the
    hook sequence is identical either way).
    """
    hooks = FlowHooks(
        c_sources,
        extra_directives=extra_directives,
        core_cache=core_cache,
        config=config,
    )
    text = description if isinstance(description, str) else emit_dsl(description)
    parse_dsl(text, hooks=hooks)
    if hooks.result is None:  # pragma: no cover - parse_dsl raises first
        raise FlowError("flow did not complete")
    return hooks.result
