"""The flow orchestrator: executing a DSL description runs the tool-chain.

:class:`FlowHooks` implements the paper's Section IV-B semantics — every
DSL keyword is an executable function:

1. ``tg nodes``     → a new Vivado project is created;
2. ``tg node``      → a Vivado HLS project opens for that core;
3. ``i`` / ``is``   → an interface directive is appended;
4. ``end``          → HLS synthesis of the core runs;
5. ``tg connect``   → an AXI-Lite attachment is recorded;
6. ``tg link``      → a Link instance opens;
7. ``to``/``end``   → the AXI-Stream connection is recorded;
8. ``tg end_edges`` → integration, tcl generation, the (simulated)
   implementation up to the bitstream, then API/boot generation.

Cores already synthesized in a previous run can be supplied through
``core_cache`` — the case study builds Arch4 first and reuses its cores,
"the generation of the hardware cores is done only once for each
function" (Section VI-B).  Reuse is verified by *content*, not name: a
cached core is taken only when its source, directives and backend match
the node being built (see :mod:`repro.flow.buildcache`), so two cores
that merely share a function name never alias.

With ``FlowConfig(jobs=N)`` the per-core syntheses of step 4 are
deferred and fanned out across a worker pool in topological waves at
``tg end_edges`` (see :mod:`repro.flow.parallel`); with ``cache_dir``
set, artifacts persist in a content-addressed on-disk cache across
processes.  Both paths produce byte-identical artifacts to the serial
default — proven by the differential suite in
``tests/test_flow_parallel.py``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.dsl.actions import ActionHooks
from repro.dsl.ast import NodeDecl, PortDecl, PortKind, TgGraph
from repro.dsl.codegen import emit_dsl
from repro.dsl.parser import parse_dsl
from repro.dsl.validate import validate_graph
from repro.hls import fncache
from repro.hls.interfaces import Directive, InterfaceMode, interface
from repro.hls.project import HlsProject, SynthesisResult
from repro.soc.integrator import IntegratedSystem, IntegrationConfig, integrate
from repro.soc.ip import hls_core
from repro.soc.synthesis import Bitstream, run_synthesis
from repro.swgen.petalinux import PetalinuxImage, assemble_image
from repro.tcl.backends import VivadoBackend, Vivado2015_3
from repro.tcl.generate import generate_hls_tcl, generate_system_tcl
from repro.tcl.runner import TclRunner
from repro.tcl.script import TclScript
from repro.flow.buildcache import ENGINE_VERSION, BuildCache, cache_key
from repro.flow.crashpoints import crashpoint
from repro.flow.journal import RunJournal, stable_digest
from repro.flow.parallel import (
    SynthesisJob,
    modeled_wall_s,
    run_parallel_synthesis,
    topological_waves,
)
from repro.flow.timing import CoreTrace, FlowTiming, TimingModel
from repro.obs.events import BUS as _BUS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.util.errors import FlowError
from repro.util.text import count_lines


def _env_jobs() -> int:
    """Worker-count default, overridable via ``REPRO_FLOW_JOBS`` (CI leg)."""
    try:
        return max(1, int(os.environ.get("REPRO_FLOW_JOBS", "1")))
    except ValueError:
        return 1


def _env_cache_dir() -> str | None:
    """Cache-dir default, overridable via ``REPRO_FLOW_CACHE_DIR``."""
    return os.environ.get("REPRO_FLOW_CACHE_DIR") or None


@dataclass(frozen=True)
class FlowConfig:
    """Configuration of one flow execution."""

    backend: VivadoBackend = field(default_factory=Vivado2015_3)
    integration: IntegrationConfig = field(default_factory=IntegrationConfig)
    timing_model: TimingModel = field(default_factory=TimingModel)
    #: Validate the generated tcl by re-executing it and comparing
    #: bitstream digests (slower but machine-checks the scripts).
    check_tcl: bool = True
    #: Worker count for per-core HLS synthesis; 1 keeps the serial path.
    jobs: int = field(default_factory=_env_jobs)
    #: Directory of the persistent content-addressed artifact cache;
    #: ``None`` disables it.
    cache_dir: str | None = field(default_factory=_env_cache_dir)
    #: Explicit root of the per-function HLS memo store.  ``None`` keeps
    #: the default routing (``<cache_dir>/fn`` when a build cache is
    #: configured, the in-process memo otherwise).  Setting it routes the
    #: sub-core memo *without* enabling the whole-core cache — the DSE
    #: engine shares one persistent function store across candidate
    #: evaluations while every candidate still compiles its own cores,
    #: so directives-only candidates hit the frontend memo.
    fn_cache_dir: str | None = None
    #: Per-core synthesis timeout on the parallel path (``None`` = unbounded).
    core_timeout_s: float | None = None
    #: Extra synthesis attempts before a failing core fails the flow.
    core_retries: int = 0


@dataclass
class CoreBuild:
    """One synthesized core plus its per-core artifacts."""

    name: str
    result: SynthesisResult
    hls_tcl: TclScript
    directives_tcl: str
    modeled_seconds: float
    c_source: str = ""
    reused: bool = False
    #: Content digest of (source, directives, backend) — the cache key.
    key: str = ""


@dataclass
class FlowResult:
    """Everything one flow execution produced."""

    graph: TgGraph
    dsl_text: str
    cores: dict[str, CoreBuild]
    system: IntegratedSystem
    system_tcl: TclScript
    bitstream: Bitstream
    image: PetalinuxImage
    timing: FlowTiming

    @property
    def design(self):
        return self.system.design


class FlowHooks(ActionHooks):
    """DSL action hooks that drive the tool-chain while parsing."""

    def __init__(
        self,
        c_sources: dict[str, str],
        *,
        extra_directives: dict[str, list[Directive]] | None = None,
        core_cache: dict[str, CoreBuild] | None = None,
        config: FlowConfig | None = None,
        build_cache: BuildCache | None = None,
        journal: RunJournal | None = None,
    ) -> None:
        self.c_sources = c_sources
        self.extra_directives = extra_directives or {}
        self.core_cache = core_cache or {}
        self.config = config or FlowConfig()
        if build_cache is None and self.config.cache_dir is not None:
            build_cache = BuildCache(self.config.cache_dir)
        self.build_cache = build_cache
        self.journal = journal
        self.cores: dict[str, CoreBuild] = {}
        self.timing = FlowTiming(jobs=self.config.jobs)
        if journal is not None:
            self.timing.resumed = journal.resumed
            self.timing.crash_recoveries = journal.crash_recoveries
        self._project: HlsProject | None = None
        self._pending: list[SynthesisJob] = []
        self.result: FlowResult | None = None

    # -- nodes section: HLS ------------------------------------------------
    def on_nodes_begin(self, graph: TgGraph) -> None:
        # Step 1: "the function nodes creates a new Vivado project".
        self._vivado_project_open = True

    def on_node_begin(self, graph: TgGraph, name: str) -> None:
        # Step 2: a Vivado HLS project for this core.  The project is
        # always opened — even when a cached core exists — because reuse
        # is decided at ``end`` by comparing content, not names.
        source = self.c_sources.get(name)
        if source is None:
            cached = self.core_cache.get(name)
            if cached is not None and cached.c_source:
                source = cached.c_source  # Section VI-B reuse without re-supplying C
            else:
                raise FlowError(f"no C source supplied for node {name!r}")
        self._project = HlsProject(name).add_files(source).set_top(name)
        for d in self.extra_directives.get(name, []):
            self._project.add_directive(d)

    def on_interface(self, graph: TgGraph, node: str, port: PortDecl) -> None:
        # Step 3: append the interface directive.
        assert self._project is not None
        mode = (
            InterfaceMode.AXIS if port.kind is PortKind.STREAM else InterfaceMode.S_AXILITE
        )
        self._project.add_directive(interface(node, port.name, mode))

    def on_node_end(self, graph: TgGraph, node: NodeDecl) -> None:
        # Step 4: invoke HLS synthesis for this core — unless an entry
        # with the same content digest already exists somewhere.
        project = self._project
        assert project is not None
        self._project = None
        key = project.content_key(self.config.backend.version)

        step = f"hls:{node.name}"
        cached = self.core_cache.get(node.name)
        if cached is not None and self._content_matches(cached, key):
            self._journal_commit(step, key)
            self._reuse(node.name, cached, key, source="memo")
            return

        if self.build_cache is not None:
            hit = self.build_cache.get(key)
            if hit is not None:
                self.timing.cache_hits += 1
                if self.journal is not None and self.journal.committed(step, key):
                    # A prior interrupted run committed this very step —
                    # the cache is serving the journal's write-ahead
                    # promise, so the resume skips the synthesis.
                    self.timing.steps_skipped += 1
                self._journal_commit(step, key)
                self._reuse(node.name, hit, key, source="cache")
                return
            self.timing.cache_misses += 1

        if self.journal is not None:
            self.journal.step_start(step, key)
        crashpoint(f"{step}:start", core=node.name)
        if self.config.jobs > 1:
            self._pending.append(SynthesisJob(node.name, project, key))
            return
        with _BUS.span("flow.step", step, core=node.name):
            result = project.csynth()
        self._finish_core(node.name, result, project, key)

    def _journal_commit(self, step: str, digest: str) -> None:
        """Record a committed step once (idempotent across resumes)."""
        if self.journal is not None and not self.journal.committed(step, digest):
            self.journal.step_commit(step, digest)

    def _content_matches(self, cached: CoreBuild, key: str) -> bool:
        """A name-cache entry is reused only if its content digest agrees."""
        if not cached.c_source:
            return False  # nothing to verify against — never trust a bare name
        cached_key = cached.key or cache_key(
            cached.name,
            cached.c_source,
            cached.directives_tcl,
            self.config.backend.version,
        )
        return cached_key == key

    def _reuse(self, name: str, cached: CoreBuild, key: str, *, source: str) -> None:
        if _BUS.enabled:
            _BUS.emit("flow.step", f"hls:{name}", source=source)
            _METRICS.counter("flow.steps_reused", "steps satisfied without work").inc()
        self.cores[name] = CoreBuild(
            name=name,
            result=cached.result,
            hls_tcl=cached.hls_tcl,
            directives_tcl=cached.directives_tcl,
            modeled_seconds=0.0,
            c_source=cached.c_source,
            reused=True,
            key=key,
        )
        self.timing.hls_cores[name] = 0.0
        self.timing.trace.append(CoreTrace(name, 0.0, source=source))

    def _finish_core(
        self,
        name: str,
        result: SynthesisResult,
        project: HlsProject,
        key: str,
        *,
        wave: int = 0,
        attempts: int = 1,
    ) -> None:
        seconds = self.config.timing_model.hls_core_s(result)
        self.timing.hls_s += seconds
        self.timing.hls_cores[name] = seconds
        self.timing.fn_cache_hits += result.fn_cache_hits
        self.timing.fn_cache_misses += result.fn_cache_misses
        build = CoreBuild(
            name=name,
            result=result,
            hls_tcl=generate_hls_tcl(name, result),
            directives_tcl=project.directives_tcl(),
            modeled_seconds=seconds,
            c_source="\n".join(project.sources),
            key=key,
        )
        self.cores[name] = build
        self.timing.trace.append(
            CoreTrace(
                name,
                seconds,
                source="synth",
                wave=wave,
                attempts=attempts,
                fn_cache_hits=result.fn_cache_hits,
            )
        )
        if self.build_cache is not None:
            self.build_cache.put(key, build)
        # Commit strictly after the artifact is published to the cache —
        # the write-ahead contract a resume relies on.
        self._journal_commit(f"hls:{name}", key)
        if _BUS.enabled:
            _METRICS.counter("flow.steps", "flow steps executed").inc()
        crashpoint(f"hls:{name}:commit", core=name)

    def _flush_pending(self, graph: TgGraph) -> None:
        """Run the deferred syntheses in topological waves over a pool."""
        jobs, self._pending = self._pending, []
        outcomes = run_parallel_synthesis(
            jobs,
            graph,
            workers=self.config.jobs,
            timeout_s=self.config.core_timeout_s,
            retries=self.config.core_retries,
        )
        for job in jobs:  # declaration order — deterministic artifacts
            out = outcomes[job.name]
            self._finish_core(
                job.name,
                out.result,
                job.project,
                job.key,
                wave=out.wave,
                attempts=out.attempts,
            )
        # Deferred cores landed after any cache hits; restore the serial
        # flow's ordering (graph declaration order) everywhere it shows.
        order = [n.name for n in graph.nodes if n.name in self.cores]
        self.cores = {name: self.cores[name] for name in order}
        self.timing.hls_cores = {name: self.timing.hls_cores[name] for name in order}
        by_name = {t.name: t for t in self.timing.trace}
        self.timing.trace = [by_name[name] for name in order]

    # -- edges section: integration -----------------------------------------------
    def on_edges_end(self, graph: TgGraph) -> None:
        # Step 8: execute the project tcl up to the bitstream, then the
        # software layer.
        if self._pending:
            self._flush_pending(graph)
        if self.config.jobs > 1:
            synthesized = {
                t.name: t.seconds for t in self.timing.trace if t.source == "synth"
            }
            waves = topological_waves(graph, [n.name for n in graph.nodes])
            self.timing.hls_wall_s = modeled_wall_s(
                synthesized, waves, self.config.jobs
            )
        else:
            self.timing.hls_wall_s = self.timing.hls_s
        validate_graph(graph)
        results = {name: build.result for name, build in self.cores.items()}

        # Integration is cheap and deterministic, so a resume re-executes
        # it from the (cache-served) cores; the journal boundary still
        # exists so the crash harness can kill the flow exactly here.
        integrate_digest = stable_digest(
            {
                "cores": {name: build.key for name, build in self.cores.items()},
                "backend": self.config.backend.version,
                "integration": repr(self.config.integration),
                "check_tcl": self.config.check_tcl,
            }
        )
        with _BUS.span("flow.step", "integrate"):
            if self.journal is not None:
                self.journal.step_start("integrate", integrate_digest)
            crashpoint("integrate:start")
            system = integrate(graph, results, self.config.integration)
            system_tcl = generate_system_tcl(system, self.config.backend)
            bitstream = run_synthesis(system.design)

            if self.config.check_tcl:
                runner = TclRunner()
                for name, build in self.cores.items():
                    runner.register_ip(
                        f"xilinx.com:hls:{name}",
                        lambda cell, params, r=build.result, n=name: hls_core(
                            cell, n, r
                        ),
                    )
                rebuilt = runner.execute(system_tcl.render())
                if (
                    rebuilt.bitstream is None
                    or rebuilt.bitstream.digest != bitstream.digest
                ):
                    raise FlowError(
                        "generated tcl does not reproduce the integrated design"
                    )
            self._journal_commit("integrate", integrate_digest)
            if _BUS.enabled:
                _METRICS.counter("flow.steps", "flow steps executed").inc()
        crashpoint("integrate:commit")

        swgen_digest = stable_digest(
            {"integrate": integrate_digest, "bitstream": bitstream.digest}
        )
        with _BUS.span("flow.step", "swgen"):
            if self.journal is not None:
                self.journal.step_start("swgen", swgen_digest)
            crashpoint("swgen:start")
            image = assemble_image(
                system,
                bitstream,
                c_sources={name: b.c_source for name, b in self.cores.items()},
            )
            self._journal_commit("swgen", swgen_digest)
            if _BUS.enabled:
                _METRICS.counter("flow.steps", "flow steps executed").inc()
        crashpoint("swgen:commit")

        model = self.config.timing_model
        self.timing.scala_s = model.scala_compile_s(count_lines(emit_dsl(graph)))
        self.timing.project_s = model.project_generation_s(system.design)
        self.timing.synth_s = model.synthesis_s(system.design)

        self.result = FlowResult(
            graph=graph,
            dsl_text=emit_dsl(graph),
            cores=self.cores,
            system=system,
            system_tcl=system_tcl,
            bitstream=bitstream,
            image=image,
            timing=self.timing,
        )


def flow_run_digest(
    text: str,
    c_sources: dict[str, str],
    extra_directives: dict[str, list[Directive]] | None,
    config: FlowConfig,
) -> str:
    """Digest of everything one flow run depends on — the journal header.

    Covers the DSL text, every C source, the extra directives, the
    backend and engine versions *and* the execution config (jobs,
    cache_dir): a journal written under one configuration is never
    resumed under another — a changed config forces a clean rebuild
    instead of stitching incompatible runs together.
    """
    return stable_digest(
        {
            "engine": ENGINE_VERSION,
            "dsl": text,
            "sources": sorted(c_sources.items()),
            "directives": {
                name: [repr(d) for d in dirs]
                for name, dirs in sorted((extra_directives or {}).items())
            },
            "backend": config.backend.version,
            "integration": repr(config.integration),
            "check_tcl": config.check_tcl,
            "jobs": config.jobs,
            "cache_dir": str(config.cache_dir),
            "fn_cache_dir": str(config.fn_cache_dir),
        }
    )


def run_flow(
    description: str | TgGraph,
    c_sources: dict[str, str],
    *,
    extra_directives: dict[str, list[Directive]] | None = None,
    core_cache: dict[str, CoreBuild] | None = None,
    config: FlowConfig | None = None,
    build_cache: BuildCache | None = None,
    journal: RunJournal | str | os.PathLike | None = None,
) -> FlowResult:
    """Execute a task-graph description through the full tool-chain.

    *description* is DSL text (parsed and executed keyword by keyword) or
    an already-built :class:`TgGraph` (re-emitted and executed, so the
    hook sequence is identical either way).  *build_cache* shares one
    in-process :class:`BuildCache` across runs; otherwise
    ``config.cache_dir`` (or ``REPRO_FLOW_CACHE_DIR``) opens one per run.

    *journal* (a :class:`RunJournal` or a path for one) makes the run
    crash-safe: every step is recorded write-ahead, so a killed run can
    be continued with :func:`resume_flow` — committed steps are served
    from the content-addressed cache and only the interrupted tail
    re-executes.
    """
    config = config or FlowConfig()
    text = description if isinstance(description, str) else emit_dsl(description)
    if journal is not None and not isinstance(journal, RunJournal):
        journal = RunJournal(journal)
    if journal is not None:
        journal.begin(flow_run_digest(text, c_sources, extra_directives, config))
    hooks = FlowHooks(
        c_sources,
        extra_directives=extra_directives,
        core_cache=core_cache,
        config=config,
        build_cache=build_cache,
        journal=journal,
    )
    # Persist the sub-core per-function memo next to (and under) the
    # whole-core objects for the duration of this run: a whole-core miss
    # still reuses every unchanged function from previous builds.  An
    # explicit ``fn_cache_dir`` overrides that routing — the DSE engine
    # points many build-cache-less flows at one shared function store.
    if config.fn_cache_dir is not None:
        fn_dir = Path(config.fn_cache_dir)
    elif config.cache_dir is not None:
        fn_dir = Path(config.cache_dir) / "fn"
    else:
        fn_dir = None
    with fncache.routed(fn_dir):
        parse_dsl(text, hooks=hooks)
    if hooks.result is None:  # pragma: no cover - parse_dsl raises first
        raise FlowError("flow did not complete")
    return hooks.result


def resume_flow(
    description: str | TgGraph,
    c_sources: dict[str, str],
    *,
    journal: RunJournal | str | os.PathLike,
    extra_directives: dict[str, list[Directive]] | None = None,
    core_cache: dict[str, CoreBuild] | None = None,
    config: FlowConfig | None = None,
    build_cache: BuildCache | None = None,
) -> FlowResult:
    """Continue an interrupted :func:`run_flow` from its run journal.

    Semantically identical to calling :func:`run_flow` with the same
    inputs and journal — the journal decides what can be skipped: steps
    it committed (with matching input digests) are satisfied from the
    content-addressed cache, the interrupted tail re-executes, and the
    result is byte-identical to an uninterrupted run (proven per journal
    boundary by ``repro crashcheck``).  If the inputs or config changed
    since the interrupted run, the journal digest mismatches and the
    flow rebuilds cleanly from scratch instead of reusing stale state.
    """
    return run_flow(
        description,
        c_sources,
        extra_directives=extra_directives,
        core_cache=core_cache,
        config=config,
        build_cache=build_cache,
        journal=journal,
    )
