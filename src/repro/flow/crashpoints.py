"""Deterministic crash-injection points for the flow process.

PR 2 injected faults into the *simulated SoC*; this module injects
crashes into the *flow process itself*, so the journal/workspace/cache
crash-consistency machinery can be proven, not just argued.  A
:class:`CrashPlan` arms exactly one *site* — a named point at a journal
boundary — and the flow dies there, either by raising
:class:`~repro.util.errors.FlowInterrupted` (in-process harnesses) or by
``os._exit`` (real ``kill -9`` semantics: no ``finally`` blocks, no
atexit, nothing flushed that was not already durable).

Sites mirror the journal's step taxonomy: every step *S* has ``S:start``
(the intent record is durable, the work is lost) and ``S:commit`` (the
artifact is published, the run dies before finishing).  Workspace
materialization adds ``materialize:stage`` (the staging tree is fully
written but not yet promoted) and ``materialize:swap`` (inside the
promotion's rename window — the nastiest torn state).

Arming is explicit (:func:`arm` / the :func:`armed` context manager) or
environment-driven — ``REPRO_FLOW_CRASH_AT=<site>[@<n>]`` kills the
*n*-th visit of the site (default first) and
``REPRO_FLOW_CRASH_MODE=exit`` switches to hard process exit — so a
subprocess harness can kill an unmodified ``repro build``.  Like
``sim/faults.py``, plans can also be drawn from a seed: the same seed
over the same site inventory always arms the same crash.
"""

from __future__ import annotations

import os
import random
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from repro.util.errors import FlowInterrupted

ENV_SITE = "REPRO_FLOW_CRASH_AT"
ENV_MODE = "REPRO_FLOW_CRASH_MODE"

#: Exit status used in ``exit`` mode — distinguishable from argparse (2)
#: and from a Python traceback (1), so harnesses can assert the kill.
CRASH_EXIT_CODE = 70


@dataclass(frozen=True)
class CrashPlan:
    """One armed crash: die at the *hit*-th visit of *site*."""

    site: str
    hit: int = 1
    #: ``raise`` (FlowInterrupted), ``exit`` (os._exit, no cleanup),
    #: ``kill`` (SIGKILL to self — the real signal, for multi-process
    #: chaos), or ``stop`` (SIGSTOP to self: the process freezes at the
    #: boundary until something sends SIGCONT, then execution continues
    #: exactly where it paused — the lease-expiry/fencing scenario).
    mode: str = "raise"

    @classmethod
    def random(cls, seed: int, sites: list[str], *, mode: str = "raise") -> "CrashPlan":
        """A seeded plan over a site inventory — same seed, same crash."""
        rng = random.Random(seed)
        return cls(site=rng.choice(sorted(sites)), mode=mode)

    def describe(self) -> str:
        return f"{self.site}@{self.hit} ({self.mode})"


_armed: CrashPlan | None = None
_visits: dict[str, int] = {}

#: Optional per-process boundary hook, called at *every* crashpoint
#: visit (after any armed crash fires and, for ``stop`` mode, after the
#: process is resumed).  The cluster replica installs its lease fence
#: here so ownership is re-validated at every journal boundary — in
#: particular, a SIGSTOPped replica that wakes up re-checks *inside*
#: the boundary it paused at, before touching another byte of shared
#: state.  One job executes at a time per replica process (workers=1),
#: so a single process-global hook is sufficient.
_boundary_hook: Callable[[str], None] | None = None


def set_boundary_hook(hook: Callable[[str], None] | None) -> None:
    """Install (or clear, with ``None``) the process boundary hook."""
    global _boundary_hook
    _boundary_hook = hook


def arm(plan: CrashPlan | None) -> None:
    """Arm *plan* (or disarm with ``None``) and reset the visit counters."""
    global _armed
    _armed = plan
    _visits.clear()


def disarm() -> None:
    arm(None)


@contextmanager
def armed(plan: CrashPlan):
    """Arm *plan* for the duration of the block; always disarms after."""
    arm(plan)
    try:
        yield plan
    finally:
        disarm()


def _env_plan() -> CrashPlan | None:
    spec = os.environ.get(ENV_SITE)
    if not spec:
        return None
    site, _, hit = spec.partition("@")
    try:
        n = max(1, int(hit)) if hit else 1
    except ValueError:
        n = 1
    mode = os.environ.get(ENV_MODE) or "raise"
    if mode not in ("raise", "exit", "kill", "stop"):
        mode = "raise"
    return CrashPlan(site=site, hit=n, mode=mode)


def crashpoint(site: str, *, core: str | None = None) -> None:
    """Die here iff an armed plan names this *site* (and visit count).

    Called by the flow at every journal boundary; a no-op unless a plan
    is armed in-process or through the environment, so production runs
    pay one dict lookup per boundary.
    """
    plan = _armed if _armed is not None else _env_plan()
    if plan is not None:
        _visits[site] = _visits.get(site, 0) + 1
        if site == plan.site and _visits[site] == plan.hit:
            # Signals are sent thread-directed (pthread_kill to *this*
            # thread), not process-directed (os.kill): a process-directed
            # signal is only pending after kill() returns, so the caller
            # could race several lines — even a whole journal commit —
            # past the crashpoint before the group stop/kill lands.
            # Thread-directed delivery happens at this very syscall's
            # exit, freezing or killing the flow exactly here.
            if plan.mode == "exit":
                os._exit(CRASH_EXIT_CODE)  # a real kill: nothing else runs
            elif plan.mode == "kill":
                signal.pthread_kill(threading.get_ident(), signal.SIGKILL)
            elif plan.mode == "stop":
                # Freeze right here; on SIGCONT execution resumes on the
                # next line — which runs the boundary hook below, so a
                # resurrected replica is fenced before leaving the
                # boundary it was paused at.
                signal.pthread_kill(threading.get_ident(), signal.SIGSTOP)
            else:
                raise FlowInterrupted(
                    f"flow killed at crash-point {site!r}", step=site, core=core
                )
    if _boundary_hook is not None:
        _boundary_hook(site)


def flow_sites(core_names: list[str]) -> list[str]:
    """Every journal boundary of ``run_flow`` for these cores, in order."""
    sites: list[str] = []
    for name in core_names:
        sites += [f"hls:{name}:start", f"hls:{name}:commit"]
    sites += ["integrate:start", "integrate:commit", "swgen:start", "swgen:commit"]
    return sites


def workspace_sites() -> list[str]:
    """The journal boundaries of :func:`repro.flow.workspace.materialize`."""
    return ["materialize:start", "materialize:stage", "materialize:commit"]


def all_sites(core_names: list[str]) -> list[str]:
    """The kill-at-every-journal-boundary matrix for one architecture."""
    return flow_sites(core_names) + workspace_sites()


__all__ = [
    "CRASH_EXIT_CODE",
    "CrashPlan",
    "all_sites",
    "arm",
    "armed",
    "crashpoint",
    "disarm",
    "flow_sites",
    "set_boundary_hook",
    "workspace_sites",
]
