"""SDSoC-like baseline flow (paper Section VII comparison).

Xilinx SDSoC lets the designer tag C functions for hardware; it then
"instantiates a DMA component for each of the [array] parameters",
which "generally leads to unnecessarily increase the resource
requirements".  This module models that policy: every tagged function
becomes a stream core whose array parameters each get their own
``'soc`` link, integrated with ``one_dma_per_stream=True``.  The
repro tool's flow, by contrast, lets the designer specify a single
input channel (and write the access pattern in the runtime code).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsl.ast import SOC, LinkEdge, NodeDecl, PortDecl, PortKind, TgGraph
from repro.hls.interfaces import InterfaceMode, interface
from repro.hls.project import SynthesisResult, synthesize_function
from repro.hls.resources import ResourceUsage
from repro.soc.integrator import IntegratedSystem, IntegrationConfig, integrate
from repro.soc.synthesis import Bitstream, run_synthesis
from repro.util.errors import FlowError


@dataclass
class SdsocResult:
    """Output of the baseline flow."""

    system: IntegratedSystem
    bitstream: Bitstream
    dma_count: int

    @property
    def resources(self) -> ResourceUsage:
        return self.system.design.total_resources()


def sdsoc_flow(
    functions: dict[str, str],
    hw: set[str] | frozenset[str],
    *,
    design_name: str = "sdsoc",
) -> SdsocResult:
    """Run the SDSoC-like flow: tag *hw* functions from *functions*.

    Each array parameter of a tagged function becomes its own AXI-Stream
    port with a dedicated DMA, reproducing the per-parameter data movers
    SDSoC instantiates.
    """
    missing = set(hw) - set(functions)
    if missing:
        raise FlowError(f"tagged functions without source: {sorted(missing)}")

    graph = TgGraph(design_name)
    cores: dict[str, SynthesisResult] = {}
    for name in sorted(hw):
        source = functions[name]
        # Probe-synthesize to discover the parameter list.
        probe = synthesize_function(source, name)
        array_params = list(probe.function.array_params)
        if not array_params:
            # Scalar-only function: plain AXI-Lite core.
            cores[name] = probe
            graph.nodes.append(
                NodeDecl(
                    name,
                    tuple(
                        PortDecl(p, PortKind.LITE)
                        for p, _ in probe.function.params
                    )
                    + ((PortDecl("return", PortKind.LITE),) if probe.function.ret.bits else ()),
                )
            )
            from repro.dsl.ast import ConnectEdge

            graph.edges.append(ConnectEdge(name))
            continue
        directives = [interface(name, p, InterfaceMode.AXIS) for p in array_params]
        result = synthesize_function(source, name, directives)
        cores[name] = result
        ports = tuple(PortDecl(p, PortKind.STREAM) for p in array_params)
        graph.nodes.append(NodeDecl(name, ports))
        for p in array_params:
            stream = result.iface.stream(p)
            if stream.direction == "in":
                graph.edges.append(LinkEdge(SOC, (name, p)))
            else:
                graph.edges.append(LinkEdge((name, p), SOC))

    system = integrate(
        graph,
        cores,
        IntegrationConfig(one_dma_per_stream=True, design_name=f"{design_name}_bd"),
    )
    dma_count = sum(1 for c in system.design.cells.values() if "axi_dma" in c.vlnv)
    return SdsocResult(system, run_synthesis(system.design), dma_count)
