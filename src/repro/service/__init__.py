"""Multi-tenant build service: job daemon + robustness + chaos harness.

``repro serve`` runs a :class:`~repro.service.daemon.BuildService`
behind a unix-socket JSON-lines API; ``repro submit`` is its client;
``repro servicecheck`` is the kill-the-daemon chaos campaign proving
the recovery story end to end.
"""

from repro.service.chaos import (
    ReplicaCheckReport,
    ServiceCheckReport,
    default_submissions,
    run_replicacheck,
    run_servicecheck,
    service_sites,
)
from repro.service.cluster import ClusterReplica, spawn_replica
from repro.service.daemon import (
    BuildService,
    ServiceClient,
    ServiceServer,
    UnknownJob,
)
from repro.service.leases import (
    Fence,
    FencedWrite,
    Lease,
    LeaseLost,
    LeaseManager,
)
from repro.service.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobRejected,
    JobSpec,
    SimSpec,
)
from repro.service.queueing import FairScheduler
from repro.service.robust import (
    BreakerOpen,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)
from repro.service.store import JobStore

__all__ = [
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "BreakerOpen",
    "BuildService",
    "CircuitBreaker",
    "ClusterReplica",
    "Deadline",
    "DeadlineExceeded",
    "FairScheduler",
    "Fence",
    "FencedWrite",
    "JobRecord",
    "JobRejected",
    "JobSpec",
    "JobStore",
    "Lease",
    "LeaseLost",
    "LeaseManager",
    "ReplicaCheckReport",
    "RetryPolicy",
    "ServiceCheckReport",
    "ServiceClient",
    "ServiceServer",
    "SimSpec",
    "UnknownJob",
    "default_submissions",
    "run_replicacheck",
    "run_servicecheck",
    "service_sites",
    "spawn_replica",
]
