"""Durable on-disk state of the build service.

Layout under one service root::

    <root>/cache/                          shared content-addressed BuildCache
    <root>/cache/tenants/<t>/refs/<key>    per-tenant object refs (see buildcache)
    <root>/tenants/<t>/jobs/<job>/job.json      durable admission intent
    <root>/tenants/<t>/jobs/<job>/journal.jsonl write-ahead run journal
    <root>/tenants/<t>/jobs/<job>/out/          materialized workspace
    <root>/tenants/<t>/jobs/<job>/sim.json      simulation record (pre-commit)
    <root>/tenants/<t>/jobs/<job>/result.json   terminal DONE record
    <root>/tenants/<t>/jobs/<job>/failed.json   terminal FAILED record
    <root>/index/<content_digest>.json          global warm-serving index

``job.json`` is the service-level write-ahead intent: it is written —
fsynced, then atomically renamed into place — *before* the job enters
the scheduler, so a daemon killed at any instant can reconstruct its
whole queue from disk.  Recovery classifies each job directory by what
survived: a terminal record means the job is re-served from its own
durable result (*replay*); a journal without a terminal record means
the job died mid-flight and resumes through
:func:`~repro.flow.orchestrator.resume_flow` (*resume*); ``job.json``
alone means the job never started and is simply re-queued.

The global index maps a :meth:`~repro.service.jobs.JobSpec.content_digest`
to one completed job's workspace, enabling **warm serving**: when the
executor pool is saturated or a circuit breaker is open, an identical
job (any tenant — content-addressed identity makes that safe) is served
by copying the verified workspace read-only instead of executing.
"""

from __future__ import annotations

import json
import os
import shutil
import stat
from dataclasses import dataclass
from pathlib import Path

from repro.flow.buildcache import BuildCache
from repro.flow.workspace import verify_workspace
from repro.service.jobs import DONE, FAILED, JobRecord, JobSpec

_JOB_FILE = "job.json"
_JOURNAL_FILE = "journal.jsonl"
_RESULT_FILE = "result.json"
_FAILED_FILE = "failed.json"
_SIM_FILE = "sim.json"
_OUT_DIR = "out"


def _durable_write(path: Path, payload: dict) -> None:
    """Write JSON atomically: temp file, fsync, rename, fsync dir."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".tmp-{path.name}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=1)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dirfd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dirfd)
    finally:
        os.close(dirfd)


def _read_json(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


@dataclass
class JobScan:
    """One job directory as recovery classified it."""

    tenant: str
    job_id: str
    spec: JobSpec
    #: "done" | "failed" | "inflight" | "queued"
    phase: str
    record: JobRecord | None = None


class JobStore:
    """Filesystem layout + durability rules of the service root."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.cache_root = self.root / "cache"
        self.tenants_root = self.root / "tenants"
        self.index_root = self.root / "index"

    # -- paths -------------------------------------------------------------
    def job_dir(self, tenant: str, job_id: str) -> Path:
        return self.tenants_root / tenant / "jobs" / job_id

    def journal_path(self, tenant: str, job_id: str) -> Path:
        return self.job_dir(tenant, job_id) / _JOURNAL_FILE

    def out_dir(self, tenant: str, job_id: str) -> Path:
        return self.job_dir(tenant, job_id) / _OUT_DIR

    def sim_path(self, tenant: str, job_id: str) -> Path:
        return self.job_dir(tenant, job_id) / _SIM_FILE

    def cache_for(self, tenant: str) -> BuildCache:
        """The shared object store viewed through *tenant*'s namespace."""
        return BuildCache(self.cache_root, namespace=tenant)

    # -- admission intent --------------------------------------------------
    def save_spec(self, tenant: str, job_id: str, spec: JobSpec) -> None:
        """Durably record the admission intent — before the queue sees it."""
        _durable_write(
            self.job_dir(tenant, job_id) / _JOB_FILE,
            {
                "tenant": tenant,
                "job_id": job_id,
                "content_digest": spec.content_digest(),
                "spec": spec.as_dict(),
            },
        )

    def load_spec(self, tenant: str, job_id: str) -> JobSpec | None:
        data = _read_json(self.job_dir(tenant, job_id) / _JOB_FILE)
        if data is None:
            return None
        return JobSpec.from_dict(data["spec"])

    # -- terminal records --------------------------------------------------
    def write_terminal(self, record: JobRecord, *, content_digest: str) -> None:
        """Durably publish a terminal record; DONE jobs also index
        themselves for warm serving."""
        name = _RESULT_FILE if record.state == DONE else _FAILED_FILE
        _durable_write(
            self.job_dir(record.tenant, record.job_id) / name,
            {"content_digest": content_digest, "record": record.as_dict()},
        )
        if record.state == DONE:
            _durable_write(
                self.index_root / f"{content_digest}.json",
                {
                    "tenant": record.tenant,
                    "job_id": record.job_id,
                    "artifact_digest": record.artifact_digest,
                    "sim_digest": record.sim_digest,
                },
            )

    def load_terminal(self, tenant: str, job_id: str) -> JobRecord | None:
        for name in (_RESULT_FILE, _FAILED_FILE):
            data = _read_json(self.job_dir(tenant, job_id) / name)
            if data is not None:
                return JobRecord(**data["record"])
        return None

    # -- warm serving ------------------------------------------------------
    def warm_entry(self, content_digest: str) -> dict | None:
        """The index entry for *content_digest*, verified against disk."""
        entry = _read_json(self.index_root / f"{content_digest}.json")
        if entry is None:
            return None
        src = self.out_dir(entry["tenant"], entry["job_id"])
        status = verify_workspace(src)
        if not status.ok or status.artifact_digest != entry["artifact_digest"]:
            return None  # stale or torn — never serve it
        return entry

    def serve_warm(self, content_digest: str, tenant: str, job_id: str) -> dict | None:
        """Copy a verified identical workspace into this job — read-only.

        Returns the index entry served from, or ``None`` when no
        verified warm artifact exists.  The copy is marked read-only
        file by file: a degraded serving is explicitly not a writable
        build workspace.
        """
        entry = self.warm_entry(content_digest)
        if entry is None:
            return None
        src = self.out_dir(entry["tenant"], entry["job_id"])
        dest = self.out_dir(tenant, job_id)
        if dest.exists():
            shutil.rmtree(dest)
        dest.parent.mkdir(parents=True, exist_ok=True)
        stage = dest.parent / f".warm-{content_digest[:16]}"
        if stage.exists():
            shutil.rmtree(stage)
        shutil.copytree(src, stage)
        for path in stage.rglob("*"):
            if path.is_file():
                path.chmod(stat.S_IRUSR | stat.S_IRGRP | stat.S_IROTH)
        stage.rename(dest)
        # Copy the sim record too, when the source job had one.
        src_sim = self.sim_path(entry["tenant"], entry["job_id"])
        sim = _read_json(src_sim)
        if sim is not None:
            _durable_write(self.sim_path(tenant, job_id), sim)
        return entry

    # -- recovery ----------------------------------------------------------
    def scan(self) -> list[JobScan]:
        """Classify every job directory for daemon recovery.

        Deterministic order (tenant, then job id) so a recovered daemon
        re-queues work in a stable sequence.
        """
        scans: list[JobScan] = []
        if not self.tenants_root.exists():
            return scans
        for tenant_dir in sorted(self.tenants_root.iterdir()):
            jobs_dir = tenant_dir / "jobs"
            if not jobs_dir.is_dir():
                continue
            for job_dir in sorted(jobs_dir.iterdir()):
                tenant, job_id = tenant_dir.name, job_dir.name
                spec = self.load_spec(tenant, job_id)
                if spec is None:
                    continue  # torn admission intent — the submit never ACKed
                record = self.load_terminal(tenant, job_id)
                if record is not None:
                    phase = "done" if record.state == DONE else "failed"
                elif (job_dir / _JOURNAL_FILE).exists():
                    phase = "inflight"
                else:
                    phase = "queued"
                scans.append(JobScan(tenant, job_id, spec, phase, record))
        return scans


__all__ = ["JobScan", "JobStore"]
