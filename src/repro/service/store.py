"""Durable on-disk state of the build service.

Layout under one service root::

    <root>/cache/                          shared content-addressed BuildCache
    <root>/cache/tenants/<t>/refs/<key>    per-tenant object refs (see buildcache)
    <root>/tenants/<t>/jobs/<job>/job.json      durable admission intent
    <root>/tenants/<t>/jobs/<job>/journal.jsonl write-ahead run journal
    <root>/tenants/<t>/jobs/<job>/out/          materialized workspace
    <root>/tenants/<t>/jobs/<job>/sim.json      simulation record (pre-commit)
    <root>/tenants/<t>/jobs/<job>/result.json   terminal DONE record
    <root>/tenants/<t>/jobs/<job>/failed.json   terminal FAILED record
    <root>/index/<content_digest>.json          global warm-serving index

``job.json`` is the service-level write-ahead intent: it is written —
fsynced, then atomically renamed into place — *before* the job enters
the scheduler, so a daemon killed at any instant can reconstruct its
whole queue from disk.  Recovery classifies each job directory by what
survived: a terminal record means the job is re-served from its own
durable result (*replay*); a journal without a terminal record means
the job died mid-flight and resumes through
:func:`~repro.flow.orchestrator.resume_flow` (*resume*); ``job.json``
alone means the job never started and is simply re-queued.

The global index maps a :meth:`~repro.service.jobs.JobSpec.content_digest`
to one completed job's workspace, enabling **warm serving**: when the
executor pool is saturated or a circuit breaker is open, an identical
job (any tenant — content-addressed identity makes that safe) is served
by copying the verified workspace read-only instead of executing.
"""

from __future__ import annotations

import json
import os
import shutil
import stat
from dataclasses import dataclass
from pathlib import Path

from repro.flow.buildcache import BuildCache
from repro.flow.journal import fsync_dir
from repro.flow.workspace import verify_workspace
from repro.service.jobs import DONE, JobRecord, JobSpec
from repro.service.leases import Fence

_JOB_FILE = "job.json"
_JOURNAL_FILE = "journal.jsonl"
_RESULT_FILE = "result.json"
_FAILED_FILE = "failed.json"
_SIM_FILE = "sim.json"
_OUT_DIR = "out"


def _durable_write(path: Path, payload: dict) -> None:
    """Write JSON atomically: temp file, fsync, rename, fsync dir."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".tmp-{path.name}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=1)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)


def _durable_publish_excl(path: Path, payload: dict, *, suffix: str) -> bool:
    """Durably create *path* if and only if it does not exist yet.

    The multi-replica publish primitive: the payload is fully written
    and fsynced to a temp file, then ``os.link``ed into place — an
    atomic create-if-absent, so of any number of racing publishers
    exactly the first wins and no reader ever sees a torn record.
    Returns ``False`` when *path* already existed (the caller lost).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".tmp-{suffix}-{path.name}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=1)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    try:
        os.link(tmp, path)
    except FileExistsError:
        return False
    finally:
        os.unlink(tmp)
    fsync_dir(path.parent)
    return True


def _read_json(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


@dataclass
class JobScan:
    """One job directory as recovery classified it."""

    tenant: str
    job_id: str
    spec: JobSpec
    #: "done" | "failed" | "inflight" | "queued"
    phase: str
    record: JobRecord | None = None
    #: Admission sequence from ``job.json`` — recovery and the cluster
    #: claim loop walk jobs in the order clients were admitted.
    order: int = 0


class JobStore:
    """Filesystem layout + durability rules of the service root."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.cache_root = self.root / "cache"
        self.tenants_root = self.root / "tenants"
        self.index_root = self.root / "index"

    # -- paths -------------------------------------------------------------
    def job_dir(self, tenant: str, job_id: str) -> Path:
        return self.tenants_root / tenant / "jobs" / job_id

    def journal_path(self, tenant: str, job_id: str) -> Path:
        return self.job_dir(tenant, job_id) / _JOURNAL_FILE

    def out_dir(self, tenant: str, job_id: str) -> Path:
        return self.job_dir(tenant, job_id) / _OUT_DIR

    def sim_path(self, tenant: str, job_id: str) -> Path:
        return self.job_dir(tenant, job_id) / _SIM_FILE

    def cache_for(self, tenant: str) -> BuildCache:
        """The shared object store viewed through *tenant*'s namespace."""
        return BuildCache(self.cache_root, namespace=tenant)

    # -- admission intent --------------------------------------------------
    def save_spec(
        self, tenant: str, job_id: str, spec: JobSpec, *, order: int = 0
    ) -> bool:
        """Durably record the admission intent — before the queue sees it.

        First-writer-wins: the job id is content-addressed, so a
        resubmission (lost ACK, different replica, restarted client)
        carries byte-identical intent — an existing ``job.json`` is left
        untouched, preserving the original admission *order*.  Returns
        ``True`` when this call created the intent.
        """
        path = self.job_dir(tenant, job_id) / _JOB_FILE
        if path.exists():
            return False
        return _durable_publish_excl(
            path,
            {
                "tenant": tenant,
                "job_id": job_id,
                "order": order,
                "content_digest": spec.content_digest(),
                "spec": spec.as_dict(),
            },
            suffix="spec",
        )

    def load_spec(self, tenant: str, job_id: str) -> JobSpec | None:
        data = _read_json(self.job_dir(tenant, job_id) / _JOB_FILE)
        if data is None:
            return None
        return JobSpec.from_dict(data["spec"])

    # -- terminal records --------------------------------------------------
    def write_terminal(
        self,
        record: JobRecord,
        *,
        content_digest: str,
        fence: Fence | None = None,
    ) -> None:
        """Durably publish a terminal record; DONE jobs also index
        themselves for warm serving.

        With a *fence* (multi-replica execution) the publish is guarded
        twice: the fencing token is validated against the on-disk lease
        (stale ⇒ :class:`~repro.service.leases.FencedWrite`, counted in
        ``service.fenced_writes_total``), and the record itself is
        created with link-based first-writer-wins semantics — even a
        replica that revalidates and then stalls inside the publish
        window cannot clobber or duplicate an already-published result.
        Only the winning publisher updates the warm-serving index.
        """
        name = _RESULT_FILE if record.state == DONE else _FAILED_FILE
        path = self.job_dir(record.tenant, record.job_id) / name
        payload = {"content_digest": content_digest, "record": record.as_dict()}
        if fence is None:
            _durable_write(path, payload)
        else:
            fence.validate()
            if not _durable_publish_excl(
                path, payload, suffix=fence.lease.replica
            ):
                fence.rejected("already-published")
        if record.state == DONE:
            _durable_write(
                self.index_root / f"{content_digest}.json",
                {
                    "tenant": record.tenant,
                    "job_id": record.job_id,
                    "artifact_digest": record.artifact_digest,
                    "sim_digest": record.sim_digest,
                },
            )

    def load_terminal(self, tenant: str, job_id: str) -> JobRecord | None:
        for name in (_RESULT_FILE, _FAILED_FILE):
            data = _read_json(self.job_dir(tenant, job_id) / name)
            if data is not None:
                return JobRecord(**data["record"])
        return None

    # -- warm serving ------------------------------------------------------
    def warm_entry(self, content_digest: str) -> dict | None:
        """The index entry for *content_digest*, verified against disk."""
        entry = _read_json(self.index_root / f"{content_digest}.json")
        if entry is None:
            return None
        src = self.out_dir(entry["tenant"], entry["job_id"])
        status = verify_workspace(src)
        if not status.ok or status.artifact_digest != entry["artifact_digest"]:
            return None  # stale or torn — never serve it
        return entry

    def serve_warm(self, content_digest: str, tenant: str, job_id: str) -> dict | None:
        """Copy a verified identical workspace into this job — read-only.

        Returns the index entry served from, or ``None`` when no
        verified warm artifact exists.  The copy is marked read-only
        file by file: a degraded serving is explicitly not a writable
        build workspace.
        """
        entry = self.warm_entry(content_digest)
        if entry is None:
            return None
        src = self.out_dir(entry["tenant"], entry["job_id"])
        dest = self.out_dir(tenant, job_id)
        if dest.exists():
            shutil.rmtree(dest)
        dest.parent.mkdir(parents=True, exist_ok=True)
        stage = dest.parent / f".warm-{content_digest[:16]}"
        if stage.exists():
            shutil.rmtree(stage)
        shutil.copytree(src, stage)
        for path in stage.rglob("*"):
            if path.is_file():
                path.chmod(stat.S_IRUSR | stat.S_IRGRP | stat.S_IROTH)
        stage.rename(dest)
        # Copy the sim record too, when the source job had one.
        src_sim = self.sim_path(entry["tenant"], entry["job_id"])
        sim = _read_json(src_sim)
        if sim is not None:
            _durable_write(self.sim_path(tenant, job_id), sim)
        return entry

    # -- recovery ----------------------------------------------------------
    def scan(self) -> list[JobScan]:
        """Classify every job directory for recovery and work stealing.

        Deterministic order — admission sequence first (recovered jobs
        re-enter the queue in the order clients were admitted), tenant
        and job id as tie-breakers — so a recovered daemon or a replica
        fleet walks the backlog in one stable sequence.
        """
        scans: list[JobScan] = []
        if not self.tenants_root.exists():
            return scans
        for tenant_dir in sorted(self.tenants_root.iterdir()):
            jobs_dir = tenant_dir / "jobs"
            if not jobs_dir.is_dir():
                continue
            for job_dir in sorted(jobs_dir.iterdir()):
                tenant, job_id = tenant_dir.name, job_dir.name
                data = _read_json(job_dir / _JOB_FILE)
                if data is None:
                    continue  # torn admission intent — the submit never ACKed
                try:
                    spec = JobSpec.from_dict(data["spec"])
                except (KeyError, TypeError, ValueError):
                    continue
                record = self.load_terminal(tenant, job_id)
                if record is not None:
                    phase = "done" if record.state == DONE else "failed"
                elif (job_dir / _JOURNAL_FILE).exists():
                    phase = "inflight"
                else:
                    phase = "queued"
                scans.append(
                    JobScan(
                        tenant, job_id, spec, phase, record,
                        order=int(data.get("order", 0)),
                    )
                )
        scans.sort(key=lambda s: (s.order, s.tenant, s.job_id))
        return scans


__all__ = ["JobScan", "JobStore"]
