"""Job model of the multi-tenant build service.

A *job* is one client request: build a DSL design (plus its C sources
and optional HLS directives) through the full tool-flow, and optionally
execute the built system on the simulated board — with or without an
injected :class:`~repro.sim.faults.FaultPlan` (the chaos campaign's
fault-injected jobs ride exactly this slot).

Everything in a :class:`JobSpec` is JSON-serializable by construction,
because the spec travels two ways: over the daemon's socket protocol,
and into the job's durable ``job.json`` record — the write-ahead
admission intent a restarted daemon recovers queued work from.

Job identity is *content-addressed*: :meth:`JobSpec.content_digest`
covers the design, sources, directives, backend and simulation leg, and
the job id is the tenant-scoped digest.  Submitting the same spec twice
is therefore the same job (idempotent submission — a client that lost
its response can safely resubmit), and two tenants submitting identical
specs share every build-cache object while keeping separate job records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flow.journal import stable_digest
from repro.hls.interfaces import Directive
from repro.sim.faults import Fault, FaultPlan
from repro.util.errors import ReproError


class JobRejected(ReproError):
    """Admission control refused the job (queue bounds, bad spec)."""

    def __init__(self, message: str, *, tenant: str = "?", reason: str = "?") -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason


#: Job lifecycle states.  QUEUED and RUNNING are transient; DONE and
#: FAILED are terminal and durably recorded in the job directory.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
STATES = (QUEUED, RUNNING, DONE, FAILED)


@dataclass(frozen=True)
class SimSpec:
    """Optional post-build simulation leg of a job."""

    seed: int = 1
    #: Fault plan executed against the simulated system (None = clean).
    faults: FaultPlan | None = None
    #: Watchdog budget per node attempt, forwarded to RecoveryPolicy.
    node_budget: int = 2_000_000

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [dict(f.__dict__) for f in self.faults.faults]
            if self.faults is not None
            else None,
            "node_budget": self.node_budget,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimSpec":
        faults = data.get("faults")
        plan = (
            FaultPlan(tuple(Fault(**f) for f in faults))
            if faults is not None
            else None
        )
        return cls(
            seed=int(data.get("seed", 1)),
            faults=plan,
            node_budget=int(data.get("node_budget", 2_000_000)),
        )


@dataclass(frozen=True)
class JobSpec:
    """Everything one build job depends on (JSON-serializable)."""

    dsl: str
    sources: dict[str, str] = field(default_factory=dict)
    #: node -> extra HLS directives (beyond the DSL's interface ones).
    directives: dict[str, tuple[Directive, ...]] = field(default_factory=dict)
    backend: str = "2015.3"
    sim: SimSpec | None = None
    #: Wall-clock budget for one execution attempt; None = unbounded.
    deadline_s: float | None = None

    def content_digest(self) -> str:
        """Tenant-independent digest — the global dedup key."""
        return stable_digest(
            {
                "dsl": self.dsl,
                "sources": sorted(self.sources.items()),
                "directives": {
                    node: [d.to_tcl() for d in dirs]
                    for node, dirs in sorted(self.directives.items())
                },
                "backend": self.backend,
                "sim": self.sim.as_dict() if self.sim is not None else None,
            }
        )

    def job_id(self, tenant: str) -> str:
        """Tenant-scoped job identity (stable across resubmission)."""
        return "j-" + stable_digest({"tenant": tenant, "content": self.content_digest()})[:20]

    def as_dict(self) -> dict:
        return {
            "dsl": self.dsl,
            "sources": dict(self.sources),
            "directives": {
                node: [
                    {
                        "kind": d.kind,
                        "function": d.function,
                        "target": d.target,
                        "options": [list(kv) for kv in d.options],
                    }
                    for d in dirs
                ]
                for node, dirs in self.directives.items()
            },
            "backend": self.backend,
            "sim": self.sim.as_dict() if self.sim is not None else None,
            "deadline_s": self.deadline_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        directives = {
            node: tuple(
                Directive(
                    d["kind"],
                    d["function"],
                    d["target"],
                    tuple((k, v) for k, v in d.get("options", [])),
                )
                for d in dirs
            )
            for node, dirs in (data.get("directives") or {}).items()
        }
        sim = data.get("sim")
        return cls(
            dsl=data["dsl"],
            sources=dict(data.get("sources") or {}),
            directives=directives,
            backend=data.get("backend", "2015.3"),
            sim=SimSpec.from_dict(sim) if sim is not None else None,
            deadline_s=data.get("deadline_s"),
        )


@dataclass
class JobRecord:
    """One job's observable state (what ``status`` returns)."""

    job_id: str
    tenant: str
    state: str = QUEUED
    #: How the terminal artifacts were produced: "build" (executed),
    #: "warm" (served read-only from an identical completed job),
    #: "resume" (recovered from an in-flight journal after a restart),
    #: "replay" (re-served from this job's own durable terminal record).
    served_from: str | None = None
    attempts: int = 0
    retries: int = 0
    #: Artifact digest of the materialized workspace (terminal DONE).
    artifact_digest: str | None = None
    #: Simulation report digest, when the spec had a sim leg.
    sim_digest: str | None = None
    error: str | None = None
    error_step: str | None = None
    #: Steps the journal shows were recovered rather than re-executed.
    steps_skipped: int = 0
    crash_recoveries: int = 0
    #: Replica that published the terminal record (multi-replica runs).
    replica: str | None = None

    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "served_from": self.served_from,
            "attempts": self.attempts,
            "retries": self.retries,
            "artifact_digest": self.artifact_digest,
            "sim_digest": self.sim_digest,
            "error": self.error,
            "error_step": self.error_step,
            "steps_skipped": self.steps_skipped,
            "crash_recoveries": self.crash_recoveries,
            "replica": self.replica,
        }

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED)


__all__ = [
    "DONE",
    "FAILED",
    "JobRecord",
    "JobRejected",
    "JobSpec",
    "QUEUED",
    "RUNNING",
    "STATES",
    "SimSpec",
]
