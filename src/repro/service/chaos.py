"""``repro servicecheck`` — kill-the-daemon chaos campaign.

The crashcheck campaign (PR 3) proved the *flow* recovers from a kill at
every journal boundary.  This campaign proves the *service* does: a
daemon with two tenants' jobs in flight — one of them fault-injected
through the simulation leg — is killed at every journal boundary, a
fresh daemon recovers the root, every submission is replayed (testing
idempotent resubmission), and the final state must satisfy:

* **byte-identical artifacts** — every job's artifact digest (and sim
  digest) equals the uninterrupted reference run's;
* **zero lost jobs** — every durably-admitted job reaches ``DONE``;
* **zero duplicated jobs** — resubmitting every spec after recovery
  creates no new job (content-addressed identity);
* **stable campaign digest** — the outcome records contain only
  deterministic fields, so two runs of the campaign digest identically.

Determinism is by construction: one executor worker (serial execution,
deterministic journal-boundary visit order), seeded stimuli, seeded
fault plans, and deterministic backoff jitter.  The daemon is killed
in-process (``die_on_interrupt``): the armed crash-point raises out of
the executor, the dispatcher abandons all state exactly as a ``kill
-9`` would have left the disk, and recovery gets only what was durable.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import signal
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

from repro.dsl.parser import parse_dsl
from repro.flow.crashpoints import ENV_MODE, ENV_SITE, CrashPlan, all_sites, armed
from repro.service.cluster import read_replica_reports, spawn_replica
from repro.service.daemon import BuildService
from repro.service.jobs import DONE, JobSpec, SimSpec
from repro.service.store import JobStore
from repro.sim.faults import Fault, FaultPlan, campaign_digest

#: The campaign's design: a two-stage stream pipeline plus one AXI-Lite
#: core — every interface class, small enough that the full
#: kill-at-every-boundary matrix stays fast.
SERVICE_DSL = """
object svc extends App {
  tg nodes;
    tg node "SCALE" is "in" is "out" end;
    tg node "CLIP" is "in" is "out" end;
    tg node "SUM" i "A" i "B" i "return" end;
  tg end_nodes;
  tg edges;
    tg connect "SUM";
    tg link 'soc to ("SCALE", "in") end;
    tg link ("SCALE", "out") to ("CLIP", "in") end;
    tg link ("CLIP", "out") to 'soc end;
  tg end_edges;
}
"""

SERVICE_SOURCES = {
    "SCALE": "void SCALE(int in[16], int out[16]) {\n"
    "    for (int i = 0; i < 16; i++) out[i] = in[i] * 2;\n}\n",
    "CLIP": "void CLIP(int in[16], int out[16]) {\n"
    "    for (int i = 0; i < 16; i++) out[i] = in[i] > 20 ? 20 : in[i];\n}\n",
    "SUM": "int SUM(int A, int B) { return A + B; }\n",
}


def default_submissions() -> list[tuple[str, JobSpec]]:
    """The two-tenant job mix the campaign runs.

    * ``alice`` submits a clean build+simulate job;
    * ``bob`` submits the same design with a fault-injected simulation
      (a seeded DRAM bit flip from :mod:`repro.sim.faults`);
    * ``alice`` also submits a spec identical to bob's — same content
      digest, different tenant — so every campaign case exercises
      cross-tenant dedup through the shared cache.
    """
    clean = JobSpec(dsl=SERVICE_DSL, sources=dict(SERVICE_SOURCES), sim=SimSpec(seed=1))
    faulty = JobSpec(
        dsl=SERVICE_DSL,
        sources=dict(SERVICE_SOURCES),
        sim=SimSpec(
            seed=1,
            faults=FaultPlan(
                (Fault("dram_flip", "*", at_cycle=50, bit=2, word=3),), seed=7
            ),
        ),
    )
    return [("alice", clean), ("bob", faulty), ("alice", faulty)]


def service_sites(dsl: str = SERVICE_DSL) -> list[str]:
    """Every journal boundary one job of the campaign design visits."""
    graph = parse_dsl(dsl)
    return all_sites([n.name for n in graph.nodes]) + [
        "simulate:start",
        "simulate:commit",
    ]


@dataclass
class ServiceCheckReport:
    """Outcome of one campaign."""

    records: list[dict] = field(default_factory=list)
    digest: str = ""
    failures: int = 0
    lost: int = 0
    duplicated: int = 0
    sites: int = 0

    @property
    def ok(self) -> bool:
        return self.failures == 0 and self.lost == 0 and self.duplicated == 0

    def render(self) -> str:
        lines = [
            f"servicecheck: {self.sites} kill site(s), "
            f"{self.failures} digest failure(s), {self.lost} lost, "
            f"{self.duplicated} duplicated",
            f"  campaign digest: {self.digest}",
        ]
        return "\n".join(lines)


def _service(root: Path, *, check_tcl: bool, die: bool = False) -> BuildService:
    # One worker: the campaign's determinism argument rests on serial,
    # reproducible execution order; concurrency is exercised at the
    # tenant/queueing level (and separately by the service unit suite).
    return BuildService(
        root, workers=1, check_tcl=check_tcl, die_on_interrupt=die
    )


def _job_outcomes(svc: BuildService) -> dict[str, dict]:
    return {
        job_id: {
            "tenant": rec.tenant,
            "state": rec.state,
            "served_from": rec.served_from,
            "artifact_digest": rec.artifact_digest,
            "sim_digest": rec.sim_digest,
            "steps_skipped": rec.steps_skipped,
            "crash_recoveries": rec.crash_recoveries,
        }
        for job_id, rec in sorted(svc.records.items())
    }


def _run_reference(root: Path, submissions, *, check_tcl: bool) -> dict[str, dict]:
    async def go() -> dict[str, dict]:
        svc = _service(root, check_tcl=check_tcl)
        for tenant, spec in submissions:
            svc.submit(tenant, spec)
        await svc.drain()
        outcomes = _job_outcomes(svc)
        svc.close()
        return outcomes

    return asyncio.run(go())


def _run_killed(root: Path, submissions, site: str, *, check_tcl: bool) -> bool:
    """Run a daemon armed to die at *site*; True when it actually died."""

    async def go() -> bool:
        svc = _service(root, check_tcl=check_tcl, die=True)
        for tenant, spec in submissions:
            svc.submit(tenant, spec)
        with armed(CrashPlan(site)):
            await svc.drain()
        died = svc.died
        svc.close()
        return died

    return asyncio.run(go())


def _recover_and_drain(
    root: Path, submissions, *, check_tcl: bool
) -> tuple[dict[str, dict], dict[str, int], int]:
    """Fresh daemon on the killed root: recover, resubmit all, drain."""

    async def go():
        svc = _service(root, check_tcl=check_tcl)
        counts = svc.recover()
        expected_ids = {spec.job_id(tenant) for tenant, spec in submissions}
        before = set(svc.records)
        for tenant, spec in submissions:
            svc.submit(tenant, spec)  # idempotent: a lost ACK is resubmitted
        duplicated = len(set(svc.records) - (before | expected_ids))
        await svc.drain()
        outcomes = _job_outcomes(svc)
        svc.close()
        return outcomes, counts, duplicated

    return asyncio.run(go())


def run_servicecheck(
    root: str | Path,
    *,
    submissions: list[tuple[str, JobSpec]] | None = None,
    check_tcl: bool = True,
    log=lambda line: None,
) -> ServiceCheckReport:
    """Run the full kill-at-every-journal-boundary campaign under *root*."""
    root = Path(root)
    subs = submissions if submissions is not None else default_submissions()
    expected_ids = {spec.job_id(tenant) for tenant, spec in subs}
    sites = service_sites(subs[0][1].dsl)

    ref_root = root / "ref"
    expected = _run_reference(ref_root, subs, check_tcl=check_tcl)
    if set(expected) != expected_ids or any(
        o["state"] != DONE for o in expected.values()
    ):
        raise RuntimeError("servicecheck reference run did not complete")
    log(
        f"reference: {len(expected)} job(s) done, killing at "
        f"{len(sites)} journal boundaries"
    )

    report = ServiceCheckReport(sites=len(sites))
    for i, site in enumerate(sites):
        site_root = root / f"site{i:02d}"
        if site_root.exists():
            shutil.rmtree(site_root)
        killed = _run_killed(site_root, subs, site, check_tcl=check_tcl)
        outcomes, counts, duplicated = _recover_and_drain(
            site_root, subs, check_tcl=check_tcl
        )
        lost = sum(
            1
            for job_id in expected_ids
            if outcomes.get(job_id, {}).get("state") != DONE
        )
        match = all(
            outcomes.get(job_id, {}).get("artifact_digest")
            == expected[job_id]["artifact_digest"]
            and outcomes.get(job_id, {}).get("sim_digest")
            == expected[job_id]["sim_digest"]
            for job_id in expected_ids
        )
        report.failures += 0 if match else 1
        report.lost += lost
        report.duplicated += duplicated
        report.records.append(
            {
                "site": site,
                "killed": killed,
                "recovered": counts,
                "jobs": outcomes,
                "match": match,
                "lost": lost,
                "duplicated": duplicated,
            }
        )
        log(
            f"  {site:24s} {'killed' if killed else 'not-hit':8s} "
            f"replay={counts['replayed']} resume={counts['resumed']} "
            f"requeue={counts['requeued']} -> "
            + ("ok" if match and not lost and not duplicated else "FAILED")
        )

    report.digest = campaign_digest(report.records)
    return report


# -- multi-replica campaign ---------------------------------------------------
#
# The replica-kill campaign proves the leader-less cluster the way the
# single-daemon campaign proved recovery: at every journal boundary, a
# *victim replica process* is SIGKILLed (dead owner) or SIGSTOPped
# (paused owner — the nastier case: it comes back), the surviving
# replicas must steal its lease and finish its work, and the final
# state must satisfy:
#
# * zero lost jobs, zero duplicated side effects (exactly one terminal
#   record per job, no stray job directories);
# * byte-identical artifact and sim digests vs an uninterrupted
#   single-replica reference run;
# * exactly one steal per scenario, and — for every SIGSTOP scenario —
#   exactly one fenced write: the resurrected victim is rejected at the
#   boundary it paused in (``LeaseLost``) and its terminal-publish
#   attempt bounces off the fencing token (``FencedWrite``, counted in
#   ``service.fenced_writes_total``);
# * a stable campaign digest over the deterministic fields.
#
# Determinism is by construction: the store is seeded in a fixed
# admission order, the victim starts *alone* (so it claims the first
# job and hits the armed site on a deterministic visit), helpers start
# only after the victim is dead or frozen, and the victim is resumed
# only after the helpers drained everything.


@dataclass
class ReplicaCheckReport:
    """Outcome of one multi-replica chaos campaign."""

    records: list[dict] = field(default_factory=list)
    #: Per-scenario per-replica lease reports (timing-dependent detail —
    #: renewals, who stole — kept out of the digest on purpose).
    lease_detail: list[dict] = field(default_factory=list)
    digest: str = ""
    failures: int = 0
    lost: int = 0
    duplicated: int = 0
    scenarios: int = 0
    steals: int = 0
    fenced_writes: int = 0
    lease_lost: int = 0
    #: SIGSTOP scenarios — each must contribute exactly one fenced write.
    stop_scenarios: int = 0

    @property
    def ok(self) -> bool:
        return (
            self.failures == 0
            and self.lost == 0
            and self.duplicated == 0
            and self.steals == self.scenarios
            and self.fenced_writes == self.stop_scenarios
            and self.lease_lost == self.stop_scenarios
        )

    def lease_report(self) -> dict:
        """The ``LEASE_report.json`` payload: steals/fences per scenario."""
        return {
            "scenarios": self.scenarios,
            "steals": self.steals,
            "fenced_writes": self.fenced_writes,
            "lease_lost": self.lease_lost,
            "digest": self.digest,
            "per_scenario": self.lease_detail,
        }

    def render(self) -> str:
        return (
            f"servicecheck --replicas: {self.scenarios} scenario(s), "
            f"{self.failures} digest failure(s), {self.lost} lost, "
            f"{self.duplicated} duplicated, {self.steals} steal(s), "
            f"{self.fenced_writes} fenced write(s) "
            f"(expected {self.stop_scenarios})\n"
            f"  campaign digest: {self.digest}"
        )


def _seed_store(root: Path, submissions) -> set[str]:
    """Durably admit the campaign jobs in a fixed order, no daemon."""
    store = JobStore(root)
    ids = set()
    for order, (tenant, spec) in enumerate(submissions, start=1):
        job_id = spec.job_id(tenant)
        store.save_spec(tenant, job_id, spec, order=order)
        ids.add(job_id)
    return ids


def _reap(proc: subprocess.Popen, timeout_s: float) -> int | None:
    try:
        return proc.wait(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        return None


def _terminate_all(procs) -> None:
    """Leave no child behind — SIGKILL works on stopped processes too,
    but SIGCONT first so a frozen victim's wait() can't linger."""
    for p in procs:
        if p.poll() is not None:
            continue
        for sig in (signal.SIGCONT, signal.SIGKILL):
            try:
                os.kill(p.pid, sig)
            except OSError:
                break
        try:
            p.wait(timeout=5)
        except (OSError, subprocess.TimeoutExpired):
            pass


def run_replicacheck(
    root: str | Path,
    *,
    replicas: int = 3,
    submissions: list[tuple[str, JobSpec]] | None = None,
    sites: list[str] | None = None,
    modes: tuple[str, ...] = ("kill", "stop"),
    check_tcl: bool = True,
    ttl_s: float = 0.75,
    timeout_s: float = 120.0,
    log=lambda line: None,
) -> ReplicaCheckReport:
    """The replica-kill chaos campaign over real child processes."""
    if replicas < 2:
        raise ValueError("the replica campaign needs at least 2 replicas")
    root = Path(root)
    subs = submissions if submissions is not None else default_submissions()
    expected_ids = {spec.job_id(tenant) for tenant, spec in subs}
    sites = sites if sites is not None else service_sites(subs[0][1].dsl)

    ref_root = root / "ref"
    expected = _run_reference(ref_root, subs, check_tcl=check_tcl)
    if set(expected) != expected_ids or any(
        o["state"] != DONE for o in expected.values()
    ):
        raise RuntimeError("replicacheck reference run did not complete")
    log(
        f"reference: {len(expected)} job(s) done; {len(sites)} site(s) x "
        f"{len(modes)} signal(s), {replicas} replicas per scenario"
    )

    report = ReplicaCheckReport()
    for mode in modes:
        for i, site in enumerate(sites):
            scenario = f"{mode}-{i:02d}"
            scenario_root = root / scenario
            if scenario_root.exists():
                shutil.rmtree(scenario_root)
            _seed_store(scenario_root, subs)
            procs: list[subprocess.Popen] = []
            victim_state = "unknown"
            helper_rcs: list[int | None] = []
            try:
                victim = spawn_replica(
                    scenario_root, "v0",
                    ttl_s=ttl_s, drain=True, timeout_s=timeout_s,
                    check_tcl=check_tcl,
                    env={ENV_SITE: site, ENV_MODE: mode},
                )
                procs.append(victim)
                if mode == "kill":
                    rc = _reap(victim, timeout_s)
                    victim_state = (
                        "killed" if rc == -signal.SIGKILL else f"exit:{rc}"
                    )
                else:
                    # Block until the child SIGSTOPs itself at the armed
                    # boundary (WUNTRACED reports stops without reaping).
                    _, status = os.waitpid(victim.pid, os.WUNTRACED)
                    victim_state = (
                        "stopped" if os.WIFSTOPPED(status) else "exited"
                    )
                helpers = [
                    spawn_replica(
                        scenario_root, f"h{k}",
                        ttl_s=ttl_s, drain=True, timeout_s=timeout_s,
                        check_tcl=check_tcl,
                    )
                    for k in range(1, replicas)
                ]
                procs.extend(helpers)
                helper_rcs = [_reap(h, timeout_s) for h in helpers]
                if mode == "stop" and victim_state == "stopped":
                    # Resurrect the zombie owner *after* its work was
                    # stolen and finished: it must be fenced, not obeyed.
                    os.kill(victim.pid, signal.SIGCONT)
                    rc = _reap(victim, timeout_s)
                    victim_state = f"fenced-exit:{rc}"
            finally:
                _terminate_all(procs)

            store = JobStore(scenario_root)
            scans = {s.job_id: s for s in store.scan()}
            outcomes = {
                job_id: {
                    "tenant": s.tenant,
                    "state": s.record.state if s.record else "missing",
                    "artifact_digest": s.record.artifact_digest if s.record else None,
                    "sim_digest": s.record.sim_digest if s.record else None,
                }
                for job_id, s in sorted(scans.items())
            }
            double = sum(
                1
                for s in scans.values()
                if (store.job_dir(s.tenant, s.job_id) / "result.json").exists()
                and (store.job_dir(s.tenant, s.job_id) / "failed.json").exists()
            )
            reports = read_replica_reports(scenario_root)
            steals = sum(r.get("stolen", 0) for r in reports)
            fenced = sum(r.get("fenced_writes", 0) for r in reports)
            lease_lost = sum(r.get("lease_lost", 0) for r in reports)
            lost = sum(
                1
                for job_id in expected_ids
                if outcomes.get(job_id, {}).get("state") != DONE
            )
            duplicated = len(set(scans) - expected_ids) + double
            match = all(
                outcomes.get(job_id, {}).get("artifact_digest")
                == expected[job_id]["artifact_digest"]
                and outcomes.get(job_id, {}).get("sim_digest")
                == expected[job_id]["sim_digest"]
                for job_id in expected_ids
            )
            report.scenarios += 1
            report.failures += 0 if match else 1
            report.lost += lost
            report.duplicated += duplicated
            report.steals += steals
            report.fenced_writes += fenced
            report.lease_lost += lease_lost
            if mode == "stop":
                report.stop_scenarios += 1
            report.records.append(
                {
                    "site": site,
                    "mode": mode,
                    "victim": victim_state,
                    "jobs": outcomes,
                    "match": match,
                    "lost": lost,
                    "duplicated": duplicated,
                    "steals": steals,
                    "fenced_writes": fenced,
                    "lease_lost": lease_lost,
                }
            )
            report.lease_detail.append(
                {
                    "scenario": scenario,
                    "site": site,
                    "mode": mode,
                    "victim": victim_state,
                    "helper_exits": helper_rcs,
                    "replicas": reports,
                }
            )
            ok = (
                match
                and not lost
                and not duplicated
                and steals == 1
                and (fenced == 1) == (mode == "stop")
            )
            log(
                f"  {mode:4s} {site:24s} {victim_state:14s} "
                f"steals={steals} fenced={fenced} -> "
                + ("ok" if ok else "FAILED")
            )

    report.digest = campaign_digest(report.records)
    return report


__all__ = [
    "SERVICE_DSL",
    "SERVICE_SOURCES",
    "ReplicaCheckReport",
    "ServiceCheckReport",
    "default_submissions",
    "run_replicacheck",
    "run_servicecheck",
    "service_sites",
]
