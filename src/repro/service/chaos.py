"""``repro servicecheck`` — kill-the-daemon chaos campaign.

The crashcheck campaign (PR 3) proved the *flow* recovers from a kill at
every journal boundary.  This campaign proves the *service* does: a
daemon with two tenants' jobs in flight — one of them fault-injected
through the simulation leg — is killed at every journal boundary, a
fresh daemon recovers the root, every submission is replayed (testing
idempotent resubmission), and the final state must satisfy:

* **byte-identical artifacts** — every job's artifact digest (and sim
  digest) equals the uninterrupted reference run's;
* **zero lost jobs** — every durably-admitted job reaches ``DONE``;
* **zero duplicated jobs** — resubmitting every spec after recovery
  creates no new job (content-addressed identity);
* **stable campaign digest** — the outcome records contain only
  deterministic fields, so two runs of the campaign digest identically.

Determinism is by construction: one executor worker (serial execution,
deterministic journal-boundary visit order), seeded stimuli, seeded
fault plans, and deterministic backoff jitter.  The daemon is killed
in-process (``die_on_interrupt``): the armed crash-point raises out of
the executor, the dispatcher abandons all state exactly as a ``kill
-9`` would have left the disk, and recovery gets only what was durable.
"""

from __future__ import annotations

import asyncio
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.dsl.parser import parse_dsl
from repro.flow.crashpoints import CrashPlan, all_sites, armed
from repro.service.daemon import BuildService
from repro.service.jobs import DONE, JobSpec, SimSpec
from repro.sim.faults import Fault, FaultPlan, campaign_digest

#: The campaign's design: a two-stage stream pipeline plus one AXI-Lite
#: core — every interface class, small enough that the full
#: kill-at-every-boundary matrix stays fast.
SERVICE_DSL = """
object svc extends App {
  tg nodes;
    tg node "SCALE" is "in" is "out" end;
    tg node "CLIP" is "in" is "out" end;
    tg node "SUM" i "A" i "B" i "return" end;
  tg end_nodes;
  tg edges;
    tg connect "SUM";
    tg link 'soc to ("SCALE", "in") end;
    tg link ("SCALE", "out") to ("CLIP", "in") end;
    tg link ("CLIP", "out") to 'soc end;
  tg end_edges;
}
"""

SERVICE_SOURCES = {
    "SCALE": "void SCALE(int in[16], int out[16]) {\n"
    "    for (int i = 0; i < 16; i++) out[i] = in[i] * 2;\n}\n",
    "CLIP": "void CLIP(int in[16], int out[16]) {\n"
    "    for (int i = 0; i < 16; i++) out[i] = in[i] > 20 ? 20 : in[i];\n}\n",
    "SUM": "int SUM(int A, int B) { return A + B; }\n",
}


def default_submissions() -> list[tuple[str, JobSpec]]:
    """The two-tenant job mix the campaign runs.

    * ``alice`` submits a clean build+simulate job;
    * ``bob`` submits the same design with a fault-injected simulation
      (a seeded DRAM bit flip from :mod:`repro.sim.faults`);
    * ``alice`` also submits a spec identical to bob's — same content
      digest, different tenant — so every campaign case exercises
      cross-tenant dedup through the shared cache.
    """
    clean = JobSpec(dsl=SERVICE_DSL, sources=dict(SERVICE_SOURCES), sim=SimSpec(seed=1))
    faulty = JobSpec(
        dsl=SERVICE_DSL,
        sources=dict(SERVICE_SOURCES),
        sim=SimSpec(
            seed=1,
            faults=FaultPlan(
                (Fault("dram_flip", "*", at_cycle=50, bit=2, word=3),), seed=7
            ),
        ),
    )
    return [("alice", clean), ("bob", faulty), ("alice", faulty)]


def service_sites(dsl: str = SERVICE_DSL) -> list[str]:
    """Every journal boundary one job of the campaign design visits."""
    graph = parse_dsl(dsl)
    return all_sites([n.name for n in graph.nodes]) + [
        "simulate:start",
        "simulate:commit",
    ]


@dataclass
class ServiceCheckReport:
    """Outcome of one campaign."""

    records: list[dict] = field(default_factory=list)
    digest: str = ""
    failures: int = 0
    lost: int = 0
    duplicated: int = 0
    sites: int = 0

    @property
    def ok(self) -> bool:
        return self.failures == 0 and self.lost == 0 and self.duplicated == 0

    def render(self) -> str:
        lines = [
            f"servicecheck: {self.sites} kill site(s), "
            f"{self.failures} digest failure(s), {self.lost} lost, "
            f"{self.duplicated} duplicated",
            f"  campaign digest: {self.digest}",
        ]
        return "\n".join(lines)


def _service(root: Path, *, check_tcl: bool, die: bool = False) -> BuildService:
    # One worker: the campaign's determinism argument rests on serial,
    # reproducible execution order; concurrency is exercised at the
    # tenant/queueing level (and separately by the service unit suite).
    return BuildService(
        root, workers=1, check_tcl=check_tcl, die_on_interrupt=die
    )


def _job_outcomes(svc: BuildService) -> dict[str, dict]:
    return {
        job_id: {
            "tenant": rec.tenant,
            "state": rec.state,
            "served_from": rec.served_from,
            "artifact_digest": rec.artifact_digest,
            "sim_digest": rec.sim_digest,
            "steps_skipped": rec.steps_skipped,
            "crash_recoveries": rec.crash_recoveries,
        }
        for job_id, rec in sorted(svc.records.items())
    }


def _run_reference(root: Path, submissions, *, check_tcl: bool) -> dict[str, dict]:
    async def go() -> dict[str, dict]:
        svc = _service(root, check_tcl=check_tcl)
        for tenant, spec in submissions:
            svc.submit(tenant, spec)
        await svc.drain()
        outcomes = _job_outcomes(svc)
        svc.close()
        return outcomes

    return asyncio.run(go())


def _run_killed(root: Path, submissions, site: str, *, check_tcl: bool) -> bool:
    """Run a daemon armed to die at *site*; True when it actually died."""

    async def go() -> bool:
        svc = _service(root, check_tcl=check_tcl, die=True)
        for tenant, spec in submissions:
            svc.submit(tenant, spec)
        with armed(CrashPlan(site)):
            await svc.drain()
        died = svc.died
        svc.close()
        return died

    return asyncio.run(go())


def _recover_and_drain(
    root: Path, submissions, *, check_tcl: bool
) -> tuple[dict[str, dict], dict[str, int], int]:
    """Fresh daemon on the killed root: recover, resubmit all, drain."""

    async def go():
        svc = _service(root, check_tcl=check_tcl)
        counts = svc.recover()
        expected_ids = {spec.job_id(tenant) for tenant, spec in submissions}
        before = set(svc.records)
        for tenant, spec in submissions:
            svc.submit(tenant, spec)  # idempotent: a lost ACK is resubmitted
        duplicated = len(set(svc.records) - (before | expected_ids))
        await svc.drain()
        outcomes = _job_outcomes(svc)
        svc.close()
        return outcomes, counts, duplicated

    return asyncio.run(go())


def run_servicecheck(
    root: str | Path,
    *,
    submissions: list[tuple[str, JobSpec]] | None = None,
    check_tcl: bool = True,
    log=lambda line: None,
) -> ServiceCheckReport:
    """Run the full kill-at-every-journal-boundary campaign under *root*."""
    root = Path(root)
    subs = submissions if submissions is not None else default_submissions()
    expected_ids = {spec.job_id(tenant) for tenant, spec in subs}
    sites = service_sites(subs[0][1].dsl)

    ref_root = root / "ref"
    expected = _run_reference(ref_root, subs, check_tcl=check_tcl)
    if set(expected) != expected_ids or any(
        o["state"] != DONE for o in expected.values()
    ):
        raise RuntimeError("servicecheck reference run did not complete")
    log(
        f"reference: {len(expected)} job(s) done, killing at "
        f"{len(sites)} journal boundaries"
    )

    report = ServiceCheckReport(sites=len(sites))
    for i, site in enumerate(sites):
        site_root = root / f"site{i:02d}"
        if site_root.exists():
            shutil.rmtree(site_root)
        killed = _run_killed(site_root, subs, site, check_tcl=check_tcl)
        outcomes, counts, duplicated = _recover_and_drain(
            site_root, subs, check_tcl=check_tcl
        )
        lost = sum(
            1
            for job_id in expected_ids
            if outcomes.get(job_id, {}).get("state") != DONE
        )
        match = all(
            outcomes.get(job_id, {}).get("artifact_digest")
            == expected[job_id]["artifact_digest"]
            and outcomes.get(job_id, {}).get("sim_digest")
            == expected[job_id]["sim_digest"]
            for job_id in expected_ids
        )
        report.failures += 0 if match else 1
        report.lost += lost
        report.duplicated += duplicated
        report.records.append(
            {
                "site": site,
                "killed": killed,
                "recovered": counts,
                "jobs": outcomes,
                "match": match,
                "lost": lost,
                "duplicated": duplicated,
            }
        )
        log(
            f"  {site:24s} {'killed' if killed else 'not-hit':8s} "
            f"replay={counts['replayed']} resume={counts['resumed']} "
            f"requeue={counts['requeued']} -> "
            + ("ok" if match and not lost and not duplicated else "FAILED")
        )

    report.digest = campaign_digest(report.records)
    return report


__all__ = [
    "SERVICE_DSL",
    "SERVICE_SOURCES",
    "ServiceCheckReport",
    "default_submissions",
    "run_servicecheck",
    "service_sites",
]
