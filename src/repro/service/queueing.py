"""Per-tenant fair-share queueing with admission control.

The daemon never runs jobs straight from the socket: every accepted job
enters its tenant's bounded FIFO here, and the dispatcher asks
:meth:`FairScheduler.pick` which job runs next.  Three properties hold
by construction:

* **Bounded admission** — each tenant holds at most *depth_bound*
  queued jobs; the next submission raises
  :class:`~repro.service.jobs.JobRejected` instead of growing the
  backlog without bound (the client sees a structured rejection and can
  back off).
* **Fair share** — tenants are served round-robin in first-seen order,
  so a tenant streaming hundreds of jobs cannot shut out a tenant
  submitting one.
* **Starvation guard** — picks are counted against every queue head
  that was passed over; once the *oldest* waiting head (by admission
  sequence) has been skipped ``starvation_after`` times it is picked
  next regardless of whose round-robin turn it is.  Pure round-robin
  never trips this, but any future weighted policy (or an operator
  draining one tenant by hand) inherits the bound for free.

Everything is deterministic — no clocks, no randomness — because the
chaos campaign replays submission sequences and asserts a stable
campaign digest.
"""

from __future__ import annotations

from collections import deque

from repro.obs.events import BUS as _BUS
from repro.obs.metrics import REGISTRY as _METRICS

from repro.service.jobs import JobRejected


class FairScheduler:
    """Bounded per-tenant FIFOs + deterministic fair-share picking."""

    def __init__(self, *, depth_bound: int = 8, starvation_after: int = 4) -> None:
        if depth_bound < 1:
            raise ValueError("depth_bound must be positive")
        self.depth_bound = depth_bound
        self.starvation_after = starvation_after
        self._queues: dict[str, deque[str]] = {}
        self._order: list[str] = []  # tenants in first-seen order
        self._rr = 0  # round-robin cursor into _order
        self._seq = 0  # admission sequence (total order of submits)
        self._admitted_at: dict[str, int] = {}  # job_id -> admission seq
        self._skips: dict[str, int] = {}  # job_id -> times passed over

    # -- admission ---------------------------------------------------------
    def submit(self, tenant: str, job_id: str) -> None:
        """Admit *job_id* to *tenant*'s queue or raise :class:`JobRejected`."""
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._order.append(tenant)
        if len(queue) >= self.depth_bound:
            if _BUS.enabled:
                _BUS.emit("service.reject", job_id, tenant=tenant, reason="queue-full")
                _METRICS.counter(
                    "service.admission_rejections",
                    "jobs refused by admission control",
                ).inc()
            raise JobRejected(
                f"tenant {tenant!r} already has {len(queue)} queued job(s) "
                f"(bound {self.depth_bound})",
                tenant=tenant,
                reason="queue-full",
            )
        self._seq += 1
        self._admitted_at[job_id] = self._seq
        self._skips[job_id] = 0
        queue.append(job_id)
        self._update_gauge()

    def restore(self, tenant: str, job_id: str) -> None:
        """Re-queue a durably-admitted job during recovery.

        Bypasses the depth bound on purpose: the job passed admission in
        a previous daemon life and its intent is on disk — rejecting it
        now would lose accepted work, the one thing recovery must never
        do.
        """
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._order.append(tenant)
        self._seq += 1
        self._admitted_at[job_id] = self._seq
        self._skips[job_id] = 0
        queue.append(job_id)
        self._update_gauge()

    # -- picking -----------------------------------------------------------
    def _heads(self) -> list[tuple[str, str]]:
        return [(t, q[0]) for t, q in self._queues.items() if q]

    def pick(self) -> tuple[str, str] | None:
        """The next ``(tenant, job_id)`` to run, or ``None`` when idle."""
        heads = self._heads()
        if not heads:
            return None
        # Starvation guard: the oldest waiting head wins once it has
        # been passed over starvation_after times.
        oldest = min(heads, key=lambda tj: self._admitted_at[tj[1]])
        if self._skips.get(oldest[1], 0) >= self.starvation_after:
            chosen = oldest
        else:
            # Fair share: the first non-empty tenant at or after the
            # round-robin cursor (first-seen order).
            chosen = None
            for offset in range(len(self._order)):
                tenant = self._order[(self._rr + offset) % len(self._order)]
                queue = self._queues.get(tenant)
                if queue:
                    chosen = (tenant, queue[0])
                    self._rr = (self._rr + offset + 1) % len(self._order)
                    break
            assert chosen is not None  # heads was non-empty
        tenant, job_id = chosen
        self._queues[tenant].popleft()
        self._admitted_at.pop(job_id, None)
        self._skips.pop(job_id, None)
        for _, other in self._heads():
            self._skips[other] = self._skips.get(other, 0) + 1
        self._update_gauge()
        return chosen

    # -- inspection --------------------------------------------------------
    def depth(self, tenant: str | None = None) -> int:
        if tenant is not None:
            return len(self._queues.get(tenant, ()))
        return sum(len(q) for q in self._queues.values())

    def __len__(self) -> int:
        return self.depth()

    def queued(self, tenant: str) -> tuple[str, ...]:
        return tuple(self._queues.get(tenant, ()))

    def tenants(self) -> tuple[str, ...]:
        return tuple(self._order)

    def describe(self) -> dict:
        return {
            "depth": self.depth(),
            "tenants": {t: len(q) for t, q in sorted(self._queues.items())},
        }

    def _update_gauge(self) -> None:
        if _BUS.enabled:
            _METRICS.gauge(
                "service.queue_depth", "jobs waiting across all tenants"
            ).set(self.depth())


__all__ = ["FairScheduler"]
