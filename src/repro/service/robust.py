"""Robustness primitives of the build service.

Three small, synchronous, independently-testable pieces the daemon
composes around every job execution:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  **deterministic** jitter: the jitter is drawn from a hash of
  ``(job_id, attempt)``, so a replayed campaign sleeps the same
  schedule and its digest stays stable, while across *different* jobs
  the delays still decorrelate (no thundering herd after a shared
  failure).
* :class:`CircuitBreaker` — per-backend-step failure accounting with
  the classic closed → open → half-open lifecycle.  The daemon keys
  breakers by the journal step a failure died in (``hls``,
  ``integrate``, ``swgen``, ``materialize``, ``simulate``), so a
  poisoned HLS backend stops admitting fresh synthesis work while
  warm-cache serving stays available.
* :class:`Deadline` — a monotonic-clock budget for one attempt.

Nothing here imports asyncio: the daemon owns the event loop, these own
the policy.  All classes accept an injectable ``clock`` so tests (and
the chaos campaign) never sleep for real.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro.util.errors import ReproError


class BreakerOpen(ReproError):
    """The circuit breaker for a backend step is open (fail fast)."""

    def __init__(self, message: str, *, step: str = "?", retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.step = step
        self.retry_after_s = retry_after_s


class DeadlineExceeded(ReproError):
    """A job attempt exceeded its wall-clock budget."""

    def __init__(self, message: str, *, budget_s: float = 0.0) -> None:
        super().__init__(message)
        self.budget_s = budget_s


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, decorrelated jitter."""

    max_attempts: int = 3
    base_s: float = 0.05
    cap_s: float = 2.0
    #: Jitter fraction: each delay is scaled by 1 ± jitter·u where u is
    #: the deterministic per-(job, attempt) unit draw.
    jitter: float = 0.5

    def delay_s(self, job_id: str, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based) of *job_id*."""
        if attempt < 1:
            return 0.0
        raw = min(self.cap_s, self.base_s * (2 ** (attempt - 1)))
        # Deterministic unit draw in [0, 1): same (job, attempt), same
        # jitter — replayable campaigns — but decorrelated across jobs.
        h = hashlib.sha256(f"{job_id}:{attempt}".encode()).digest()
        u = int.from_bytes(h[:8], "big") / 2**64
        return raw * (1.0 + self.jitter * (2.0 * u - 1.0))

    def should_retry(self, attempt: int, exc: BaseException) -> bool:
        """Is a retry allowed after *attempt* attempts died with *exc*?

        Only plausibly-transient failures retry: lock contention,
        deadline overruns, interrupted flows.  Deterministic failures
        (a C source that does not parse will not parse on attempt 3)
        fail fast and poison-pin the job instead of burning the pool.
        """
        if attempt >= self.max_attempts:
            return False
        from repro.util.errors import CacheLockTimeout, FlowInterrupted

        return isinstance(exc, (CacheLockTimeout, DeadlineExceeded, FlowInterrupted))


#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate guard for one backend step.

    Closed: everything passes, consecutive failures are counted.  After
    *failure_threshold* consecutive failures the breaker **opens**:
    :meth:`allow` refuses (the daemon then parks fresh work and serves
    warm artifacts only).  After *cooldown_s* the breaker goes
    **half-open**: exactly one probe is admitted; its success closes the
    breaker, its failure re-opens it for another cooldown.
    """

    def __init__(
        self,
        step: str,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        self.step = step
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self._probe_out = False

    def _maybe_half_open(self) -> None:
        if (
            self.state == OPEN
            and self.opened_at is not None
            and self.clock() - self.opened_at >= self.cooldown_s
        ):
            self.state = HALF_OPEN
            self._probe_out = False

    def allow(self) -> bool:
        """May a fresh execution of this step start now?"""
        self._maybe_half_open()
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN and not self._probe_out:
            self._probe_out = True  # one probe per half-open window
            return True
        return False

    def retry_after_s(self) -> float:
        """Seconds until the breaker would next admit a probe."""
        if self.state != OPEN or self.opened_at is None:
            return 0.0
        return max(0.0, self.cooldown_s - (self.clock() - self.opened_at))

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = CLOSED
        self.opened_at = None
        self._probe_out = False

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.consecutive_failures >= self.failure_threshold
        ):
            self.state = OPEN
            self.opened_at = self.clock()
            self._probe_out = False

    def describe(self) -> dict:
        self._maybe_half_open()
        return {
            "step": self.step,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
        }


class Deadline:
    """Monotonic wall-clock budget for one attempt."""

    def __init__(self, budget_s: float | None, *, clock=time.monotonic) -> None:
        self.budget_s = budget_s
        self.clock = clock
        self.started = clock()

    def remaining_s(self) -> float | None:
        if self.budget_s is None:
            return None
        return self.budget_s - (self.clock() - self.started)

    @property
    def expired(self) -> bool:
        remaining = self.remaining_s()
        return remaining is not None and remaining <= 0

    def check(self) -> None:
        if self.expired:
            raise DeadlineExceeded(
                f"attempt exceeded its {self.budget_s:g} s deadline",
                budget_s=self.budget_s or 0.0,
            )


__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "BreakerOpen",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
]
