"""Durable, fsynced lease files: leader-less job ownership with fencing.

Multiple :class:`~repro.service.cluster.ClusterReplica` processes share
one service root and coordinate **without a leader** through lease files
under ``<root>/leases/``.  The protocol rests on three filesystem
primitives that are atomic on POSIX:

* **Acquire** — ``os.link`` of a fully-written temp file onto
  ``leases/<job_id>.json`` creates the lease if and only if no lease
  exists (O_EXCL semantics with the payload already durable, so no
  reader ever observes a half-written lease).  A fresh acquire carries
  fencing token 1.
* **Steal** — a replica that observes an *expired* heartbeat links a
  fully-written successor lease onto a per-token **claim file**
  (``leases/<job_id>.claim.<token+1>``; O_EXCL, so exactly one of any
  number of concurrent stealers wins each token) and then ``rename``\ s
  a second link of that claim *onto* the lease path.  The lease path is
  only ever atomically overwritten — it is never absent mid-steal, so a
  concurrent scanner can never mistake an in-progress steal for an
  unleased job and re-acquire it at token 1.
* **Renew** — heartbeats live in a *separate* per-token file
  (``leases/<job_id>.hb.<token>``).  The lease file itself is immutable
  after creation, so a paused-then-resurrected replica renewing its old
  heartbeat can only ever touch ``.hb.<stale_token>`` — it cannot
  clobber the current owner's lease or heartbeat, no matter how
  unluckily it wakes up.

Every lease mutation fsyncs the file and then the ``leases/`` directory,
so ownership survives power loss, not just process death.

**Fencing.**  The token is monotonically increasing per job (steal =
token + 1, and the claim files — kept until the lease is released —
make each token claimable exactly once, so the chain stays airtight
even when a stealer crashes mid-protocol).  The store's publish path calls
:meth:`Fence.validate` with the token it executed under; a stale token
— the lease was stolen, released, or superseded — raises
:class:`FencedWrite` (counted in ``service.fenced_writes_total``)
*before* anything is linked into place, and terminal records themselves
are published with link-based first-writer-wins semantics, so a zombie
replica can neither clobber nor duplicate a steal's output.
:meth:`Fence.check` is the cheap mid-run form, installed as a crashpoint
boundary hook: the flow re-validates ownership at every journal
boundary and aborts with :class:`LeaseLost` the moment the lease is
gone, long before it would reach a publish.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.flow.journal import fsync_dir
from repro.obs.events import BUS as _BUS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.util.errors import ReproError

LEASES_DIR = "leases"


class LeaseLost(ReproError):
    """Mid-run fence check failed: this replica no longer owns the job."""

    def __init__(self, message: str, *, job_id: str = "?", token: int = 0) -> None:
        super().__init__(message)
        self.job_id = job_id
        self.token = token


class FencedWrite(ReproError):
    """A publish carrying a stale fencing token was rejected."""

    def __init__(self, message: str, *, job_id: str = "?", token: int = 0) -> None:
        super().__init__(message)
        self.job_id = job_id
        self.token = token


@dataclass(frozen=True)
class Lease:
    """One job's ownership record (the immutable lease-file payload)."""

    job_id: str
    replica: str
    token: int
    acquired_at: float

    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "replica": self.replica,
            "token": self.token,
            "acquired_at": self.acquired_at,
        }


class LeaseManager:
    """One replica's view of the shared ``leases/`` directory."""

    def __init__(
        self,
        root: str | os.PathLike,
        replica_id: str,
        *,
        ttl_s: float = 3.0,
        clock=time.time,
    ) -> None:
        self.dir = Path(root) / LEASES_DIR
        self.replica_id = replica_id
        self.ttl_s = ttl_s
        self.clock = clock
        # Serializes this replica's own lease mutations (claim loop vs
        # heartbeat thread); cross-replica safety comes from link/rename.
        self._lock = threading.Lock()

    # -- paths -------------------------------------------------------------
    def lease_path(self, job_id: str) -> Path:
        return self.dir / f"{job_id}.json"

    def _hb_path(self, job_id: str, token: int) -> Path:
        return self.dir / f"{job_id}.hb.{token}"

    # -- reading -----------------------------------------------------------
    def read(self, job_id: str) -> Lease | None:
        """The current lease on *job_id*, or ``None``."""
        try:
            data = json.loads(self.lease_path(job_id).read_text())
        except (OSError, ValueError):
            return None
        try:
            return Lease(
                job_id=data["job_id"],
                replica=data["replica"],
                token=int(data["token"]),
                acquired_at=float(data["acquired_at"]),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def heartbeat_at(self, lease: Lease) -> float:
        """Wall-clock time of the lease's latest heartbeat."""
        try:
            data = json.loads(self._hb_path(lease.job_id, lease.token).read_text())
            return float(data["t"])
        except (OSError, ValueError, KeyError, TypeError):
            return lease.acquired_at

    def expired(self, lease: Lease) -> bool:
        """Has the owner missed its heartbeat for longer than the TTL?"""
        return self.clock() - self.heartbeat_at(lease) > self.ttl_s

    def owns(self, lease: Lease) -> bool:
        """Is *lease* still the on-disk lease, byte for byte?"""
        current = self.read(lease.job_id)
        return (
            current is not None
            and current.token == lease.token
            and current.replica == lease.replica
        )

    def active(self) -> list[Lease]:
        """Every lease currently on disk (any replica), sorted by job."""
        if not self.dir.is_dir():
            return []
        leases = []
        for path in sorted(self.dir.glob("*.json")):
            lease = self.read(path.stem)
            if lease is not None:
                leases.append(lease)
        return leases

    # -- acquire / steal / renew / release ---------------------------------
    def _claim_path(self, job_id: str, token: int) -> Path:
        return self.dir / f"{job_id}.claim.{token}"

    def _write_payload(self, tmp: Path, lease: Lease) -> None:
        """Write the lease payload to *tmp*, durable before any link."""
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(lease.as_dict(), fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _create(self, job_id: str, token: int) -> Lease | None:
        """Link a fully-written, fsynced lease into place (O_EXCL)."""
        lease = Lease(
            job_id=job_id,
            replica=self.replica_id,
            token=token,
            acquired_at=self.clock(),
        )
        self.dir.mkdir(parents=True, exist_ok=True)
        tmp = self.dir / f".tmp-{self.replica_id}-{job_id}"
        self._write_payload(tmp, lease)
        try:
            os.link(tmp, self.lease_path(job_id))
        except FileExistsError:
            return None  # someone else holds (or just took) the lease
        finally:
            os.unlink(tmp)
        fsync_dir(self.dir)
        self._beat(lease)
        return lease

    def acquire(self, job_id: str) -> Lease | None:
        """Claim an unleased job (token 1); ``None`` when already leased."""
        with self._lock:
            lease = self._create(job_id, 1)
        if lease is not None and _BUS.enabled:
            _BUS.emit(
                "service.lease_acquired", job_id,
                replica=self.replica_id, token=lease.token,
            )
            _METRICS.counter(
                "service.leases_acquired_total", "fresh lease acquisitions"
            ).inc()
        return lease

    def steal(self, job_id: str, lease: Lease) -> Lease | None:
        """Take over an expired lease; ``None`` when another stealer won.

        The O_EXCL claim link is the arbitration: token ``T + 1`` is
        claimable exactly once (claims persist until the job's lease is
        released), so of any number of concurrent stealers exactly one
        wins.  The winner renames a second link of its claim *onto* the
        lease path — an atomic overwrite, so the path is never absent
        and no scanner can slip in a fresh token-1 acquire mid-steal.
        A loser that finds the claim already taken while the lease file
        still shows the dead token finishes the winner's rename for it
        (the winner may have crashed between link and rename), keeping
        the chain live without ever counting itself a winner.
        """
        if not self.expired(lease):
            return None
        fresh = Lease(
            job_id=job_id,
            replica=self.replica_id,
            token=lease.token + 1,
            acquired_at=self.clock(),
        )
        claim = self._claim_path(job_id, fresh.token)
        with self._lock:
            current = self.read(job_id)
            if (
                current is None
                or current.token != lease.token
                or current.replica != lease.replica
            ):
                return None  # the world moved on while we decided
            self.dir.mkdir(parents=True, exist_ok=True)
            tmp = self.dir / f".tmp-{self.replica_id}-{job_id}"
            self._write_payload(tmp, fresh)
            try:
                os.link(tmp, claim)
                won = True
            except FileExistsError:
                won = False
            finally:
                os.unlink(tmp)
            if not won:
                self._finish_steal(job_id, lease, claim)
                return None
            self._install_claim(job_id, claim)
            if not self.owns(fresh):
                return None  # pathological interleaving; rescan decides
            # The dead owner's heartbeat is garbage now.
            try:
                os.unlink(self._hb_path(job_id, lease.token))
            except OSError:
                pass
            self._beat(fresh)
        if _BUS.enabled:
            _BUS.emit(
                "service.lease_stolen", job_id,
                replica=self.replica_id, token=fresh.token,
                stolen_from=lease.replica,
            )
            _METRICS.counter(
                "service.leases_stolen_total", "expired leases stolen"
            ).inc()
            _METRICS.counter(
                "service.heartbeats_expired_total",
                "leases observed past their heartbeat TTL",
            ).inc()
        return fresh

    def _install_claim(self, job_id: str, claim: Path) -> None:
        """Atomically overwrite the lease path with *claim*'s payload.

        Renames a second hard link so the claim file itself survives as
        the proof that its token was handed out — that is what makes
        each token claimable at most once for the job's lifetime.
        """
        tmp = self.dir / f".tmp-install-{self.replica_id}-{job_id}"
        try:
            os.link(claim, tmp)
        except OSError:
            return  # claim swept by a release; nothing left to install
        os.rename(tmp, self.lease_path(job_id))
        fsync_dir(self.dir)

    def _finish_steal(self, job_id: str, lease: Lease, claim: Path) -> None:
        """Complete another stealer's interrupted rename, if needed."""
        current = self.read(job_id)
        if (
            current is not None
            and current.token == lease.token
            and current.replica == lease.replica
            and claim.exists()
        ):
            self._install_claim(job_id, claim)

    def _beat(self, lease: Lease) -> None:
        """Write the per-token heartbeat file (atomic replace).

        Deliberately *not* dir-fsynced: losing a heartbeat to power loss
        only makes the lease look older than it is, which at worst
        causes an earlier (always safe) steal.
        """
        path = self._hb_path(lease.job_id, lease.token)
        tmp = path.parent / f".tmp-{path.name}-{self.replica_id}"
        tmp.write_text(json.dumps({"t": self.clock(), "token": lease.token}))
        os.replace(tmp, path)

    def renew(self, lease: Lease) -> bool:
        """Refresh the heartbeat; ``False`` when the lease is no longer ours.

        A stale renewal only ever writes ``.hb.<stale_token>`` — it can
        never interfere with the current owner — but the return value
        lets the heartbeat thread stop beating a dead horse.
        """
        with self._lock:
            if not self.owns(lease):
                return False
            self._beat(lease)
        if _BUS.enabled:
            _BUS.emit(
                "service.lease_renewed", lease.job_id,
                replica=self.replica_id, token=lease.token,
            )
            _METRICS.counter(
                "service.lease_renewals_total", "heartbeat renewals"
            ).inc()
        return True

    def release(self, lease: Lease) -> bool:
        """Drop our own lease after terminal publication; ``False`` if
        it was no longer ours (stolen while we finished)."""
        with self._lock:
            if not self.owns(lease):
                return False
            try:
                os.unlink(self.lease_path(lease.job_id))
            except OSError:
                return False
            fsync_dir(self.dir)
            # Sweep the job's heartbeat and spent claim files: the next
            # ownership chain (if any) starts fresh at token 1.
            stale = [self._hb_path(lease.job_id, lease.token)]
            stale.extend(self.dir.glob(f"{lease.job_id}.claim.*"))
            for path in stale:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        return True


@dataclass
class Fence:
    """The fencing token one job execution runs under."""

    manager: LeaseManager
    lease: Lease

    @property
    def token(self) -> int:
        return self.lease.token

    def check(self, site: str | None = None) -> None:
        """Mid-run ownership check (journal boundaries).

        Raises :class:`LeaseLost` the moment the on-disk lease is no
        longer ours — the replica aborts the attempt instead of racing
        the thief through the rest of the flow.
        """
        if self.manager.owns(self.lease):
            return
        if _BUS.enabled:
            _BUS.emit(
                "service.lease_fenced", self.lease.job_id,
                replica=self.manager.replica_id, token=self.lease.token,
                at=site or "check",
            )
            _METRICS.counter(
                "service.lease_lost_total",
                "executions aborted mid-run after losing their lease",
            ).inc()
        raise LeaseLost(
            f"lease on {self.lease.job_id} (token {self.lease.token}) "
            f"no longer held by {self.manager.replica_id}"
            + (f" at {site}" if site else ""),
            job_id=self.lease.job_id,
            token=self.lease.token,
        )

    def validate(self) -> None:
        """Publish-time fencing: stale token ⇒ :class:`FencedWrite`."""
        if self.manager.owns(self.lease):
            return
        self.rejected("stale-token")

    def rejected(self, reason: str) -> None:
        """Record one fenced publish attempt and raise."""
        if _BUS.enabled:
            _BUS.emit(
                "service.lease_fenced", self.lease.job_id,
                replica=self.manager.replica_id, token=self.lease.token,
                at="publish", reason=reason,
            )
        _METRICS.counter(
            "service.fenced_writes_total",
            "publish attempts rejected for carrying a stale fencing token",
        ).inc()
        raise FencedWrite(
            f"publish for {self.lease.job_id} rejected: fencing token "
            f"{self.lease.token} is stale ({reason})",
            job_id=self.lease.job_id,
            token=self.lease.token,
        )


__all__ = [
    "Fence",
    "FencedWrite",
    "Lease",
    "LeaseLost",
    "LeaseManager",
    "fsync_dir",
]
