"""Leader-less multi-replica build service over one shared root.

A :class:`ClusterReplica` wraps one single-worker
:class:`~repro.service.daemon.BuildService` in a *claim loop*: instead
of executing its local queue, it scans the shared store in admission
order and takes jobs through the durable lease protocol of
:mod:`repro.service.leases` — acquire unleased work, steal work whose
owner's heartbeat expired, skip work a live peer holds.  N replicas
(separate processes, each with its own unix socket) coordinate this way
with **no leader and no broker**: the filesystem is the only shared
medium, and every claim, renewal, steal and publish is arbitrated by an
atomic filesystem primitive.

Execution under a lease is *fenced* end to end:

* the lease's :class:`~repro.service.leases.Fence` is installed as the
  crashpoint boundary hook, so ownership is re-validated at **every
  journal boundary** — a replica that was SIGSTOPped past its TTL and
  resumed dies with :class:`~repro.service.leases.LeaseLost` inside the
  very boundary it paused at, before touching another byte of shared
  state;
* the terminal publish runs through the fence *and* through link-based
  first-writer-wins creation, so a stale owner can neither clobber nor
  duplicate the thief's result — the attempt raises
  :class:`~repro.service.leases.FencedWrite` and is counted in
  ``service.fenced_writes_total``.

Every attempt ends with exactly one terminal-publish attempt *through
the fence*, even after ``LeaseLost``: the on-disk lease — not the
replica's possibly-stale view — arbitrates.  If the loss was spurious
the publish lands and the job is safe; if it was real the fence rejects
it and the thief's (eventual) record stands.  Either way no job is lost
and no job is published twice.

A work-stealing chain is airtight by induction: a stolen job resumes
from the journal's committed prefix (the journal is digest-keyed and
lives under the job directory, shared by construction), the fencing
token increments on every steal, and a thief that dies is itself stolen
from.

Each replica maintains a durable report at
``<root>/replicas/<id>.json`` — acquisitions, steals, renewals, lost
leases, fenced writes, published jobs — which the ``servicecheck
--replicas N`` chaos campaign aggregates into its lease report.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.obs.metrics import REGISTRY as _METRICS
from repro.service.daemon import BuildService, ServiceServer
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING, JobRecord
from repro.service.leases import Fence, FencedWrite, LeaseLost, LeaseManager
from repro.service.robust import RetryPolicy
from repro.service.store import JobScan, _durable_write

REPLICAS_DIR = "replicas"


class ClusterReplica:
    """One replica process of the leader-less cluster."""

    def __init__(
        self,
        root: str | Path,
        replica_id: str,
        *,
        ttl_s: float = 3.0,
        check_tcl: bool = True,
        queue_depth: int = 8,
        retry: RetryPolicy | None = None,
        poll_s: float | None = None,
    ) -> None:
        # One executor worker per replica: fenced execution relies on
        # the process-global crashpoint boundary hook, and the lease
        # protocol makes concurrency a cross-process property anyway.
        self.svc = BuildService(
            root,
            workers=1,
            queue_depth=queue_depth,
            retry=retry,
            check_tcl=check_tcl,
            replica_id=replica_id,
        )
        self.store = self.svc.store
        self.replica_id = replica_id
        self.leases = LeaseManager(root, replica_id, ttl_s=ttl_s)
        #: How often an idle replica re-scans for claimable work; also
        #: bounds how quickly an expired peer is noticed.
        self.poll_s = poll_s if poll_s is not None else max(0.02, ttl_s / 6.0)
        self.report: dict = {
            "replica": replica_id,
            "acquired": 0,
            "stolen": 0,
            "renewals": 0,
            "lease_lost": 0,
            "fenced_writes": 0,
            "published": [],
            "timed_out": False,
        }
        self._report_path = Path(root) / REPLICAS_DIR / f"{replica_id}.json"

    # -- lifecycle ---------------------------------------------------------
    def recover(self) -> dict[str, int]:
        """Adopt the durable root's state (terminal records, admission seq)."""
        return self.svc.recover()

    def close(self) -> None:
        self.svc.close()

    def run_until_drained(self, *, timeout_s: float = 120.0) -> dict:
        """Blocking wrapper: claim and execute until every job is terminal."""
        return asyncio.run(self.run(timeout_s=timeout_s))

    async def run(
        self, *, stop_when_drained: bool = True, timeout_s: float | None = None
    ) -> dict:
        """The claim loop.

        Repeatedly scans the store in admission order, claims what the
        lease protocol allows, and executes it fenced.  With
        *stop_when_drained* the loop ends once every durably-admitted
        job has a terminal record on disk — written by *any* replica —
        otherwise it serves until cancelled.
        """
        started = time.monotonic()
        self._save_report()  # durable presence marker, updated as we go
        while True:
            progress = await self._claim_pass()
            if progress:
                continue
            if stop_when_drained and self._all_done():
                break
            if timeout_s is not None and time.monotonic() - started > timeout_s:
                self.report["timed_out"] = True
                break
            await asyncio.sleep(self.poll_s)
        self._save_report()
        return dict(self.report)

    async def serve(self, socket_path: str | Path) -> None:
        """Socket front end + claim loop, until a client sends shutdown.

        The server answers submit/status/wait/result/stats from the
        shared store's truth; execution is exclusively claim-driven, so
        a job submitted to this replica's socket may well be built by a
        peer — the client cannot tell, and need not care.
        """
        server = ServiceServer(self.svc, socket_path, dispatch=False)
        await server.start()
        claim = asyncio.create_task(self.run(stop_when_drained=False))
        try:
            await server.serve_until_shutdown()
        finally:
            claim.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await claim
            self._save_report()
            self.svc.close()

    # -- claim loop internals ----------------------------------------------
    async def _claim_pass(self) -> bool:
        """One admission-ordered sweep; True when a job was executed."""
        # The local queue is only an admission gate in cluster mode —
        # execution is store-driven, so drain (and discard) its entries.
        while self.svc.sched.pick() is not None:
            pass
        progress = False
        for scan in self.store.scan():
            if scan.record is not None:
                self._note_terminal(scan.job_id, scan.record, scan)
                continue
            # The scan snapshot goes stale while earlier jobs execute
            # (or while this replica sits frozen under SIGSTOP): a peer
            # may have finished this job already.  Re-check before
            # claiming, so counters reflect real ownership.
            record = self.store.load_terminal(scan.tenant, scan.job_id)
            if record is not None:
                self._note_terminal(scan.job_id, record, scan)
                continue
            lease = self.leases.read(scan.job_id)
            mine = None
            if lease is None:
                mine = self.leases.acquire(scan.job_id)
                if mine is not None:
                    self.report["acquired"] += 1
            elif self.leases.expired(lease):
                mine = self.leases.steal(scan.job_id, lease)
                if mine is not None:
                    self.report["stolen"] += 1
            if mine is None:
                continue  # a live peer owns it (or won the race)
            # Close the acquire/publish window: the previous owner may
            # have published between our scan and our claim.
            published = self.store.load_terminal(scan.tenant, scan.job_id)
            if published is not None:
                self.leases.release(mine)
                self._note_terminal(scan.job_id, published, scan)
                continue
            await self._run_leased(scan, mine)
            self._save_report()
            progress = True
        return progress

    async def _run_leased(self, scan: JobScan, lease) -> None:
        tenant, job_id, spec = scan.tenant, scan.job_id, scan.spec
        self.svc.specs[job_id] = spec
        record = self.svc.records.get(job_id)
        if record is None:
            record = JobRecord(job_id=job_id, tenant=tenant, state=QUEUED)
            self.svc.records[job_id] = record
        record.state = RUNNING
        fence = Fence(self.leases, lease)
        loop = asyncio.get_running_loop()
        beat = asyncio.create_task(self._heartbeat(lease))
        attempt = 0
        try:
            while True:
                attempt += 1
                record.attempts = attempt
                try:
                    info = await loop.run_in_executor(
                        self.svc._pool,
                        functools.partial(
                            self.svc._execute, tenant, job_id, spec, fence=fence
                        ),
                    )
                except LeaseLost:
                    self.report["lease_lost"] += 1
                    record.state = FAILED
                    record.error = "lease lost mid-run"
                    record.error_step = "lease"
                    break
                except BaseException as exc:
                    if self.svc.retry.should_retry(attempt, exc):
                        record.retries += 1
                        await asyncio.sleep(
                            self.svc.retry.delay_s(job_id, attempt)
                        )
                        continue
                    record.state = FAILED
                    record.error = f"{type(exc).__name__}: {exc}"
                    record.error_step = BuildService._step_family(exc)
                    break
                else:
                    record.state = DONE
                    record.served_from = info["served_from"]
                    record.artifact_digest = info["artifact_digest"]
                    record.sim_digest = info["sim_digest"]
                    record.steps_skipped = info["steps_skipped"]
                    record.crash_recoveries = info["crash_recoveries"]
                    break
        finally:
            beat.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await beat
        record.replica = self.replica_id
        # The one terminal-publish attempt of this attempt — always
        # through the fence, whatever happened above.  The on-disk lease
        # arbitrates: spurious loss -> the publish lands, job safe; real
        # loss -> FencedWrite, the thief's record stands.
        try:
            self.store.write_terminal(
                record, content_digest=spec.content_digest(), fence=fence
            )
            self.report["published"].append(job_id)
        except FencedWrite:
            self.report["fenced_writes"] += 1
            disk = self.store.load_terminal(tenant, job_id)
            if disk is not None:
                self.svc.records[job_id] = disk
        finally:
            self.leases.release(lease)
        self._signal(job_id)

    async def _heartbeat(self, lease) -> None:
        """Renew the lease at TTL/3 until cancelled or no longer ours.

        A SIGSTOPped replica stops beating with everything else — which
        is exactly the liveness signal peers steal on.
        """
        interval = max(0.01, self.leases.ttl_s / 3.0)
        while True:
            await asyncio.sleep(interval)
            if not self.leases.renew(lease):
                return
            self.report["renewals"] += 1

    def _note_terminal(self, job_id: str, record: JobRecord, scan: JobScan) -> None:
        """Adopt a terminal record from disk (possibly a peer's work)."""
        self.svc.specs.setdefault(job_id, scan.spec)
        existing = self.svc.records.get(job_id)
        if existing is None or existing.state != record.state:
            self.svc.records[job_id] = record
        self._signal(job_id)

    def _signal(self, job_id: str) -> None:
        event = self.svc._events.get(job_id)
        if event is not None:
            event.set()

    def _all_done(self) -> bool:
        return all(s.record is not None for s in self.store.scan())

    def _save_report(self) -> None:
        payload = dict(self.report)
        payload["published"] = sorted(payload["published"])
        # The acceptance counter, straight from the metrics registry —
        # Fence.rejected() increments it unconditionally.
        payload["fenced_writes_total"] = _METRICS.counter(
            "service.fenced_writes_total"
        ).value
        _durable_write(self._report_path, payload)


def read_replica_reports(root: str | Path) -> list[dict]:
    """Every replica's durable report under *root*, sorted by replica id."""
    import json

    reports = []
    replicas_dir = Path(root) / REPLICAS_DIR
    if replicas_dir.is_dir():
        for path in sorted(replicas_dir.glob("*.json")):
            try:
                reports.append(json.loads(path.read_text()))
            except (OSError, ValueError):
                continue
    return reports


def spawn_replica(
    root: str | Path,
    replica_id: str,
    *,
    socket_path: str | Path | None = None,
    ttl_s: float = 3.0,
    drain: bool = False,
    timeout_s: float | None = None,
    check_tcl: bool = True,
    env: dict[str, str] | None = None,
) -> subprocess.Popen:
    """Start ``repro replica`` as a real child process.

    Used by ``repro serve --replicas N`` and by the multi-replica chaos
    campaign (which arms the child's crash plan through *env*).  Stdout
    and stderr land in ``<root>/<replica_id>.log`` for post-mortems.
    """
    cmd = [
        sys.executable, "-m", "repro", "replica",
        "--root", str(root),
        "--replica-id", replica_id,
        "--ttl", str(ttl_s),
    ]
    if socket_path is not None:
        cmd += ["--socket", str(socket_path)]
    if drain:
        cmd += ["--drain"]
    if timeout_s is not None:
        cmd += ["--timeout", str(timeout_s)]
    if not check_tcl:
        cmd += ["--no-check-tcl"]
    full_env = dict(os.environ)
    if env:
        full_env.update(env)
    Path(root).mkdir(parents=True, exist_ok=True)
    log = open(Path(root) / f"{replica_id}.log", "ab")
    try:
        return subprocess.Popen(
            cmd, env=full_env, stdout=log, stderr=subprocess.STDOUT
        )
    finally:
        log.close()  # the child holds its own descriptor


__all__ = [
    "REPLICAS_DIR",
    "ClusterReplica",
    "read_replica_reports",
    "spawn_replica",
]
