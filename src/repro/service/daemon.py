"""The build-service daemon: asyncio job execution over the flow engine.

:class:`BuildService` owns one service root (see
:mod:`repro.service.store`), a :class:`~repro.service.queueing.FairScheduler`,
and a bounded thread pool the synchronous flow engine runs on.  One
asyncio *dispatcher* pulls jobs from the scheduler and fans them out to
the pool; every job execution is wrapped in the robustness ladder:

1. **Degradation gate** — when a circuit breaker is open or the queue
   backlog exceeds the saturation bound, an identical completed job's
   workspace is served warm (read-only copy, any tenant) instead of
   executing; an open breaker with no warm artifact fails fast with
   :class:`~repro.service.robust.BreakerOpen`.
2. **Journaled execution** — ``run_flow`` rides the PR-3 write-ahead
   journal under the job directory, the workspace materializes
   atomically, and an optional fault-injected simulation leg commits as
   a ``simulate`` journal step (its record written durably *before* the
   commit, the same publish-then-commit contract as every flow step).
3. **Deadline** — the per-job wall-clock budget is checked at step
   boundaries (the flow itself is simulated, so steps are short).
4. **Retry** — transient failures (lock contention, deadline overruns,
   interrupted flows) retry with deterministic exponential backoff; a
   retried :class:`~repro.util.errors.FlowInterrupted` *resumes* through
   the journal rather than rebuilding.
5. **Breaker accounting** — a failed run is attributed to the backend
   step the journal shows started-but-uncommitted; that step's breaker
   counts the failure, opens after the threshold, and half-open probes
   close it again.

Restart safety: ``job.json`` is durable before admission, the journal
before execution, terminal records after publication — so
:meth:`BuildService.recover` reconstructs the entire daemon state from
disk: terminal jobs re-serve their recorded results (*replay*),
journaled jobs resume mid-flight (*resume*), admitted-but-unstarted
jobs re-queue.  ``repro servicecheck`` kills the daemon at every journal
boundary and proves the recovered artifacts byte-identical.

With ``die_on_interrupt=True`` (the chaos harness) an armed crash-point
is treated as daemon death: the dispatcher stops instantly, nothing is
cleaned up, and recovery must cope with exactly what was durable —
in-process ``kill -9`` semantics.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.flow.autosim import autosimulate
from repro.flow.crashpoints import crashpoint, set_boundary_hook
from repro.flow.journal import RunJournal, stable_digest
from repro.flow.orchestrator import FlowConfig, run_flow
from repro.flow.workspace import materialize
from repro.obs.events import BUS as _BUS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.service.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobSpec,
)
from repro.service.queueing import FairScheduler
from repro.service.robust import (
    OPEN,
    BreakerOpen,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)
from repro.service.store import JobStore
from repro.sim.faults import RecoveryPolicy
from repro.util.errors import FlowInterrupted, ReproError


class UnknownJob(ReproError):
    """The requested job id is not known to this daemon."""


class BuildService:
    """One daemon instance over one service root."""

    def __init__(
        self,
        root: str | Path,
        *,
        workers: int = 2,
        queue_depth: int = 8,
        starvation_after: int = 4,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 30.0,
        saturation_backlog: int | None = None,
        die_on_interrupt: bool = False,
        check_tcl: bool = True,
        clock=time.monotonic,
        replica_id: str = "d0",
    ) -> None:
        self.store = JobStore(root)
        #: Replica identity, threaded through events, spans and terminal
        #: records so a multi-replica trace attributes every action.
        self.replica_id = replica_id
        self.workers = max(1, workers)
        self.sched = FairScheduler(
            depth_bound=queue_depth, starvation_after=starvation_after
        )
        self.retry = retry or RetryPolicy()
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.saturation_backlog = saturation_backlog
        self.die_on_interrupt = die_on_interrupt
        self.check_tcl = check_tcl
        self.clock = clock
        self.records: dict[str, JobRecord] = {}
        self.specs: dict[str, JobSpec] = {}
        self.breakers: dict[str, CircuitBreaker] = {}
        self.died = False
        self.death: BaseException | None = None
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="svc-exec"
        )
        self._events: dict[str, asyncio.Event] = {}
        self._wakeup: asyncio.Event | None = None
        self._admission_seq = 0

    # -- admission ---------------------------------------------------------
    def submit(self, tenant: str, spec: JobSpec) -> JobRecord:
        """Admit one job (idempotent) and return its record.

        The same spec from the same tenant is the same job: a terminal
        job returns its durable record, a queued/running one its live
        record — a client that lost its response can always resubmit.
        Raises :class:`~repro.service.jobs.JobRejected` when the
        tenant's queue is at its bound.
        """
        job_id = spec.job_id(tenant)
        existing = self.records.get(job_id)
        if existing is not None:
            return existing
        # Durable admission intent *before* the queue: a daemon killed
        # right after this line recovers the job; killed before it, the
        # client never got an ACK and resubmits.  First-writer-wins: a
        # resubmission against a root where another replica already
        # persisted the identical intent leaves it (and its admission
        # order) untouched.
        self._admission_seq += 1
        self.store.save_spec(tenant, job_id, spec, order=self._admission_seq)
        self.sched.submit(tenant, job_id)  # raises JobRejected when full
        self.specs[job_id] = spec
        record = JobRecord(job_id=job_id, tenant=tenant, state=QUEUED)
        self.records[job_id] = record
        if _BUS.enabled:
            _BUS.emit(
                "service.submit", job_id, tenant=tenant,
                replica=self.replica_id,
            )
            _METRICS.counter("service.jobs_submitted", "jobs admitted").inc()
        if self._wakeup is not None:
            self._wakeup.set()
        return record

    # -- recovery ----------------------------------------------------------
    def recover(self) -> dict[str, int]:
        """Rebuild daemon state from the durable root after a restart.

        ``store.scan`` returns jobs in admission order, so recovered
        jobs re-enter the scheduler exactly as clients admitted them;
        subsequent fresh submissions continue the sequence.
        """
        counts = {"replayed": 0, "resumed": 0, "requeued": 0}
        for scan in self.store.scan():
            self._admission_seq = max(self._admission_seq, scan.order)
            if scan.job_id in self.records:
                continue
            self.specs[scan.job_id] = scan.spec
            if scan.record is not None:
                scan.record.served_from = "replay"
                self.records[scan.job_id] = scan.record
                counts["replayed"] += 1
                continue
            record = JobRecord(
                job_id=scan.job_id, tenant=scan.tenant, state=QUEUED
            )
            self.records[scan.job_id] = record
            # Recovery bypasses admission bounds: these jobs were already
            # admitted durably — rejecting one now would lose it.
            self.sched.restore(scan.tenant, scan.job_id)
            kind = "resumed" if scan.phase == "inflight" else "requeued"
            counts[kind] += 1
            if _BUS.enabled:
                _BUS.emit(
                    "service.recover", scan.job_id,
                    tenant=scan.tenant, kind=kind, replica=self.replica_id,
                )
                _METRICS.counter(
                    "service.recoveries", "jobs recovered after a restart"
                ).inc()
        return counts

    # -- inspection --------------------------------------------------------
    def status(self, job_id: str) -> JobRecord:
        record = self.records.get(job_id)
        if record is None:
            raise UnknownJob(f"unknown job {job_id!r}")
        return record

    async def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        record = self.status(job_id)
        if record.terminal or self.died:
            return record
        event = self._events.setdefault(job_id, asyncio.Event())
        await asyncio.wait_for(event.wait(), timeout)
        return self.records[job_id]

    def stats(self) -> dict:
        return {
            "queue": self.sched.describe(),
            "breakers": [b.describe() for b in sorted(
                self.breakers.values(), key=lambda b: b.step
            )],
            "jobs": {
                state: sum(1 for r in self.records.values() if r.state == state)
                for state in (QUEUED, RUNNING, DONE, FAILED)
            },
            "died": self.died,
        }

    # -- dispatch ----------------------------------------------------------
    async def drain(self) -> None:
        """Run every queued job to a terminal state (or daemon death)."""
        await self._dispatch(stop_when_idle=True)

    async def _dispatch(self, *, stop_when_idle: bool) -> None:
        self._wakeup = self._wakeup or asyncio.Event()
        running: set[asyncio.Task] = set()
        while not self.died:
            while len(running) < self.workers:
                picked = self.sched.pick()
                if picked is None:
                    break
                tenant, job_id = picked
                running.add(asyncio.create_task(self._run_job(tenant, job_id)))
            if not running:
                if stop_when_idle:
                    break
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(self._wakeup.wait(), 0.1)
                except asyncio.TimeoutError:
                    pass
                continue
            done, running = await asyncio.wait(
                running, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                exc = task.exception()
                if exc is not None:  # pragma: no cover - programming error
                    raise exc
        if self.died:
            # Abandoned like a kill: unblock waiters, leave all state as-is.
            for event in self._events.values():
                event.set()

    async def _run_job(self, tenant: str, job_id: str) -> None:
        record = self.records[job_id]
        spec = self.specs[job_id]
        record.state = RUNNING
        loop = asyncio.get_running_loop()
        attempt = 0
        while True:
            attempt += 1
            record.attempts = attempt
            try:
                info = await loop.run_in_executor(
                    self._pool, self._execute, tenant, job_id, spec
                )
            except FlowInterrupted as exc:
                if self.die_on_interrupt:
                    # The armed crash-point killed "the daemon": stop
                    # everything, clean up nothing — recovery's problem.
                    self.died = True
                    self.death = exc
                    return
                if self.retry.should_retry(attempt, exc):
                    await self._backoff(record, attempt)
                    continue
                self._fail(record, spec, exc, step=self._step_family(exc))
                break
            except BaseException as exc:
                step = self._step_family(exc)
                if not isinstance(exc, BreakerOpen):
                    self._breaker(step).record_failure()
                    self._breaker_event(self._breaker(step))
                if self.retry.should_retry(attempt, exc):
                    await self._backoff(record, attempt)
                    continue
                self._fail(record, spec, exc, step=step)
                break
            else:
                record.state = DONE
                record.served_from = info["served_from"]
                record.artifact_digest = info["artifact_digest"]
                record.sim_digest = info["sim_digest"]
                record.steps_skipped = info["steps_skipped"]
                record.crash_recoveries = info["crash_recoveries"]
                for step in info["step_families"]:
                    breaker = self.breakers.get(step)
                    if breaker is not None:
                        breaker.record_success()
                        self._breaker_event(breaker)
                self.store.write_terminal(
                    record, content_digest=spec.content_digest()
                )
                if _BUS.enabled:
                    _METRICS.counter("service.jobs_done", "jobs completed").inc()
                break
        self._events.setdefault(job_id, asyncio.Event()).set()

    async def _backoff(self, record: JobRecord, attempt: int) -> None:
        record.retries += 1
        delay = self.retry.delay_s(record.job_id, attempt)
        if _BUS.enabled:
            _BUS.emit(
                "service.retry", record.job_id,
                attempt=attempt, delay_ms=round(delay * 1000),
            )
            _METRICS.counter("service.retries", "job attempt retries").inc()
        await asyncio.sleep(delay)

    @staticmethod
    def _step_family(exc: BaseException) -> str:
        """The journal-step family an exception is attributed to.

        ``_execute`` attaches ``service_step`` (the uncommitted journal
        tail) on the way out; a :class:`FlowInterrupted` carries the
        crash site; anything without either is charged to ``flow``.
        """
        step = getattr(exc, "service_step", None)
        if step is None:
            step = getattr(exc, "step", None)
        if not step:
            return "flow"
        return str(step).split(":", 1)[0]

    def _fail(
        self, record: JobRecord, spec: JobSpec, exc: BaseException, *, step: str
    ) -> None:
        record.state = FAILED
        record.error = f"{type(exc).__name__}: {exc}"
        record.error_step = step
        self.store.write_terminal(record, content_digest=spec.content_digest())
        if _BUS.enabled:
            _METRICS.counter("service.jobs_failed", "jobs ending FAILED").inc()

    # -- execution (runs on the thread pool) -------------------------------
    def _execute(
        self, tenant: str, job_id: str, spec: JobSpec, *, fence=None
    ) -> dict:
        """Run one job attempt: flow, workspace, optional simulation.

        With a *fence* (cluster execution under a lease) ownership is
        re-validated at every journal boundary: the fence's check is
        installed as the crashpoint boundary hook for the duration, so
        the moment the lease is stolen the attempt dies with
        :class:`~repro.service.leases.LeaseLost` instead of racing the
        thief through shared state.  Fenced execution is single-job per
        process (the cluster replica runs ``workers=1``), which is what
        makes the process-global hook sound.
        """
        deadline = Deadline(spec.deadline_s, clock=self.clock)
        degraded = self._maybe_degrade(tenant, job_id, spec)
        if degraded is not None:
            return degraded

        cache = self.store.cache_for(tenant)
        journal = RunJournal(self.store.journal_path(tenant, job_id))
        out_dir = self.store.out_dir(tenant, job_id)
        config = FlowConfig(check_tcl=self.check_tcl)
        directives = {node: list(d) for node, d in spec.directives.items()}
        served = "build"
        if fence is not None:
            set_boundary_hook(fence.check)
        try:
            with _BUS.span("service.job", job_id,
                           worker=f"{self.replica_id}:job:{job_id}",
                           tenant=tenant, replica=self.replica_id):
                result = run_flow(
                    spec.dsl,
                    dict(spec.sources),
                    extra_directives=directives,
                    config=config,
                    build_cache=cache,
                    journal=journal,
                )
                if journal.resumed:
                    served = "resume"
                deadline.check()
                materialize(result, out_dir, journal=journal)
                deadline.check()
                sim_digest = None
                if spec.sim is not None:
                    sim_digest = self._simulate_step(
                        tenant, job_id, spec, result, journal
                    )
                    deadline.check()
            manifest = json.loads((out_dir / "MANIFEST.json").read_text())
            timing = result.timing
            return {
                "served_from": served,
                "artifact_digest": manifest["artifact_digest"],
                "sim_digest": sim_digest,
                "steps_skipped": timing.steps_skipped,
                "crash_recoveries": timing.crash_recoveries,
                "step_families": sorted(
                    {s.split(":", 1)[0] for s in journal.committed_steps}
                ),
            }
        except FlowInterrupted:
            raise
        except BaseException as exc:
            started = journal.started_steps
            committed = journal.committed_steps
            tail = [s for s, d in started.items() if committed.get(s) != d]
            exc.service_step = (  # type: ignore[attr-defined]
                tail[-1].split(":", 1)[0] if tail else "flow"
            )
            raise
        finally:
            if fence is not None:
                set_boundary_hook(None)
            journal.close()

    def _maybe_degrade(self, tenant: str, job_id: str, spec: JobSpec) -> dict | None:
        """Warm-serve (or fail fast) instead of executing, when degraded."""
        blocking = [b.step for b in self.breakers.values() if not b.allow()]
        saturated = (
            self.saturation_backlog is not None
            and self.sched.depth() >= self.saturation_backlog
        )
        if not blocking and not saturated:
            return None
        entry = self.store.serve_warm(spec.content_digest(), tenant, job_id)
        if entry is not None:
            if _BUS.enabled:
                _BUS.emit(
                    "service.degrade", job_id, tenant=tenant,
                    reason="breaker-open" if blocking else "saturated",
                    source=entry["job_id"],
                )
                _METRICS.counter(
                    "service.degraded", "jobs served warm under degradation"
                ).inc()
            return {
                "served_from": "warm",
                "artifact_digest": entry["artifact_digest"],
                "sim_digest": entry.get("sim_digest"),
                "steps_skipped": 0,
                "crash_recoveries": 0,
                "step_families": [],
            }
        if blocking:
            breaker = self.breakers[blocking[0]]
            raise BreakerOpen(
                f"circuit breaker for step {breaker.step!r} is open "
                f"(retry in {breaker.retry_after_s():.1f} s) and no warm "
                "artifact exists for this job",
                step=breaker.step,
                retry_after_s=breaker.retry_after_s(),
            )
        return None  # saturated but no warm artifact — execute anyway

    def _simulate_step(
        self, tenant: str, job_id: str, spec: JobSpec, result, journal: RunJournal
    ) -> str:
        """The journaled simulation leg: publish ``sim.json``, then commit."""
        sim = spec.sim
        assert sim is not None
        manifest = json.loads(
            (self.store.out_dir(tenant, job_id) / "MANIFEST.json").read_text()
        )
        digest_in = stable_digest(
            {"artifact": manifest["artifact_digest"], "sim": sim.as_dict()}
        )
        sim_path = self.store.sim_path(tenant, job_id)
        if journal.committed("simulate", digest_in):
            try:
                data = json.loads(sim_path.read_text())
            except (OSError, ValueError):
                data = None
            if data is not None and data.get("input") == digest_in:
                return data["digest"]  # committed => the record is durable
        journal.step_start("simulate", digest_in)
        crashpoint("simulate:start")
        policy = RecoveryPolicy(node_budget=sim.node_budget)
        res = autosimulate(
            result, seed=sim.seed, faults=sim.faults, policy=policy
        )
        report = {
            "input": digest_in,
            "cycles": res.report.cycles,
            "outputs": {
                name: hashlib.sha256(
                    np.ascontiguousarray(arr).tobytes()
                ).hexdigest()
                for name, arr in sorted(res.outputs.items())
            },
            "lite_returns": {
                k: v for k, v in sorted(res.lite_returns.items())
            },
            "faults_fired": len(res.report.fault_events),
            "recoveries": len(res.report.recovery_events),
        }
        report["digest"] = stable_digest(report)
        from repro.service.store import _durable_write

        _durable_write(sim_path, report)
        journal.step_commit("simulate", digest_in)
        crashpoint("simulate:commit")
        return report["digest"]

    # -- breakers ----------------------------------------------------------
    def _breaker(self, step: str) -> CircuitBreaker:
        breaker = self.breakers.get(step)
        if breaker is None:
            breaker = self.breakers[step] = CircuitBreaker(
                step,
                failure_threshold=self.breaker_threshold,
                cooldown_s=self.breaker_cooldown_s,
                clock=self.clock,
            )
        return breaker

    def _breaker_event(self, breaker: CircuitBreaker) -> None:
        if _BUS.enabled:
            _BUS.emit(
                "service.breaker", breaker.step,
                state=breaker.state, failures=breaker.consecutive_failures,
            )
            _METRICS.gauge(
                "service.breakers_open", "circuit breakers currently open"
            ).set(sum(1 for b in self.breakers.values() if b.state == OPEN))

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


# -- socket protocol ---------------------------------------------------------
#
# JSON lines over a unix socket: one request object per line, one
# response object per line.  Ops: ping, submit, status, wait, result,
# stats, shutdown.  Errors come back as {"ok": false, "error": ...}.


class ServiceServer:
    """Unix-socket front end for one :class:`BuildService`."""

    def __init__(
        self,
        service: BuildService,
        socket_path: str | Path,
        *,
        dispatch: bool = True,
    ) -> None:
        self.service = service
        self.socket_path = Path(socket_path)
        #: With ``dispatch=False`` the server only answers the socket —
        #: execution belongs to someone else (the cluster claim loop).
        self.dispatch = dispatch
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._shutdown = asyncio.Event()

    async def start(self) -> None:
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path)
        )
        if self.dispatch:
            self._dispatcher = asyncio.create_task(
                self.service._dispatch(stop_when_idle=False)
            )

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self.service.died = True  # stop the dispatcher loop
            if self.service._wakeup is not None:
                self.service._wakeup.set()
            try:
                await asyncio.wait_for(self._dispatcher, 5.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._dispatcher.cancel()
        if self.socket_path.exists():
            self.socket_path.unlink()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle_lines(reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass  # server stopping with a client mid-read: close quietly
        finally:
            writer.close()

    async def _handle_lines(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
                response = await self._serve_op(request)
            except ReproError as exc:
                response = {
                    "ok": False,
                    "error": str(exc),
                    "kind": type(exc).__name__,
                    **{
                        k: getattr(exc, k)
                        for k in ("tenant", "reason")
                        if hasattr(exc, k)
                    },
                }
            except (ValueError, KeyError) as exc:
                response = {"ok": False, "error": f"bad request: {exc}"}
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()

    async def _serve_op(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            spec = JobSpec.from_dict(request["spec"])
            record = self.service.submit(request["tenant"], spec)
            return {"ok": True, "record": record.as_dict()}
        if op == "status":
            return {
                "ok": True,
                "record": self.service.status(request["job_id"]).as_dict(),
            }
        if op == "wait":
            record = await self.service.wait(
                request["job_id"], timeout=request.get("timeout")
            )
            return {"ok": True, "record": record.as_dict()}
        if op == "result":
            record = self.service.status(request["job_id"])
            out = self.service.store.out_dir(record.tenant, record.job_id)
            return {
                "ok": True,
                "record": record.as_dict(),
                "workspace": str(out) if out.exists() else None,
            }
        if op == "stats":
            return {"ok": True, "stats": self.service.stats()}
        if op == "shutdown":
            self._shutdown.set()
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


class ServiceClient:
    """Blocking JSON-lines client for :class:`ServiceServer` (CLI/tests).

    Connection setup is hardened for the multi-replica world: a replica
    that is still binding its socket (or was just restarted) refuses or
    lacks the socket file for a moment, so ``connect`` retries with
    capped deterministic exponential backoff instead of failing the
    first raced attempt.  Submissions are idempotent end to end — the
    job id is content-addressed and the admission intent is published
    first-writer-wins — so a client that lost its ACK can resubmit the
    same spec to *any* replica of the same root (:meth:`submit` with
    ``resubmit`` does the reconnect-and-retry itself).
    """

    def __init__(
        self,
        socket_path: str | Path,
        *,
        timeout_s: float = 60.0,
        connect_retries: int = 5,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 0.5,
        sleep=time.sleep,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.timeout_s = timeout_s
        self.connect_retries = connect_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._sleep = sleep
        self._sock = None
        self._file = None
        self._connect()

    @staticmethod
    def backoff_s(attempt: int, *, base: float, cap: float) -> float:
        """Deterministic capped exponential backoff for attempt *n* (1-based)."""
        return min(cap, base * (2 ** (attempt - 1)))

    def _connect(self) -> None:
        import socket as _socket

        last: Exception | None = None
        for attempt in range(1, self.connect_retries + 2):
            sock = _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            try:
                sock.connect(str(self.socket_path))
            except (ConnectionRefusedError, FileNotFoundError, TimeoutError) as exc:
                sock.close()
                last = exc
                if attempt > self.connect_retries:
                    break
                self._sleep(
                    self.backoff_s(
                        attempt, base=self.backoff_base_s, cap=self.backoff_cap_s
                    )
                )
                continue
            self._sock = sock
            self._file = sock.makefile("rwb")
            return
        raise ReproError(
            f"could not connect to service at {self.socket_path}: {last}"
        )

    def _reconnect(self) -> None:
        self.close()
        self._connect()

    def request(self, op: str, **fields) -> dict:
        self._file.write(json.dumps({"op": op, **fields}).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ReproError("service closed the connection")
        return json.loads(line)

    def submit(self, tenant: str, spec: JobSpec, *, resubmit: int = 0) -> dict:
        """Submit one job; a lost ACK is resubmitted up to *resubmit* times.

        Losing the response line (replica killed between admitting the
        job and ACKing it) is indistinguishable from losing the request,
        and both are safe to replay: the job id is a content digest, the
        daemon's ``submit`` is idempotent, and the durable intent is
        first-writer-wins — so the retry reconnects and sends the exact
        same spec again, to this socket or whichever replica now owns it.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.request("submit", tenant=tenant, spec=spec.as_dict())
            except (ReproError, OSError):
                if attempt > resubmit:
                    raise
                self._sleep(
                    self.backoff_s(
                        attempt, base=self.backoff_base_s, cap=self.backoff_cap_s
                    )
                )
                self._reconnect()

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        return self.request("wait", job_id=job_id, timeout=timeout)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["BuildService", "ServiceClient", "ServiceServer", "UnknownJob"]
