"""Minimal generator-based discrete-event kernel.

Processes are Python generators that ``yield`` :class:`Event` objects;
a process resumes when the yielded event triggers.  ``env.timeout(n)``
produces an event triggering *n* cycles later; a :class:`Process` is
itself an event that triggers when its generator finishes, so processes
compose (``yield env.process(child())``).

The design is a deliberately small subset of SimPy — enough for FIFOs,
DMA engines and CPU/accelerator processes — with deterministic FIFO
ordering of same-cycle events so simulations are reproducible.

Robustness machinery on top of the basic queue:

* :meth:`Environment.deadline` — a cancellable watchdog timer.  A
  cancelled deadline is skipped without advancing the clock, so arming
  and cancelling watchdogs leaves fault-free runs cycle-identical.
* *background* scheduling (:meth:`Environment.schedule_background`) —
  entries that run if simulation time reaches them but do not, on their
  own, keep the simulation alive (used for scheduled fault injections).
* a live-process registry with :meth:`Environment.abandon` and an
  optional deadlock detector: if the queue drains while registered
  processes remain blocked, :class:`SimDeadlockError` names them and
  reports FIFO occupancies instead of returning silently.
* structured failure propagation: an exception inside a process escapes
  :meth:`Environment.run` wrapped in :class:`SimProcessError` (process
  name + cycle), or — for processes started with ``capture_errors`` —
  is stored on :attr:`Process.error` so a supervisor can retry.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator

from repro.util.errors import (
    ReproError,
    SimDeadlockError,
    SimError,
    SimProcessError,
)


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("env", "triggered", "value", "_callbacks")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.triggered = False
        self.value: object = None
        self._callbacks: list[Callable[[Event], None]] = []

    def trigger(self, value: object = None) -> None:
        """Mark the event triggered and schedule its callbacks *now*.

        Callbacks are deferred through the event queue (not run on the
        triggering call stack): long put/get hand-off chains would
        otherwise recurse one stack frame per token.
        """
        if self.triggered:
            raise SimError("event triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.env._immediate(lambda cb=cb: cb(self))

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.env._immediate(lambda: cb(self))
        else:
            self._callbacks.append(cb)


class Timer(Event):
    """A cancellable deadline (watchdog) event.

    Triggers *delay* cycles after creation unless :meth:`cancel` is
    called first.  A cancelled timer's queue entry is discarded without
    advancing the clock, so an unused watchdog is timing-invisible.
    """

    __slots__ = ("cancelled",)

    def __init__(self, env: "Environment", delay: int, value: object = None) -> None:
        super().__init__(env)
        self.cancelled = False

        def fire() -> None:
            if not self.cancelled:
                self.trigger(value)

        fire._timer = self  # run() skips cancelled timer entries
        env._push(int(delay), fire)

    def cancel(self) -> None:
        """Disarm the deadline (idempotent; a no-op once triggered)."""
        if not self.cancelled and not self.triggered:
            self.cancelled = True
            self.env._foreground -= 1


class Process(Event):
    """A running generator; triggers (with its return value) on exit.

    Failure semantics, in order of precedence:

    * ``capture_errors`` — a :class:`~repro.util.errors.ReproError`
      raised by the generator is stored on :attr:`error` and the process
      triggers normally (value ``None``) — the supervision hook the
      runtime's retry ladder builds on;
    * every waiter is another process — the exception is re-thrown
      *inside* each waiting generator (at its ``yield``), so callers can
      handle a child's failure inline with ``try/except``, exactly like
      a C driver call returning an error;
    * otherwise the failure propagates out of :meth:`Environment.run`
      wrapped in :class:`SimProcessError` (process name + cycle).
    """

    __slots__ = (
        "generator", "name", "error", "failed", "_abandoned", "_capture_errors",
    )

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: str = "?",
        *,
        capture_errors: bool = False,
    ) -> None:
        super().__init__(env)
        self.generator = generator
        self.name = name
        self.error: BaseException | None = None
        self.failed = False
        self._abandoned = False
        self._capture_errors = capture_errors
        env._processes[id(self)] = self
        env._immediate(self._step)

    def _finish(self, value: object) -> None:
        self.env._processes.pop(id(self), None)
        self.trigger(value)

    def _step(self, _evt: Event | None = None) -> None:
        if self._abandoned:
            return
        try:
            if _evt is not None and getattr(_evt, "failed", False):
                value = self.generator.throw(_evt.error)
            else:
                value = self.generator.send(_evt.value if _evt is not None else None)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except ReproError as exc:
            self.env._processes.pop(id(self), None)
            if self._capture_errors:
                self.error = exc
                self.trigger(None)
                return
            waiters = [
                cb for cb in self._callbacks
                if isinstance(getattr(cb, "__self__", None), Process)
            ]
            if waiters and len(waiters) == len(self._callbacks):
                # Everyone waiting is a process: re-raise inside them.
                self.error = exc
                self.failed = True
                self.trigger(None)
                return
            if isinstance(exc, SimProcessError):
                raise
            raise SimProcessError(
                f"process {self.name!r} failed at cycle {self.env.now}: {exc}",
                process=self.name,
                cycle=self.env.now,
                original=exc,
            ) from exc
        if not isinstance(value, Event):
            raise SimError(
                f"process {self.name!r} yielded {type(value).__name__}; "
                "processes must yield Event objects"
            )
        value.add_callback(self._step)


class Environment:
    """The event queue + simulated clock (in cycles)."""

    def __init__(self) -> None:
        self.now = 0
        self._queue: list[tuple[int, int, Callable[[], None], bool]] = []
        self._seq = 0
        self._foreground = 0
        #: Total events executed across all run() calls — the cost metric
        #: the burst fast path exists to shrink (see sim/burst.py).
        self.events_processed = 0
        #: Live (started, not finished, not abandoned) processes.
        self._processes: dict[int, Process] = {}
        #: Objects reported on deadlock (anything with name/capacity/len).
        self.watched_fifos: list = []
        #: When True, run() raises SimDeadlockError if the queue drains
        #: while processes remain blocked (instead of returning quietly).
        self.detect_deadlock = False

    # -- scheduling -------------------------------------------------------
    def _push(self, delay: int, fn: Callable[[], None], *, background: bool = False) -> None:
        if delay < 0:
            raise SimError("cannot schedule into the past")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn, background))
        if not background:
            self._foreground += 1

    def _immediate(self, fn: Callable) -> None:
        self._push(0, fn)

    def schedule_background(self, delay: int, fn: Callable[[], None]) -> None:
        """Schedule *fn* without keeping the simulation alive for it.

        A background entry executes only if foreground work is still
        pending when its time arrives — fault injections scheduled past
        the natural end of a run simply never happen.
        """
        self._push(int(delay), fn, background=True)

    def timeout(self, delay: int, value: object = None) -> Event:
        """An event that triggers *delay* cycles from now."""
        evt = Event(self)
        self._push(int(delay), lambda: evt.trigger(value))
        return evt

    def deadline(self, delay: int, value: object = None) -> Timer:
        """A cancellable watchdog event *delay* cycles from now."""
        return Timer(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(
        self, generator: Generator, name: str = "?", *, capture_errors: bool = False
    ) -> Process:
        """Start a generator as a process."""
        return Process(self, generator, name, capture_errors=capture_errors)

    def abandon(self, process: Process) -> None:
        """Give up on a blocked process (watchdog recovery).

        The process is removed from the live registry (so it cannot trip
        the deadlock detector), will never be stepped again, and its
        generator is closed so ``finally`` blocks release held resources
        (e.g. a CPU core slot).
        """
        if process.triggered:
            return
        process._abandoned = True
        self._processes.pop(id(process), None)
        try:
            process.generator.close()
        except Exception:  # cleanup must never break recovery itself
            pass

    def all_of(self, events: list[Event]) -> Event:
        """An event triggering when every event in *events* has triggered."""
        done = Event(self)
        remaining = len(events)
        if remaining == 0:
            self._immediate(lambda: done.trigger([]))
            return done
        values: list[object] = [None] * remaining

        def make_cb(i: int):
            def cb(evt: Event) -> None:
                nonlocal remaining
                values[i] = evt.value
                remaining -= 1
                if remaining == 0:
                    done.trigger(values)

            return cb

        for i, evt in enumerate(events):
            evt.add_callback(make_cb(i))
        return done

    def any_of(self, events: list[Event]) -> Event:
        """An event triggering when the *first* of *events* triggers.

        The winning event is the trigger value; later triggers of the
        other events are ignored.
        """
        done = Event(self)

        def cb(evt: Event) -> None:
            if not done.triggered:
                done.trigger(evt)

        for evt in events:
            evt.add_callback(cb)
        return done

    # -- main loop -----------------------------------------------------------
    def run(self, until: int | None = None, *, max_events: int = 50_000_000) -> int:
        """Process events until the queue drains (or *until* cycles).

        Returns the final simulation time.  Cancelled deadlines are
        skipped without advancing the clock; background entries never
        hold the simulation open on their own.  With
        :attr:`detect_deadlock` set, draining the queue while processes
        remain blocked raises a structured :class:`SimDeadlockError`.
        """
        count = 0
        while self._queue:
            if self._foreground == 0:
                break  # only background injections / cancelled timers left
            time, _, fn, background = self._queue[0]
            timer = getattr(fn, "_timer", None)
            if timer is not None and timer.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            if not background:
                self._foreground -= 1
            self.now = time
            fn()
            count += 1
            self.events_processed += 1
            if count > max_events:
                raise SimError(f"simulation exceeded {max_events} events (livelock?)")
        if self.detect_deadlock and self._processes:
            raise self._deadlock_error()
        return self.now

    def _deadlock_error(self) -> SimDeadlockError:
        blocked = tuple(sorted(p.name for p in self._processes.values()))
        fifos = {
            ch.name: (len(ch), ch.capacity)
            for ch in self.watched_fifos
        }
        occupancy = ", ".join(
            f"{name}={occ}/{cap}" for name, (occ, cap) in sorted(fifos.items())
        )
        return SimDeadlockError(
            f"deadlock at cycle {self.now}: no runnable process while "
            f"{len(blocked)} process(es) remain blocked: {', '.join(blocked)}"
            + (f" [FIFO occupancy: {occupancy}]" if fifos else ""),
            cycle=self.now,
            blocked=blocked,
            fifo_occupancy=fifos,
        )
