"""Minimal generator-based discrete-event kernel.

Processes are Python generators that ``yield`` :class:`Event` objects;
a process resumes when the yielded event triggers.  ``env.timeout(n)``
produces an event triggering *n* cycles later; a :class:`Process` is
itself an event that triggers when its generator finishes, so processes
compose (``yield env.process(child())``).

The design is a deliberately small subset of SimPy — enough for FIFOs,
DMA engines and CPU/accelerator processes — with deterministic FIFO
ordering of same-cycle events so simulations are reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator

from repro.util.errors import SimError


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("env", "triggered", "value", "_callbacks")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.triggered = False
        self.value: object = None
        self._callbacks: list[Callable[[Event], None]] = []

    def trigger(self, value: object = None) -> None:
        """Mark the event triggered and schedule its callbacks *now*.

        Callbacks are deferred through the event queue (not run on the
        triggering call stack): long put/get hand-off chains would
        otherwise recurse one stack frame per token.
        """
        if self.triggered:
            raise SimError("event triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.env._immediate(lambda cb=cb: cb(self))

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.env._immediate(lambda: cb(self))
        else:
            self._callbacks.append(cb)


class Process(Event):
    """A running generator; triggers (with its return value) on exit."""

    __slots__ = ("generator", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = "?") -> None:
        super().__init__(env)
        self.generator = generator
        self.name = name
        env._immediate(self._step)

    def _step(self, _evt: Event | None = None) -> None:
        try:
            value = self.generator.send(_evt.value if _evt is not None else None)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        if not isinstance(value, Event):
            raise SimError(
                f"process {self.name!r} yielded {type(value).__name__}; "
                "processes must yield Event objects"
            )
        value.add_callback(self._step)


class Environment:
    """The event queue + simulated clock (in cycles)."""

    def __init__(self) -> None:
        self.now = 0
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0

    # -- scheduling -------------------------------------------------------
    def _push(self, delay: int, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise SimError("cannot schedule into the past")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn))

    def _immediate(self, fn: Callable) -> None:
        self._push(0, fn)

    def timeout(self, delay: int, value: object = None) -> Event:
        """An event that triggers *delay* cycles from now."""
        evt = Event(self)
        self._push(int(delay), lambda: evt.trigger(value))
        return evt

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator, name: str = "?") -> Process:
        """Start a generator as a process."""
        return Process(self, generator, name)

    def all_of(self, events: list[Event]) -> Event:
        """An event triggering when every event in *events* has triggered."""
        done = Event(self)
        remaining = len(events)
        if remaining == 0:
            self._immediate(lambda: done.trigger([]))
            return done
        values: list[object] = [None] * remaining

        def make_cb(i: int):
            def cb(evt: Event) -> None:
                nonlocal remaining
                values[i] = evt.value
                remaining -= 1
                if remaining == 0:
                    done.trigger(values)

            return cb

        for i, evt in enumerate(events):
            evt.add_callback(make_cb(i))
        return done

    # -- main loop -----------------------------------------------------------
    def run(self, until: int | None = None, *, max_events: int = 50_000_000) -> int:
        """Process events until the queue drains (or *until* cycles).

        Returns the final simulation time.
        """
        count = 0
        while self._queue:
            time, _, fn = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = time
            fn()
            count += 1
            if count > max_events:
                raise SimError(f"simulation exceeded {max_events} events (livelock?)")
        return self.now
