"""GPP (dual-core ARM Cortex-A9) model.

The CPU executes software tasks as busy time on one of ``num_cores``
cores (the Zynq-7000 PS has two A9s): when more software tasks are
ready than cores exist, they queue — independent HTG branches only
overlap up to the core count.  It also drives hardware through the
AXI-Lite bus: writing argument registers, setting ``ap_start``, and
polling ``ap_done`` or taking the interrupt — the control pattern the
paper's generated API wraps.
"""

from __future__ import annotations

from collections import deque

from repro.sim.axi import AxiLiteBus
from repro.sim.kernel import Environment, Event
from repro.sim.accel import CTRL_DONE, CTRL_START

#: Cycles between ap_done polls.
POLL_INTERVAL = 20
#: CPU-side cost of a driver call (context switch + setup).
DRIVER_CALL_OVERHEAD = 150
#: Interrupt service overhead (entry + handler + return).
IRQ_OVERHEAD = 60


class CpuModel:
    """The ARM processing system (``num_cores`` hardware threads)."""

    def __init__(self, env: Environment, bus: AxiLiteBus, *, num_cores: int = 2) -> None:
        self.env = env
        self.bus = bus
        self.num_cores = max(1, num_cores)
        self.busy_cycles = 0
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    # -- core arbitration ------------------------------------------------
    def _acquire_core(self):
        if self._in_use < self.num_cores:
            self._in_use += 1
            return
        evt = Event(self.env)
        self._waiters.append(evt)
        yield evt
        self._in_use += 1

    def _release_core(self) -> None:
        self._in_use -= 1
        if self._waiters:
            self._waiters.popleft().trigger(None)

    def run_software(self, cycles: int):
        """Process: execute a software task for *cycles* on a free core."""
        cycles = max(1, int(cycles))
        yield from self._acquire_core()
        try:
            self.busy_cycles += cycles
            yield self.env.timeout(cycles)
        finally:
            self._release_core()

    def call_driver(self):
        """Process: the fixed cost of entering a device driver."""
        self.busy_cycles += DRIVER_CALL_OVERHEAD
        yield self.env.timeout(DRIVER_CALL_OVERHEAD)

    def run_lite_core(
        self,
        base: int,
        scalar_args: dict[int, int],
        *,
        return_offset: int | None = None,
        irq=None,
    ):
        """Process: program an AXI-Lite core and wait for completion.

        *scalar_args* maps register offsets to values.  With *irq* (an
        event from the core's interrupt line) the CPU blocks on the
        interrupt instead of polling ``ap_done`` — the mode the generated
        Linux driver would use.  Returns the value of the return
        register if *return_offset* is given.
        """
        for offset, value in sorted(scalar_args.items()):
            yield from self.bus.write(base + offset, value)
        yield from self.bus.write(base + 0x00, CTRL_START)
        if irq is not None:
            yield irq
            self.busy_cycles += IRQ_OVERHEAD
            yield self.env.timeout(IRQ_OVERHEAD)
            yield from self.bus.read(base + 0x00)  # acknowledge/read status
        else:
            while True:
                status = yield from self.bus.read(base + 0x00)
                if status & CTRL_DONE:
                    break
                yield self.env.timeout(POLL_INTERVAL)
        if return_offset is not None:
            value = yield from self.bus.read(base + return_offset)
            return value
        return None
