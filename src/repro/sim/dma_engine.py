"""DMA engine: moves data between DRAM buffers and stream channels.

Register layout follows the real AXI DMA (simple mode): MM2S control at
``0x00``, source address ``0x18``, length ``0x28`` (writing length kicks
the transfer); S2MM mirrors at ``0x30``/``0x48``/``0x58``.  The runtime
normally drives the engine through the driver-call API
(:meth:`mm2s_transfer` / :meth:`s2mm_transfer` — what ``writeDMA`` and
``readDMA`` invoke), but the register path is exercised by tests too.

Error handling mirrors the hardware: a rejected or failed transfer
latches the matching ``DMASR`` error bit (``DMAIntErr`` for internal
errors such as zero-length or truncated transfers, ``DMADecErr`` for
address-decode failures) and raises a structured
:class:`~repro.util.errors.SimError`; :meth:`soft_reset` clears a
stuck channel the way the real DMACR.Reset bit does.
"""

from __future__ import annotations

from repro.obs.events import BUS as _BUS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.sim.axi import AxiLiteDevice, StreamChannel
from repro.sim.kernel import Environment, Event, Process
from repro.sim.memory import CYCLES_PER_WORD, Memory, READ_LATENCY, WRITE_LATENCY
from repro.util.errors import SimError


class HpPort:
    """Shared-bandwidth model of one PS7 HP port.

    All DMA masters behind ``S_AXI_HP0`` share its bandwidth
    (*words_per_cycle*, 2 for the 64-bit port moving 32-bit words).
    Each beat acquires a slot; when several transfers are in flight they
    serialize here — which is why SDSoC's one-DMA-per-parameter policy
    buys no extra throughput on a single port.
    """

    def __init__(self, env: Environment, *, words_per_cycle: int = 2) -> None:
        if words_per_cycle < 1:
            raise SimError("HP port needs at least one word per cycle")
        self.env = env
        self.words_per_cycle = words_per_cycle
        self._slot_time = 0  # next cycle with free slots
        self._slot_used = 0
        self.total_words = 0

    def acquire(self) -> Event:
        """Event triggering when one beat's worth of bandwidth is granted."""
        now = self.env.now
        if self._slot_time < now:
            self._slot_time = now
            self._slot_used = 0
        if self._slot_used >= self.words_per_cycle:
            self._slot_time += 1
            self._slot_used = 0
        grant_at = self._slot_time
        self._slot_used += 1
        self.total_words += 1
        return self.env.timeout(max(0, grant_at - now))

    def acquire_burst(self, count: int) -> Event:
        """Event granting *count* back-to-back beats in one event.

        Cycle-equivalent to ``count`` sequential :meth:`acquire` calls by
        a sole master issuing each beat the moment the previous one is
        granted (the DMA/m_axi inner-loop pattern): the port state after
        the burst and the completion cycle are identical, but the kernel
        sees one event instead of *count*.  Only exact while no other
        master touches the port during the burst window — the burst
        engine's contention check guarantees that before using it.
        """
        if count <= 0:
            raise SimError("burst must move at least one word")
        now = self.env.now
        grant_at = now
        for _ in range(count):
            if self._slot_time < grant_at:
                self._slot_time = grant_at
                self._slot_used = 0
            if self._slot_used >= self.words_per_cycle:
                self._slot_time += 1
                self._slot_used = 0
            grant_at = self._slot_time
            self._slot_used += 1
        self.total_words += count
        return self.env.timeout(max(0, grant_at - now))

MM2S_DMACR = 0x00
MM2S_DMASR = 0x04
MM2S_SA = 0x18
MM2S_LENGTH = 0x28
S2MM_DMACR = 0x30
S2MM_DMASR = 0x34
S2MM_DA = 0x48
S2MM_LENGTH = 0x58

_SR_IDLE = 0x2
#: DMASR error bits (AXI DMA v7.1 layout).
SR_DMA_INT_ERR = 0x10
SR_DMA_SLV_ERR = 0x20
SR_DMA_DEC_ERR = 0x40
SR_ERR_MASK = SR_DMA_INT_ERR | SR_DMA_SLV_ERR | SR_DMA_DEC_ERR
SR_IOC_IRQ = 0x1000


class DmaEngine(AxiLiteDevice):
    """One AXI DMA instance (up to two channels)."""

    def __init__(
        self,
        env: Environment,
        name: str,
        memory: Memory,
        *,
        mm2s: StreamChannel | None = None,
        s2mm: StreamChannel | None = None,
        hp_port: HpPort | None = None,
        injector=None,
    ) -> None:
        self.env = env
        self.name = name
        self.memory = memory
        self.mm2s = mm2s
        self.s2mm = s2mm
        self.hp_port = hp_port
        self.injector = injector
        self.regs: dict[int, int] = {MM2S_DMASR: _SR_IDLE, S2MM_DMASR: _SR_IDLE}
        self._mm2s_busy: Process | None = None
        self._s2mm_busy: Process | None = None
        #: Totals for reporting.
        self.bytes_mm2s = 0
        self.bytes_s2mm = 0

    # -- driver-call API (readDMA / writeDMA) -------------------------------
    def mm2s_transfer(self, addr: int, nbytes: int) -> Process:
        """Memory -> stream; returns the completion process (writeDMA)."""
        if self.mm2s is None:
            raise SimError(f"DMA {self.name!r} has no MM2S channel")
        if self._mm2s_busy is not None and not self._mm2s_busy.triggered:
            raise SimError(f"DMA {self.name!r}: MM2S transfer already in flight")
        self._validate(addr, nbytes, "MM2S", MM2S_DMASR)
        self._mm2s_busy = self.env.process(
            self._run_mm2s(addr, nbytes), name=f"{self.name}.mm2s"
        )
        return self._mm2s_busy

    def s2mm_transfer(self, addr: int, nbytes: int) -> Process:
        """Stream -> memory; returns the completion process (readDMA)."""
        if self.s2mm is None:
            raise SimError(f"DMA {self.name!r} has no S2MM channel")
        if self._s2mm_busy is not None and not self._s2mm_busy.triggered:
            raise SimError(f"DMA {self.name!r}: S2MM transfer already in flight")
        self._validate(addr, nbytes, "S2MM", S2MM_DMASR)
        self._s2mm_busy = self.env.process(
            self._run_s2mm(addr, nbytes), name=f"{self.name}.s2mm"
        )
        return self._s2mm_busy

    def _validate(self, addr: int, nbytes: int, what: str, sr: int) -> None:
        """Reject a bad transfer *before* the channel goes busy.

        The matching DMASR error bit is latched so software polling the
        status register sees the failure the way real hardware reports
        it; the raised SimError carries the human-readable cause.
        """
        if nbytes <= 0:
            self.regs[sr] = _SR_IDLE | SR_DMA_INT_ERR
            raise SimError(
                f"DMA {self.name!r}: zero-length {what} transfer rejected"
            )
        try:
            buf = self.memory.at(addr)
        except SimError:
            self.regs[sr] = _SR_IDLE | SR_DMA_DEC_ERR
            raise
        if addr + nbytes > buf.end:
            self.regs[sr] = _SR_IDLE | SR_DMA_DEC_ERR
            raise SimError(
                f"DMA {self.name!r}: {what} transfer past end of {buf.name!r}"
            )
        # Accepted descriptor = one ``sim.dma`` event.  Both simulation
        # paths validate every transfer at its kick cycle (the word path
        # inside mm2s/s2mm_transfer, the burst path directly), so the
        # event stream and the byte counters are path-independent —
        # exactly what the word-vs-burst invariant tests pin.
        if _BUS.enabled:
            _BUS.emit(
                "sim.dma",
                f"{self.name}.{what.lower()}",
                cycle=self.env.now,
                worker=self.name,
                nbytes=nbytes,
            )
            _METRICS.counter("sim.dma.transfers", "accepted DMA descriptors").inc()
            _METRICS.counter(
                f"sim.dma.{what.lower()}_bytes", f"bytes kicked on {what} channels"
            ).inc(nbytes)
            _METRICS.histogram(
                "sim.dma.transfer_bytes", "accepted DMA descriptor sizes"
            ).observe(nbytes)

    def soft_reset(self) -> None:
        """DMACR.Reset: abort in-flight transfers, clear both channels."""
        for attr in ("_mm2s_busy", "_s2mm_busy"):
            proc = getattr(self, attr)
            if proc is not None and not proc.triggered:
                self.env.abandon(proc)
            setattr(self, attr, None)
        self.regs = {MM2S_DMASR: _SR_IDLE, S2MM_DMASR: _SR_IDLE}

    def _fault(self, kind: str, channel: str):
        if self.injector is None:
            return None
        return self.injector.fire(kind, self.name, channel=channel)

    # -- transfer processes -----------------------------------------------------
    def _run_mm2s(self, addr: int, nbytes: int):
        buf = self.memory.at(addr)
        start = (addr - buf.base) // buf.data.itemsize
        count = nbytes // buf.data.itemsize
        flat = buf.data.reshape(-1)
        self.regs[MM2S_DMASR] = 0x0  # busy
        try:
            yield self.env.timeout(READ_LATENCY)
            if self.injector is None:
                # Fault-free fast loop: no per-word injector dispatch.
                words = flat[start:start + count].tolist()
                if self.hp_port is not None:
                    for word in words:
                        yield self.hp_port.acquire()
                        yield self.mm2s.put(word)
                else:
                    for word in words:
                        yield self.env.timeout(CYCLES_PER_WORD)
                        yield self.mm2s.put(word)
            else:
                for i in range(count):
                    if self._fault("dma_stall", "mm2s") is not None:
                        yield self.env.event()  # channel wedges: never resumes
                    if self._fault("dma_truncate", "mm2s") is not None:
                        self.regs[MM2S_DMASR] = SR_DMA_INT_ERR  # halted, errored
                        self.bytes_mm2s += i * buf.data.itemsize
                        return i
                    if self.hp_port is not None:
                        yield self.hp_port.acquire()
                    else:
                        yield self.env.timeout(CYCLES_PER_WORD)
                    yield self.mm2s.put(flat[start + i].item())
        except SimError:
            self.regs[MM2S_DMASR] = SR_DMA_INT_ERR
            raise
        self.bytes_mm2s += nbytes
        self.regs[MM2S_DMASR] = _SR_IDLE | SR_IOC_IRQ
        return count

    def _run_s2mm(self, addr: int, nbytes: int):
        buf = self.memory.at(addr)
        start = (addr - buf.base) // buf.data.itemsize
        count = nbytes // buf.data.itemsize
        flat = buf.data.reshape(-1)
        self.regs[S2MM_DMASR] = 0x0
        try:
            yield self.env.timeout(WRITE_LATENCY)
            if self.injector is None:
                # Fault-free fast loop: no per-word injector dispatch.
                if self.hp_port is not None:
                    for i in range(count):
                        item = yield self.s2mm.get()
                        flat[start + i] = item
                        yield self.hp_port.acquire()
                else:
                    for i in range(count):
                        item = yield self.s2mm.get()
                        flat[start + i] = item
                        yield self.env.timeout(CYCLES_PER_WORD)
            else:
                for i in range(count):
                    if self._fault("dma_stall", "s2mm") is not None:
                        yield self.env.event()
                    if self._fault("dma_truncate", "s2mm") is not None:
                        self.regs[S2MM_DMASR] = SR_DMA_INT_ERR
                        self.bytes_s2mm += i * buf.data.itemsize
                        return i
                    item = yield self.s2mm.get()
                    flat[start + i] = item
                    if self.hp_port is not None:
                        yield self.hp_port.acquire()
                    else:
                        yield self.env.timeout(CYCLES_PER_WORD)
        except SimError:
            self.regs[S2MM_DMASR] = SR_DMA_INT_ERR
            raise
        self.bytes_s2mm += nbytes
        self.regs[S2MM_DMASR] = _SR_IDLE | SR_IOC_IRQ
        return count

    # -- prefix-burst resume points (see repro.sim.prefix) ----------------------
    def resume_mm2s(self, addr: int, nbytes: int, first: int, mode: str,
                    wake: int):
        """Continue an MM2S transfer from word *first* at the prefix cut.

        *mode* (from :func:`repro.sim.prefix.plan_mm2s_resume`):
        ``fresh`` sleeps out the remaining ``READ_LATENCY`` and replays
        the whole per-word loop; ``grant_wait`` sleeps to word *first*'s
        already-committed HP grant (or ``CYCLES_PER_WORD`` pacing) and
        puts it; ``put_pending`` re-issues the blocked put immediately.
        Word *first*'s injection checks and HP call happened at or
        before the cut, where no armed fault can fire — only ``fresh``
        re-runs them.  DRAM is read word by word so flips landing after
        the cut are observed exactly like the word path.
        """
        buf = self.memory.at(addr)
        start = (addr - buf.base) // buf.data.itemsize
        count = nbytes // buf.data.itemsize
        flat = buf.data.reshape(-1)
        env = self.env
        i0 = first
        try:
            if mode == "fresh":
                yield env.timeout(max(0, wake - env.now))
            else:
                if mode == "grant_wait":
                    yield env.timeout(max(0, wake - env.now))
                yield self.mm2s.put(flat[start + first].item())
                i0 = first + 1
            for i in range(i0, count):
                if self._fault("dma_stall", "mm2s") is not None:
                    yield env.event()  # channel wedges: never resumes
                if self._fault("dma_truncate", "mm2s") is not None:
                    self.regs[MM2S_DMASR] = SR_DMA_INT_ERR
                    self.bytes_mm2s += i * buf.data.itemsize
                    return i
                if self.hp_port is not None:
                    yield self.hp_port.acquire()
                else:
                    yield env.timeout(CYCLES_PER_WORD)
                yield self.mm2s.put(flat[start + i].item())
        except SimError:
            self.regs[MM2S_DMASR] = SR_DMA_INT_ERR
            raise
        self.bytes_mm2s += nbytes
        self.regs[MM2S_DMASR] = _SR_IDLE | SR_IOC_IRQ
        return count

    def resume_s2mm(self, addr: int, nbytes: int, first: int, mode: str,
                    wake: int):
        """Continue an S2MM transfer from word *first* at the prefix cut.

        ``acquire_wait`` means word *first* was received and written
        inside the prefix and only its HP grant (or pacing) is
        outstanding — sleep to it, then continue with the next word;
        ``get_wait`` re-issues the blocked get; ``fresh`` sleeps out the
        remaining ``WRITE_LATENCY`` and replays the whole loop.
        """
        buf = self.memory.at(addr)
        start = (addr - buf.base) // buf.data.itemsize
        count = nbytes // buf.data.itemsize
        flat = buf.data.reshape(-1)
        env = self.env
        i0 = first
        try:
            if mode == "fresh":
                yield env.timeout(max(0, wake - env.now))
            elif mode == "acquire_wait":
                yield env.timeout(max(0, wake - env.now))
                i0 = first + 1
            else:  # "get_wait"
                item = yield self.s2mm.get()
                flat[start + first] = item
                if self.hp_port is not None:
                    yield self.hp_port.acquire()
                else:
                    yield env.timeout(CYCLES_PER_WORD)
                i0 = first + 1
            for i in range(i0, count):
                if self._fault("dma_stall", "s2mm") is not None:
                    yield env.event()
                if self._fault("dma_truncate", "s2mm") is not None:
                    self.regs[S2MM_DMASR] = SR_DMA_INT_ERR
                    self.bytes_s2mm += i * buf.data.itemsize
                    return i
                item = yield self.s2mm.get()
                flat[start + i] = item
                if self.hp_port is not None:
                    yield self.hp_port.acquire()
                else:
                    yield env.timeout(CYCLES_PER_WORD)
        except SimError:
            self.regs[S2MM_DMASR] = SR_DMA_INT_ERR
            raise
        self.bytes_s2mm += nbytes
        self.regs[S2MM_DMASR] = _SR_IDLE | SR_IOC_IRQ
        return count

    # -- register interface ---------------------------------------------------------
    def reg_read(self, offset: int) -> int:
        return self.regs.get(offset, 0)

    def reg_write(self, offset: int, value: int) -> None:
        self.regs[offset] = value
        if offset == MM2S_LENGTH:
            self.mm2s_transfer(self.regs.get(MM2S_SA, 0), value)
        elif offset == S2MM_LENGTH:
            self.s2mm_transfer(self.regs.get(S2MM_DA, 0), value)
