"""Shared-DRAM model with named buffers.

The runtime allocates one named buffer per HTG data item (the paper's
"data exchange among nodes is performed through shared memory").
Buffers are numpy arrays living at assigned base addresses; word-level
reads/writes carry a fixed latency plus a per-word bandwidth cost that
the DMA engines and CPU model charge.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass

import numpy as np

from repro.util.errors import SimError

DDR_BASE = 0x0000_0000
DDR_SIZE = 512 * 1024 * 1024  # Zedboard: 512 MiB

#: DRAM timing (cycles @ FCLK): first-word latency and per-word cost as
#: seen by a PL master through an HP port.
READ_LATENCY = 22
WRITE_LATENCY = 18
CYCLES_PER_WORD = 1


class _AlwaysGreater:
    """Sorts after any buffer: lets (addr, ceiling) bisect past ties."""

    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return True


_ADDR_CEILING = _AlwaysGreater()


@dataclass
class Buffer:
    """One named region of DRAM backed by a numpy array."""

    name: str
    base: int
    data: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def end(self) -> int:
        return self.base + self.nbytes


class Memory:
    """DRAM: a buffer allocator plus latency constants."""

    def __init__(self, *, base: int = DDR_BASE, size: int = DDR_SIZE) -> None:
        self.base = base
        self.size = size
        self._next = base or 0x0010_0000  # skip the kernel's low pages
        self.buffers: dict[str, Buffer] = {}
        #: (base, Buffer) pairs kept sorted by base for O(log n) decode.
        self._by_base: list[tuple[int, Buffer]] = []

    def allocate(self, name: str, data: np.ndarray) -> Buffer:
        """Place *data* (copied) into DRAM under *name*."""
        if name in self.buffers:
            raise SimError(f"buffer {name!r} already allocated")
        arr = np.array(data)  # private copy: DRAM owns its contents
        aligned = (self._next + 63) & ~63  # cache-line align
        if aligned + arr.nbytes > self.base + self.size:
            raise SimError("out of simulated DRAM")
        buf = Buffer(name, aligned, arr)
        self._next = aligned + arr.nbytes
        self.buffers[name] = buf
        insort(self._by_base, (buf.base, buf))
        return buf

    def allocate_empty(self, name: str, shape, dtype) -> Buffer:
        return self.allocate(name, np.zeros(shape, dtype=dtype))

    def buffer(self, name: str) -> Buffer:
        try:
            return self.buffers[name]
        except KeyError:
            raise SimError(f"no DRAM buffer named {name!r}") from None

    def at(self, addr: int) -> Buffer:
        """Buffer containing *addr* (used by DMA address decoding).

        Buffers never overlap (the allocator hands out disjoint ranges),
        so the unique candidate is the one with the greatest base at or
        below *addr* — found by binary search instead of a linear scan,
        which matters because every DMA descriptor decodes through here.
        """
        i = bisect_right(self._by_base, (addr, _ADDR_CEILING))
        if i:
            buf = self._by_base[i - 1][1]
            if buf.base <= addr < buf.end:
                return buf
        raise SimError(f"address {addr:#x} hits no allocated buffer")
