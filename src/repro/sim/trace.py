"""Execution tracing: spans per component + a text timeline."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Span:
    component: str
    activity: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class Trace:
    spans: list[Span] = field(default_factory=list)

    def record(self, component: str, activity: str, start: int, end: int) -> None:
        if end < start:
            raise ValueError(f"span ends before it starts: {component}/{activity}")
        self.spans.append(Span(component, activity, start, end))

    def of(self, component: str) -> list[Span]:
        return [s for s in self.spans if s.component == component]

    def busy(self, component: str) -> int:
        """Total busy cycles of one component (spans may not overlap)."""
        return sum(s.duration for s in self.of(component))

    def makespan(self) -> int:
        if not self.spans:
            return 0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def utilization(self, component: str) -> float:
        total = self.makespan()
        return self.busy(component) / total if total else 0.0

    @staticmethod
    def _merged(spans: list[Span]) -> list[tuple[int, int]]:
        """Sorted union of *spans* as disjoint ``(start, end)`` intervals.

        Spans of one component that overlap or touch at a boundary are
        coalesced, so a cycle a component is busy in counts exactly once
        no matter how many of its spans cover it.
        """
        out: list[tuple[int, int]] = []
        for start, end in sorted((s.start, s.end) for s in spans):
            if out and start <= out[-1][1]:
                if end > out[-1][1]:
                    out[-1] = (out[-1][0], end)
            else:
                out.append((start, end))
        return out

    def overlap(self, a: str, b: str) -> int:
        """Cycles during which components *a* and *b* are both busy.

        Sort-and-sweep over the two components' merged interval sets —
        ``O((n+m) log(n+m))`` instead of the old ``O(n·m)`` pairwise
        scan, and each co-busy cycle counts once even when a component's
        own spans overlap or touch at boundaries (the pairwise scan
        multiple-counted those cycles).
        """
        ma, mb = self._merged(self.of(a)), self._merged(self.of(b))
        total = 0
        i = j = 0
        while i < len(ma) and j < len(mb):
            lo = max(ma[i][0], mb[j][0])
            hi = min(ma[i][1], mb[j][1])
            if hi > lo:
                total += hi - lo
            if ma[i][1] <= mb[j][1]:
                i += 1
            else:
                j += 1
        return total

    def to_chrome_trace(self, *, cycles_per_us: float = 100.0) -> list[dict]:
        """Chrome trace-event JSON (load in chrome://tracing / Perfetto).

        Each component becomes a track (tid); spans become complete
        events with durations converted at *cycles_per_us* (100 cycles/
        µs at the 100 MHz fabric clock).
        """
        tids = {c: i for i, c in enumerate(sorted({s.component for s in self.spans}))}
        events = [
            {
                "name": s.activity,
                "cat": "sim",
                "ph": "X",
                "ts": s.start / cycles_per_us,
                "dur": max(s.duration, 1) / cycles_per_us,
                "pid": 0,
                "tid": tids[s.component],
            }
            for s in self.spans
        ]
        events.extend(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": comp},
            }
            for comp, tid in tids.items()
        )
        return events

    def render(self, *, width: int = 64) -> str:
        """ASCII Gantt chart of the recorded spans."""
        if not self.spans:
            return "(empty trace)"
        t0 = min(s.start for s in self.spans)
        t1 = max(s.end for s in self.spans)
        scale = max(1, (t1 - t0)) / width
        lines = [f"timeline: {t0} .. {t1} cycles ({t1 - t0} total)"]
        by_comp: dict[str, list[Span]] = {}
        for s in self.spans:
            by_comp.setdefault(s.component, []).append(s)
        label_w = max(len(c) for c in by_comp)
        for comp in by_comp:
            row = [" "] * width
            for s in by_comp[comp]:
                lo = int((s.start - t0) / scale)
                hi = max(lo + 1, int((s.end - t0) / scale))
                for i in range(lo, min(hi, width)):
                    row[i] = "#"
            lines.append(f"{comp.ljust(label_w)} |{''.join(row)}|")
        return "\n".join(lines)
