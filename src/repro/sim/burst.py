"""Burst fast path: an analytic phase solver with cycle-identical results.

The word-level simulator charges one kernel event per 32-bit word — a
heap push/pop, an :class:`~repro.sim.kernel.Event` allocation and a
generator resume for every FIFO handshake and every HP-port beat.  A
VGA frame through the Otsu pipeline is millions of such events, all of
which compute timestamps a closed-form recurrence predicts exactly.

This module evaluates those recurrences directly.  For one hardware
phase it solves, *before any simulator state is touched*, the complete
timestamp sequences of every component, and the runtime then replaces
the per-word processes with a **single kernel timeout** to the solved
end of the phase plus a commit step that applies the identical final
state (DRAM bytes, FIFO counters, DMA registers, HP-port automaton,
actor spans).

Why the results are exact
-------------------------
*FIFO timing is max-plus and order-insensitive.*  For a bounded FIFO of
capacity ``C`` with put-complete times ``P_i`` and get-complete times
``G_i``::

    P_i = max(ready_prod_i, G_{i-C})        (backpressure)
    G_i = max(ready_cons_i, P_i)            (availability)

These recurrences depend only on *values*, never on the intra-cycle
order in which the kernel happens to run the handshake callbacks, so
evaluating them arithmetically reproduces the event kernel's cycles
bit-for-bit.

*The HP port is exactly a per-master rate limiter while masters never
share a cycle.*  The shared-port automaton couples two acquires only
when the later call lands at or before the earlier grant; during any
busy stretch a master's grant cycles form a contiguous range, so any
cross-master coupling would put one master's call cycle inside another
master's recorded call∪grant cycle set.  The solver therefore runs each
master against its own copy of the automaton, records those cycle sets,
and accepts the solution when they are **pairwise disjoint** — a check
that is sound *and* complete (first-coupling induction) for the
no-shared-cycle case.

*Masters may share cycles when the port is never saturated.*  If every
solo grant was immediate (granted in its own call cycle) and the merged
per-cycle grant count never exceeds ``words_per_cycle``, then in the
shared automaton every call is still granted in its own cycle no matter
how the kernel interleaves same-cycle acquires: a call at ``t`` finds
``_slot_time < t`` (reset) or ``_slot_time == t`` with spare width, by
induction over cycles.  Concurrent MM2S + S2MM streaming — the common
pipelined-phase shape — is exact under this rule.  Anything outside
both conditions **falls back to the word path**, so the fast path is
only taken when it is provably exact.

What is *not* reconstructed exactly: a FIFO's ``high_water`` statistic
depends on whether a same-cycle put/get pair hands off directly or
bounces through the queue — invisible to timing and data, so the solver
only estimates it and :meth:`ExecutionReport.digest` excludes it.

Components modelled (mirroring the generator processes word for word):

* **MM2S** — ``kick + READ_LATENCY``, then per word an HP grant (or
  ``CYCLES_PER_WORD``) followed by a backpressured put.
* **S2MM** — ``kick + WRITE_LATENCY``, then per word a get followed by
  an HP grant (or ``CYCLES_PER_WORD``).
* **Stream actor** — bulk inputs drain fully, ``depth`` pipeline fill,
  then per firing: rate-1 gets, ``II`` spacing, rate-1 puts; bulk
  outputs leave at ``CYCLES_PER_WORD`` spacing after the last firing.

The solver runs the component recurrences as cooperating generators in
round-robin chunks until every sequence is complete; a cycle of unmet
dependencies (count mismatch, genuine deadlock) makes a full round pass
with no progress and the solver returns ``None`` — the word path is the
universal fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.htg.schedule import topological_order
from repro.sim.memory import CYCLES_PER_WORD, READ_LATENCY, WRITE_LATENCY


def hw_serialized(htg, partition) -> bool:
    """True when no two hardware nodes can ever execute concurrently.

    The burst fast path commits a phase's hardware state at the phase
    end instead of evolving it word by word, which is only equivalent
    while no *other* hardware node observes or mutates the shared HP
    port / DMA engines mid-phase.  Software nodes may overlap freely
    (they touch neither).  Sufficient static condition: every pair of
    hardware-mapped nodes is ordered by the HTG precedence DAG.
    """
    hw = partition.hw_nodes()
    if len(hw) < 2:
        return True
    ancestors: dict[str, set[str]] = {}
    for name in topological_order(htg):
        acc: set[str] = set()
        for pred in htg.predecessors(name):
            acc.add(pred)
            acc |= ancestors[pred]
        ancestors[name] = acc
    for i, a in enumerate(hw):
        for b in hw[i + 1:]:
            if a not in ancestors[b] and b not in ancestors[a]:
                return False
    return True


@dataclass
class DmaSpec:
    """One DMA channel transfer: solver input."""

    kick: int  # cycle mm2s_transfer/s2mm_transfer is called
    count: int  # words
    chan: object  # channel key (the StreamChannel instance)
    direction: str  # "mm2s" | "s2mm"


@dataclass
class ActorSpec:
    """One stream actor: solver input (all lists in declared port order)."""

    name: str
    t0: int
    firings: int
    depth: int
    ii: int
    bulk_ins: list[tuple[object, int]] = field(default_factory=list)
    rate_ins: list[object] = field(default_factory=list)
    rate_outs: list[object] = field(default_factory=list)
    bulk_outs: list[tuple[object, int]] = field(default_factory=list)


@dataclass
class PhaseSolution:
    """Everything the runtime needs to commit a solved phase."""

    finish: int  # max completion cycle over every component
    actor_spans: list[tuple[str, int, int]]  # (name, started, finished)
    channels: dict  # key -> (puts, gets, high_water_estimate)
    hp_state: tuple[int, int] | None  # final (_slot_time, _slot_used)
    hp_words: int = 0


class _Chan:
    __slots__ = ("cap", "P", "G")

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.P: list[int] = []  # put-complete time of token i
        self.G: list[int] = []  # get-complete time of token i


class _SoloHp:
    """One master's private replica of the HP-port automaton.

    Starts from the reset state (valid because the solver separately
    requires the real port's ``_slot_time`` to lie before this phase's
    first call) and records every call and grant cycle for the
    cross-master disjointness check.
    """

    __slots__ = ("wpc", "slot_time", "slot_used", "words", "cycles",
                 "first_call", "last_grant", "grants", "delayed")

    def __init__(self, wpc: int) -> None:
        self.wpc = wpc
        self.slot_time = -1
        self.slot_used = 0
        self.words = 0
        self.cycles: set[int] = set()
        self.first_call: int | None = None
        self.last_grant = -1
        #: grant cycle -> words granted there (for the saturation check).
        self.grants: dict[int, int] = {}
        #: True once any grant landed after its call cycle.
        self.delayed = False

    def call(self, t: int) -> int:
        if self.first_call is None:
            self.first_call = t
        if self.slot_time < t:
            self.slot_time = t
            self.slot_used = 0
        if self.slot_used >= self.wpc:
            self.slot_time += 1
            self.slot_used = 0
        grant = self.slot_time
        self.slot_used += 1
        self.words += 1
        self.cycles.add(t)
        self.cycles.add(grant)
        self.last_grant = grant
        self.grants[grant] = self.grants.get(grant, 0) + 1
        if grant != t:
            self.delayed = True
        return grant


class _Comp:
    __slots__ = ("gen", "finish")

    def __init__(self) -> None:
        self.gen = None
        self.finish: int | None = None


def _dma_gen(comp: _Comp, spec: DmaSpec, ch: _Chan, solo: _SoloHp | None):
    cap, P, G = ch.cap, ch.P, ch.G
    if spec.direction == "mm2s":
        t = spec.kick + READ_LATENCY
        for i in range(spec.count):
            t = solo.call(t) if solo is not None else t + CYCLES_PER_WORD
            j = i - cap
            if j >= 0:
                while len(G) <= j:
                    yield
                g = G[j]
                if g > t:
                    t = g
            P.append(t)
    else:
        t = spec.kick + WRITE_LATENCY
        for i in range(spec.count):
            while len(P) <= i:
                yield
            p = P[i]
            if p > t:
                t = p
            G.append(t)
            t = solo.call(t) if solo is not None else t + CYCLES_PER_WORD
    comp.finish = t


def _actor_gen(comp: _Comp, spec: ActorSpec, chans: dict):
    t = spec.t0
    for key, n in spec.bulk_ins:
        ch = chans[key]
        P, G = ch.P, ch.G
        for i in range(n):
            while len(P) <= i:
                yield
            p = P[i]
            if p > t:
                t = p
            G.append(t)
    t += spec.depth
    ins = [chans[k] for k in spec.rate_ins]
    outs = [chans[k] for k in spec.rate_outs]
    ii = spec.ii
    if not ins and not outs:
        if spec.firings > 1:
            t += (spec.firings - 1) * ii
    else:
        for f in range(spec.firings):
            for ch in ins:
                P = ch.P
                while len(P) <= f:
                    yield
                p = P[f]
                if p > t:
                    t = p
                ch.G.append(t)
            if f > 0:
                t += ii
            for ch in outs:
                j = f - ch.cap
                if j >= 0:
                    G = ch.G
                    while len(G) <= j:
                        yield
                    g = G[j]
                    if g > t:
                        t = g
                ch.P.append(t)
    for key, n in spec.bulk_outs:
        ch = chans[key]
        cap, P, G = ch.cap, ch.P, ch.G
        for k in range(n):
            t += CYCLES_PER_WORD
            j = k - cap
            if j >= 0:
                while len(G) <= j:
                    yield
                g = G[j]
                if g > t:
                    t = g
            P.append(t)
    comp.finish = t


def _high_water_estimate(P: list[int], G: list[int], cap: int) -> int:
    """Peak-occupancy estimate (exact up to same-cycle handoff races)."""
    if not P:
        return 0
    if not G:
        return min(len(P), cap)
    pa = np.asarray(P, dtype=np.int64)
    ga = np.asarray(G, dtype=np.int64)
    arrived = np.searchsorted(pa, ga, side="right")
    occ = arrived - np.arange(len(G), dtype=np.int64)
    return max(1, min(cap, int(occ.max())))


def solve_phase(
    channels: dict,
    dmas: list[DmaSpec],
    actors: list[ActorSpec],
    *,
    hp_wpc: int | None = None,
    hp_slot_time: int | None = None,
) -> PhaseSolution | None:
    """Solve one phase's timestamps; ``None`` means "use the word path".

    *channels* maps channel keys to capacities (post capacity-bump).
    ``None`` is returned whenever exactness cannot be guaranteed: a
    too-shallow FIFO, a dependency cycle that makes no progress
    (mismatched token counts / genuine deadlock), leftover tokens, a
    busy HP port at phase entry, or overlapping per-master HP cycle
    sets.
    """
    if any(cap < 2 for cap in channels.values()):
        return None
    chans = {key: _Chan(cap) for key, cap in channels.items()}
    comps: list[_Comp] = []
    solos: list[_SoloHp] = []
    for spec in dmas:
        if spec.count < 1:
            return None
        comp = _Comp()
        solo = _SoloHp(hp_wpc) if hp_wpc is not None else None
        if solo is not None:
            solos.append(solo)
        comp.gen = _dma_gen(comp, spec, chans[spec.chan], solo)
        comps.append(comp)
    actor_comps: list[_Comp] = []
    for aspec in actors:
        comp = _Comp()
        comp.gen = _actor_gen(comp, aspec, chans)
        comps.append(comp)
        actor_comps.append(comp)

    pending = list(comps)
    while pending:
        progressed = False
        before = sum(len(c.P) + len(c.G) for c in chans.values())
        still: list[_Comp] = []
        for comp in pending:
            try:
                next(comp.gen)
            except StopIteration:
                progressed = True
            else:
                still.append(comp)
        if sum(len(c.P) + len(c.G) for c in chans.values()) > before:
            progressed = True
        if not progressed:
            return None  # unmet dependency cycle: the word path decides
        pending = still

    # Every token produced must also be consumed, or the commit would
    # have to materialize leftover FIFO contents — fall back instead.
    for ch in chans.values():
        if len(ch.P) != len(ch.G):
            return None

    hp_state: tuple[int, int] | None = None
    hp_words = 0
    active = [s for s in solos if s.first_call is not None]
    if active:
        first = min(s.first_call for s in active)
        if hp_slot_time is not None and hp_slot_time >= first:
            return None  # port still busy from before the phase
        disjoint = all(
            a.cycles.isdisjoint(b.cycles)
            for i, a in enumerate(active)
            for b in active[i + 1:]
        )
        if not disjoint:
            # Shared cycles are still exact when no solo grant was ever
            # deferred and the merged load never saturates the port.
            if any(s.delayed for s in active):
                return None
            load: dict[int, int] = {}
            for s in active:
                for cyc, n in s.grants.items():
                    load[cyc] = load.get(cyc, 0) + n
            if any(n > hp_wpc for n in load.values()):
                return None
        last = max(s.last_grant for s in active)
        hp_state = (last, sum(s.grants.get(last, 0) for s in active))
        hp_words = sum(s.words for s in active)

    return PhaseSolution(
        finish=max(c.finish for c in comps) if comps else 0,
        actor_spans=[
            (spec.name, spec.t0, comp.finish)
            for spec, comp in zip(actors, actor_comps)
        ],
        channels={
            key: (len(ch.P), len(ch.G), _high_water_estimate(ch.P, ch.G, ch.cap))
            for key, ch in chans.items()
        },
        hp_state=hp_state,
        hp_words=hp_words,
    )
