"""Burst fast path: an analytic phase solver with cycle-identical results.

The word-level simulator charges one kernel event per 32-bit word — a
heap push/pop, an :class:`~repro.sim.kernel.Event` allocation and a
generator resume for every FIFO handshake and every HP-port beat.  A
VGA frame through the Otsu pipeline is millions of such events, all of
which compute timestamps a closed-form recurrence predicts exactly.

This module evaluates those recurrences directly.  For one hardware
phase it solves, *before any simulator state is touched*, the complete
timestamp sequences of every component, and the runtime then replaces
the per-word processes with a **single kernel timeout** to the solved
end of the phase plus a commit step that applies the identical final
state (DRAM bytes, FIFO counters, DMA registers, HP-port automaton,
actor spans).

Why the results are exact
-------------------------
*FIFO timing is max-plus and order-insensitive.*  For a bounded FIFO of
capacity ``C`` with put-complete times ``P_i`` and get-complete times
``G_i``::

    P_i = max(ready_prod_i, G_{i-C})        (backpressure)
    G_i = max(ready_cons_i, P_i)            (availability)

These recurrences depend only on *values*, never on the intra-cycle
order in which the kernel happens to run the handshake callbacks, so
evaluating them arithmetically reproduces the event kernel's cycles
bit-for-bit.

*Shared HP-port timing is certified by a merged interleaving replay.*
The solver first runs each master against a private copy of the port
automaton (its *solo* schedule), then replays **every** master's calls
through one shared automaton in global call-time order, starting from
the port's real pre-phase state.  The replay is the proof: the real
kernel also mutates the port at each call's cycle, so the only freedom
an interleaving has left is the order of *cross-master same-cycle*
calls.  The certificate therefore accepts the solution exactly when

* every cross-master same-cycle call group is granted **uniformly**
  (all calls of the group get the same grant cycle) — the grant
  multiset of a tie group depends only on the pre-state and the group
  size, so uniform grants make the per-master assignment, and the
  post-state, independent of kernel order; and
* every call's merged grant equals its solo grant — then each master's
  solved timestamps (which only depend on its own grants and the FIFO
  value recurrences) are a fixed point of the shared port too.

This strictly generalizes the earlier pairwise-disjoint-or-unsaturated
test: disjoint schedules replay to their solo grants trivially, an
unsaturated shared window is a uniform tie group, and saturated
single-master stretches (a DMA filling a deep FIFO at full rate) are
now accepted whenever the other masters provably keep out of the
contended cycles.  Anything the replay cannot certify **falls back to
the word path**, so the fast path is only taken when it is provably
exact.

What is *not* reconstructed exactly: a FIFO's ``high_water`` statistic
depends on whether a same-cycle put/get pair hands off directly or
bounces through the queue — invisible to timing and data, so the solver
only estimates it and :meth:`ExecutionReport.digest` excludes it.

Components modelled (mirroring the generator processes word for word):

* **MM2S** — ``kick + READ_LATENCY``, then per word an HP grant (or
  ``CYCLES_PER_WORD``) followed by a backpressured put.
* **S2MM** — ``kick + WRITE_LATENCY``, then per word a get followed by
  an HP grant (or ``CYCLES_PER_WORD``).
* **Stream actor** — bulk inputs drain fully, ``depth`` pipeline fill,
  then per firing: rate-1 gets, ``II`` spacing, rate-1 puts; bulk
  outputs leave at ``CYCLES_PER_WORD`` spacing after the last firing.

The solver runs the component recurrences as cooperating generators in
round-robin chunks until every sequence is complete; a cycle of unmet
dependencies (count mismatch, genuine deadlock) makes a full round pass
with no progress and the solver returns ``None`` — the word path is the
universal fallback.

Every bail-out is classified into the closed taxonomy
:data:`FALLBACK_REASONS` (via :func:`solve_phase_ex`), so the runtime,
``repro simbench`` and the benchmark artifacts can account for *why*
each phase fell back instead of just counting fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.htg.schedule import topological_order
from repro.sim.memory import CYCLES_PER_WORD, READ_LATENCY, WRITE_LATENCY

#: Closed taxonomy of burst-fallback causes.  Every path that sends a
#: hardware phase to the word simulator is tagged with exactly one of
#: these, and :attr:`ExecutionReport.burst_stats` carries the per-phase
#: and per-reason accounting downstream (simbench, benchmarks, CI).
FALLBACK_REASONS = (
    "fault_touches",    # armed fault could fire before/inside the phase
    "hp_unprovable",    # shared HP-port schedule not interleaving-invariant
    "fifo_busy",        # a phase FIFO holds tokens or pending handshakes
    "engine_busy",      # a DMA channel still has a transfer in flight
    "no_convergence",   # solver made no progress / token counts mismatch
    "watchdog_budget",  # solved finish would outlive the node watchdog
    "shallow_fifo",     # a FIFO is too shallow for the burst algebra
)


def hw_serialized(htg, partition) -> bool:
    """True when no two hardware nodes can ever execute concurrently.

    The burst fast path commits a phase's hardware state at the phase
    end instead of evolving it word by word, which is only equivalent
    while no *other* hardware node observes or mutates the shared HP
    port / DMA engines mid-phase.  Software nodes may overlap freely
    (they touch neither).  Sufficient static condition: every pair of
    hardware-mapped nodes is ordered by the HTG precedence DAG.
    """
    hw = partition.hw_nodes()
    if len(hw) < 2:
        return True
    ancestors: dict[str, set[str]] = {}
    for name in topological_order(htg):
        acc: set[str] = set()
        for pred in htg.predecessors(name):
            acc.add(pred)
            acc |= ancestors[pred]
        ancestors[name] = acc
    for i, a in enumerate(hw):
        for b in hw[i + 1:]:
            if a not in ancestors[b] and b not in ancestors[a]:
                return False
    return True


@dataclass
class DmaSpec:
    """One DMA channel transfer: solver input."""

    kick: int  # cycle mm2s_transfer/s2mm_transfer is called
    count: int  # words
    chan: object  # channel key (the StreamChannel instance)
    direction: str  # "mm2s" | "s2mm"


@dataclass
class ActorSpec:
    """One stream actor: solver input (all lists in declared port order)."""

    name: str
    t0: int
    firings: int
    depth: int
    ii: int
    bulk_ins: list[tuple[object, int]] = field(default_factory=list)
    rate_ins: list[object] = field(default_factory=list)
    rate_outs: list[object] = field(default_factory=list)
    bulk_outs: list[tuple[object, int]] = field(default_factory=list)


@dataclass
class PhaseSolution:
    """Everything the runtime needs to commit a solved phase.

    Besides the final-state summary, the solution keeps the *complete*
    per-channel timestamp lists and per-master HP call schedules: the
    prefix-burst path (see :mod:`repro.sim.prefix`) truncates them at an
    arbitrary cycle to reconstruct exact mid-phase state.
    """

    finish: int  # max completion cycle over every component
    actor_spans: list[tuple[str, int, int]]  # (name, started, finished)
    channels: dict  # key -> (puts, gets, high_water_estimate)
    hp_state: tuple[int, int] | None  # final (_slot_time, _slot_used)
    hp_words: int = 0
    #: channel key -> (P, G): full put/get completion-time lists.
    timeline: dict = field(default_factory=dict)
    #: per-DmaSpec solo HP schedule [(call_cycle, grant_cycle), ...]
    #: (None for specs solved without an HP port).
    dma_calls: list = field(default_factory=list)
    #: merged HP events [(call_cycle, master_index, grant_cycle), ...]
    #: sorted by call cycle — the certificate's replay input.
    hp_events: list = field(default_factory=list)
    #: HP-port automaton state at phase entry (for truncated replays).
    hp_init: tuple[int, int] = (-1, 0)


class _Chan:
    __slots__ = ("cap", "P", "G")

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.P: list[int] = []  # put-complete time of token i
        self.G: list[int] = []  # get-complete time of token i


class _SoloHp:
    """One master's private replica of the HP-port automaton.

    Starts from the reset state and records the full call/grant
    schedule; the merged-replay certificate (:func:`_hp_certificate`)
    then decides whether this solo schedule survives sharing the real
    port with the other masters under every kernel interleaving.
    """

    __slots__ = ("wpc", "slot_time", "slot_used", "calls")

    def __init__(self, wpc: int) -> None:
        self.wpc = wpc
        self.slot_time = -1
        self.slot_used = 0
        #: [(call_cycle, grant_cycle), ...] in program order.
        self.calls: list[tuple[int, int]] = []

    def call(self, t: int) -> int:
        if self.slot_time < t:
            self.slot_time = t
            self.slot_used = 0
        if self.slot_used >= self.wpc:
            self.slot_time += 1
            self.slot_used = 0
        grant = self.slot_time
        self.slot_used += 1
        self.calls.append((t, grant))
        return grant


def _hp_certificate(
    events: list[tuple[int, int, int]],
    wpc: int,
    init: tuple[int, int],
) -> tuple[int, int] | None:
    """Per-cycle interleaving certificate for a shared HP port.

    *events* is the merged schedule ``[(call, master, solo_grant), ...]``
    sorted by call cycle (stable, so one master's same-cycle calls stay
    in program order).  Replays it through a single automaton starting
    from *init* — the port's real pre-phase ``(_slot_time, _slot_used)``
    — and accepts only when

    * within every same-cycle group containing calls from more than one
      master, every call is granted the *same* cycle (the grant multiset
      of a tie group is interleaving-invariant, so uniform grants make
      the per-master assignment order-independent), and
    * every merged grant equals the caller's solo grant (so the solved
      timestamps are a fixed point of the shared automaton).

    Returns the exact final ``(_slot_time, _slot_used)`` on success,
    ``None`` when the schedule is not provably order-independent.
    """
    slot_time, slot_used = init
    i, n = 0, len(events)
    while i < n:
        t = events[i][0]
        j = i
        masters = set()
        while j < n and events[j][0] == t:
            masters.add(events[j][1])
            j += 1
        if slot_time < t:
            slot_time = t
            slot_used = 0
        first_grant = None
        for k in range(i, j):
            if slot_used >= wpc:
                slot_time += 1
                slot_used = 0
            if first_grant is None:
                first_grant = slot_time
            if slot_time != events[k][2]:
                return None  # sharing the port breaks the solo schedule
            slot_used += 1
        if len(masters) > 1 and slot_time != first_grant:
            return None  # grant assignment depends on kernel order
        i = j
    return (slot_time, slot_used)


def replay_hp_state(
    events: list[tuple[int, int, int]],
    wpc: int,
    init: tuple[int, int],
    cut: int,
) -> tuple[tuple[int, int], int]:
    """Port state after every call at or before *cut* of a certified run.

    Used by the prefix-burst commit: calls are replayed in call-cycle
    order (the order the real kernel mutates the port in), so the
    returned ``(_slot_time, _slot_used)`` and call count are exactly the
    live port's state at the end of cycle *cut*.  Only valid for event
    lists :func:`_hp_certificate` accepted.
    """
    slot_time, slot_used = init
    done = 0
    for call, _master, _grant in events:
        if call > cut:
            break
        if slot_time < call:
            slot_time = call
            slot_used = 0
        if slot_used >= wpc:
            slot_time += 1
            slot_used = 0
        slot_used += 1
        done += 1
    return (slot_time, slot_used), done


class _Comp:
    __slots__ = ("gen", "finish")

    def __init__(self) -> None:
        self.gen = None
        self.finish: int | None = None


def _dma_gen(comp: _Comp, spec: DmaSpec, ch: _Chan, solo: _SoloHp | None):
    cap, P, G = ch.cap, ch.P, ch.G
    if spec.direction == "mm2s":
        t = spec.kick + READ_LATENCY
        for i in range(spec.count):
            t = solo.call(t) if solo is not None else t + CYCLES_PER_WORD
            j = i - cap
            if j >= 0:
                while len(G) <= j:
                    yield
                g = G[j]
                if g > t:
                    t = g
            P.append(t)
    else:
        t = spec.kick + WRITE_LATENCY
        for i in range(spec.count):
            while len(P) <= i:
                yield
            p = P[i]
            if p > t:
                t = p
            G.append(t)
            t = solo.call(t) if solo is not None else t + CYCLES_PER_WORD
    comp.finish = t


def _actor_gen(comp: _Comp, spec: ActorSpec, chans: dict):
    t = spec.t0
    for key, n in spec.bulk_ins:
        ch = chans[key]
        P, G = ch.P, ch.G
        for i in range(n):
            while len(P) <= i:
                yield
            p = P[i]
            if p > t:
                t = p
            G.append(t)
    t += spec.depth
    ins = [chans[k] for k in spec.rate_ins]
    outs = [chans[k] for k in spec.rate_outs]
    ii = spec.ii
    if not ins and not outs:
        if spec.firings > 1:
            t += (spec.firings - 1) * ii
    else:
        for f in range(spec.firings):
            for ch in ins:
                P = ch.P
                while len(P) <= f:
                    yield
                p = P[f]
                if p > t:
                    t = p
                ch.G.append(t)
            if f > 0:
                t += ii
            for ch in outs:
                j = f - ch.cap
                if j >= 0:
                    G = ch.G
                    while len(G) <= j:
                        yield
                    g = G[j]
                    if g > t:
                        t = g
                ch.P.append(t)
    for key, n in spec.bulk_outs:
        ch = chans[key]
        cap, P, G = ch.cap, ch.P, ch.G
        for k in range(n):
            t += CYCLES_PER_WORD
            j = k - cap
            if j >= 0:
                while len(G) <= j:
                    yield
                g = G[j]
                if g > t:
                    t = g
            P.append(t)
    comp.finish = t


def _high_water_estimate(P: list[int], G: list[int], cap: int) -> int:
    """Peak-occupancy estimate (exact up to same-cycle handoff races)."""
    if not P:
        return 0
    if not G:
        return min(len(P), cap)
    pa = np.asarray(P, dtype=np.int64)
    ga = np.asarray(G, dtype=np.int64)
    arrived = np.searchsorted(pa, ga, side="right")
    occ = arrived - np.arange(len(G), dtype=np.int64)
    return max(1, min(cap, int(occ.max())))


def solve_phase_ex(
    channels: dict,
    dmas: list[DmaSpec],
    actors: list[ActorSpec],
    *,
    hp_wpc: int | None = None,
    hp_slot_time: int | None = None,
    hp_slot_used: int = 0,
) -> tuple[PhaseSolution | None, str | None]:
    """Solve one phase's timestamps.

    Returns ``(solution, None)`` on success, ``(None, reason)`` — with
    *reason* drawn from :data:`FALLBACK_REASONS` — whenever exactness
    cannot be guaranteed: a too-shallow FIFO, a dependency cycle that
    makes no progress (mismatched token counts / genuine deadlock),
    leftover tokens, or a shared HP-port schedule the interleaving
    certificate cannot prove order-independent.  *channels* maps channel
    keys to capacities (post capacity-bump); *hp_slot_time* /
    *hp_slot_used* carry the real port's pre-phase automaton state into
    the certificate.
    """
    if any(cap < 2 for cap in channels.values()):
        return None, "shallow_fifo"
    chans = {key: _Chan(cap) for key, cap in channels.items()}
    comps: list[_Comp] = []
    solos: list[_SoloHp | None] = []
    for spec in dmas:
        if spec.count < 1:
            return None, "no_convergence"
        comp = _Comp()
        solo = _SoloHp(hp_wpc) if hp_wpc is not None else None
        solos.append(solo)
        comp.gen = _dma_gen(comp, spec, chans[spec.chan], solo)
        comps.append(comp)
    actor_comps: list[_Comp] = []
    for aspec in actors:
        comp = _Comp()
        comp.gen = _actor_gen(comp, aspec, chans)
        comps.append(comp)
        actor_comps.append(comp)

    pending = list(comps)
    while pending:
        progressed = False
        before = sum(len(c.P) + len(c.G) for c in chans.values())
        still: list[_Comp] = []
        for comp in pending:
            try:
                next(comp.gen)
            except StopIteration:
                progressed = True
            else:
                still.append(comp)
        if sum(len(c.P) + len(c.G) for c in chans.values()) > before:
            progressed = True
        if not progressed:
            return None, "no_convergence"  # unmet dependency cycle
        pending = still

    # Every token produced must also be consumed, or the commit would
    # have to materialize leftover FIFO contents — fall back instead.
    for ch in chans.values():
        if len(ch.P) != len(ch.G):
            return None, "no_convergence"

    hp_state: tuple[int, int] | None = None
    hp_words = 0
    hp_events: list[tuple[int, int, int]] = []
    hp_init = (hp_slot_time if hp_slot_time is not None else -1, hp_slot_used)
    active = [s for s in solos if s is not None and s.calls]
    if active:
        for mi, s in enumerate(active):
            for call, grant in s.calls:
                hp_events.append((call, mi, grant))
        hp_events.sort(key=lambda e: e[0])
        hp_state = _hp_certificate(hp_events, hp_wpc, hp_init)
        if hp_state is None:
            return None, "hp_unprovable"
        hp_words = len(hp_events)

    return PhaseSolution(
        finish=max(c.finish for c in comps) if comps else 0,
        actor_spans=[
            (spec.name, spec.t0, comp.finish)
            for spec, comp in zip(actors, actor_comps)
        ],
        channels={
            key: (len(ch.P), len(ch.G), _high_water_estimate(ch.P, ch.G, ch.cap))
            for key, ch in chans.items()
        },
        hp_state=hp_state,
        hp_words=hp_words,
        timeline={key: (ch.P, ch.G) for key, ch in chans.items()},
        dma_calls=[s.calls if s is not None else None for s in solos],
        hp_events=hp_events,
        hp_init=hp_init,
    ), None


def solve_phase(
    channels: dict,
    dmas: list[DmaSpec],
    actors: list[ActorSpec],
    *,
    hp_wpc: int | None = None,
    hp_slot_time: int | None = None,
    hp_slot_used: int = 0,
) -> PhaseSolution | None:
    """Reason-less wrapper of :func:`solve_phase_ex` (compat shim)."""
    solution, _reason = solve_phase_ex(
        channels,
        dmas,
        actors,
        hp_wpc=hp_wpc,
        hp_slot_time=hp_slot_time,
        hp_slot_used=hp_slot_used,
    )
    return solution
