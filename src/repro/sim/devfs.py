"""The /dev surface: device nodes + the readDMA/writeDMA driver calls.

Section V of the paper: the customized device tree makes Linux create a
device file per DMA core under ``/dev``, and a pre-compiled driver
exposes ``readDMA``/``writeDMA`` to move data between the ARM and the
reconfigurable logic.  This module models exactly that call surface on
top of the simulated DMA engines, so the runtime's code reads like the
generated user-space application would.

The robust driver surface adds the bounded variants the generated
application's retry ladder uses: ``writeDMA_timeout``/``readDMA_timeout``
raise a cycle-stamped :class:`~repro.util.errors.SimTimeoutError` when a
transfer fails to complete within its watchdog budget, and ``resetDMA``
soft-resets a wedged engine (DMACR.Reset) so the next attempt starts
from idle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.dma_engine import DmaEngine
from repro.sim.kernel import Process
from repro.util.errors import SimError, SimTimeoutError


@dataclass(frozen=True)
class DeviceNode:
    """One /dev entry."""

    path: str
    kind: str  # "dma" or "hls"
    target: str  # engine / core cell name


class DmaHandle:
    """An opened DMA device file.

    Like a POSIX character device, the same node may be opened several
    times (each ``open`` returns an independent handle); operating on a
    closed handle raises, and closing twice raises (EBADF).
    """

    def __init__(self, node: DeviceNode, engine: DmaEngine) -> None:
        self.node = node
        self.engine = engine
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise SimError(f"{self.node.path}: operation on a closed handle")

    def writeDMA(self, addr: int, nbytes: int) -> Process:  # noqa: N802 (paper API)
        """Push *nbytes* from DRAM at *addr* into the fabric (MM2S)."""
        self._check_open()
        return self.engine.mm2s_transfer(addr, nbytes)

    def readDMA(self, addr: int, nbytes: int) -> Process:  # noqa: N802 (paper API)
        """Pull *nbytes* from the fabric into DRAM at *addr* (S2MM)."""
        self._check_open()
        return self.engine.s2mm_transfer(addr, nbytes)

    def writeDMA_timeout(  # noqa: N802 (paper API)
        self, addr: int, nbytes: int, timeout_cycles: int
    ) -> Process:
        """``writeDMA`` under a watchdog; raises SimTimeoutError on expiry."""
        self._check_open()
        return self._guarded(self.engine.mm2s_transfer(addr, nbytes),
                             "writeDMA", timeout_cycles)

    def readDMA_timeout(  # noqa: N802 (paper API)
        self, addr: int, nbytes: int, timeout_cycles: int
    ) -> Process:
        """``readDMA`` under a watchdog; raises SimTimeoutError on expiry."""
        self._check_open()
        return self._guarded(self.engine.s2mm_transfer(addr, nbytes),
                             "readDMA", timeout_cycles)

    def _guarded(self, proc: Process, what: str, timeout_cycles: int) -> Process:
        env = self.engine.env
        if timeout_cycles < 1:
            raise SimError(f"{self.node.path}: {what} timeout must be >= 1 cycle")

        def waiter():
            guard = env.deadline(timeout_cycles)
            yield env.any_of([proc, guard])
            if proc.triggered:
                guard.cancel()
                return proc.value
            env.abandon(proc)
            raise SimTimeoutError(
                f"{what} on {self.node.path} exceeded {timeout_cycles} cycles "
                f"(gave up at cycle {env.now}); resetDMA() to recover",
                cycle=env.now,
                budget=timeout_cycles,
            )

        return env.process(waiter(), name=f"{self.engine.name}.{what}_timeout")

    def resetDMA(self) -> None:  # noqa: N802 (paper API)
        """Soft-reset both channels of the engine (DMACR.Reset)."""
        self._check_open()
        self.engine.soft_reset()

    def close(self) -> None:
        if self.closed:
            raise SimError(f"{self.node.path}: handle already closed")
        self.closed = True


class DevFs:
    """Registry of device nodes created at 'boot'."""

    def __init__(self) -> None:
        self._nodes: dict[str, DeviceNode] = {}
        self._engines: dict[str, DmaEngine] = {}

    def register_dma(self, index: int, engine: DmaEngine) -> DeviceNode:
        node = DeviceNode(f"/dev/axidma{index}", "dma", engine.name)
        self._nodes[node.path] = node
        self._engines[node.path] = engine
        return node

    def register_core(self, cell_name: str) -> DeviceNode:
        node = DeviceNode(f"/dev/uio_{cell_name}", "hls", cell_name)
        self._nodes[node.path] = node
        return node

    def listdir(self) -> list[str]:
        return sorted(self._nodes)

    def open(self, path: str) -> DmaHandle:
        node = self._nodes.get(path)
        if node is None:
            raise SimError(f"no such device: {path}")
        if node.kind != "dma":
            raise SimError(f"{path} is not a DMA device")
        return DmaHandle(node, self._engines[path])
