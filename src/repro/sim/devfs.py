"""The /dev surface: device nodes + the readDMA/writeDMA driver calls.

Section V of the paper: the customized device tree makes Linux create a
device file per DMA core under ``/dev``, and a pre-compiled driver
exposes ``readDMA``/``writeDMA`` to move data between the ARM and the
reconfigurable logic.  This module models exactly that call surface on
top of the simulated DMA engines, so the runtime's code reads like the
generated user-space application would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.dma_engine import DmaEngine
from repro.sim.kernel import Process
from repro.util.errors import SimError


@dataclass(frozen=True)
class DeviceNode:
    """One /dev entry."""

    path: str
    kind: str  # "dma" or "hls"
    target: str  # engine / core cell name


class DmaHandle:
    """An opened DMA device file."""

    def __init__(self, node: DeviceNode, engine: DmaEngine) -> None:
        self.node = node
        self.engine = engine

    def writeDMA(self, addr: int, nbytes: int) -> Process:  # noqa: N802 (paper API)
        """Push *nbytes* from DRAM at *addr* into the fabric (MM2S)."""
        return self.engine.mm2s_transfer(addr, nbytes)

    def readDMA(self, addr: int, nbytes: int) -> Process:  # noqa: N802 (paper API)
        """Pull *nbytes* from the fabric into DRAM at *addr* (S2MM)."""
        return self.engine.s2mm_transfer(addr, nbytes)


class DevFs:
    """Registry of device nodes created at 'boot'."""

    def __init__(self) -> None:
        self._nodes: dict[str, DeviceNode] = {}
        self._engines: dict[str, DmaEngine] = {}

    def register_dma(self, index: int, engine: DmaEngine) -> DeviceNode:
        node = DeviceNode(f"/dev/axidma{index}", "dma", engine.name)
        self._nodes[node.path] = node
        self._engines[node.path] = engine
        return node

    def register_core(self, cell_name: str) -> DeviceNode:
        node = DeviceNode(f"/dev/uio_{cell_name}", "hls", cell_name)
        self._nodes[node.path] = node
        return node

    def listdir(self) -> list[str]:
        return sorted(self._nodes)

    def open(self, path: str) -> DmaHandle:
        node = self._nodes.get(path)
        if node is None:
            raise SimError(f"no such device: {path}")
        if node.kind != "dma":
            raise SimError(f"{path} is not a DMA device")
        return DmaHandle(node, self._engines[path])
