"""Prefix-burst split: commit the fault-free head of a phase, resume live.

When a fault plan can fire *inside* a hardware phase, the whole phase
used to fall back to the word path.  But the injected fault has a
well-defined earliest cycle it can possibly fire
(:meth:`~repro.sim.faults.FaultPlan.earliest_hazard`), and everything
strictly before that cycle is fault-free — exactly the regime the burst
solver (:mod:`repro.sim.burst`) reproduces cycle-for-cycle.  This module
computes, from a solved :class:`~repro.sim.burst.PhaseSolution` and a
cut cycle ``C`` (the hazard cycle minus one), how to

* **commit** the prefix: which FIFO tokens have been put/got by the end
  of cycle ``C``, how many DRAM words each S2MM wrote, and where each
  DMA transfer and stream actor stands in its program; and
* **resume** the remainder on the live word path, so every injection
  point from the hazard cycle onwards behaves exactly as it would have
  in a full word-path run.

Why the handoff is exact
------------------------
The solver's per-channel ``P``/``G`` completion-time lists are the word
path's own timestamps (the burst equivalence argument), and each list is
monotone — a channel has one producer and one consumer process.  Cutting
at ``C`` therefore splits every component's program at a well-defined
op: all ops completing at or before ``C`` are committed; the first op
completing after ``C`` is, in the word path at the end of cycle ``C``,
either

* a **sleep** (pipeline fill, ``II`` spacing, a granted-but-future HP
  beat, ``CYCLES_PER_WORD`` pacing) — resumed as one absolute-corrected
  timeout to the op's solved end cycle; or
* a **blocked channel handshake** — a put against a full FIFO or a get
  against an empty one.  The commit reconstructs exactly that FIFO
  state (``n_put - n_got`` is the capacity for a blocked put and zero
  for a blocked get, by the max-plus recurrences), so re-issuing the
  handshake at ``C`` parks it in the same queue and it completes
  organically at the identical solved cycle when the peer's resumed
  process reaches it.

After its first resumed op, each process runs the *unmodified* relative
word-path code, so post-hazard timing (including injected stalls, drops
and truncations) evolves identically to a full word-path run.  HP-port
calls mutate the port automaton at call time, so a call at or before
``C`` with a grant after ``C`` is part of the committed port state
(:func:`~repro.sim.burst.replay_hp_state`) and the resumed process only
sleeps to the grant — it must not re-issue the call.

No injection point is lost: every injector check committed by the cut
ran at a cycle strictly below the hazard, where by construction no armed
fault can fire; every check at or after the hazard cycle happens on the
live word path.  DRAM flips are background events at exactly their
``at_cycle`` — the cut at ``hazard - 1`` keeps them on the live side,
where MM2S resumes read DRAM word-by-word like the word path does.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.sim.burst import ActorSpec, DmaSpec, _high_water_estimate
from repro.sim.memory import CYCLES_PER_WORD, READ_LATENCY, WRITE_LATENCY


def channel_commit_spec(
    P: list[int], G: list[int], cap: int, cut: int
) -> tuple[int, int, int]:
    """``(n_put, n_got, high_water)`` of one channel's committed prefix."""
    n_put = bisect_right(P, cut)
    n_got = bisect_right(G, cut)
    return n_put, n_got, _high_water_estimate(P[:n_put], G[:n_got], cap)


@dataclass
class DmaResume:
    """Where one DMA transfer stands at the cut.

    ``mode`` is ``"done"`` (transfer finished inside the prefix) or the
    name of the engine resume entry point; ``first`` is the word index
    the resumed process handles first; ``wake`` the absolute cycle a
    sleep-mode resume wakes at; ``committed`` the words fully landed
    (S2MM: DRAM words already written) by the end of the cut cycle.
    """

    mode: str
    first: int = 0
    wake: int = 0
    committed: int = 0


def plan_mm2s_resume(
    spec: DmaSpec, calls: list[tuple[int, int]] | None, P: list[int], cut: int
) -> DmaResume:
    """Classify an MM2S transfer at the cut.

    Word ``i`` is committed when its put completed (``P[i] <= cut``).
    The first open word's HP call — made at the previous put's
    completion — is always committed too (except before the initial
    ``READ_LATENCY`` expires), so the resume either sleeps to its grant
    (``grant_wait``), re-issues the blocked put (``put_pending``), or
    replays the whole per-word loop (``fresh``).
    """
    n_put = bisect_right(P, cut)
    if n_put == spec.count:
        return DmaResume("done", committed=n_put)
    first = n_put
    ready0 = spec.kick + READ_LATENCY
    if first == 0 and ready0 > cut:
        return DmaResume("fresh", 0, ready0)
    if calls is not None:
        grant = calls[first][1]
    else:
        ready = P[first - 1] if first else ready0
        grant = ready + CYCLES_PER_WORD
    if grant <= cut:
        return DmaResume("put_pending", first, cut, committed=n_put)
    return DmaResume("grant_wait", first, grant, committed=n_put)


def plan_s2mm_resume(
    spec: DmaSpec, calls: list[tuple[int, int]] | None, G: list[int], cut: int
) -> DmaResume:
    """Classify an S2MM transfer at the cut.

    Word ``i``'s DRAM write lands at its get completion ``G[i]``; the
    word is *finished* only once the following HP grant (or
    ``CYCLES_PER_WORD`` pacing) completes.  A word written but not yet
    paced resumes as ``acquire_wait``; otherwise the open word's get is
    re-issued (``get_wait``) or the whole loop replays (``fresh``).
    """
    n_got = bisect_right(G, cut)
    if n_got:
        i = n_got - 1
        done = calls[i][1] if calls is not None else G[i] + CYCLES_PER_WORD
        if done > cut:
            return DmaResume("acquire_wait", i, done, committed=n_got)
        if n_got == spec.count:
            return DmaResume("done", committed=n_got)
    ready0 = spec.kick + WRITE_LATENCY
    if n_got == 0 and ready0 > cut:
        return DmaResume("fresh", 0, ready0)
    return DmaResume("get_wait", n_got, cut, committed=n_got)


def _actor_ops(spec: ActorSpec, timeline: dict, tokens_of: dict):
    """The actor's blocking ops in program order, with solved end cycles.

    Yields ``(kind, channel, end, dur, token)`` tuples mirroring
    :class:`~repro.sim.accel.StreamActorSim` op for op: bulk-input
    drains, the ``depth`` fill, per-firing rate gets / ``II`` wait /
    rate puts, then paced bulk-output puts.  ``end`` comes from the
    solver's completion-time lists (each channel's index equals the
    actor-local index — one producer, one consumer per channel);
    ``dur`` is the word path's relative sleep for ``wait`` ops.
    """
    t = spec.t0
    for key, n in spec.bulk_ins:
        G = timeline[key][1]
        for i in range(n):
            t = G[i]
            yield ("get", key, t, 0, None)
    t += spec.depth
    yield ("wait", None, t, spec.depth, None)
    for f in range(spec.firings):
        for key in spec.rate_ins:
            t = timeline[key][1][f]
            yield ("get", key, t, 0, None)
        if f > 0:
            t += spec.ii
            yield ("wait", None, t, spec.ii, None)
        for key in spec.rate_outs:
            t = timeline[key][0][f]
            yield ("put", key, t, 0, tokens_of[key][f])
    for key, n in spec.bulk_outs:
        P = timeline[key][0]
        for k in range(n):
            t += CYCLES_PER_WORD
            yield ("wait", None, t, CYCLES_PER_WORD, None)
            t = P[k]
            yield ("put", key, t, 0, tokens_of[key][k])


def actor_committed(spec: ActorSpec, finish: int, cut: int) -> bool:
    """True when the actor's whole program completed inside the prefix."""
    return finish <= cut


def resume_actor(env, spec: ActorSpec, timeline: dict, tokens_of: dict,
                 cut: int, span: dict):
    """Generator resuming one stream actor from the cut.

    Ops whose solved end is at or before *cut* are already committed and
    are skipped; the first open op is re-issued with absolute-time
    correction (a sleep's remaining duration, or the blocked handshake
    itself), and every later op runs as plain relative word-path code so
    post-hazard faults perturb timing exactly like a full word run.
    ``span["finish"]`` records the live completion cycle for the trace.
    """
    live = False
    for kind, key, end, dur, token in _actor_ops(spec, timeline, tokens_of):
        if not live:
            if end <= cut:
                continue
            live = True
            if kind == "wait":
                yield env.timeout(end - env.now)
            elif kind == "get":
                yield key.get()
            else:
                yield key.put(token)
        elif kind == "wait":
            yield env.timeout(dur)
        elif kind == "get":
            yield key.get()
        else:
            yield key.put(token)
    span["finish"] = env.now
