"""Accelerator simulation models.

Functional behaviour and timing are separated (TLM style):

* **data** flowing through the stream network is real — each actor's
  output tokens are the arrays computed by the HLS interpreter (or the
  registered golden behaviour) for this execution, so the bytes landing
  in DRAM are bit-exact;
* **timing** comes from the HLS schedule: a pipelined actor consumes
  and produces a token every II cycles after a pipeline-fill delay, and
  reduction ports (whose token count differs from the actor's firing
  count) drain/fill in bulk before the first / after the last firing —
  which is exactly what makes ``segment`` stall until ``otsuThreshold``
  arrives in the Otsu case study.

``LiteAccelSim`` models an AXI-Lite task core: argument registers, an
``ap_start``/``ap_done`` handshake, AXI-master traffic for array
parameters, and a compute delay from the latency report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.axi import AxiLiteDevice, StreamChannel
from repro.sim.kernel import Environment, Process
from repro.sim.memory import CYCLES_PER_WORD, Memory, READ_LATENCY, WRITE_LATENCY
from repro.util.errors import SimError


@dataclass
class StreamEndpoint:
    """One connected stream port of an actor, with this run's data."""

    port: str
    channel: StreamChannel
    data: np.ndarray  # tokens this port carries during the run


@dataclass
class ActorTiming:
    """Timing parameters derived from the HLS result."""

    ii: int = 1  # cycles per firing in steady state
    depth: int = 8  # pipeline fill (first-firing latency)

    @classmethod
    def from_synthesis(cls, result, firings: int) -> "ActorTiming":
        """Derive II/depth from a core's latency report."""
        piped = [
            (trips, iter_c, ii)
            for (trips, iter_c, ii) in result.latency.loops.values()
            if ii is not None
        ]
        if piped:
            trips, iter_c, ii = max(piped, key=lambda t: t[0])
            return cls(ii=max(1, ii), depth=max(1, iter_c))
        total = max(1, result.latency.cycles)
        ii = max(1, round(total / max(1, firings)))
        return cls(ii=ii, depth=min(total, 4 * ii))


class StreamActorSim:
    """Event process of one dataflow actor."""

    def __init__(
        self,
        env: Environment,
        name: str,
        *,
        inputs: list[StreamEndpoint],
        outputs: list[StreamEndpoint],
        timing: ActorTiming,
    ) -> None:
        self.env = env
        self.name = name
        self.inputs = inputs
        self.outputs = outputs
        self.timing = timing
        self.firings = max(
            [len(ep.data) for ep in (*inputs, *outputs)] or [1]
        )
        self.started_at: int | None = None
        self.finished_at: int | None = None

    def _rate(self, ep: StreamEndpoint) -> int:
        """Tokens per firing: 1 for full-rate ports, 0 for bulk ports."""
        return 1 if len(ep.data) == self.firings else 0

    def start(self) -> Process:
        return self.env.process(self._run(), name=f"actor.{self.name}")

    def _run(self):
        self.started_at = self.env.now
        # Bulk inputs (reductions feeding us, e.g. the Otsu threshold)
        # must fully arrive before the first firing.
        for ep in self.inputs:
            if self._rate(ep) == 0:
                for _ in range(len(ep.data)):
                    yield ep.channel.get()
        yield self.env.timeout(self.timing.depth)  # pipeline fill
        # Unbox token arrays once up front instead of one numpy-scalar
        # .item() call per firing.
        rate_outs = [
            (ep, ep.data.tolist())
            for ep in self.outputs
            if self._rate(ep) == 1
        ]
        for f in range(self.firings):
            for ep in self.inputs:
                if self._rate(ep) == 1:
                    yield ep.channel.get()
            if f > 0:
                yield self.env.timeout(self.timing.ii)
            for ep, tokens in rate_outs:
                yield ep.channel.put(tokens[f])
        # Bulk outputs (e.g. a histogram) leave after the last firing.
        for ep in self.outputs:
            if self._rate(ep) == 0:
                for item in ep.data.tolist():
                    yield self.env.timeout(CYCLES_PER_WORD)
                    yield ep.channel.put(item)
        self.finished_at = self.env.now


#: ap_ctrl register bits (Vivado HLS layout).
CTRL_START = 0x1
CTRL_DONE = 0x2
CTRL_IDLE = 0x4


class LiteAccelSim(AxiLiteDevice):
    """AXI-Lite task accelerator: register file + compute process."""

    def __init__(
        self,
        env: Environment,
        name: str,
        result,  # SynthesisResult
        memory: Memory,
        *,
        arg_buffers: dict[str, str] | None = None,
        hp_port=None,
        injector=None,
    ) -> None:
        self.env = env
        self.name = name
        self.result = result
        self.memory = memory
        self.hp_port = hp_port
        self.injector = injector
        #: m_axi param name -> DRAM buffer name (bound before each run).
        self.arg_buffers = dict(arg_buffers or {})
        self.regs: dict[int, int] = {0x00: CTRL_IDLE}
        self._proc: Process | None = None
        self._irq_waiters: list = []
        self.runs = 0
        #: When set (by the runtime, only when this core is the sole HP
        #: master in its phase), m_axi traffic is charged as one burst
        #: grant instead of one event per word — cycle-identical for a
        #: solo master (see HpPort.acquire_burst).
        self.burst_traffic = False

    def bind_buffer(self, param: str, buffer_name: str) -> None:
        self.arg_buffers[param] = buffer_name

    def soft_reset(self) -> None:
        """ap_rst_n pulse: abort a wedged run, return to idle."""
        if self._proc is not None and not self._proc.triggered:
            self.env.abandon(self._proc)
        self._proc = None
        self._irq_waiters = []
        self.regs = {0x00: CTRL_IDLE}

    def done_irq(self):
        """Event triggering at the next ap_done (the core's interrupt line)."""
        from repro.sim.kernel import Event

        evt = Event(self.env)
        self._irq_waiters.append(evt)
        return evt

    # -- register interface ---------------------------------------------------
    def reg_read(self, offset: int) -> int:
        return self.regs.get(offset, 0)

    def reg_write(self, offset: int, value: int) -> None:
        self.regs[offset] = value
        if offset == 0x00 and (value & CTRL_START):
            if self._proc is not None and not self._proc.triggered:
                raise SimError(f"core {self.name!r} started while busy")
            self.regs[0x00] = 0  # busy: not idle, not done
            self._proc = self.env.process(self._compute(), name=f"core.{self.name}")

    # -- behaviour --------------------------------------------------------------
    def _gather_args(self) -> tuple[list[object], int]:
        """Collect positional args for the interpreter + AXI traffic words."""
        args: list[object] = []
        traffic_words = 0
        iface = self.result.iface
        for pname, ptype in self.result.function.params:
            if pname in self.result.function.array_params:
                buf_name = self.arg_buffers.get(pname)
                if buf_name is None:
                    # Base-address register points into DRAM.
                    reg = iface.register(pname)
                    addr = self.regs.get(reg.offset, 0)
                    buf = self.memory.at(addr)
                else:
                    buf = self.memory.buffer(buf_name)
                args.append(buf.data.reshape(-1))
                traffic_words += buf.data.size
            else:
                reg = iface.register(pname)
                raw = self.regs.get(reg.offset, 0)
                if ptype.is_float:
                    import struct

                    args.append(struct.unpack("<f", struct.pack("<I", raw & 0xFFFFFFFF))[0])
                else:
                    args.append(raw)
        return args, traffic_words

    def _compute(self):
        if self.injector is not None and self.injector.fire("accel_hang", self.name):
            yield self.env.event()  # ap_done never rises
            return
        args, traffic_words = self._gather_args()
        # Bus traffic for m_axi parameters + the core's compute latency.
        # The master shares the HP port with every DMA in the design.
        if traffic_words:
            yield self.env.timeout(READ_LATENCY + WRITE_LATENCY)
            if self.hp_port is None:
                yield self.env.timeout(traffic_words * CYCLES_PER_WORD)
            elif self.burst_traffic:
                yield self.hp_port.acquire_burst(traffic_words)
            else:
                for _ in range(traffic_words):
                    yield self.hp_port.acquire()
        yield self.env.timeout(max(1, self.result.latency.cycles))
        ret = self.result.run(*args)  # mutates DRAM-backed arrays in place
        if ret is not None:
            reg = self.result.iface.register("return")
            if isinstance(ret, float):
                import struct

                ret = struct.unpack("<I", struct.pack("<f", ret))[0]
            self.regs[reg.offset] = int(ret) & 0xFFFFFFFF
        self.runs += 1
        self.regs[0x00] = CTRL_DONE | CTRL_IDLE
        waiters, self._irq_waiters = self._irq_waiters, []
        for evt in waiters:
            evt.trigger(None)
