"""Application runtime: execute a partitioned HTG on a simulated platform.

Top-level semantics follow the paper (Section II-A): a node starts only
when all its predecessors finished and their results sit in shared
memory; independent branches may overlap.  Node execution depends on its
mapping:

* **software task/phase** — the CPU is busy for the task's cycle cost
  while the golden behaviour computes the data;
* **hardware task** (AXI-Lite core) — the CPU writes buffer base
  addresses into the core's argument registers, sets ``ap_start`` and
  polls ``ap_done``; the core charges AXI-master traffic + its HLS
  latency and runs the compiled C behaviour against simulated DRAM;
* **hardware phase** (AXI-Stream pipeline) — the CPU issues
  ``writeDMA``/``readDMA`` driver calls; DMA engines stream real data
  through the FIFO network where each actor consumes/produces tokens at
  its II.  Transfers and computation overlap — the benefit the paper's
  stream interfaces exist to deliver.

Every node's behaviour is supplied by a :class:`Behavior` registry entry
(the golden software implementation, also used for output allocation);
hardware data is produced by the HLS-compiled C via the IR interpreter.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.htg.model import HTG, Phase, Task
from repro.htg.partition import Partition
from repro.htg.schedule import phase_firing_order, topological_order
from repro.htg.validate import validate_htg
from repro.sim.accel import ActorTiming, LiteAccelSim, StreamActorSim, StreamEndpoint
from repro.sim.axi import AxiLiteBus, StreamChannel
from repro.sim.burst import (
    ActorSpec,
    DmaSpec,
    hw_serialized,
    replay_hp_state,
    solve_phase_ex,
)
from repro.sim.prefix import (
    channel_commit_spec,
    plan_mm2s_resume,
    plan_s2mm_resume,
    resume_actor,
)
from repro.sim.cpu import CpuModel, DRIVER_CALL_OVERHEAD
from repro.sim.devfs import DevFs
from repro.sim.dma_engine import (
    _SR_IDLE,
    DmaEngine,
    HpPort,
    MM2S_DMASR,
    S2MM_DMASR,
    SR_IOC_IRQ,
)
from repro.sim.faults import (
    ANY,
    FaultInjector,
    FaultPlan,
    RecoveryEvent,
    RecoveryPolicy,
)
from repro.obs.events import BUS as _BUS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.sim.kernel import Environment, Event
from repro.sim.memory import Memory
from repro.sim.trace import Trace
from repro.soc.address_map import AddressMap
from repro.soc.integrator import IntegratedSystem
from repro.util.errors import FaultInjectionError, SimError, SimTimeoutError

#: Default CPI-like scale from interpreter op counts to ARM cycles.
SW_CYCLES_PER_OP = 1.6


@dataclass
class Behavior:
    """Golden software behaviour of one task or actor.

    ``func(*input_arrays)`` returns the output arrays (a tuple in
    declared output order, or a single array).  ``sw_cycles`` optionally
    overrides the software cost model.
    """

    func: Callable[..., object]
    sw_cycles: Callable[..., int] | None = None

    def outputs(self, inputs: list[np.ndarray]) -> list[np.ndarray]:
        out = self.func(*inputs)
        if out is None:
            return []
        if isinstance(out, tuple):
            return [np.asarray(o) for o in out]
        return [np.asarray(out)]


@dataclass
class ExecutionReport:
    """Everything a simulation run produced."""

    cycles: int
    data: dict[str, np.ndarray]
    trace: Trace
    node_spans: dict[str, tuple[int, int]] = field(default_factory=dict)
    fclk_mhz: float = 100.0
    #: Stream FIFO statistics: name -> (tokens moved, peak occupancy).
    channel_stats: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: Total 32-bit words that crossed the HP port (0 without DMA).
    hp_words: int = 0
    #: Cycle-stamped fault firings (empty without a FaultPlan).
    fault_events: list = field(default_factory=list)
    #: Cycle-stamped recovery actions the runtime took.
    recovery_events: list = field(default_factory=list)
    #: Total kernel events executed — the cost the burst path shrinks.
    kernel_events: int = 0
    #: Fast-path accounting: phases taken burst vs word, and why.
    burst_stats: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.cycles / (self.fclk_mhz * 1e6)

    def digest(self) -> str:
        """Stable digest of everything the run *determines*.

        Covers cycles, per-node spans, output bytes, trace spans, FIFO
        token totals, HP-port words and fault/recovery logs — the burst
        and word paths must agree on all of it.  A FIFO's ``high_water``
        is deliberately excluded: it depends on same-cycle
        handoff-vs-queue races that are invisible to timing and data,
        and the burst path only estimates it.  ``kernel_events`` and
        ``burst_stats`` are excluded too — they describe the simulator's
        own effort, not the simulated run.
        """
        payload = {
            "cycles": self.cycles,
            "spans": {k: list(v) for k, v in sorted(self.node_spans.items())},
            "data": {
                k: [
                    str(v.dtype),
                    list(v.shape),
                    hashlib.sha256(np.ascontiguousarray(v).tobytes()).hexdigest(),
                ]
                for k, v in sorted(self.data.items())
            },
            "trace": [
                [s.component, s.activity, s.start, s.end] for s in self.trace.spans
            ],
            "channels": {k: v[0] for k, v in sorted(self.channel_stats.items())},
            "hp_words": self.hp_words,
            "faults": [e.describe() for e in self.fault_events],
            "recovery": [e.describe() for e in self.recovery_events],
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()

    def of(self, name: str) -> np.ndarray:
        try:
            return self.data[name]
        except KeyError:
            raise SimError(f"no data item named {name!r} was produced") from None

    def summary(self) -> str:
        """Human-readable run summary: totals + per-node spans."""
        lines = [
            f"execution: {self.cycles} cycles "
            f"({self.seconds * 1e3:.3f} ms @ {self.fclk_mhz:g} MHz)"
        ]
        for name, (start, end) in sorted(self.node_spans.items(), key=lambda kv: kv[1]):
            share = (end - start) / self.cycles if self.cycles else 0.0
            lines.append(f"  {name:<18} {start:>8} .. {end:<8} ({share:5.1%})")
        for evt in self.fault_events:
            lines.append(f"  fault     {evt.describe()}")
        for evt in self.recovery_events:
            lines.append(f"  recovery  {evt.describe()}")
        return "\n".join(lines)


class SimPlatform:
    """Simulated board: env + DRAM + (optionally) the integrated fabric."""

    def __init__(
        self,
        system: IntegratedSystem | None = None,
        *,
        hp_words_per_cycle: int = 2,
        wait_mode: str = "poll",
        cpu_cores: int = 2,
        faults: FaultPlan | None = None,
        burst_mode: bool | None = None,
    ) -> None:
        if wait_mode not in ("poll", "irq"):
            raise SimError(f"unknown wait mode {wait_mode!r}")
        if burst_mode is None:
            burst_mode = os.environ.get("REPRO_SIM_BURST", "1") != "0"
        self.burst_enabled = bool(burst_mode)
        self.env = Environment()
        self.memory = Memory()
        self.trace = Trace()
        self.system = system
        self.devfs = DevFs()
        self.wait_mode = wait_mode
        self.fault_plan = faults
        self.injector = FaultInjector(faults, self.env) if faults else None
        self.channels: dict[object, StreamChannel] = {}
        self.dma_engines: dict[str, DmaEngine] = {}
        self.lite_cores: dict[str, LiteAccelSim] = {}
        self.bus: AxiLiteBus | None = None
        self.cpu: CpuModel | None = None
        self.hp_port: HpPort | None = None
        self.cpu_cores = cpu_cores
        if system is not None:
            self._build_fabric(system, hp_words_per_cycle)
        if self.injector is not None:
            self._schedule_dram_faults()

    def _build_fabric(self, system: IntegratedSystem, hp_words_per_cycle: int) -> None:
        self.bus = AxiLiteBus(
            self.env, system.design.address_map, injector=self.injector
        )
        self.cpu = CpuModel(self.env, self.bus, num_cores=self.cpu_cores)
        any_m_axi = any(core.iface.m_axi_ports for core in system.cores.values())
        if system.dmas or any_m_axi:
            # Every PL master funnels into one HP port (S_AXI_HP0).
            self.hp_port = HpPort(self.env, words_per_cycle=hp_words_per_cycle)
        for link in system.graph.links():
            width = 32
            if isinstance(link.dst, tuple):
                width = system.cores[link.dst[0]].iface.stream(link.dst[1]).width
            elif isinstance(link.src, tuple):
                width = system.cores[link.src[0]].iface.stream(link.src[1]).width
            self.channels[link] = StreamChannel(
                self.env, _link_name(link), width_bits=width, injector=self.injector
            )
        for i, binding in enumerate(system.dmas):
            mm2s = self.channels.get(binding.mm2s_link) if binding.mm2s_link else None
            s2mm = self.channels.get(binding.s2mm_link) if binding.s2mm_link else None
            engine = DmaEngine(
                self.env,
                binding.cell,
                self.memory,
                mm2s=mm2s,
                s2mm=s2mm,
                hp_port=self.hp_port,
                injector=self.injector,
            )
            self.dma_engines[binding.cell] = engine
            self.devfs.register_dma(i, engine)
            self.bus.attach(binding.cell, engine)
        for edge in system.graph.connects():
            cell = system.cell_of[edge.node]
            sim = LiteAccelSim(
                self.env,
                edge.node,
                system.cores[edge.node],
                self.memory,
                hp_port=self.hp_port,
                injector=self.injector,
            )
            self.lite_cores[edge.node] = sim
            self.bus.attach(cell, sim)
            self.devfs.register_core(cell)

    # -- scheduled DRAM faults ------------------------------------------------
    def _schedule_dram_faults(self) -> None:
        """Arm single-bit DRAM flips as background events in cycle time.

        Background scheduling means a flip set past the natural end of
        the run simply never happens — it cannot hold the simulation
        open or distort the final cycle count.
        """
        for fault in self.fault_plan.faults:
            if fault.kind == "dram_flip":
                self.env.schedule_background(fault.at_cycle, self._make_flip(fault))

    def _make_flip(self, fault):
        def flip() -> None:
            names = sorted(self.memory.buffers)
            if not names:
                return
            if fault.target == ANY:
                target = names[fault.word % len(names)]
            elif fault.target in self.memory.buffers:
                target = fault.target
            else:
                return
            buf = self.memory.buffers[target]
            flat = buf.data.reshape(-1).view(np.uint8)
            if flat.size == 0:
                return
            idx = (fault.word * buf.data.itemsize + fault.bit // 8) % flat.size
            flat[idx] ^= np.uint8(1 << (fault.bit % 8))
            self.injector.note(
                "dram_flip", target, detail=f"byte {idx} bit {fault.bit % 8}"
            )

        return flip


def _link_name(link) -> str:
    def end(e):
        return "soc" if not isinstance(e, tuple) else f"{e[0]}.{e[1]}"

    return f"{end(link.src)}->{end(link.dst)}"


class _Runtime:
    def __init__(
        self,
        htg: HTG,
        partition: Partition,
        behaviors: dict[str, Behavior],
        platform: SimPlatform,
        inputs: dict[str, np.ndarray],
        *,
        policy: RecoveryPolicy | None = None,
    ) -> None:
        self.htg = htg
        self.partition = partition
        self.behaviors = behaviors
        self.p = platform
        self.data: dict[str, np.ndarray] = {k: np.asarray(v) for k, v in inputs.items()}
        self.node_spans: dict[str, tuple[int, int]] = {}
        self.policy = policy or RecoveryPolicy()
        #: The retry ladder wraps hardware nodes only when a fault plan
        #: or an explicit policy asks for it — the unguarded path stays
        #: literally the same code, so fault-free runs are identical.
        self._ladder = policy is not None or platform.injector is not None
        self.recovery_events: list[RecoveryEvent] = []
        #: Live hardware a phase holds while executing — what a watchdog
        #: recovery must abandon/reset (procs, channels, DMA engines).
        self._phase_state: dict[str, dict] = {}
        if self.policy.verify_outputs is None:
            self._verify = platform.injector is not None
        else:
            self._verify = self.policy.verify_outputs
        #: Burst fast path: only meaningful when no two hardware nodes
        #: can overlap (the commit-at-phase-end model assumes sole
        #: ownership of the HP port and DMA engines).  Per-phase checks
        #: (fault-plan targets, FIFO depths, HP contention) come later.
        self._burst_base = platform.burst_enabled and hw_serialized(htg, partition)
        self.burst_phases = 0
        self.word_phases = 0
        self.prefix_phases = 0
        #: Fallback accounting: reason -> count (a retried phase counts
        #: once per word-path attempt), phase name -> last reason, and
        #: phase name -> (path, reason) for the obs span attributes.
        self.fallback_reasons: dict[str, int] = {}
        self.fallback_phases: dict[str, str] = {}
        self.phase_modes: dict[str, tuple[str, str | None]] = {}
        #: AXI-Lite cores may charge their m_axi traffic as one burst
        #: grant only when nothing can interrupt the core mid-window:
        #: serialized hardware and no recovery ladder (a watchdog abandon
        #: between grant and completion would otherwise leave the port
        #: ahead of where the word path would be).
        if self._burst_base and not self._ladder:
            for core in platform.lite_cores.values():
                core.burst_traffic = True

    # -- helpers --------------------------------------------------------
    def behavior_of(self, key: str) -> Behavior:
        b = self.behaviors.get(key)
        if b is None:
            raise SimError(f"no behaviour registered for {key!r}")
        return b

    def gather_inputs(self, names: tuple[str, ...]) -> list[np.ndarray]:
        missing = [n for n in names if n not in self.data]
        if missing:
            raise SimError(f"data items {missing} not yet produced")
        return [self.data[n] for n in names]

    def sw_cost(self, node: Task, behavior: Behavior, inputs: list[np.ndarray]) -> int:
        if behavior.sw_cycles is not None:
            return behavior.sw_cycles(*inputs)
        if node.sw_cycles > 0:
            return node.sw_cycles
        total = sum(int(np.asarray(a).size) for a in inputs) or 1
        return int(total * 12)  # rough per-element software cost

    # -- node executors ---------------------------------------------------------
    def run_sw_task(self, node: Task):
        inputs = self.gather_inputs(node.inputs)
        behavior = self.behavior_of(node.name)
        outputs = behavior.outputs(inputs)
        if len(outputs) != len(node.outputs):
            raise SimError(
                f"{node.name}: behaviour produced {len(outputs)} outputs, "
                f"declared {len(node.outputs)}"
            )
        cost = self.sw_cost(node, behavior, inputs)
        start = self.p.env.now
        if self.p.cpu is not None:
            yield from self.p.cpu.run_software(cost)
        else:
            yield self.p.env.timeout(max(1, cost))
        for name, arr in zip(node.outputs, outputs):
            self.data[name] = arr
        self.p.trace.record(f"cpu:{node.name}", "sw", start, self.p.env.now)

    def run_hw_task(self, node: Task):
        assert self.p.system is not None and self.p.cpu is not None and self.p.bus
        system = self.p.system
        core = system.cores[node.name]
        sim = self.p.lite_cores[node.name]
        behavior = self.behavior_of(node.name)
        inputs = self.gather_inputs(node.inputs)
        golden = behavior.outputs(inputs)

        # Stage inputs into DRAM; allocate zeroed outputs.
        start = self.p.env.now
        scalar_args: dict[int, int] = {}
        for pname, arr in zip(node.inputs, inputs):
            buf = self._ensure_buffer(f"{node.name}.{pname}", arr)
            scalar_args[core.iface.register(pname).offset] = buf.base
        out_bufs = []
        for pname, ref in zip(node.outputs, golden):
            buf = self._ensure_buffer(
                f"{node.name}.{pname}", np.zeros_like(np.asarray(ref))
            )
            scalar_args[core.iface.register(pname).offset] = buf.base
            out_bufs.append((pname, buf))

        base = system.design.address_map.of(system.cell_of[node.name]).base
        irq = sim.done_irq() if self.p.wait_mode == "irq" else None
        yield from self.p.cpu.run_lite_core(base, scalar_args, irq=irq)
        if self._verify:
            self._check_integrity(
                node.name,
                [(pname, buf.data, ref) for (pname, buf), ref in zip(out_bufs, golden)],
            )
        for pname, buf in out_bufs:
            self.data[pname] = buf.data.copy()
        self.p.trace.record(f"hw:{node.name}", "accel", start, self.p.env.now)

    def _check_integrity(self, node: str, triples) -> None:
        """End-to-end result check (the CRC a robust deployment adds).

        Hardware results are bit-exact against the golden behaviour by
        construction, so any mismatch means corrupted data (bit flip,
        truncated stream) — surfaced as a structured error the retry
        ladder can act on instead of letting bad bytes escape.
        """
        bad = [
            pname
            for pname, actual, ref in triples
            if not np.array_equal(np.asarray(actual), np.asarray(ref))
        ]
        if bad:
            raise FaultInjectionError(
                f"integrity check failed for output(s) {bad} of node {node!r} "
                f"at cycle {self.p.env.now}: hardware result differs from the "
                "golden reference",
                cycle=self.p.env.now,
            )

    def _ensure_buffer(self, name: str, arr: np.ndarray):
        mem = self.p.memory
        if name in mem.buffers:
            buf = mem.buffers[name]
            if buf.data.shape != arr.shape or buf.data.dtype != arr.dtype:
                raise SimError(f"buffer {name!r} reused with a different shape")
            buf.data[...] = arr
            return buf
        return mem.allocate(name, arr)

    def run_sw_phase(self, phase: Phase):
        start = self.p.env.now
        channel_data = self._dataflow_outputs(phase)
        total = 0
        for actor in phase.actors:
            b = self.behaviors.get(f"{phase.name}.{actor.name}")
            if b is not None and b.sw_cycles is not None:
                ins = [
                    channel_data[_feeding_channel(phase, actor.name, p)]
                    for p in actor.stream_inputs
                ]
                total += b.sw_cycles(*ins)
            elif actor.sw_cycles > 0:
                total += actor.sw_cycles
            else:
                size = sum(
                    channel_data[_feeding_channel(phase, actor.name, p)].size
                    for p in actor.stream_inputs
                )
                total += int(max(1, size) * 12)
        if self.p.cpu is not None:
            yield from self.p.cpu.run_software(total)
        else:
            yield self.p.env.timeout(max(1, total))
        self._store_phase_outputs(phase, channel_data)
        self.p.trace.record(f"cpu:{phase.name}", "sw-phase", start, self.p.env.now)

    def _phase_layout(self, phase: Phase, channel_data):
        """Endpoints, firing counts and timing for every actor of *phase*.

        Applies the bulk-stall capacity bump exactly like the word path
        always did (idempotent, so planning a burst and then falling back
        to the word path leaves the same fabric state).
        """
        system = self.p.system
        layout = []
        for actor in phase.actors:
            ins, outs = [], []
            for port in actor.stream_inputs:
                ch_key = _feeding_channel(phase, actor.name, port)
                link = self._find_link(dst=(actor.name, port))
                ins.append(
                    StreamEndpoint(port, self.p.channels[link], channel_data[ch_key])
                )
            for port in actor.stream_outputs:
                ch_key = (actor.name, port)
                link = self._find_link(src=(actor.name, port))
                outs.append(
                    StreamEndpoint(port, self.p.channels[link], channel_data[ch_key])
                )
            firings = max([len(e.data) for e in (*ins, *outs)] or [1])
            # An actor stalled on a bulk (reduction) input — e.g. `segment`
            # waiting for the Otsu threshold — must be able to buffer its
            # full-rate inputs meanwhile, or the pipeline deadlocks.  Real
            # designs size that FIFO to the whole stream; mirror that.
            if any(len(e.data) != firings for e in ins):
                for e in ins:
                    if len(e.data) == firings:
                        e.channel.capacity = max(e.channel.capacity, firings)
            timing = ActorTiming.from_synthesis(system.cores[actor.name], firings)
            layout.append((actor, ins, outs, firings, timing))
        return layout

    def run_hw_phase(self, phase: Phase):
        assert self.p.system is not None and self.p.cpu is not None
        channel_data = None
        if self._burst_base:
            channel_data = self._dataflow_outputs(phase)
            kind, payload = self._plan_burst_phase(phase, channel_data)
            if kind == "burst":
                self.phase_modes[phase.name] = ("burst", None)
                yield from self._run_hw_phase_burst(phase, channel_data, *payload)
                return
            if kind == "prefix":
                self.phase_modes[phase.name] = ("prefix", None)
                yield from self._run_hw_phase_prefix(phase, channel_data, *payload)
                return
            reason = payload
            self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1
            self.fallback_phases[phase.name] = reason
            self.phase_modes[phase.name] = ("word", reason)
        yield from self._run_hw_phase_word(phase, channel_data)

    def _run_hw_phase_word(self, phase: Phase, channel_data=None):
        system = self.p.system
        start = self.p.env.now
        if channel_data is None:
            channel_data = self._dataflow_outputs(phase)

        # Map phase channels onto the system's stream links/FIFOs.
        actors: list[StreamActorSim] = []
        pending: list[Event] = []
        used_channels: set[StreamChannel] = set()
        used_engines: set[DmaEngine] = set()
        self.word_phases += 1
        for actor, ins, outs, firings, timing in self._phase_layout(
            phase, channel_data
        ):
            sim = StreamActorSim(
                self.p.env, actor.name, inputs=ins, outputs=outs, timing=timing
            )
            actors.append(sim)
            used_channels.update(e.channel for e in (*ins, *outs))
            pending.append(sim.start())

        # Driver calls: one writeDMA per boundary input, one readDMA per
        # boundary output (through /dev exactly like the generated app).
        for ch in phase.boundary_inputs():
            arr = self.data[ch.src_port]
            buf = self._ensure_buffer(f"{phase.name}.{ch.src_port}", arr)
            link = self._find_link(dst=(ch.dst_actor, ch.dst_port))
            binding = system.dma_for_input(link)
            handle = self._dma_handle(binding.cell)
            used_engines.add(handle.engine)
            yield from self.p.cpu.call_driver()
            pending.append(handle.writeDMA(buf.base, buf.nbytes))
        out_bufs = []
        for ch in phase.boundary_outputs():
            ref = channel_data[(ch.src_actor, ch.src_port)]
            buf = self._ensure_buffer(
                f"{phase.name}.{ch.dst_port}", np.zeros_like(ref)
            )
            link = self._find_link(src=(ch.src_actor, ch.src_port))
            binding = system.dma_for_output(link)
            handle = self._dma_handle(binding.cell)
            used_engines.add(handle.engine)
            yield from self.p.cpu.call_driver()
            pending.append(handle.readDMA(buf.base, buf.nbytes))
            out_bufs.append((ch.dst_port, buf, ref))

        # Register what a watchdog recovery must clean up, then wait.
        self._phase_state[phase.name] = {
            "procs": list(pending),
            "channels": used_channels,
            "engines": used_engines,
        }
        yield self.p.env.all_of(pending)
        self._phase_state.pop(phase.name, None)
        if self._verify:
            self._check_integrity(
                phase.name, [(name, buf.data, ref) for name, buf, ref in out_bufs]
            )
        for name, buf, _ref in out_bufs:
            self.data[name] = buf.data.copy()
        for sim in actors:
            if sim.started_at is not None and sim.finished_at is not None:
                self.p.trace.record(
                    f"hw:{sim.name}", "stream", sim.started_at, sim.finished_at
                )
        self.p.trace.record(f"phase:{phase.name}", "hw-phase", start, self.p.env.now)

    # -- burst fast path (see repro.sim.burst for the equivalence argument) --
    def _plan_burst_phase(self, phase: Phase, channel_data):
        """Solve *phase* analytically; returns ``(kind, payload)``.

        ``("burst", args)`` runs the whole phase as one commit;
        ``("prefix", args)`` burst-commits up to the cycle before the
        earliest fault hazard and resumes the remainder on the live word
        path; ``("fallback", reason)`` — reason from
        :data:`~repro.sim.burst.FALLBACK_REASONS` — runs the word path.
        Pure apart from the idempotent capacity bump: nothing is staged,
        kicked or charged until the plan is accepted, so a fallback
        leaves the simulator exactly where the word path expects it.
        """
        p = self.p
        system = p.system
        t0 = p.env.now
        layout = self._phase_layout(phase, channel_data)

        # Boundary transfers in driver-call order (inputs then outputs),
        # each kicked one DRIVER_CALL_OVERHEAD after the previous call.
        kick = t0
        dma_specs: list[DmaSpec] = []
        in_ctx: list[tuple[str, np.ndarray, DmaEngine]] = []
        out_ctx: list[tuple[str, np.ndarray, DmaEngine, str]] = []
        targets: set[str] = set()
        try:
            for ch in phase.boundary_inputs():
                arr = self.data[ch.src_port]
                link = self._find_link(dst=(ch.dst_actor, ch.dst_port))
                engine = self.p.dma_engines[system.dma_for_input(link).cell]
                kick += DRIVER_CALL_OVERHEAD
                dma_specs.append(
                    DmaSpec(kick, int(arr.size), p.channels[link], "mm2s")
                )
                in_ctx.append((ch.src_port, arr, engine))
                targets.add(engine.name)
            for ch in phase.boundary_outputs():
                ref = np.asarray(channel_data[(ch.src_actor, ch.src_port)])
                link = self._find_link(src=(ch.src_actor, ch.src_port))
                engine = self.p.dma_engines[system.dma_for_output(link).cell]
                kick += DRIVER_CALL_OVERHEAD
                dma_specs.append(
                    DmaSpec(kick, int(ref.size), p.channels[link], "s2mm")
                )
                out_ctx.append((ch.dst_port, ref, engine, ch.src_actor))
                targets.add(engine.name)
        except SimError:
            # Unmappable boundary: let the word path raise the error.
            return ("fallback", "no_convergence")

        channels: dict[StreamChannel, int] = {}
        chan_tokens: dict[StreamChannel, list] = {}
        actor_specs: list[ActorSpec] = []
        for actor, ins, outs, firings, timing in layout:
            spec = ActorSpec(
                name=actor.name, t0=t0, firings=firings,
                depth=timing.depth, ii=timing.ii,
            )
            for e in ins:
                channels[e.channel] = e.channel.capacity
                chan_tokens.setdefault(e.channel, e.data.tolist())
                if len(e.data) == firings:
                    spec.rate_ins.append(e.channel)
                else:
                    spec.bulk_ins.append((e.channel, len(e.data)))
            for e in outs:
                channels[e.channel] = e.channel.capacity
                chan_tokens.setdefault(e.channel, e.data.tolist())
                if len(e.data) == firings:
                    spec.rate_outs.append(e.channel)
                else:
                    spec.bulk_outs.append((e.channel, len(e.data)))
            actor_specs.append(spec)
        targets.update(ch.name for ch in channels)

        # The earliest cycle a fault could fire in-phase.  Everything
        # strictly before it is fault-free and burstable; the cut must
        # also clear the driver-call window (the kicks and descriptor
        # validations are replayed synchronously up to the cut).
        hazard = None
        if p.fault_plan is not None:
            spent = p.injector.spent() if p.injector is not None else None
            hazard = p.fault_plan.earliest_hazard(targets, now=t0, spent=spent)
            if hazard is not None and hazard <= kick:
                return ("fallback", "fault_touches")
        # The FIFOs must be idle and deep enough for burst algebra.
        for ch in channels:
            if ch.capacity < 2 or len(ch) or ch._getters or ch._putters:
                return ("fallback", "fifo_busy")
        for _, _, engine in in_ctx:
            if engine._mm2s_busy is not None and not engine._mm2s_busy.triggered:
                return ("fallback", "engine_busy")
        for _, _, engine, _ in out_ctx:
            if engine._s2mm_busy is not None and not engine._s2mm_busy.triggered:
                return ("fallback", "engine_busy")

        solution, reason = solve_phase_ex(
            channels,
            dma_specs,
            actor_specs,
            hp_wpc=p.hp_port.words_per_cycle if p.hp_port else None,
            hp_slot_time=p.hp_port._slot_time if p.hp_port else None,
            hp_slot_used=p.hp_port._slot_used if p.hp_port else 0,
        )
        if solution is None:
            return ("fallback", reason)
        # A watchdog that would expire mid-phase must see the word path
        # wedge word by word, not a single opaque timeout.
        if self._ladder and solution.finish - t0 >= self.policy.node_budget:
            return ("fallback", "watchdog_budget")
        if hazard is not None and hazard <= solution.finish:
            return (
                "prefix",
                (solution, in_ctx, out_ctx, chan_tokens, dma_specs,
                 actor_specs, hazard - 1),
            )
        return ("burst", (solution, in_ctx, out_ctx, chan_tokens))

    def _run_hw_phase_burst(self, phase: Phase, channel_data, solution,
                            in_ctx, out_ctx, chan_tokens):
        """Replay the phase's CPU work, sleep to the solved end, commit."""
        p = self.p
        env = p.env
        start = env.now
        self.burst_phases += 1
        # Driver calls cost exactly what the word path charges, and the
        # engines validate each descriptor at its kick cycle (same error,
        # same DMASR latch, same cycle if a transfer is rejected).
        for src_port, arr, engine in in_ctx:
            buf = self._ensure_buffer(f"{phase.name}.{src_port}", arr)
            yield from p.cpu.call_driver()
            engine._validate(buf.base, buf.nbytes, "MM2S", MM2S_DMASR)
            engine.bytes_mm2s += buf.nbytes
        out_bufs = []
        for dst_port, ref, engine, _src_actor in out_ctx:
            buf = self._ensure_buffer(f"{phase.name}.{dst_port}", np.zeros_like(ref))
            yield from p.cpu.call_driver()
            engine._validate(buf.base, buf.nbytes, "S2MM", S2MM_DMASR)
            engine.bytes_s2mm += buf.nbytes
            out_bufs.append((dst_port, buf, ref, engine))
        # The whole phase is one kernel event instead of one per word.
        yield env.timeout(max(0, solution.finish - env.now))
        # ---- commit: the exact final state the word path would reach ----
        for _, _, engine in in_ctx:
            engine.regs[MM2S_DMASR] = _SR_IDLE | SR_IOC_IRQ
        for dst_port, buf, ref, engine in out_bufs:
            buf.data.reshape(-1)[:] = np.asarray(ref).reshape(-1)
            engine.regs[S2MM_DMASR] = _SR_IDLE | SR_IOC_IRQ
        if self._verify:
            self._check_integrity(
                phase.name,
                [(name, buf.data, ref) for name, buf, ref, _ in out_bufs],
            )
        for dst_port, buf, _ref, _eng in out_bufs:
            self.data[dst_port] = buf.data.copy()
        # The phase's traffic crosses each FIFO as one burst event pair;
        # high_water is pinned to the solver's occupancy estimate (a
        # whole-transfer burst would overstate the word path's peak).
        for ch, (puts, gets, high_water) in solution.channels.items():
            if not puts:
                continue
            ch.commit_burst(chan_tokens[ch], gets, high_water)
        if p.hp_port is not None and solution.hp_state is not None:
            p.hp_port._slot_time, p.hp_port._slot_used = solution.hp_state
            p.hp_port.total_words += solution.hp_words
        for name, started, finished in solution.actor_spans:
            p.trace.record(f"hw:{name}", "stream", started, finished)
        p.trace.record(f"phase:{phase.name}", "hw-phase", start, env.now)

    def _run_hw_phase_prefix(self, phase: Phase, channel_data, solution,
                             in_ctx, out_ctx, chan_tokens, dma_specs,
                             actor_specs, cut):
        """Burst-commit the phase up to *cut*, run the rest word by word.

        The cut is the cycle before the earliest fault hazard, so the
        committed prefix is provably fault-free and cycle-identical to
        the word path (the burst equivalence argument), and every
        injection point from the hazard cycle on runs live — see
        :mod:`repro.sim.prefix` for the state-handoff argument.
        """
        p = self.p
        env = p.env
        start = env.now
        self.prefix_phases += 1
        # Driver-call replay: identical CPU cost and descriptor
        # validation cycles as the word path.  Bytes are NOT pre-charged
        # (unlike the full-burst commit): the live remainder may
        # truncate, so each transfer charges at its end like the word
        # path does.
        in_bufs = []
        for src_port, arr, engine in in_ctx:
            buf = self._ensure_buffer(f"{phase.name}.{src_port}", arr)
            yield from p.cpu.call_driver()
            engine._validate(buf.base, buf.nbytes, "MM2S", MM2S_DMASR)
            engine.regs[MM2S_DMASR] = 0x0  # busy
            in_bufs.append(buf)
        out_bufs = []
        for dst_port, ref, engine, _src_actor in out_ctx:
            buf = self._ensure_buffer(f"{phase.name}.{dst_port}", np.zeros_like(ref))
            yield from p.cpu.call_driver()
            engine._validate(buf.base, buf.nbytes, "S2MM", S2MM_DMASR)
            engine.regs[S2MM_DMASR] = 0x0
            out_bufs.append((dst_port, buf, ref, engine))
        # The whole fault-free prefix is one kernel event.
        yield env.timeout(max(0, cut - env.now))
        # ---- commit: the exact word-path state at the end of the cut ----
        for ch, (P, G) in solution.timeline.items():
            n_put, n_got, high_water = channel_commit_spec(
                P, G, ch.capacity, cut
            )
            if n_put:
                ch.commit_burst(chan_tokens[ch][:n_put], n_got, high_water)
        if p.hp_port is not None and solution.hp_events:
            state, done = replay_hp_state(
                solution.hp_events, p.hp_port.words_per_cycle,
                solution.hp_init, cut,
            )
            p.hp_port._slot_time, p.hp_port._slot_used = state
            p.hp_port.total_words += done
        # ---- spawn the live remainder ----
        procs: list = []
        used_channels = set(solution.timeline)
        used_engines = set()
        for i, (src_port, arr, engine) in enumerate(in_ctx):
            spec = dma_specs[i]
            buf = in_bufs[i]
            plan = plan_mm2s_resume(
                spec, solution.dma_calls[i], solution.timeline[spec.chan][0], cut
            )
            used_engines.add(engine)
            if plan.mode == "done":
                engine.bytes_mm2s += buf.nbytes
                engine.regs[MM2S_DMASR] = _SR_IDLE | SR_IOC_IRQ
                engine._mm2s_busy = None
                continue
            proc = env.process(
                engine.resume_mm2s(buf.base, buf.nbytes, plan.first,
                                   plan.mode, plan.wake),
                name=f"{engine.name}.mm2s",
            )
            engine._mm2s_busy = proc
            procs.append(proc)
        n_in = len(in_ctx)
        for j, (dst_port, buf, ref, engine) in enumerate(out_bufs):
            spec = dma_specs[n_in + j]
            plan = plan_s2mm_resume(
                spec, solution.dma_calls[n_in + j],
                solution.timeline[spec.chan][1], cut,
            )
            used_engines.add(engine)
            if plan.committed:
                flat_ref = np.asarray(ref).reshape(-1)
                buf.data.reshape(-1)[:plan.committed] = flat_ref[:plan.committed]
            if plan.mode == "done":
                engine.bytes_s2mm += buf.nbytes
                engine.regs[S2MM_DMASR] = _SR_IDLE | SR_IOC_IRQ
                engine._s2mm_busy = None
                continue
            proc = env.process(
                engine.resume_s2mm(buf.base, buf.nbytes, plan.first,
                                   plan.mode, plan.wake),
                name=f"{engine.name}.s2mm",
            )
            engine._s2mm_busy = proc
            procs.append(proc)
        actor_states: list[tuple[str, int, int | None, dict]] = []
        for spec, (name, started, finished) in zip(
            actor_specs, solution.actor_spans
        ):
            if finished <= cut:
                actor_states.append((name, started, finished, {}))
                continue
            span: dict = {}
            procs.append(env.process(
                resume_actor(env, spec, solution.timeline, chan_tokens,
                             cut, span),
                name=f"actor.{name}",
            ))
            actor_states.append((name, started, None, span))

        # Register what a watchdog recovery must clean up, then wait.
        self._phase_state[phase.name] = {
            "procs": list(procs),
            "channels": used_channels,
            "engines": used_engines,
        }
        yield env.all_of(procs)
        self._phase_state.pop(phase.name, None)
        if self._verify:
            self._check_integrity(
                phase.name,
                [(name, buf.data, ref) for name, buf, ref, _ in out_bufs],
            )
        for dst_port, buf, _ref, _eng in out_bufs:
            self.data[dst_port] = buf.data.copy()
        for name, started, finished, span in actor_states:
            end = finished if finished is not None else span.get("finish")
            if end is not None:
                p.trace.record(f"hw:{name}", "stream", started, end)
        p.trace.record(f"phase:{phase.name}", "hw-phase", start, env.now)

    def _dma_handle(self, cell: str):
        for path in self.p.devfs.listdir():
            node = self.p.devfs._nodes[path]
            if node.kind == "dma" and node.target == cell:
                return self.p.devfs.open(path)
        raise SimError(f"no /dev node for DMA {cell!r}")

    def _find_link(self, *, src=None, dst=None):
        assert self.p.system is not None
        for link in self.p.system.graph.links():
            if src is not None and link.src == src:
                return link
            if dst is not None and link.dst == dst:
                return link
        raise SimError(f"no stream link matching src={src} dst={dst}")

    # -- functional dataflow execution ----------------------------------------------
    def _dataflow_outputs(self, phase: Phase) -> dict[tuple[str, str], np.ndarray]:
        """Compute every channel's data: key = (producer actor, port);
        boundary inputs use (BOUNDARY, data name)."""
        out: dict[tuple[str, str], np.ndarray] = {}
        for name in phase.inputs:
            out[(Phase.BOUNDARY, name)] = self.data[name]
        for actor_name in phase_firing_order(phase):
            actor = phase.actor(actor_name)
            ins = [
                out[_feeding_channel(phase, actor_name, p)]
                for p in actor.stream_inputs
            ]
            behavior = self.behaviors.get(f"{phase.name}.{actor_name}")
            if behavior is None:
                behavior = self.behaviors.get(actor_name)
            if behavior is None:
                raise SimError(
                    f"no behaviour registered for actor "
                    f"{phase.name}.{actor_name}"
                )
            results = behavior.outputs(ins)
            if len(results) != len(actor.stream_outputs):
                raise SimError(
                    f"{actor_name}: behaviour produced {len(results)} outputs, "
                    f"declared {len(actor.stream_outputs)}"
                )
            for port, arr in zip(actor.stream_outputs, results):
                out[(actor_name, port)] = arr
        return out

    def _store_phase_outputs(self, phase: Phase, channel_data) -> None:
        for ch in phase.boundary_outputs():
            self.data[ch.dst_port] = channel_data[(ch.src_actor, ch.src_port)]

    # -- recovery ladder -------------------------------------------------------------
    def _record(self, name: str, action: str, attempt: int, cause: str = "") -> None:
        self.recovery_events.append(
            RecoveryEvent(
                cycle=self.p.env.now, node=name, action=action,
                attempt=attempt, cause=cause,
            )
        )
        if _BUS.enabled:
            _BUS.emit(
                "sim.recovery",
                action,
                cycle=self.p.env.now,
                worker=name,
                attempt=attempt,
            )
            _METRICS.counter("sim.recoveries", "recovery actions taken").inc()

    def _recover_node(self, name: str, node, cause: BaseException, attempt: int):
        """Soft-reset the hardware a failed attempt holds, charge the cost."""
        env = self.p.env
        self._record(name, "soft-reset", attempt, cause=str(cause))
        if isinstance(node, Task):
            core = self.p.lite_cores.get(name)
            if core is not None:
                core.soft_reset()
        else:
            state = self._phase_state.pop(name, None)
            if state is not None:
                for proc in state["procs"]:
                    if not proc.triggered:
                        env.abandon(proc)
                for engine in state["engines"]:
                    engine.soft_reset()
                for channel in state["channels"]:
                    channel.reset()
        start = env.now
        yield env.timeout(self.policy.reset_cycles)
        self.p.trace.record(f"recover:{name}", "reset", start, env.now)

    def _run_guarded(self, name: str, node, runner):
        """Watchdog -> capture -> soft reset -> retry -> software fallback."""
        env = self.p.env
        policy = self.policy
        cause: BaseException | None = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self._record(name, "retry", attempt, cause=str(cause))
            tproc = env.process(
                runner(node), name=f"try.{name}#{attempt}", capture_errors=True
            )
            guard = env.deadline(policy.node_budget)
            yield env.any_of([tproc, guard])
            if tproc.triggered and tproc.error is None:
                guard.cancel()
                return
            if tproc.triggered:
                guard.cancel()
                cause = tproc.error
            else:
                env.abandon(tproc)
                cause = SimTimeoutError(
                    f"node {name!r} exceeded its {policy.node_budget}-cycle "
                    f"budget (attempt {attempt}, cycle {env.now})",
                    cycle=env.now,
                    budget=policy.node_budget,
                )
            yield from self._recover_node(name, node, cause, attempt)
        if not policy.fallback:
            self._record(name, "diagnosed", policy.max_attempts, cause=str(cause))
            raise cause
        self._record(name, "fallback", policy.max_attempts, cause=str(cause))
        if isinstance(node, Task):
            yield from self.run_sw_task(node)
        else:
            yield from self.run_sw_phase(node)

    # -- top level -------------------------------------------------------------------
    def launch(self) -> None:
        done: dict[str, Event] = {}

        def node_process(name: str):
            preds = [done[p] for p in self.htg.predecessors(name)]
            yield self.p.env.all_of(preds)
            node = self.htg.node(name)
            start = self.p.env.now
            hw = self.partition.is_hw(name)
            if isinstance(node, Task):
                runner = self.run_hw_task if hw else self.run_sw_task
            else:
                runner = self.run_hw_phase if hw else self.run_sw_phase
            # One ``sim.phase`` span per HTG node, stamped in cycle time.
            # Both simulation paths reach identical node start/end cycles
            # (the burst equivalence argument), so the span set is
            # path-independent.  ``worker=name`` gives each node its own
            # Chrome track; the E lands in a ``finally`` so a fault that
            # escapes the ladder still closes the span.
            kind = "hw" if hw else "sw"
            if _BUS.enabled:
                _BUS.emit(
                    "sim.phase", name, phase="B", cycle=start, worker=name, kind=kind
                )
            try:
                if hw and self._ladder:
                    yield from self._run_guarded(name, node, runner)
                else:
                    yield from runner(node)
            finally:
                if _BUS.enabled:
                    # Hardware phases also report which simulation path
                    # ran them (burst | prefix | word) and, for word
                    # fallbacks, the taxonomy reason — the E span is the
                    # per-phase view of ExecutionReport.burst_stats.
                    extra = {}
                    mode = self.phase_modes.get(name)
                    if mode is not None:
                        extra["path"] = mode[0]
                        if mode[1] is not None:
                            extra["fallback_reason"] = mode[1]
                    _BUS.emit(
                        "sim.phase",
                        name,
                        phase="E",
                        cycle=self.p.env.now,
                        worker=name,
                        kind=kind,
                        **extra,
                    )
            self.node_spans[name] = (start, self.p.env.now)

        for name in topological_order(self.htg):
            done[name] = self.p.env.process(node_process(name), name=f"node.{name}")


def simulate_application(
    htg: HTG,
    partition: Partition,
    behaviors: dict[str, Behavior],
    inputs: dict[str, np.ndarray],
    *,
    system: IntegratedSystem | None = None,
    fclk_mhz: float = 100.0,
    hp_words_per_cycle: int = 2,
    wait_mode: str = "poll",
    cpu_cores: int = 2,
    faults: FaultPlan | None = None,
    policy: RecoveryPolicy | None = None,
    burst_mode: bool | None = None,
) -> ExecutionReport:
    """Run *htg* under *partition* and return the execution report.

    *system* is required when the partition maps anything to hardware;
    an all-software partition runs on a bare platform (CPU only).
    *hp_words_per_cycle* sets the shared HP-port bandwidth all DMA
    engines contend for; *wait_mode* selects polling or interrupt-driven
    completion for AXI-Lite cores; *cpu_cores* bounds how many software
    tasks overlap (the Zedboard's A9 is dual-core).

    *faults* arms a deterministic :class:`FaultPlan`; *policy* tunes the
    recovery ladder (watchdog budget, retries, software fallback).
    Either one enables the guarded execution path; with neither, the run
    is byte- and cycle-identical to the unguarded simulator.  The
    deadlock detector is always on: a wedged run raises a structured
    :class:`~repro.util.errors.SimDeadlockError` naming the blocked
    processes instead of returning silently.

    *burst_mode* controls the burst fast path (see :mod:`repro.sim.burst`):
    hardware phases whose timing is provably reproducible by the
    analytic solver run as a single kernel timeout instead of one event
    per word — cycle- and byte-identical, ~10-100x fewer events.
    ``None`` (default) reads ``REPRO_SIM_BURST`` (on unless set to
    ``0``); a phase falls back to the word path automatically whenever
    exactness would require word granularity (an armed fault plan
    touching it, shallow FIFOs, contended HP windows, parallel hardware
    nodes).
    """
    validate_htg(htg)
    partition.validate(htg)
    if partition.hw_nodes() and system is None:
        raise SimError("hardware nodes in the partition but no integrated system given")
    platform = SimPlatform(
        system,
        hp_words_per_cycle=hp_words_per_cycle,
        wait_mode=wait_mode,
        cpu_cores=cpu_cores,
        faults=faults,
        burst_mode=burst_mode,
    )
    platform.env.detect_deadlock = True
    if platform.cpu is None:
        platform.cpu = CpuModel(
            platform.env, AxiLiteBus(platform.env, AddressMap()), num_cores=cpu_cores
        )
    runtime = _Runtime(htg, partition, behaviors, platform, inputs, policy=policy)
    runtime.launch()
    cycles = platform.env.run()
    if _BUS.enabled:
        # ``sim.*`` totals are *run-determined* — they mirror the fields
        # ExecutionReport.digest() covers, so the word and burst paths
        # must agree on every one of them byte for byte.  The engine's
        # own effort goes under ``simulator.*``: kernel event counts and
        # the burst/word phase split legitimately differ between paths
        # and are excluded from the sim-totals digest.
        _METRICS.counter("sim.runs", "simulations completed").inc()
        _METRICS.counter("sim.cycles", "simulated cycles").inc(cycles)
        _METRICS.counter("sim.nodes", "HTG nodes executed").inc(
            len(runtime.node_spans)
        )
        _METRICS.counter("sim.hp_words", "words across the HP port").inc(
            platform.hp_port.total_words if platform.hp_port else 0
        )
        _METRICS.counter("sim.channel_tokens", "tokens through stream FIFOs").inc(
            sum(ch.total_got for ch in platform.channels.values())
        )
        _METRICS.counter("sim.trace_spans", "trace spans recorded").inc(
            len(platform.trace.spans)
        )
        _METRICS.counter("simulator.kernel_events", "kernel events processed").inc(
            platform.env.events_processed
        )
        _METRICS.counter("simulator.burst_phases", "phases on the burst path").inc(
            runtime.burst_phases
        )
        _METRICS.counter(
            "simulator.prefix_phases", "phases on the prefix-burst path"
        ).inc(runtime.prefix_phases)
        _METRICS.counter("simulator.word_phases", "phases on the word path").inc(
            runtime.word_phases
        )
    return ExecutionReport(
        cycles=cycles,
        data=runtime.data,
        trace=platform.trace,
        node_spans=runtime.node_spans,
        fclk_mhz=fclk_mhz,
        channel_stats={
            ch.name: (ch.total_got, ch.high_water)
            for ch in platform.channels.values()
        },
        hp_words=platform.hp_port.total_words if platform.hp_port else 0,
        fault_events=list(platform.injector.events) if platform.injector else [],
        recovery_events=list(runtime.recovery_events),
        kernel_events=platform.env.events_processed,
        burst_stats={
            "enabled": platform.burst_enabled,
            "hw_serialized": runtime._burst_base or not platform.burst_enabled,
            "burst_phases": runtime.burst_phases,
            "prefix_phases": runtime.prefix_phases,
            "word_phases": runtime.word_phases,
            "fallback_reasons": dict(runtime.fallback_reasons),
            "fallback_phases": dict(runtime.fallback_phases),
        },
    )


def _feeding_channel(phase: Phase, actor: str, port: str) -> tuple[str, str]:
    """Key of the channel feeding (actor, port): (producer, producer port)."""
    for ch in phase.channels:
        if ch.dst_actor == actor and ch.dst_port == port:
            if ch.describes_input():
                return (Phase.BOUNDARY, ch.src_port)
            return (ch.src_actor, ch.src_port)
    raise SimError(f"phase {phase.name!r}: nothing feeds {actor}.{port}")
