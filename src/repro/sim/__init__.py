"""Discrete-event SoC simulator (the board substitute).

Lets the generated systems *run*: a cycle-granular event kernel
(:mod:`kernel`), DRAM (:mod:`memory`), AXI-Lite transactions and
AXI-Stream FIFOs with backpressure (:mod:`axi`), DMA engines
(:mod:`dma_engine`), accelerator models combining the HLS functional
behaviour with the scheduled timing (:mod:`accel`), a CPU model
(:mod:`cpu`), the ``/dev`` + ``readDMA``/``writeDMA`` driver surface
(:mod:`devfs`), and an application runtime executing a partitioned HTG
on an integrated system (:mod:`runtime`).

The functional and timing models are deliberately separated (classic
TLM style): data moved through DMAs and streams is real — the output
buffers in simulated DRAM are compared bit-for-bit against the golden
software pipeline — while timing comes from the HLS schedule (II,
pipeline depth, latency) and calibrated bus costs.
"""

from repro.sim.axi import AxiLiteBus, StreamChannel
from repro.sim.burst import (
    FALLBACK_REASONS,
    PhaseSolution,
    hw_serialized,
    solve_phase,
    solve_phase_ex,
)
from repro.sim.faults import (
    Fault,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    RecoveryEvent,
    RecoveryPolicy,
    campaign_digest,
)
from repro.sim.kernel import Environment, Event, Process
from repro.sim.memory import Memory
from repro.sim.runtime import ExecutionReport, SimPlatform, simulate_application

__all__ = [
    "AxiLiteBus",
    "Environment",
    "FALLBACK_REASONS",
    "Event",
    "ExecutionReport",
    "Fault",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "Memory",
    "PhaseSolution",
    "Process",
    "RecoveryEvent",
    "RecoveryPolicy",
    "SimPlatform",
    "StreamChannel",
    "campaign_digest",
    "hw_serialized",
    "simulate_application",
    "solve_phase",
    "solve_phase_ex",
]
