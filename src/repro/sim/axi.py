"""AXI transaction models: the Lite control bus and Stream FIFOs.

``AxiLiteBus`` routes register accesses by address through the design's
:class:`~repro.soc.address_map.AddressMap` to registered devices; each
access costs a fixed number of cycles (the GP-port round trip).

``StreamChannel`` is a bounded FIFO with blocking put/get — the
AXI-Stream ``tvalid``/``tready`` backpressure at transaction level.
Conservation (puts == gets + occupancy + flushed) is property-tested.

Both carry fault-injection hooks (see :mod:`repro.sim.faults`): the bus
can raise injected SLVERR/DECERR responses, and a FIFO can drop or
bit-flip tokens in flight.  Without an injector the fast paths are
untouched.
"""

from __future__ import annotations

from collections import deque
from repro.sim.kernel import Environment, Event
from repro.soc.address_map import AddressMap
from repro.util.errors import FaultInjectionError, SimError

#: GP-port register access cost (cycles @ FCLK), write and read.
LITE_WRITE_CYCLES = 8
LITE_READ_CYCLES = 10

#: Default AXI-Stream FIFO depth (the DMA/HLS cores' packet FIFOs).
DEFAULT_FIFO_DEPTH = 64


class AxiLiteDevice:
    """Interface for anything mapped on the control bus."""

    def reg_read(self, offset: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def reg_write(self, offset: int, value: int) -> None:  # pragma: no cover
        raise NotImplementedError


class AxiLiteBus:
    """Address-decoded register access with per-transaction cost."""

    def __init__(self, env: Environment, address_map: AddressMap, *, injector=None) -> None:
        self.env = env
        self.address_map = address_map
        self.injector = injector
        self.devices: dict[str, AxiLiteDevice] = {}
        self.reads = 0
        self.writes = 0

    def attach(self, segment_name: str, device: AxiLiteDevice) -> None:
        self.address_map.of(segment_name)  # must exist
        self.devices[segment_name] = device

    def _decode(self, addr: int) -> tuple[AxiLiteDevice, int, str]:
        rng = self.address_map.resolve(addr)
        dev = self.devices.get(rng.name)
        if dev is None:
            raise SimError(f"bus error: no device behind segment {rng.name!r}")
        return dev, addr - rng.base, rng.name

    def _maybe_fault(self, segment: str, addr: int) -> None:
        if self.injector is None:
            return
        for kind, resp in (("axi_slverr", "SLVERR"), ("axi_decerr", "DECERR")):
            fault = self.injector.fire(kind, segment, detail=f"addr=0x{addr:08x}")
            if fault is not None:
                raise FaultInjectionError(
                    f"AXI-Lite {resp} on segment {segment!r} "
                    f"(addr 0x{addr:08x}) at cycle {self.env.now}",
                    cycle=self.env.now,
                    fault=fault,
                )

    def write(self, addr: int, value: int):
        """Process-style write: ``yield from bus.write(addr, value)``."""
        dev, offset, segment = self._decode(addr)
        yield self.env.timeout(LITE_WRITE_CYCLES)
        self._maybe_fault(segment, addr)
        self.writes += 1
        dev.reg_write(offset, value)

    def read(self, addr: int):
        """Process-style read returning the register value."""
        dev, offset, segment = self._decode(addr)
        yield self.env.timeout(LITE_READ_CYCLES)
        self._maybe_fault(segment, addr)
        self.reads += 1
        return dev.reg_read(offset)


class StreamChannel:
    """Bounded FIFO with blocking put/get (AXI-Stream at TLM level)."""

    def __init__(
        self,
        env: Environment,
        name: str,
        *,
        capacity: int = DEFAULT_FIFO_DEPTH,
        width_bits: int = 32,
        injector=None,
    ) -> None:
        if capacity < 1:
            raise SimError(f"stream {name!r}: capacity must be >= 1")
        self.env = env
        self.name = name
        self.capacity = capacity
        self.width_bits = width_bits
        self.injector = injector
        self._items: deque = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, object]] = deque()
        self.total_put = 0
        self.total_got = 0
        #: Peak occupancy, for utilization reporting.
        self.high_water = 0
        #: Tokens lost to injected drops / discarded by reset().
        self.dropped = 0
        self.flushed = 0
        env.watched_fifos.append(self)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item) -> Event:
        """Event that triggers once *item* entered the FIFO."""
        evt = Event(self.env)
        if self.injector is not None:
            fault = self.injector.fire("stream_flip", self.name)
            if fault is not None and isinstance(item, int):
                item ^= 1 << (fault.bit % max(1, self.width_bits))
            if self.injector.fire("stream_drop", self.name) is not None:
                # The producer sees a successful handshake; the token is
                # gone.  The consumer side will starve and the watchdog
                # (or deadlock detector) diagnoses the pipeline.
                self.dropped += 1
                evt.trigger(None)
                return evt
        if self._getters:
            # Hand straight to a waiting consumer.
            getter = self._getters.popleft()
            self.total_put += 1
            self.total_got += 1
            getter.trigger(item)
            evt.trigger(None)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            self.total_put += 1
            self.high_water = max(self.high_water, len(self._items))
            evt.trigger(None)
        else:
            self._putters.append((evt, item))
        return evt

    def get(self) -> Event:
        """Event that triggers with the next item."""
        evt = Event(self.env)
        if self._items:
            item = self._items.popleft()
            self.total_got += 1
            if self._putters:
                p_evt, p_item = self._putters.popleft()
                self._items.append(p_item)
                self.total_put += 1
                self.high_water = max(self.high_water, len(self._items))
                p_evt.trigger(None)
            evt.trigger(item)
        elif self._putters:
            # Zero-capacity corner: putter waiting on a full-at-0 queue.
            p_evt, p_item = self._putters.popleft()
            self.total_put += 1
            self.total_got += 1
            p_evt.trigger(None)
            evt.trigger(p_item)
        else:
            self._getters.append(evt)
        return evt

    def reset(self) -> None:
        """Soft reset: discard buffered tokens and pending handshakes.

        Used by the recovery ladder before a retry.  Waiting producers /
        consumers are expected to be abandoned by the caller — their
        handshake events are dropped unfired.
        """
        self.flushed += len(self._items)
        self._items.clear()
        self._getters.clear()
        self._putters.clear()

    def conserved(self) -> bool:
        """FIFO conservation invariant (drops and flushes accounted)."""
        return self.total_put == self.total_got + len(self._items) + self.flushed
